"""Sprout wire format (Section 3.4).

Sprout packets are ordinary packets whose ``headers`` dict carries the
control-protocol fields.  Two kinds of packets exist:

* **data packets** (sender -> receiver): a byte-granularity sequence number
  counting all bytes sent so far, the "throwaway number" marking the newest
  sequence position the receiver may safely write off (the sequence offset
  of the most recent packet sent more than 10 ms earlier), and the
  "time-to-next" hint telling the receiver when to expect the next packet so
  an empty queue is not mistaken for an outage.  Heartbeats are tiny data
  packets sent while the application is idle.
* **feedback packets** (receiver -> sender): the 8-tick cautious forecast of
  cumulative deliverable bytes, the time the forecast was made, and the
  total count of bytes received or written off as lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.simulation.packet import MTU_BYTES, Packet

#: reordering tolerance used by the throwaway number (Section 3.4: packets
#: sent more than 10 ms apart are assumed not to be reordered)
THROWAWAY_INTERVAL = 0.010

#: size of a heartbeat / feedback packet in bytes (headers only, no payload)
CONTROL_PACKET_BYTES = 60

HEADER_SEQ_BYTES = "sprout_seq_bytes"
HEADER_THROWAWAY_BYTES = "sprout_throwaway_bytes"
HEADER_TIME_TO_NEXT = "sprout_time_to_next"
HEADER_IS_HEARTBEAT = "sprout_heartbeat"
HEADER_FORECAST = "sprout_forecast_bytes"
HEADER_FORECAST_TIME = "sprout_forecast_time"
HEADER_RECEIVED_OR_LOST = "sprout_received_or_lost"


@dataclass
class SproutDataHeader:
    """Parsed view of a Sprout data packet's headers."""

    seq_bytes: int
    throwaway_bytes: int
    time_to_next: float
    is_heartbeat: bool


@dataclass
class SproutFeedback:
    """Parsed view of a Sprout feedback packet's headers."""

    forecast_bytes: List[float]
    forecast_time: float
    received_or_lost_bytes: int


def make_data_packet(
    size: int,
    seq_bytes: int,
    throwaway_bytes: int,
    time_to_next: float,
    flow_id: str = "sprout",
    is_heartbeat: bool = False,
) -> Packet:
    """Build a Sprout data packet (or heartbeat when ``is_heartbeat``)."""
    if size <= 0:
        raise ValueError("data packet size must be positive")
    if seq_bytes < 0 or throwaway_bytes < 0:
        raise ValueError("sequence fields must be non-negative")
    if time_to_next < 0:
        raise ValueError("time_to_next must be non-negative")
    return Packet(
        size=size,
        flow_id=flow_id,
        headers={
            HEADER_SEQ_BYTES: seq_bytes,
            HEADER_THROWAWAY_BYTES: throwaway_bytes,
            HEADER_TIME_TO_NEXT: time_to_next,
            HEADER_IS_HEARTBEAT: is_heartbeat,
        },
    )


def make_feedback_packet(
    forecast_bytes: Sequence[float],
    forecast_time: float,
    received_or_lost_bytes: int,
    flow_id: str = "sprout-feedback",
    size: int = CONTROL_PACKET_BYTES,
) -> Packet:
    """Build a Sprout feedback packet carrying the receiver's forecast."""
    if received_or_lost_bytes < 0:
        raise ValueError("received_or_lost_bytes must be non-negative")
    return Packet(
        size=size,
        flow_id=flow_id,
        headers={
            HEADER_FORECAST: [float(v) for v in forecast_bytes],
            HEADER_FORECAST_TIME: float(forecast_time),
            HEADER_RECEIVED_OR_LOST: int(received_or_lost_bytes),
        },
    )


def parse_data_header(packet: Packet) -> Optional[SproutDataHeader]:
    """Parse a data-packet header, or None if the packet is not Sprout data."""
    if HEADER_SEQ_BYTES not in packet.headers:
        return None
    return SproutDataHeader(
        seq_bytes=int(packet.headers[HEADER_SEQ_BYTES]),
        throwaway_bytes=int(packet.headers.get(HEADER_THROWAWAY_BYTES, 0)),
        time_to_next=float(packet.headers.get(HEADER_TIME_TO_NEXT, 0.0)),
        is_heartbeat=bool(packet.headers.get(HEADER_IS_HEARTBEAT, False)),
    )


def parse_feedback(packet: Packet) -> Optional[SproutFeedback]:
    """Parse a feedback-packet header, or None if the packet is not feedback."""
    if HEADER_FORECAST not in packet.headers:
        return None
    return SproutFeedback(
        forecast_bytes=list(packet.headers[HEADER_FORECAST]),
        forecast_time=float(packet.headers[HEADER_FORECAST_TIME]),
        received_or_lost_bytes=int(packet.headers[HEADER_RECEIVED_OR_LOST]),
    )


def is_heartbeat(packet: Packet) -> bool:
    """True if ``packet`` is a Sprout heartbeat."""
    return bool(packet.headers.get(HEADER_IS_HEARTBEAT, False))


def data_packet_sizes(window_bytes: int, mtu_bytes: int = MTU_BYTES) -> List[int]:
    """Split a byte budget into MTU-sized packet payloads.

    Sprout sends full MTU packets; a remainder smaller than one MTU is left
    for the next window evaluation rather than sent as a runt, matching the
    paper's packet-granularity accounting.
    """
    if window_bytes < 0:
        raise ValueError("window_bytes must be non-negative")
    return [mtu_bytes] * (int(window_bytes) // mtu_bytes)
