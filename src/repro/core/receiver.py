"""The Sprout receiver (Sections 3.2-3.4).

Every 20 ms tick the receiver:

1. feeds the number of bytes that arrived during the tick to its forecaster
   (skipping the observation when the sender's "time-to-next" marking shows
   that the queue is simply empty rather than the link being in an outage);
2. recomputes the cautious cumulative-delivery forecast; and
3. sends the forecast back to the sender, together with the total number of
   bytes it has received or written off as lost, piggybacked on a small
   feedback packet (in a one-way transfer the receiver has no data of its
   own, so the feedback packet is the paper's "outgoing packet").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.forecaster import BayesianForecaster, EWMAForecaster, Forecaster
from repro.core.packets import make_feedback_packet, parse_data_header
from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.packet import Packet


class SproutReceiver(Protocol):
    """Receiver half of a Sprout connection.

    Args:
        forecaster: the inference engine; a :class:`BayesianForecaster` with
            the paper's parameters by default.  Pass an
            :class:`EWMAForecaster` to obtain the Sprout-EWMA receiver.
        feedback_interval_ticks: send a feedback packet every N ticks
            (1 = every 20 ms, the default).
        observation_grace: extra time (seconds) beyond the announced
            time-to-next during which a silent tick is attributed to an empty
            queue rather than an outage; covers queueing jitter of the last
            flight.
        flow_id: label attached to feedback packets.
        record_history: when True, append ``(time, estimated rate)`` to
            :attr:`rate_history` every tick, for plotting.  Off by default:
            a long run otherwise accumulates one tuple per 20 ms forever,
            which skews memory in big experiment matrices.
    """

    def __init__(
        self,
        forecaster: Optional[Forecaster] = None,
        feedback_interval_ticks: int = 1,
        observation_grace: float = 0.020,
        flow_id: str = "sprout",
        record_history: bool = False,
    ) -> None:
        if feedback_interval_ticks < 1:
            raise ValueError("feedback_interval_ticks must be at least 1")
        if observation_grace < 0:
            raise ValueError("observation_grace must be non-negative")
        self.forecaster = forecaster if forecaster is not None else BayesianForecaster()
        self.tick_interval = self.forecaster.tick_duration
        self.feedback_interval_ticks = feedback_interval_ticks
        self.observation_grace = observation_grace
        self.flow_id = flow_id

        # Per-tick observation accumulators.  Data bytes and heartbeat bytes
        # are tracked separately: a tick in which only a heartbeat arrived
        # tells us the link is not in an outage, but says nothing about how
        # fast a backlogged queue would drain, so it must not be fed to the
        # forecaster as if it were the link's full delivery rate.
        self._bytes_this_tick = 0
        self._heartbeat_bytes_this_tick = 0
        # Accounting for the "received or lost" counter (Section 3.4).
        self._highest_seq_bytes = 0
        self._written_off_bytes = 0
        self.total_bytes_received = 0
        self.data_packets_received = 0
        self.heartbeats_received = 0
        # Expected arrival of the sender's next packet (time-to-next marking).
        self._expect_next_by = 0.0
        # time-to-next announced by the most recent arrival in this tick:
        # zero means more data was right behind it (link-limited tick),
        # positive means the sender paused of its own accord.
        self._last_time_to_next = 0.0
        self._ticks_since_feedback = 0
        self.feedback_packets_sent = 0
        self.record_history = record_history
        #: history of (time, estimated_rate_bytes_per_sec); only populated
        #: when ``record_history`` is True
        self.rate_history: List[Tuple[float, float]] = []

    # ------------------------------------------------------------- lifecycle

    def start(self, ctx: HostContext) -> None:
        super().start(ctx)
        self._expect_next_by = ctx.now() + self.observation_grace

    # ------------------------------------------------------------ reception

    def on_packet(self, packet: Packet, now: float) -> None:
        header = parse_data_header(packet)
        if header is None:
            return
        self.total_bytes_received += packet.size
        if header.is_heartbeat:
            self.heartbeats_received += 1
            self._heartbeat_bytes_this_tick += packet.size
        else:
            self.data_packets_received += 1
            self._bytes_this_tick += packet.size
        if header.seq_bytes > self._highest_seq_bytes:
            self._highest_seq_bytes = header.seq_bytes
        if header.throwaway_bytes > self._written_off_bytes:
            self._written_off_bytes = header.throwaway_bytes
        self._expect_next_by = now + header.time_to_next
        self._last_time_to_next = header.time_to_next

    # ----------------------------------------------------------------- tick

    def peek_observation(self, now: float) -> Tuple[Optional[float], bool]:
        """The ``(observed_bytes, at_least)`` the next tick will feed the forecaster.

        Pure read of the tick-decision rules — nothing is consumed, so the
        batched cross-cell engine can pre-read every paused cell's pending
        observation, compute the belief updates in one kernel, and install
        the results before the tick events fire.  :meth:`on_tick` routes
        through the same decision, keeping the two in lockstep by
        construction.
        """
        observed = self._bytes_this_tick
        heartbeat_bytes = self._heartbeat_bytes_this_tick
        if observed > 0:
            # If the newest arrival announced a pause (nonzero time-to-next),
            # the queue ran dry because the sender stopped, so this tick's
            # count is only a lower bound on what the link could deliver.
            return float(observed + heartbeat_bytes), self._last_time_to_next > 0.0
        if heartbeat_bytes > 0:
            # Only a heartbeat arrived: the sender is idle or window-limited,
            # so this says nothing about how fast a backlog would drain — but
            # it does prove the link is not in an outage ("even one tiny
            # packet does much to dispel this ambiguity", Section 3.2).
            # Treat it as a lower-bound observation.
            return float(heartbeat_bytes), True
        if now < self._expect_next_by + self.observation_grace:
            # The sender told us not to expect anything yet: an empty tick is
            # indistinguishable from an empty queue, so skip the observation.
            return None, False
        return 0.0, False

    def will_send_feedback(self) -> bool:
        """Whether the next tick ends a feedback interval (and needs a forecast)."""
        return self._ticks_since_feedback + 1 >= self.feedback_interval_ticks

    def on_tick(self, now: float) -> None:
        observed_bytes, at_least = self.peek_observation(now)
        self._bytes_this_tick = 0
        self._heartbeat_bytes_this_tick = 0
        self.forecaster.tick(observed_bytes, at_least=at_least)

        if self.record_history:
            self.rate_history.append(
                (now, self.forecaster.estimated_rate_bytes_per_sec())
            )

        self._ticks_since_feedback += 1
        if self._ticks_since_feedback >= self.feedback_interval_ticks:
            self._ticks_since_feedback = 0
            self._send_feedback(now)

    # ------------------------------------------------------------- feedback

    @property
    def received_or_lost_bytes(self) -> int:
        """Bytes the receiver has received or written off as lost."""
        return max(self._highest_seq_bytes, self._written_off_bytes)

    def _send_feedback(self, now: float) -> None:
        forecast = self.forecaster.forecast()
        packet = make_feedback_packet(
            forecast_bytes=forecast,
            forecast_time=now,
            received_or_lost_bytes=self.received_or_lost_bytes,
            flow_id=f"{self.flow_id}-feedback",
        )
        self.ctx.send(packet)
        self.feedback_packets_sent += 1


def make_sprout_receiver(confidence: float = 0.95, **kwargs) -> SproutReceiver:
    """Receiver configured with the paper's Bayesian forecaster."""
    return SproutReceiver(forecaster=BayesianForecaster(confidence=confidence), **kwargs)


def make_sprout_ewma_receiver(alpha: float = 0.125, **kwargs) -> SproutReceiver:
    """Receiver configured with the Sprout-EWMA moving-average tracker."""
    return SproutReceiver(forecaster=EWMAForecaster(alpha=alpha), **kwargs)
