"""Discretized doubly-stochastic model of the link rate (Section 3.1-3.2).

Sprout models the link as a Poisson packet-delivery process whose rate
:math:`\\lambda` varies in Brownian motion with noise power :math:`\\sigma`
(packets per second per sqrt(second)) and a sticky outage state at
:math:`\\lambda = 0` whose escape rate is :math:`\\lambda_z`.  To make
inference tractable the rate space is discretized into 256 values sampled
uniformly from 0 to 1000 MTU-sized packets per second, and the belief is
updated once per 20 ms "tick".

Everything that does not depend on the observations is precomputed here:

* the Brownian-motion transition matrix for one tick (including the outage
  bias on the :math:`\\lambda = 0` row);
* the Poisson observation likelihoods on a grid of byte counts;
* the per-bin cumulative-delivery CDFs used by the forecast, for each of the
  forecast horizons.

The default parameter values are exactly the paper's frozen values:
``sigma = 200``, ``lambda_z = 1``, 256 bins, 20 ms ticks, 8-tick forecasts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np
from scipy.special import gammainc, gammaln

from repro.simulation.packet import MTU_BYTES

#: number of discrete rate values (paper: 256)
DEFAULT_NUM_BINS = 256
#: largest modelled rate, MTU-sized packets per second (paper: 1000 ~= 11 Mbit/s)
DEFAULT_MAX_RATE = 1000.0
#: inference update period, seconds (paper: 20 ms)
DEFAULT_TICK = 0.020
#: Brownian noise power, packets per second per sqrt(second) (paper: 200)
DEFAULT_SIGMA = 200.0
#: outage escape rate, 1/seconds (paper: 1)
DEFAULT_OUTAGE_ESCAPE_RATE = 1.0
#: forecast horizon in ticks (paper: 8 ticks = 160 ms)
DEFAULT_FORECAST_TICKS = 8


@dataclass(frozen=True)
class RateModelParams:
    """Frozen parameters of the stochastic link model."""

    num_bins: int = DEFAULT_NUM_BINS
    max_rate: float = DEFAULT_MAX_RATE
    tick: float = DEFAULT_TICK
    sigma: float = DEFAULT_SIGMA
    outage_escape_rate: float = DEFAULT_OUTAGE_ESCAPE_RATE
    forecast_ticks: int = DEFAULT_FORECAST_TICKS
    mtu_bytes: int = MTU_BYTES

    def __post_init__(self) -> None:
        if self.num_bins < 2:
            raise ValueError("num_bins must be at least 2")
        if self.max_rate <= 0:
            raise ValueError("max_rate must be positive")
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.outage_escape_rate < 0:
            raise ValueError("outage_escape_rate must be non-negative")
        if self.forecast_ticks < 1:
            raise ValueError("forecast_ticks must be at least 1")


class RateModel:
    """Precomputed matrices for Bayesian inference on the link rate.

    Args:
        params: model parameters (the paper's frozen values by default).
        forecast_paths: number of Monte-Carlo sample paths per rate bin used
            to precompute the cumulative-delivery distributions.  The paths
            are drawn once, from a fixed seed, at model construction; the
            runtime forecast is a deterministic weighted sum over the bins.
    """

    #: fixed seed for the offline Monte-Carlo precomputation, so that every
    #: model instance (and therefore every experiment) is reproducible.
    FORECAST_SEED = 20130419

    def __init__(
        self,
        params: Optional[RateModelParams] = None,
        forecast_paths: int = 4000,
    ) -> None:
        if forecast_paths < 100:
            raise ValueError("forecast_paths must be at least 100")
        self.params = params if params is not None else RateModelParams()
        self.forecast_paths = forecast_paths
        p = self.params

        #: the 256 candidate rates, packets per second
        self.rates = np.linspace(0.0, p.max_rate, p.num_bins)
        #: expected packets per tick for each candidate rate
        self.packets_per_tick = self.rates * p.tick

        self.transition = self._build_transition_matrix()
        # Maximum plausible cumulative count over the full forecast horizon,
        # with headroom so the CDF always reaches ~1 inside the grid.
        self._max_count = int(math.ceil(p.max_rate * p.tick * p.forecast_ticks)) + 40
        self.cumulative_cdfs = self._build_cumulative_cdfs()

    # -------------------------------------------------------------- builders

    def _brownian_row(self, rate: float) -> np.ndarray:
        """Distribution of the rate one tick later, given its current value."""
        p = self.params
        std = p.sigma * math.sqrt(p.tick)
        if std <= 0:
            row = np.zeros(p.num_bins)
            row[int(np.argmin(np.abs(self.rates - rate)))] = 1.0
            return row
        z = (self.rates - rate) / std
        row = np.exp(-0.5 * z * z)
        total = row.sum()
        if total <= 0:  # pragma: no cover - defensive; cannot happen with linspace grid
            row = np.zeros(p.num_bins)
            row[int(np.argmin(np.abs(self.rates - rate)))] = 1.0
            return row
        return row / total

    def _build_transition_matrix(self) -> np.ndarray:
        """One-tick transition matrix T with T[i, j] = P(next bin j | bin i).

        Row 0 (the outage state) mixes "stay in outage" with probability
        ``exp(-lambda_z * tick)`` and the ordinary Brownian spread with the
        complementary probability, reproducing the sticky-outage behaviour of
        Section 3.1.
        """
        p = self.params
        matrix = np.empty((p.num_bins, p.num_bins))
        for i, rate in enumerate(self.rates):
            matrix[i] = self._brownian_row(rate)
        stay = math.exp(-p.outage_escape_rate * p.tick)
        outage_row = np.zeros(p.num_bins)
        outage_row[0] = 1.0
        matrix[0] = stay * outage_row + (1.0 - stay) * matrix[0]
        # Normalise each row exactly (guards against accumulated float error).
        matrix /= matrix.sum(axis=1, keepdims=True)
        return matrix

    def _build_cumulative_cdfs(self) -> np.ndarray:
        """Cumulative-delivery CDF grids used by the forecast (Section 3.3).

        ``cumulative_cdfs[j, i, n]`` is the probability that the link
        delivers at most ``n`` packets within ``j + 1`` ticks, *given that
        the current rate is* ``rates[i]`` and that the rate then follows the
        model's own dynamics (Brownian drift with the sticky outage state).
        The distribution is over the whole rate path, so early ticks — when
        the rate cannot yet have wandered far from its current value —
        contribute deliveries even under the cautious quantile, exactly as
        in the paper's tick-by-tick evolution.

        The grids are computed once per model by propagating a fixed-seed
        Monte-Carlo ensemble of rate paths for every starting bin; at
        runtime the forecast is a deterministic weighted sum of these rows
        under the current belief.
        """
        p = self.params
        rng = np.random.default_rng(self.FORECAST_SEED)
        paths = self.forecast_paths
        std = p.sigma * math.sqrt(p.tick)
        stay_in_outage = math.exp(-p.outage_escape_rate * p.tick)
        # Rates closer to zero than half a bin belong to the outage bin of
        # the discretized chain and inherit its stickiness.
        half_bin = 0.5 * (self.rates[1] - self.rates[0])

        # One row of sample paths per starting rate bin.
        rates = np.repeat(self.rates[:, None], paths, axis=1)
        counts = np.zeros((p.num_bins, paths), dtype=np.int64)
        cdfs = np.empty((p.forecast_ticks, p.num_bins, self._max_count + 1))
        count_grid = np.arange(self._max_count + 1)

        def brownian_step(current: np.ndarray) -> np.ndarray:
            """One conditional Brownian step, staying on the [0, max] grid.

            The discretized transition matrix renormalises each Gaussian row
            over the rate grid, which is equivalent to sampling the Gaussian
            step *conditioned on* landing inside the grid; a few rounds of
            rejection resampling reproduce that here.
            """
            proposal = current + rng.normal(0.0, std, size=current.shape)
            for _ in range(6):
                outside = (proposal < 0.0) | (proposal > p.max_rate)
                if not outside.any():
                    break
                proposal = np.where(
                    outside,
                    current + rng.normal(0.0, std, size=current.shape),
                    proposal,
                )
            return np.clip(proposal, 0.0, p.max_rate)

        for j in range(p.forecast_ticks):
            # Evolve every path by one tick of the discretized rate dynamics.
            in_outage = rates < half_bin
            stepped = brownian_step(rates)
            stays = in_outage & (rng.random(size=rates.shape) < stay_in_outage)
            rates = np.where(stays, 0.0, stepped)
            rates = np.where(rates < half_bin, 0.0, rates)
            # Deliveries during this tick given the (new) instantaneous rate.
            counts += rng.poisson(rates * p.tick)
            clipped = np.minimum(counts, self._max_count)
            # Empirical CDF over the ensemble, per starting bin.
            sorted_counts = np.sort(clipped, axis=1)
            positions = np.apply_along_axis(
                np.searchsorted, 1, sorted_counts, count_grid, side="right"
            )
            cdfs[j] = positions / float(paths)
        return cdfs

    # ------------------------------------------------------------- inference

    def uniform_prior(self) -> np.ndarray:
        """The paper's startup belief: every rate equally probable."""
        return np.full(self.params.num_bins, 1.0 / self.params.num_bins)

    def evolve(self, belief: np.ndarray) -> np.ndarray:
        """Push the belief forward one tick of Brownian motion."""
        return belief @ self.transition

    def observation_likelihood(self, packets_observed: float) -> np.ndarray:
        """Likelihood of observing ``packets_observed`` packets in one tick.

        ``packets_observed`` may be fractional because Sprout counts bytes
        (a 750-byte arrival is half an MTU-sized packet); the Poisson pmf is
        extended continuously through the gamma function.
        """
        if packets_observed < 0:
            raise ValueError("cannot observe a negative packet count")
        mu = self.packets_per_tick
        likelihood = np.zeros_like(mu)
        positive = mu > 0
        log_pmf = (
            packets_observed * np.log(mu[positive])
            - mu[positive]
            - gammaln(packets_observed + 1.0)
        )
        likelihood[positive] = np.exp(log_pmf)
        # The outage bin can only produce zero packets.
        likelihood[~positive] = 1.0 if packets_observed == 0 else 0.0
        return likelihood

    def censored_likelihood(self, packets_observed: float) -> np.ndarray:
        """Likelihood that *at least* ``packets_observed`` packets were deliverable.

        Used for ticks in which the queue ran dry because the sender had
        nothing more to send: the arrivals then establish only a lower bound
        on what the link could have delivered, so the correct update weights
        each rate by :math:`P(N \\ge k \\mid \\lambda)` instead of the exact
        Poisson probability.  (This is the natural generalisation of the
        paper's time-to-next rule, which handles the ``k = 0`` case.)
        """
        if packets_observed < 0:
            raise ValueError("cannot observe a negative packet count")
        if packets_observed == 0:
            return np.ones_like(self.packets_per_tick)
        mu = self.packets_per_tick
        likelihood = np.zeros_like(mu)
        positive = mu > 0
        # P(N >= k) for Poisson(mu) equals the regularised lower incomplete
        # gamma function gammainc(k, mu) (continuous in k).
        likelihood[positive] = gammainc(packets_observed, mu[positive])
        likelihood[~positive] = 0.0
        return likelihood

    def update(
        self, belief: np.ndarray, packets_observed: float, censored: bool = False
    ) -> np.ndarray:
        """One full Bayesian tick: evolve, weight by the observation, normalise.

        Args:
            belief: current distribution over rate bins.
            packets_observed: packets (possibly fractional) seen this tick.
            censored: True when the observation is only a lower bound on what
                the link could have delivered (sender-limited tick).
        """
        evolved = self.evolve(belief)
        if censored:
            likelihood = self.censored_likelihood(packets_observed)
        else:
            likelihood = self.observation_likelihood(packets_observed)
        posterior = evolved * likelihood
        total = posterior.sum()
        if total <= 0.0 or not np.isfinite(total):
            # All mass annihilated (e.g. an enormous observation): fall back
            # to the evolved prior rather than dividing by zero.
            return evolved
        return posterior / total

    # -------------------------------------------------------------- forecast

    def cumulative_quantile(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Cautious cumulative-delivery forecast (Section 3.3).

        For each forecast horizon, mixes the per-bin cumulative-delivery
        distributions (which already account for the rate's own future
        evolution) under the current belief and takes the requested
        percentile of the resulting distribution.

        Args:
            belief: current probability distribution over rate bins.
            percentile: quantile in (0, 1); the paper's default cautious
                forecast uses 0.05 (the 5th percentile, i.e. 95% confidence
                that at least this much will be delivered).
            num_ticks: forecast horizon; defaults to the model's 8 ticks.

        Returns:
            Array of length ``num_ticks``: forecast cumulative *packets*
            delivered by the end of each tick.  The array is monotonically
            non-decreasing (cumulative deliveries cannot shrink).
        """
        if not 0.0 < percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        ticks = self.params.forecast_ticks if num_ticks is None else num_ticks
        if not 1 <= ticks <= self.params.forecast_ticks:
            raise ValueError(
                f"num_ticks must be between 1 and {self.params.forecast_ticks}"
            )
        forecast = np.empty(ticks)
        previous = 0.0
        for j in range(ticks):
            mixture_cdf = belief @ self.cumulative_cdfs[j]
            index = int(np.searchsorted(mixture_cdf, percentile, side="left"))
            value = float(min(index, self._max_count))
            # Enforce monotonicity against Monte-Carlo quantile jitter.
            previous = max(previous, value)
            forecast[j] = previous
        return forecast

    def expected_rate(self, belief: np.ndarray) -> float:
        """Posterior-mean link rate in packets per second."""
        return float(np.dot(belief, self.rates))


@lru_cache(maxsize=8)
def _shared_model(params: RateModelParams) -> RateModel:
    return RateModel(params)


def shared_rate_model(params: Optional[RateModelParams] = None) -> RateModel:
    """Return a memoised :class:`RateModel`.

    Building the forecast CDF tensor takes a noticeable fraction of a second;
    every Sprout connection with the same (frozen) parameters can share one
    instance because the model itself is immutable after construction.
    """
    return _shared_model(params if params is not None else RateModelParams())
