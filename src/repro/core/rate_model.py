"""Discretized doubly-stochastic model of the link rate (Section 3.1-3.2).

Sprout models the link as a Poisson packet-delivery process whose rate
:math:`\\lambda` varies in Brownian motion with noise power :math:`\\sigma`
(packets per second per sqrt(second)) and a sticky outage state at
:math:`\\lambda = 0` whose escape rate is :math:`\\lambda_z`.  To make
inference tractable the rate space is discretized into 256 values sampled
uniformly from 0 to 1000 MTU-sized packets per second, and the belief is
updated once per 20 ms "tick".

Everything that does not depend on the observations is precomputed here:

* the Brownian-motion transition matrix for one tick (including the outage
  bias on the :math:`\\lambda = 0` row);
* the Poisson observation likelihoods on a grid of byte counts;
* the per-bin cumulative-delivery CDFs used by the forecast, for each of the
  forecast horizons.

The default parameter values are exactly the paper's frozen values:
``sigma = 200``, ``lambda_z = 1``, 256 bins, 20 ms ticks, 8-tick forecasts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np
from scipy.special import gammainc, gammaln

#: entries kept in each per-model likelihood cache.  Saturator-style traffic
#: produces byte counts from a small alphabet of packet sizes, so in practice
#: the hit rate is near 100% with far fewer distinct keys than this.
LIKELIHOOD_CACHE_SIZE = 4096

from repro.simulation.packet import MTU_BYTES

#: number of discrete rate values (paper: 256)
DEFAULT_NUM_BINS = 256
#: largest modelled rate, MTU-sized packets per second (paper: 1000 ~= 11 Mbit/s)
DEFAULT_MAX_RATE = 1000.0
#: inference update period, seconds (paper: 20 ms)
DEFAULT_TICK = 0.020
#: Brownian noise power, packets per second per sqrt(second) (paper: 200)
DEFAULT_SIGMA = 200.0
#: outage escape rate, 1/seconds (paper: 1)
DEFAULT_OUTAGE_ESCAPE_RATE = 1.0
#: forecast horizon in ticks (paper: 8 ticks = 160 ms)
DEFAULT_FORECAST_TICKS = 8


@dataclass(frozen=True)
class RateModelParams:
    """Frozen parameters of the stochastic link model."""

    num_bins: int = DEFAULT_NUM_BINS
    max_rate: float = DEFAULT_MAX_RATE
    tick: float = DEFAULT_TICK
    sigma: float = DEFAULT_SIGMA
    outage_escape_rate: float = DEFAULT_OUTAGE_ESCAPE_RATE
    forecast_ticks: int = DEFAULT_FORECAST_TICKS
    mtu_bytes: int = MTU_BYTES

    def __post_init__(self) -> None:
        if self.num_bins < 2:
            raise ValueError("num_bins must be at least 2")
        if self.max_rate <= 0:
            raise ValueError("max_rate must be positive")
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.outage_escape_rate < 0:
            raise ValueError("outage_escape_rate must be non-negative")
        if self.forecast_ticks < 1:
            raise ValueError("forecast_ticks must be at least 1")


class RateModel:
    """Precomputed matrices for Bayesian inference on the link rate.

    Args:
        params: model parameters (the paper's frozen values by default).
        forecast_paths: number of Monte-Carlo sample paths per rate bin used
            to precompute the cumulative-delivery distributions.  The paths
            are drawn once, from a fixed seed, at model construction; the
            runtime forecast is a deterministic weighted sum over the bins.
    """

    #: fixed seed for the offline Monte-Carlo precomputation, so that every
    #: model instance (and therefore every experiment) is reproducible.
    FORECAST_SEED = 20130419

    def __init__(
        self,
        params: Optional[RateModelParams] = None,
        forecast_paths: int = 4000,
    ) -> None:
        if forecast_paths < 100:
            raise ValueError("forecast_paths must be at least 100")
        self.params = params if params is not None else RateModelParams()
        self.forecast_paths = forecast_paths
        p = self.params

        #: the 256 candidate rates, packets per second
        self.rates = np.linspace(0.0, p.max_rate, p.num_bins)
        #: expected packets per tick for each candidate rate
        self.packets_per_tick = self.rates * p.tick

        self.transition = self._build_transition_matrix()
        # Maximum plausible cumulative count over the full forecast horizon,
        # with headroom so the CDF always reaches ~1 inside the grid.
        self._max_count = int(math.ceil(p.max_rate * p.tick * p.forecast_ticks)) + 40
        self.cumulative_cdfs = self._build_cumulative_cdfs()
        # Flattened (bins, ticks * counts) view of the CDF tensor, contiguous
        # so the forecast mixture for all horizons is one sgemv.
        self._cdf_matrix = np.ascontiguousarray(
            self.cumulative_cdfs.transpose(1, 0, 2).reshape(p.num_bins, -1)
        )
        # Column-major companion tensor (ticks, counts, bins): each count
        # column is a contiguous vector, so the quantile refinement can mix
        # a handful of columns without touching the rest of the tensor.
        self._cdf_cols = np.ascontiguousarray(self.cumulative_cdfs.transpose(0, 2, 1))
        # Coarse subsample of every `stride`-th count column, used to bracket
        # the quantile before the fine window is mixed.  Keeping the working
        # set this small is what makes the per-tick forecast cache-resident.
        self._quantile_stride = 16
        grid = self._max_count + 1
        self._coarse_cols = int(math.ceil(grid / self._quantile_stride))
        self._cdf_coarse = np.ascontiguousarray(
            self._cdf_matrix.reshape(p.num_bins, p.forecast_ticks, grid)[
                :, :, :: self._quantile_stride
            ].reshape(p.num_bins, -1)
        )
        positive = self.packets_per_tick > 0
        self._positive_bins = positive
        self._mu_positive = self.packets_per_tick[positive]
        self._log_mu_positive = np.log(self._mu_positive)
        self._likelihood_cache = lru_cache(maxsize=LIKELIHOOD_CACHE_SIZE)(
            self._likelihood_for_key
        )

    # -------------------------------------------------------------- builders

    def _brownian_row(self, rate: float) -> np.ndarray:
        """Distribution of the rate one tick later, given its current value."""
        p = self.params
        std = p.sigma * math.sqrt(p.tick)
        if std <= 0:
            row = np.zeros(p.num_bins)
            row[int(np.argmin(np.abs(self.rates - rate)))] = 1.0
            return row
        z = (self.rates - rate) / std
        row = np.exp(-0.5 * z * z)
        total = row.sum()
        if total <= 0:  # pragma: no cover - defensive; cannot happen with linspace grid
            row = np.zeros(p.num_bins)
            row[int(np.argmin(np.abs(self.rates - rate)))] = 1.0
            return row
        return row / total

    def _build_transition_matrix(self) -> np.ndarray:
        """One-tick transition matrix T with T[i, j] = P(next bin j | bin i).

        Row 0 (the outage state) mixes "stay in outage" with probability
        ``exp(-lambda_z * tick)`` and the ordinary Brownian spread with the
        complementary probability, reproducing the sticky-outage behaviour of
        Section 3.1.
        """
        p = self.params
        matrix = np.empty((p.num_bins, p.num_bins))
        for i, rate in enumerate(self.rates):
            matrix[i] = self._brownian_row(rate)
        stay = math.exp(-p.outage_escape_rate * p.tick)
        outage_row = np.zeros(p.num_bins)
        outage_row[0] = 1.0
        matrix[0] = stay * outage_row + (1.0 - stay) * matrix[0]
        # Normalise each row exactly (guards against accumulated float error).
        matrix /= matrix.sum(axis=1, keepdims=True)
        return matrix

    def _build_cumulative_cdfs(self) -> np.ndarray:
        """Cumulative-delivery CDF grids used by the forecast (Section 3.3).

        ``cumulative_cdfs[j, i, n]`` is the probability that the link
        delivers at most ``n`` packets within ``j + 1`` ticks, *given that
        the current rate is* ``rates[i]`` and that the rate then follows the
        model's own dynamics (Brownian drift with the sticky outage state).
        The distribution is over the whole rate path, so early ticks — when
        the rate cannot yet have wandered far from its current value —
        contribute deliveries even under the cautious quantile, exactly as
        in the paper's tick-by-tick evolution.

        The grids are computed once per model by propagating a fixed-seed
        Monte-Carlo ensemble of rate paths for every starting bin; at
        runtime the forecast is a deterministic weighted sum of these rows
        under the current belief.
        """
        p = self.params
        rng = np.random.default_rng(self.FORECAST_SEED)
        paths = self.forecast_paths
        std = p.sigma * math.sqrt(p.tick)
        stay_in_outage = math.exp(-p.outage_escape_rate * p.tick)
        # Rates closer to zero than half a bin belong to the outage bin of
        # the discretized chain and inherit its stickiness.
        half_bin = 0.5 * (self.rates[1] - self.rates[0])

        # One row of sample paths per starting rate bin.
        rates = np.repeat(self.rates[:, None], paths, axis=1)
        counts = np.zeros((p.num_bins, paths), dtype=np.int64)
        grid_size = self._max_count + 1
        # The tensor is stored float32 and C-contiguous: the forecast only
        # ever compares mixtures of these Monte-Carlo CDFs (resolution
        # 1/paths) against a quantile, so single precision is ample, and the
        # halved footprint keeps the fused mixture kernel in cache.
        cdfs = np.empty((p.forecast_ticks, p.num_bins, grid_size), dtype=np.float32)
        row_offsets = np.arange(p.num_bins, dtype=np.int64)[:, None] * grid_size

        def brownian_step(current: np.ndarray) -> np.ndarray:
            """One conditional Brownian step, staying on the [0, max] grid.

            The discretized transition matrix renormalises each Gaussian row
            over the rate grid, which is equivalent to sampling the Gaussian
            step *conditioned on* landing inside the grid; a few rounds of
            rejection resampling reproduce that here.
            """
            proposal = current + rng.normal(0.0, std, size=current.shape)
            for _ in range(6):
                outside = (proposal < 0.0) | (proposal > p.max_rate)
                if not outside.any():
                    break
                proposal = np.where(
                    outside,
                    current + rng.normal(0.0, std, size=current.shape),
                    proposal,
                )
            return np.clip(proposal, 0.0, p.max_rate)

        for j in range(p.forecast_ticks):
            # Evolve every path by one tick of the discretized rate dynamics.
            in_outage = rates < half_bin
            stepped = brownian_step(rates)
            stays = in_outage & (rng.random(size=rates.shape) < stay_in_outage)
            rates = np.where(stays, 0.0, stepped)
            rates = np.where(rates < half_bin, 0.0, rates)
            # Deliveries during this tick given the (new) instantaneous rate.
            counts += rng.poisson(rates * p.tick)
            clipped = np.minimum(counts, self._max_count)
            # Empirical CDF over the ensemble, per starting bin: histogram
            # every row in one flat bincount (rows are offset into disjoint
            # ranges), then a cumulative sum along the count axis.
            flat = (clipped + row_offsets).ravel()
            histogram = np.bincount(flat, minlength=p.num_bins * grid_size)
            histogram = histogram.reshape(p.num_bins, grid_size)
            cdfs[j] = histogram.cumsum(axis=1) / float(paths)
        return cdfs

    # ------------------------------------------------------------- inference

    def uniform_prior(self) -> np.ndarray:
        """The paper's startup belief: every rate equally probable."""
        return np.full(self.params.num_bins, 1.0 / self.params.num_bins)

    def evolve(self, belief: np.ndarray) -> np.ndarray:
        """Push the belief forward one tick of Brownian motion."""
        return belief @ self.transition

    def observation_likelihood(self, packets_observed: float) -> np.ndarray:
        """Likelihood of observing ``packets_observed`` packets in one tick.

        ``packets_observed`` may be fractional because Sprout counts bytes
        (a 750-byte arrival is half an MTU-sized packet); the Poisson pmf is
        extended continuously through the gamma function.

        Observations that fall exactly on the 1-byte grid (every real tick
        does: byte counters are integers) are served from a per-model LRU
        cache; the returned array is then shared and marked read-only.
        """
        return self._likelihood(packets_observed, censored=False)

    def censored_likelihood(self, packets_observed: float) -> np.ndarray:
        """Likelihood that *at least* ``packets_observed`` packets were deliverable.

        Used for ticks in which the queue ran dry because the sender had
        nothing more to send: the arrivals then establish only a lower bound
        on what the link could have delivered, so the correct update weights
        each rate by :math:`P(N \\ge k \\mid \\lambda)` instead of the exact
        Poisson probability.  (This is the natural generalisation of the
        paper's time-to-next rule, which handles the ``k = 0`` case.)

        Cached the same way as :meth:`observation_likelihood`.
        """
        return self._likelihood(packets_observed, censored=True)

    def _likelihood(self, packets_observed: float, censored: bool) -> np.ndarray:
        if packets_observed < 0:
            raise ValueError("cannot observe a negative packet count")
        mtu = self.params.mtu_bytes
        # int(x + 0.5) is a fast floor-round; the exactness guard below makes
        # the tie-breaking direction irrelevant (a miss just skips the cache).
        key = int(packets_observed * mtu + 0.5)
        if key / mtu == packets_observed:
            # Exactly representable at byte resolution: the cached vector is
            # computed at this very value, so sharing it is lossless.
            return self._likelihood_cache(key, censored)
        return self._compute_likelihood(packets_observed, censored)

    def _likelihood_for_key(self, key_bytes: int, censored: bool) -> np.ndarray:
        likelihood = self._compute_likelihood(
            key_bytes / self.params.mtu_bytes, censored
        )
        likelihood.flags.writeable = False
        return likelihood

    def _compute_likelihood(self, packets_observed: float, censored: bool) -> np.ndarray:
        positive = self._positive_bins
        if censored:
            if packets_observed == 0:
                return np.ones_like(self.packets_per_tick)
            likelihood = np.zeros_like(self.packets_per_tick)
            # P(N >= k) for Poisson(mu) equals the regularised lower
            # incomplete gamma function gammainc(k, mu) (continuous in k).
            likelihood[positive] = gammainc(packets_observed, self._mu_positive)
            return likelihood
        likelihood = np.zeros_like(self.packets_per_tick)
        log_pmf = (
            packets_observed * self._log_mu_positive
            - self._mu_positive
            - gammaln(packets_observed + 1.0)
        )
        likelihood[positive] = np.exp(log_pmf)
        # The outage bin can only produce zero packets.
        likelihood[~positive] = 1.0 if packets_observed == 0 else 0.0
        return likelihood

    def update(
        self, belief: np.ndarray, packets_observed: float, censored: bool = False
    ) -> np.ndarray:
        """One full Bayesian tick: evolve, weight by the observation, normalise.

        Args:
            belief: current distribution over rate bins.
            packets_observed: packets (possibly fractional) seen this tick.
            censored: True when the observation is only a lower bound on what
                the link could have delivered (sender-limited tick).
        """
        evolved = self.evolve(belief)
        if censored:
            likelihood = self.censored_likelihood(packets_observed)
        else:
            likelihood = self.observation_likelihood(packets_observed)
        posterior = evolved * likelihood
        total = posterior.sum()
        if total <= 0.0 or not np.isfinite(total):
            # All mass annihilated (e.g. an enormous observation): fall back
            # to the evolved prior rather than dividing by zero.
            return evolved
        posterior /= total
        return posterior

    # -------------------------------------------------------------- forecast

    def _validate_quantile_args(
        self, percentile: float, num_ticks: Optional[int]
    ) -> int:
        """Shared argument validation of the quantile implementations."""
        if not 0.0 < percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        ticks = self.params.forecast_ticks if num_ticks is None else num_ticks
        if not 1 <= ticks <= self.params.forecast_ticks:
            raise ValueError(
                f"num_ticks must be between 1 and {self.params.forecast_ticks}"
            )
        return ticks

    def cumulative_quantile(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Cautious cumulative-delivery forecast (Section 3.3).

        For each forecast horizon, mixes the per-bin cumulative-delivery
        distributions (which already account for the rate's own future
        evolution) under the current belief and takes the requested
        percentile of the resulting distribution.

        Args:
            belief: current probability distribution over rate bins.
            percentile: quantile in (0, 1); the paper's default cautious
                forecast uses 0.05 (the 5th percentile, i.e. 95% confidence
                that at least this much will be delivered).
            num_ticks: forecast horizon; defaults to the model's 8 ticks.

        Returns:
            Array of length ``num_ticks``: forecast cumulative *packets*
            delivered by the end of each tick.  The array is monotonically
            non-decreasing (cumulative deliveries cannot shrink).
        """
        ticks = self._validate_quantile_args(percentile, num_ticks)
        # Two-stage quantile extraction.  Stage 1 mixes every `stride`-th
        # count column of all horizons in one small sgemv and brackets the
        # crossing; stage 2 mixes only the bracketed window of columns per
        # horizon.  Exact-arithmetic equivalent to mixing the full tensor
        # (:meth:`_cumulative_quantile_fused`; the test suite holds the two
        # to equal outputs — a disagreement would need a mixture value
        # within one float32 rounding step of the percentile), but streams
        # ~250 KB instead of ~1.6 MB per call, which keeps the per-tick
        # forecast resident in cache alongside the belief update.
        b32 = belief.astype(np.float32, copy=False)
        key = np.float32(percentile)
        stride = self._quantile_stride
        coarse = (b32 @ self._cdf_coarse).reshape(
            self.params.forecast_ticks, self._coarse_cols
        )
        forecast = np.empty(ticks)
        for j in range(ticks):
            k = int(np.searchsorted(coarse[j], key, side="left"))
            lo = max(0, (k - 1) * stride + 1)
            hi = min(k * stride, self._max_count) if k > 0 else 0
            window = self._cdf_cols[j, lo : hi + 1] @ b32
            forecast[j] = lo + np.searchsorted(window, key, side="left")
        np.minimum(forecast, self._max_count, out=forecast)
        # Enforce monotonicity against Monte-Carlo quantile jitter.
        np.maximum.accumulate(forecast, out=forecast)
        return forecast

    def _cumulative_quantile_fused(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Single-tensordot form of :meth:`cumulative_quantile`.

        Mixes the whole CDF tensor for every horizon in one matvec
        (``tensordot(belief, cumulative_cdfs)`` over the bin axis) and reads
        one quantile per horizon.  :meth:`cumulative_quantile` is this plus
        column windowing; the test suite holds the two (and the per-horizon
        loop) to identical outputs.
        """
        ticks = self._validate_quantile_args(percentile, num_ticks)
        mixture = (
            belief.astype(np.float32, copy=False) @ self._cdf_matrix
        ).reshape(self.params.forecast_ticks, -1)
        key = np.float32(percentile)
        forecast = np.empty(ticks)
        for j in range(ticks):
            forecast[j] = np.searchsorted(mixture[j], key, side="left")
        np.minimum(forecast, self._max_count, out=forecast)
        np.maximum.accumulate(forecast, out=forecast)
        return forecast

    def _cumulative_quantile_loop(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Reference per-horizon implementation of :meth:`cumulative_quantile`.

        Kept (and exercised by the test suite) as the readable specification
        of the fused kernel: one ``belief @ cumulative_cdfs[j]`` mixture and
        one ``searchsorted`` per horizon.
        """
        ticks = self._validate_quantile_args(percentile, num_ticks)
        belief32 = belief.astype(np.float32, copy=False)
        forecast = np.empty(ticks)
        previous = 0.0
        for j in range(ticks):
            mixture_cdf = belief32 @ self.cumulative_cdfs[j]
            index = int(
                np.searchsorted(mixture_cdf, np.float32(percentile), side="left")
            )
            value = float(min(index, self._max_count))
            previous = max(previous, value)
            forecast[j] = previous
        return forecast

    def expected_rate(self, belief: np.ndarray) -> float:
        """Posterior-mean link rate in packets per second."""
        return float(np.dot(belief, self.rates))


@lru_cache(maxsize=8)
def _shared_model(params: RateModelParams) -> RateModel:
    return RateModel(params)


def shared_rate_model(params: Optional[RateModelParams] = None) -> RateModel:
    """Return a memoised :class:`RateModel`.

    Building the forecast CDF tensor takes a noticeable fraction of a second;
    every Sprout connection with the same (frozen) parameters can share one
    instance because the model itself is immutable after construction.
    """
    return _shared_model(params if params is not None else RateModelParams())
