"""Discretized doubly-stochastic model of the link rate (Section 3.1-3.2).

Sprout models the link as a Poisson packet-delivery process whose rate
:math:`\\lambda` varies in Brownian motion with noise power :math:`\\sigma`
(packets per second per sqrt(second)) and a sticky outage state at
:math:`\\lambda = 0` whose escape rate is :math:`\\lambda_z`.  To make
inference tractable the rate space is discretized into 256 values sampled
uniformly from 0 to 1000 MTU-sized packets per second, and the belief is
updated once per 20 ms "tick".

Everything that does not depend on the observations is precomputed here:

* the Brownian-motion transition matrix for one tick (including the outage
  bias on the :math:`\\lambda = 0` row);
* the Poisson observation likelihoods on a grid of byte counts;
* the per-bin cumulative-delivery CDFs used by the forecast, for each of the
  forecast horizons.

The default parameter values are exactly the paper's frozen values:
``sigma = 200``, ``lambda_z = 1``, 256 bins, 20 ms ticks, 8-tick forecasts.

That precomputation — the Monte-Carlo CDF tensor above all — costs on the
order of seconds per parameter set, which used to be paid per *process*:
every worker of every sweep rebuilt every swept model from scratch.  It is
now memoised through a two-level **model-artifact cache** (the generic
store of :mod:`repro.cache`, the same design as the trace cache): the
transition matrix, the CDF tensor, and its quantile companions are
serialised as one versioned ``.npz`` keyed on ``(RateModelParams,
forecast_paths, FORECAST_SEED, format version)``, so a parameter set is
built once ever per machine and every later construction — in this process
or any worker — is a memory or disk hit.  Cached and freshly built models
are bit-identical (``tests/test_model_cache.py``); see
docs/performance.md ("Layer 3") for the knobs:

* ``REPRO_MODEL_CACHE=0`` disables the cache entirely (every model
  rebuilds, the seed behaviour);
* ``REPRO_MODEL_CACHE_DISK=0`` keeps the in-process layer but skips disk;
* ``REPRO_MODEL_CACHE_DIR`` relocates the disk layer (default: a per-user
  directory under the system temp dir);
* ``REPRO_MODEL_CACHE_MAX`` bounds the in-process artifact layer;
* ``REPRO_SHARED_MODEL_MAX`` bounds the :func:`shared_rate_model`
  instance memoiser (the old hard-wired 8 thrashed on wide sweeps).
"""

from __future__ import annotations

import dataclasses
import math
import os
import threading
import zipfile
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, Optional, Sequence

import numpy as np
from scipy.special import gammainc, gammaln

from repro.cache import (
    ArtifactCache,
    content_key,
    default_cache_directory,
    env_positive_int,
)

#: entries kept in each per-model likelihood cache.  Saturator-style traffic
#: produces byte counts from a small alphabet of packet sizes, so in practice
#: the hit rate is near 100% with far fewer distinct keys than this.
LIKELIHOOD_CACHE_SIZE = 4096

from repro.simulation.packet import MTU_BYTES

#: number of discrete rate values (paper: 256)
DEFAULT_NUM_BINS = 256
#: largest modelled rate, MTU-sized packets per second (paper: 1000 ~= 11 Mbit/s)
DEFAULT_MAX_RATE = 1000.0
#: inference update period, seconds (paper: 20 ms)
DEFAULT_TICK = 0.020
#: Brownian noise power, packets per second per sqrt(second) (paper: 200)
DEFAULT_SIGMA = 200.0
#: outage escape rate, 1/seconds (paper: 1)
DEFAULT_OUTAGE_ESCAPE_RATE = 1.0
#: forecast horizon in ticks (paper: 8 ticks = 160 ms)
DEFAULT_FORECAST_TICKS = 8


@dataclass(frozen=True)
class RateModelParams:
    """Frozen parameters of the stochastic link model."""

    num_bins: int = DEFAULT_NUM_BINS
    max_rate: float = DEFAULT_MAX_RATE
    tick: float = DEFAULT_TICK
    sigma: float = DEFAULT_SIGMA
    outage_escape_rate: float = DEFAULT_OUTAGE_ESCAPE_RATE
    forecast_ticks: int = DEFAULT_FORECAST_TICKS
    mtu_bytes: int = MTU_BYTES

    def __post_init__(self) -> None:
        if self.num_bins < 2:
            raise ValueError("num_bins must be at least 2")
        if self.max_rate <= 0:
            raise ValueError("max_rate must be positive")
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.outage_escape_rate < 0:
            raise ValueError("outage_escape_rate must be non-negative")
        if self.forecast_ticks < 1:
            raise ValueError("forecast_ticks must be at least 1")


# ------------------------------------------------------ model-artifact cache

#: fixed seed for the offline Monte-Carlo precomputation, so that every
#: model instance (and therefore every experiment) is reproducible
FORECAST_SEED = 20130419

#: bump when the precomputation changes so stale disk entries are orphaned
MODEL_CACHE_FORMAT_VERSION = 1

#: the arrays one cached model artifact carries, in storage order
_ARTIFACT_FIELDS = (
    "transition",
    "cumulative_cdfs",
    "cdf_matrix",
    "cdf_cols",
    "cdf_coarse",
)

#: every `stride`-th CDF count column feeds the coarse quantile bracket
_QUANTILE_STRIDE = 16


#: in-process artifact entries kept by default.  One paper-size artifact is
#: ~20 MB of frozen arrays (tensor + companions), an order of magnitude
#: heavier than a trace-cache entry, so the bound is tighter than the trace
#: cache's 64 — wide enough for any realistic sweep's distinct parameter
#: sets, small enough that a pathological grid cannot pin gigabytes.
DEFAULT_MODEL_ARTIFACTS = 16


def default_model_cache_dir() -> str:
    """The default on-disk location: per-user, under the system temp dir."""
    return default_cache_directory("REPRO_MODEL_CACHE_DIR", "repro-model-cache")


def model_key(params: RateModelParams, forecast_paths: int) -> str:
    """Content hash identifying one deterministic model precomputation.

    Covers every :class:`RateModelParams` field, the Monte-Carlo ensemble
    size, the fixed forecast seed, and the artifact format version — the
    complete set of inputs the precomputed arrays depend on.
    """
    fields = tuple(
        (f.name, repr(getattr(params, f.name))) for f in dataclasses.fields(params)
    )
    return content_key(
        (MODEL_CACHE_FORMAT_VERSION, fields, int(forecast_paths), FORECAST_SEED)
    )


class ModelArtifactCache(ArtifactCache):
    """Two-level cache of model precomputation artifacts (``.npz`` files).

    One artifact is the dict of arrays named by :data:`_ARTIFACT_FIELDS`.
    Arrays are published read-only: the memory layer hands the same objects
    to every :class:`RateModel` with the same parameters, and freezing them
    makes accidental cross-model mutation impossible.
    """

    suffix = ".npz"

    def default_directory(self) -> str:
        return default_model_cache_dir()

    def write_artifact(self, handle, arrays: Dict[str, np.ndarray]) -> None:
        np.savez(handle, **arrays)

    def read_artifact(self, path: str) -> Dict[str, np.ndarray]:
        try:
            with np.load(path, allow_pickle=False) as payload:
                if set(payload.files) != set(_ARTIFACT_FIELDS):
                    raise ValueError(f"unexpected model artifact contents: {path}")
                arrays = {name: payload[name] for name in _ARTIFACT_FIELDS}
        except zipfile.BadZipFile as error:
            # A truncated .npz surfaces as a bad zip, not an OSError.
            raise ValueError(str(error)) from error
        for array in arrays.values():
            array.flags.writeable = False
        return arrays


#: the process-wide model-artifact cache consulted by every RateModel
_MODEL_CACHE = ModelArtifactCache.from_env(
    "REPRO_MODEL_CACHE", default_max=DEFAULT_MODEL_ARTIFACTS
)


def model_cache() -> ModelArtifactCache:
    """The process-wide model-artifact cache."""
    return _MODEL_CACHE


def configure_model_cache(
    directory: Optional[str] = None,
    use_disk: Optional[bool] = None,
    enabled: Optional[bool] = None,
    max_entries: Optional[int] = None,
) -> ModelArtifactCache:
    """Reconfigure the process-wide model cache (used by tests and tools).

    Any argument left as ``None`` keeps its current value.  The in-process
    layer is cleared so stale entries cannot outlive a reconfiguration.
    """
    return _MODEL_CACHE.configure(
        directory=directory,
        use_disk=use_disk,
        enabled=enabled,
        max_entries=max_entries,
    )


@contextmanager
def model_cache_directory(directory: str) -> Iterator[ModelArtifactCache]:
    """Temporarily point the model cache at ``directory``.

    Sets ``REPRO_MODEL_CACHE_DIR`` too, so worker processes spawned inside
    the context resolve the same location regardless of start method.  On
    exit both the env var and the cache's ``directory`` are restored, and
    the in-process layer is cleared so artifacts from the temporary
    location cannot leak past it.  Used by the test and benchmark suites
    to isolate every run from the per-user disk cache.
    """
    previous_env = os.environ.get("REPRO_MODEL_CACHE_DIR")
    previous_directory = _MODEL_CACHE.directory
    os.environ["REPRO_MODEL_CACHE_DIR"] = directory
    try:
        yield configure_model_cache(directory=directory)
    finally:
        if previous_env is None:
            os.environ.pop("REPRO_MODEL_CACHE_DIR", None)
        else:
            os.environ["REPRO_MODEL_CACHE_DIR"] = previous_env
        _MODEL_CACHE.directory = previous_directory
        _MODEL_CACHE.clear()


class RateModel:
    """Precomputed matrices for Bayesian inference on the link rate.

    Args:
        params: model parameters (the paper's frozen values by default).
        forecast_paths: number of Monte-Carlo sample paths per rate bin used
            to precompute the cumulative-delivery distributions.  The paths
            are drawn once, from a fixed seed, at model construction; the
            runtime forecast is a deterministic weighted sum over the bins.
    """

    #: fixed seed for the offline Monte-Carlo precomputation, so that every
    #: model instance (and therefore every experiment) is reproducible.
    FORECAST_SEED = FORECAST_SEED

    def __init__(
        self,
        params: Optional[RateModelParams] = None,
        forecast_paths: int = 4000,
    ) -> None:
        if forecast_paths < 100:
            raise ValueError("forecast_paths must be at least 100")
        self.params = params if params is not None else RateModelParams()
        self.forecast_paths = forecast_paths
        p = self.params

        #: the 256 candidate rates, packets per second
        self.rates = np.linspace(0.0, p.max_rate, p.num_bins)
        #: expected packets per tick for each candidate rate
        self.packets_per_tick = self.rates * p.tick
        # Maximum plausible cumulative count over the full forecast horizon,
        # with headroom so the CDF always reaches ~1 inside the grid.
        self._max_count = int(math.ceil(p.max_rate * p.tick * p.forecast_ticks)) + 40

        # Everything observation-independent comes from the model-artifact
        # cache: built here exactly once per (params, paths) key per machine,
        # then shared in memory and on disk.  A disabled cache builds fresh
        # every time (the seed behaviour); the arrays are bit-identical
        # either way (tests/test_model_cache.py).
        cache = model_cache()
        if cache.enabled:
            artifact = cache.get(
                model_key(p, forecast_paths), self._build_artifact
            )
        else:
            artifact = self._build_artifact()
        self.transition = artifact["transition"]
        self.cumulative_cdfs = artifact["cumulative_cdfs"]
        # Flattened (bins, ticks * counts) view of the CDF tensor, contiguous
        # so the forecast mixture for all horizons is one sgemv.
        self._cdf_matrix = artifact["cdf_matrix"]
        # Column-major companion tensor (ticks, counts, bins): each count
        # column is a contiguous vector, so the quantile refinement can mix
        # a handful of columns without touching the rest of the tensor.
        self._cdf_cols = artifact["cdf_cols"]
        # Coarse subsample of every `stride`-th count column, used to bracket
        # the quantile before the fine window is mixed.  Keeping the working
        # set this small is what makes the per-tick forecast cache-resident.
        self._cdf_coarse = artifact["cdf_coarse"]
        self._quantile_stride = _QUANTILE_STRIDE
        grid = self._max_count + 1
        self._coarse_cols = int(math.ceil(grid / self._quantile_stride))
        positive = self.packets_per_tick > 0
        self._positive_bins = positive
        self._mu_positive = self.packets_per_tick[positive]
        self._log_mu_positive = np.log(self._mu_positive)
        self._likelihood_cache = lru_cache(maxsize=LIKELIHOOD_CACHE_SIZE)(
            self._likelihood_for_key
        )

    # -------------------------------------------------------------- builders

    def _build_artifact(self) -> Dict[str, np.ndarray]:
        """Build every observation-independent array as one cacheable unit.

        This is the expensive part of model construction (seconds at paper
        parameters, dominated by the Monte-Carlo CDF ensemble).  The arrays
        are frozen read-only before publication because the cache shares
        them between every model instance with the same parameters.
        """
        p = self.params
        transition = self._build_transition_matrix()
        cumulative_cdfs = self._build_cumulative_cdfs()
        cdf_matrix = np.ascontiguousarray(
            cumulative_cdfs.transpose(1, 0, 2).reshape(p.num_bins, -1)
        )
        cdf_cols = np.ascontiguousarray(cumulative_cdfs.transpose(0, 2, 1))
        grid = self._max_count + 1
        cdf_coarse = np.ascontiguousarray(
            cdf_matrix.reshape(p.num_bins, p.forecast_ticks, grid)[
                :, :, ::_QUANTILE_STRIDE
            ].reshape(p.num_bins, -1)
        )
        arrays = {
            "transition": transition,
            "cumulative_cdfs": cumulative_cdfs,
            "cdf_matrix": cdf_matrix,
            "cdf_cols": cdf_cols,
            "cdf_coarse": cdf_coarse,
        }
        for array in arrays.values():
            array.flags.writeable = False
        return arrays

    def _brownian_row(self, rate: float) -> np.ndarray:
        """Distribution of the rate one tick later, given its current value."""
        p = self.params
        std = p.sigma * math.sqrt(p.tick)
        if std <= 0:
            row = np.zeros(p.num_bins)
            row[int(np.argmin(np.abs(self.rates - rate)))] = 1.0
            return row
        z = (self.rates - rate) / std
        row = np.exp(-0.5 * z * z)
        total = row.sum()
        if total <= 0:  # pragma: no cover - defensive; cannot happen with linspace grid
            row = np.zeros(p.num_bins)
            row[int(np.argmin(np.abs(self.rates - rate)))] = 1.0
            return row
        return row / total

    def _build_transition_matrix(self) -> np.ndarray:
        """One-tick transition matrix T with T[i, j] = P(next bin j | bin i).

        Row 0 (the outage state) mixes "stay in outage" with probability
        ``exp(-lambda_z * tick)`` and the ordinary Brownian spread with the
        complementary probability, reproducing the sticky-outage behaviour of
        Section 3.1.
        """
        p = self.params
        matrix = np.empty((p.num_bins, p.num_bins))
        for i, rate in enumerate(self.rates):
            matrix[i] = self._brownian_row(rate)
        stay = math.exp(-p.outage_escape_rate * p.tick)
        outage_row = np.zeros(p.num_bins)
        outage_row[0] = 1.0
        matrix[0] = stay * outage_row + (1.0 - stay) * matrix[0]
        # Normalise each row exactly (guards against accumulated float error).
        matrix /= matrix.sum(axis=1, keepdims=True)
        return matrix

    def _build_cumulative_cdfs(self) -> np.ndarray:
        """Cumulative-delivery CDF grids used by the forecast (Section 3.3).

        ``cumulative_cdfs[j, i, n]`` is the probability that the link
        delivers at most ``n`` packets within ``j + 1`` ticks, *given that
        the current rate is* ``rates[i]`` and that the rate then follows the
        model's own dynamics (Brownian drift with the sticky outage state).
        The distribution is over the whole rate path, so early ticks — when
        the rate cannot yet have wandered far from its current value —
        contribute deliveries even under the cautious quantile, exactly as
        in the paper's tick-by-tick evolution.

        The grids are computed once per model by propagating a fixed-seed
        Monte-Carlo ensemble of rate paths for every starting bin; at
        runtime the forecast is a deterministic weighted sum of these rows
        under the current belief.

        The ensemble arrays are ~8 MB each at paper parameters, so every
        per-tick temporary is computed into a preallocated scratch buffer
        instead of a fresh allocation.  The RNG *call sequence* — which
        generator methods run, in what order, over what sizes — is exactly
        the allocating implementation's (``standard_normal`` into a buffer
        then scaling by ``std`` draws the same stream as
        ``normal(0, std)``), so the sampled paths, and therefore the CDFs,
        stay bit-identical; ``tests/test_model_cache.py`` and the golden
        fixtures hold this.
        """
        p = self.params
        rng = np.random.default_rng(self.FORECAST_SEED)
        paths = self.forecast_paths
        std = p.sigma * math.sqrt(p.tick)
        stay_in_outage = math.exp(-p.outage_escape_rate * p.tick)
        # Rates closer to zero than half a bin belong to the outage bin of
        # the discretized chain and inherit its stickiness.
        half_bin = 0.5 * (self.rates[1] - self.rates[0])

        # One row of sample paths per starting rate bin.
        shape = (p.num_bins, paths)
        rates = np.repeat(self.rates[:, None], paths, axis=1)
        counts = np.zeros(shape, dtype=np.int64)
        grid_size = self._max_count + 1
        # The tensor is stored float32 and C-contiguous: the forecast only
        # ever compares mixtures of these Monte-Carlo CDFs (resolution
        # 1/paths) against a quantile, so single precision is ample, and the
        # halved footprint keeps the fused mixture kernel in cache.
        cdfs = np.empty((p.forecast_ticks, p.num_bins, grid_size), dtype=np.float32)
        row_offsets = np.arange(p.num_bins, dtype=np.int64)[:, None] * grid_size

        # Scratch buffers reused across all ticks and resample rounds.
        noise = np.empty(shape)
        proposal = np.empty(shape)
        uniform = np.empty(shape)
        lam = np.empty(shape)
        below = np.empty(shape, dtype=bool)
        above = np.empty(shape, dtype=bool)
        outside = np.empty(shape, dtype=bool)
        in_outage = np.empty(shape, dtype=bool)
        stays = np.empty(shape, dtype=bool)
        clipped = np.empty(shape, dtype=np.int64)

        def brownian_step(current: np.ndarray) -> None:
            """One conditional Brownian step into ``proposal``, on-grid.

            The discretized transition matrix renormalises each Gaussian row
            over the rate grid, which is equivalent to sampling the Gaussian
            step *conditioned on* landing inside the grid; a few rounds of
            rejection resampling reproduce that here, each round redrawing
            the full ensemble (so the stream matches the reference
            implementation) but only adopting the redraws for paths still
            outside the grid.  Rounds stop as soon as no path is outside.
            """
            rng.standard_normal(out=noise)
            np.multiply(noise, std, out=noise)
            np.add(current, noise, out=proposal)
            for _ in range(6):
                np.less(proposal, 0.0, out=below)
                np.greater(proposal, p.max_rate, out=above)
                np.logical_or(below, above, out=outside)
                if not outside.any():
                    break
                rng.standard_normal(out=noise)
                np.multiply(noise, std, out=noise)
                np.add(current, noise, out=noise)
                np.copyto(proposal, noise, where=outside)
            np.clip(proposal, 0.0, p.max_rate, out=proposal)

        for j in range(p.forecast_ticks):
            # Evolve every path by one tick of the discretized rate dynamics.
            np.less(rates, half_bin, out=in_outage)
            brownian_step(rates)
            rng.random(out=uniform)
            np.less(uniform, stay_in_outage, out=stays)
            np.logical_and(in_outage, stays, out=stays)
            np.copyto(proposal, 0.0, where=stays)
            np.less(proposal, half_bin, out=below)
            np.copyto(proposal, 0.0, where=below)
            # Ping-pong the path buffers: `proposal` holds the new rates.
            rates, proposal = proposal, rates
            # Deliveries during this tick given the (new) instantaneous rate.
            np.multiply(rates, p.tick, out=lam)
            counts += rng.poisson(lam)
            np.minimum(counts, self._max_count, out=clipped)
            # Empirical CDF over the ensemble, per starting bin: histogram
            # every row in one flat bincount (rows are offset into disjoint
            # ranges), then a cumulative sum along the count axis.
            clipped += row_offsets
            histogram = np.bincount(clipped.ravel(), minlength=p.num_bins * grid_size)
            histogram = histogram.reshape(p.num_bins, grid_size)
            cdfs[j] = histogram.cumsum(axis=1) / float(paths)
        return cdfs

    # ------------------------------------------------------------- inference

    def uniform_prior(self) -> np.ndarray:
        """The paper's startup belief: every rate equally probable."""
        return np.full(self.params.num_bins, 1.0 / self.params.num_bins)

    def evolve(self, belief: np.ndarray) -> np.ndarray:
        """Push the belief forward one tick of Brownian motion."""
        return belief @ self.transition

    def observation_likelihood(self, packets_observed: float) -> np.ndarray:
        """Likelihood of observing ``packets_observed`` packets in one tick.

        ``packets_observed`` may be fractional because Sprout counts bytes
        (a 750-byte arrival is half an MTU-sized packet); the Poisson pmf is
        extended continuously through the gamma function.

        Observations that fall exactly on the 1-byte grid (every real tick
        does: byte counters are integers) are served from a per-model LRU
        cache; the returned array is then shared and marked read-only.
        """
        return self._likelihood(packets_observed, censored=False)

    def censored_likelihood(self, packets_observed: float) -> np.ndarray:
        """Likelihood that *at least* ``packets_observed`` packets were deliverable.

        Used for ticks in which the queue ran dry because the sender had
        nothing more to send: the arrivals then establish only a lower bound
        on what the link could have delivered, so the correct update weights
        each rate by :math:`P(N \\ge k \\mid \\lambda)` instead of the exact
        Poisson probability.  (This is the natural generalisation of the
        paper's time-to-next rule, which handles the ``k = 0`` case.)

        Cached the same way as :meth:`observation_likelihood`.
        """
        return self._likelihood(packets_observed, censored=True)

    def _likelihood(self, packets_observed: float, censored: bool) -> np.ndarray:
        if packets_observed < 0:
            raise ValueError("cannot observe a negative packet count")
        mtu = self.params.mtu_bytes
        # int(x + 0.5) is a fast floor-round; the exactness guard below makes
        # the tie-breaking direction irrelevant (a miss just skips the cache).
        key = int(packets_observed * mtu + 0.5)
        if key / mtu == packets_observed:
            # Exactly representable at byte resolution: the cached vector is
            # computed at this very value, so sharing it is lossless.
            return self._likelihood_cache(key, censored)
        return self._compute_likelihood(packets_observed, censored)

    def _likelihood_for_key(self, key_bytes: int, censored: bool) -> np.ndarray:
        likelihood = self._compute_likelihood(
            key_bytes / self.params.mtu_bytes, censored
        )
        likelihood.flags.writeable = False
        return likelihood

    def _compute_likelihood(self, packets_observed: float, censored: bool) -> np.ndarray:
        positive = self._positive_bins
        if censored:
            if packets_observed == 0:
                return np.ones_like(self.packets_per_tick)
            likelihood = np.zeros_like(self.packets_per_tick)
            # P(N >= k) for Poisson(mu) equals the regularised lower
            # incomplete gamma function gammainc(k, mu) (continuous in k).
            likelihood[positive] = gammainc(packets_observed, self._mu_positive)
            return likelihood
        likelihood = np.zeros_like(self.packets_per_tick)
        log_pmf = (
            packets_observed * self._log_mu_positive
            - self._mu_positive
            - gammaln(packets_observed + 1.0)
        )
        likelihood[positive] = np.exp(log_pmf)
        # The outage bin can only produce zero packets.
        likelihood[~positive] = 1.0 if packets_observed == 0 else 0.0
        return likelihood

    def update(
        self, belief: np.ndarray, packets_observed: float, censored: bool = False
    ) -> np.ndarray:
        """One full Bayesian tick: evolve, weight by the observation, normalise.

        Args:
            belief: current distribution over rate bins.
            packets_observed: packets (possibly fractional) seen this tick.
            censored: True when the observation is only a lower bound on what
                the link could have delivered (sender-limited tick).
        """
        evolved = self.evolve(belief)
        if censored:
            likelihood = self.censored_likelihood(packets_observed)
        else:
            likelihood = self.observation_likelihood(packets_observed)
        posterior = evolved * likelihood
        total = posterior.sum()
        if total <= 0.0 or not np.isfinite(total):
            # All mass annihilated (e.g. an enormous observation): fall back
            # to the evolved prior rather than dividing by zero.
            return evolved
        posterior /= total
        return posterior

    # -------------------------------------------------------------- forecast

    def _validate_quantile_args(
        self, percentile: float, num_ticks: Optional[int]
    ) -> int:
        """Shared argument validation of the quantile implementations."""
        if not 0.0 < percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        ticks = self.params.forecast_ticks if num_ticks is None else num_ticks
        if not 1 <= ticks <= self.params.forecast_ticks:
            raise ValueError(
                f"num_ticks must be between 1 and {self.params.forecast_ticks}"
            )
        return ticks

    def cumulative_quantile(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Cautious cumulative-delivery forecast (Section 3.3).

        For each forecast horizon, mixes the per-bin cumulative-delivery
        distributions (which already account for the rate's own future
        evolution) under the current belief and takes the requested
        percentile of the resulting distribution.

        Args:
            belief: current probability distribution over rate bins.
            percentile: quantile in (0, 1); the paper's default cautious
                forecast uses 0.05 (the 5th percentile, i.e. 95% confidence
                that at least this much will be delivered).
            num_ticks: forecast horizon; defaults to the model's 8 ticks.

        Returns:
            Array of length ``num_ticks``: forecast cumulative *packets*
            delivered by the end of each tick.  The array is monotonically
            non-decreasing (cumulative deliveries cannot shrink).
        """
        ticks = self._validate_quantile_args(percentile, num_ticks)
        # Two-stage quantile extraction.  Stage 1 mixes every `stride`-th
        # count column of all horizons in one small sgemv and brackets the
        # crossing; stage 2 mixes only the bracketed window of columns per
        # horizon.  Exact-arithmetic equivalent to mixing the full tensor
        # (:meth:`_cumulative_quantile_fused`; the test suite holds the two
        # to equal outputs — a disagreement would need a mixture value
        # within one float32 rounding step of the percentile), but streams
        # ~250 KB instead of ~1.6 MB per call, which keeps the per-tick
        # forecast resident in cache alongside the belief update.
        b32 = belief.astype(np.float32, copy=False)
        key = np.float32(percentile)
        stride = self._quantile_stride
        coarse = (b32 @ self._cdf_coarse).reshape(
            self.params.forecast_ticks, self._coarse_cols
        )
        forecast = np.empty(ticks)
        for j in range(ticks):
            k = int(np.searchsorted(coarse[j], key, side="left"))
            lo = max(0, (k - 1) * stride + 1)
            hi = min(k * stride, self._max_count) if k > 0 else 0
            window = self._cdf_cols[j, lo : hi + 1] @ b32
            forecast[j] = lo + np.searchsorted(window, key, side="left")
        np.minimum(forecast, self._max_count, out=forecast)
        # Enforce monotonicity against Monte-Carlo quantile jitter.
        np.maximum.accumulate(forecast, out=forecast)
        return forecast

    def _cumulative_quantile_fused(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Single-tensordot form of :meth:`cumulative_quantile`.

        Mixes the whole CDF tensor for every horizon in one matvec
        (``tensordot(belief, cumulative_cdfs)`` over the bin axis) and reads
        one quantile per horizon.  :meth:`cumulative_quantile` is this plus
        column windowing; the test suite holds the two (and the per-horizon
        loop) to identical outputs.
        """
        ticks = self._validate_quantile_args(percentile, num_ticks)
        mixture = (
            belief.astype(np.float32, copy=False) @ self._cdf_matrix
        ).reshape(self.params.forecast_ticks, -1)
        key = np.float32(percentile)
        forecast = np.empty(ticks)
        for j in range(ticks):
            forecast[j] = np.searchsorted(mixture[j], key, side="left")
        np.minimum(forecast, self._max_count, out=forecast)
        np.maximum.accumulate(forecast, out=forecast)
        return forecast

    def _cumulative_quantile_loop(
        self, belief: np.ndarray, percentile: float, num_ticks: Optional[int] = None
    ) -> np.ndarray:
        """Reference per-horizon implementation of :meth:`cumulative_quantile`.

        Kept (and exercised by the test suite) as the readable specification
        of the fused kernel: one ``belief @ cumulative_cdfs[j]`` mixture and
        one ``searchsorted`` per horizon.
        """
        ticks = self._validate_quantile_args(percentile, num_ticks)
        belief32 = belief.astype(np.float32, copy=False)
        forecast = np.empty(ticks)
        previous = 0.0
        for j in range(ticks):
            mixture_cdf = belief32 @ self.cumulative_cdfs[j]
            index = int(
                np.searchsorted(mixture_cdf, np.float32(percentile), side="left")
            )
            value = float(min(index, self._max_count))
            previous = max(previous, value)
            forecast[j] = previous
        return forecast

    def expected_rate(self, belief: np.ndarray) -> float:
        """Posterior-mean link rate in packets per second."""
        return float(np.dot(belief, self.rates))

    # ------------------------------------------------- batched entry points
    #
    # The cross-cell engine (repro.experiments.batched, docs/performance.md
    # "Layer 4") steps many independent cells that share this model on one
    # tick lattice.  These kernels compute every cell's tick in a handful of
    # numpy calls while staying *bitwise identical* to the per-cell methods
    # above.  The identity rests on three facts, each pinned by the test
    # suite:
    #
    # * a stacked ``np.matmul`` whose batch entries are single gemv products
    #   (``(n, 1, bins) @ (bins, m)`` or a broadcast ``(w, bins) @
    #   (n, bins, 1)``) runs the same BLAS gemv per entry as the per-cell
    #   call, so each row is the identical reduction — unlike a plain 2-D
    #   gemm, which blocks across rows and rounds differently;
    # * elementwise ops (multiply, divide, astype, compare) are rounded per
    #   element, so batching rows cannot change any value;
    # * ``searchsorted(row, key, side="left")`` on a non-decreasing row
    #   equals ``(row < key).sum()``, and the mixture rows are non-decreasing
    #   even in float arithmetic (non-negative weights times non-decreasing
    #   CDF columns, combined by monotone float adds).

    def batched_tick(
        self,
        beliefs: np.ndarray,
        packets_observed: Sequence[Optional[float]],
        censored: Sequence[bool],
    ) -> np.ndarray:
        """Advance many beliefs one tick each, in one batch.

        Args:
            beliefs: ``(n, num_bins)`` stack of belief rows.
            packets_observed: per row, the tick's observation in packets —
                or ``None`` to skip the observation (evolve only), exactly
                like :meth:`evolve` vs :meth:`update`.
            censored: per row, whether the observation is only a lower bound.

        Returns:
            ``(n, num_bins)`` array whose row ``i`` is bitwise identical to
            ``self.update(beliefs[i], packets_observed[i], censored[i])``
            (or ``self.evolve(beliefs[i])`` for a ``None`` observation).
        """
        n = beliefs.shape[0]
        evolved = np.matmul(beliefs[:, None, :], self.transition)[:, 0, :]
        observing = [i for i in range(n) if packets_observed[i] is not None]
        if not observing:
            return evolved
        likelihoods = np.stack(
            [
                self._likelihood(packets_observed[i], censored=bool(censored[i]))
                for i in observing
            ]
        )
        sel = np.asarray(observing)
        posterior = evolved[sel] * likelihoods
        totals = posterior.sum(axis=1)
        good = (totals > 0.0) & np.isfinite(totals)
        posterior[good] /= totals[good, None]
        # Annihilated rows fall back to the evolved prior, as update() does.
        out = evolved
        out[sel[good]] = posterior[good]
        return out

    def batched_cumulative_quantile(
        self, beliefs: np.ndarray, percentiles: Sequence[float]
    ) -> np.ndarray:
        """Full-horizon :meth:`cumulative_quantile` for many beliefs at once.

        Row ``i`` of the result is bitwise identical to
        ``self.cumulative_quantile(beliefs[i], percentiles[i])``.  The
        coarse bracketing runs as one stacked gemv per cell; the bracketed
        window mixtures are bucketed by ``(horizon, bracket)`` — cells whose
        crossing lands in the same window share one stacked gemv against the
        identical CDF block, so the per-round call count is bounded by the
        number of coarse brackets, not by the number of cells.
        """
        n = beliefs.shape[0]
        ticks = self.params.forecast_ticks
        stride = self._quantile_stride
        for percentile in percentiles:
            self._validate_quantile_args(float(percentile), None)
        b32 = beliefs.astype(np.float32, copy=False)
        keys = np.array([np.float32(p) for p in percentiles], dtype=np.float32)
        coarse = np.matmul(b32[:, None, :], self._cdf_coarse)[:, 0, :].reshape(
            n, ticks, self._coarse_cols
        )
        brackets = (coarse < keys[:, None, None]).sum(axis=2)
        lo = np.maximum(0, (brackets - 1) * stride + 1)
        # Window mixtures, padded to the stride with +inf so the vectorized
        # "count below key" never sees a pad (every real CDF value is finite).
        windows = np.full((n, ticks, stride), np.inf, dtype=np.float32)
        for j in range(ticks):
            for k in np.unique(brackets[:, j]):
                sel = np.flatnonzero(brackets[:, j] == k)
                k = int(k)
                l = max(0, (k - 1) * stride + 1)
                h = min(k * stride, self._max_count) if k > 0 else 0
                block = self._cdf_cols[j, l : h + 1]
                mixed = np.matmul(block, b32[sel][:, :, None])
                windows[sel, j, : h - l + 1] = mixed[:, :, 0]
        forecast = (lo + (windows < keys[:, None, None]).sum(axis=2)).astype(float)
        np.minimum(forecast, self._max_count, out=forecast)
        np.maximum.accumulate(forecast, axis=1, out=forecast)
        return forecast


# ----------------------------------------------------- shared-model memoiser

#: shared model instances kept in-process by default.  The old hard-wired
#: lru_cache(maxsize=8) thrashed on wide sweeps: a grid with more than 8
#: distinct swept model parameter sets evicted and rebuilt inside one
#: process.  Rebuilds are cheap now (an artifact-cache memory hit), but
#: there is no reason to churn model instances at all for any realistic
#: sweep width.
DEFAULT_SHARED_MODELS = 32

_SHARED_MODELS: "OrderedDict[RateModelParams, RateModel]" = OrderedDict()
_SHARED_MODELS_LOCK = threading.Lock()


def shared_model_capacity() -> int:
    """Instances :func:`shared_rate_model` keeps (``REPRO_SHARED_MODEL_MAX``).

    Malformed or non-positive values warn and fall back to
    ``DEFAULT_SHARED_MODELS`` (:func:`repro.cache.env_positive_int`).
    """
    return env_positive_int("REPRO_SHARED_MODEL_MAX", DEFAULT_SHARED_MODELS)


def clear_shared_models() -> None:
    """Drop every memoised shared model (used by tests)."""
    with _SHARED_MODELS_LOCK:
        _SHARED_MODELS.clear()


def shared_rate_model(params: Optional[RateModelParams] = None) -> RateModel:
    """Return a memoised :class:`RateModel`.

    Every Sprout connection with the same (frozen) parameters shares one
    instance because the model is immutable after construction.  The
    memoiser is LRU-bounded by :func:`shared_model_capacity` (the capacity
    is re-read per call, so tests and tools can retune it via
    ``REPRO_SHARED_MODEL_MAX`` without rebuilding the table), and an
    evicted entry's rebuild is an artifact-cache hit, not a recomputation.
    """
    key = params if params is not None else RateModelParams()
    with _SHARED_MODELS_LOCK:
        model = _SHARED_MODELS.get(key)
        if model is not None:
            _SHARED_MODELS.move_to_end(key)
            return model
    # Build outside the lock: construction may cost seconds cold, and a
    # concurrent builder of the same key produces an interchangeable model
    # (first publisher wins below).
    model = RateModel(key)
    with _SHARED_MODELS_LOCK:
        existing = _SHARED_MODELS.get(key)
        if existing is not None:
            _SHARED_MODELS.move_to_end(key)
            return existing
        _SHARED_MODELS[key] = model
        capacity = shared_model_capacity()
        while len(_SHARED_MODELS) > capacity:
            _SHARED_MODELS.popitem(last=False)
    return model
