"""Convenience constructors for complete Sprout / Sprout-EWMA connections.

A "connection" here is the pair of protocol endpoints (sender, receiver)
that the experiment harness attaches to the two ends of an emulated link.
The data direction is sender -> receiver; the receiver returns forecasts on
the feedback direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.forecaster import BayesianForecaster, EWMAForecaster
from repro.core.rate_model import RateModelParams
from repro.core.receiver import SproutReceiver
from repro.core.sender import PayloadProvider, SproutSender


@dataclass
class SproutConfig:
    """Tunable knobs of a Sprout connection.

    The defaults reproduce the paper's frozen implementation: 95% forecast
    confidence, 20 ms ticks, 100 ms delay target (5-tick look-ahead),
    160 ms forecast horizon (8 ticks).
    """

    confidence: float = 0.95
    lookahead_ticks: int = 5
    tick_interval: float = 0.020
    heartbeat_interval: float = 0.100
    feedback_interval_ticks: int = 1
    bootstrap_packets_per_tick: int = 1
    use_ewma: bool = False
    ewma_alpha: float = 0.125
    model_params: Optional[RateModelParams] = None
    #: record the receiver's per-tick rate estimate (costs memory on long runs)
    record_history: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")


@dataclass
class SproutConnection:
    """A matched sender/receiver pair ready to attach to a path."""

    sender: SproutSender
    receiver: SproutReceiver
    config: SproutConfig


def make_connection(
    config: Optional[SproutConfig] = None,
    payload_provider: Optional[PayloadProvider] = None,
    flow_id: str = "sprout",
) -> SproutConnection:
    """Build a Sprout (or Sprout-EWMA) sender/receiver pair.

    Args:
        config: connection parameters; paper defaults if omitted.
        payload_provider: source of outgoing bytes for the sender; the
            saturating source if omitted.
        flow_id: label attached to the connection's packets.
    """
    cfg = config if config is not None else SproutConfig()
    if cfg.use_ewma:
        forecaster = EWMAForecaster(
            alpha=cfg.ewma_alpha,
            tick_duration=cfg.tick_interval,
        )
    else:
        forecaster = BayesianForecaster(
            confidence=cfg.confidence,
            params=cfg.model_params,
        )
    receiver = SproutReceiver(
        forecaster=forecaster,
        feedback_interval_ticks=cfg.feedback_interval_ticks,
        flow_id=flow_id,
        record_history=cfg.record_history,
    )
    sender = SproutSender(
        lookahead_ticks=cfg.lookahead_ticks,
        tick_interval=cfg.tick_interval,
        heartbeat_interval=cfg.heartbeat_interval,
        bootstrap_packets_per_tick=cfg.bootstrap_packets_per_tick,
        payload_provider=payload_provider,
        flow_id=flow_id,
    )
    return SproutConnection(sender=sender, receiver=receiver, config=cfg)


def make_sprout(confidence: float = 0.95, **kwargs) -> SproutConnection:
    """The full Sprout protocol with the paper's cautious forecasts."""
    return make_connection(SproutConfig(confidence=confidence), **kwargs)


def make_sprout_ewma(alpha: float = 0.125, **kwargs) -> SproutConnection:
    """Sprout-EWMA: same control protocol, EWMA rate tracking, no caution."""
    return make_connection(SproutConfig(use_ewma=True, ewma_alpha=alpha), **kwargs)
