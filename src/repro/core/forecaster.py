"""Receiver-side rate inference and cautious forecasting (Sections 3.2-3.3).

The :class:`BayesianForecaster` owns the belief distribution over the link
rate and exposes the two operations the Sprout receiver performs every tick:

* :meth:`tick` — advance the belief one tick, optionally incorporating the
  number of bytes observed during that tick (the observation is skipped when
  the sender's "time-to-next" marking says the queue is known to be empty);
* :meth:`forecast` — the cautious cumulative-delivery forecast: for each of
  the next eight ticks, the number of bytes that will be delivered with at
  least the configured confidence.

:class:`EWMAForecaster` is the drop-in replacement used by Sprout-EWMA
(Section 5.3): the same interface, but the estimate is a simple
exponentially-weighted moving average of the observed per-tick throughput
and the "forecast" just extrapolates that rate with no caution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.core.rate_model import RateModel, RateModelParams, shared_rate_model


class Forecaster(ABC):
    """Common interface of the Bayesian and EWMA forecasters."""

    #: tick duration in seconds
    tick_duration: float
    #: number of ticks covered by each forecast
    forecast_ticks: int

    @abstractmethod
    def tick(self, observed_bytes: Optional[float], at_least: bool = False) -> None:
        """Advance one tick.

        Args:
            observed_bytes: bytes that arrived during the tick, or ``None``
                to skip the observation entirely (the sender said nothing
                should be expected yet).
            at_least: True when the observation is only a lower bound on the
                link's deliverable bytes — the queue ran dry because the
                sender had nothing more to send, so the link may well have
                been able to deliver more (generalised time-to-next rule).
        """

    @abstractmethod
    def forecast(self) -> np.ndarray:
        """Cumulative bytes expected to be deliverable in each future tick."""

    @abstractmethod
    def estimated_rate_bytes_per_sec(self) -> float:
        """Current point estimate of the link rate in bytes/second."""


class BayesianForecaster(Forecaster):
    """Sprout's stochastic forecaster.

    Args:
        confidence: probability with which the forecast must be achievable;
            the paper uses 0.95.  The forecast is the ``1 - confidence``
            quantile of the cumulative-delivery distribution (Section 5.5
            sweeps this parameter to trace the throughput/delay frontier of
            Figure 9).
        params: model parameters; defaults to the paper's frozen values.
        model: optionally, a pre-built (shared) :class:`RateModel`.

    The forecast is cached between ticks (the belief only changes in
    :meth:`tick`); code that mutates :attr:`belief` directly must set
    ``_belief_dirty`` to invalidate the cache.
    """

    def __init__(
        self,
        confidence: float = 0.95,
        params: Optional[RateModelParams] = None,
        model: Optional[RateModel] = None,
    ) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        self.model = model if model is not None else shared_rate_model(params)
        self.confidence = confidence
        self.percentile = 1.0 - confidence
        self.belief = self.model.uniform_prior()
        self.tick_duration = self.model.params.tick
        self.forecast_ticks = self.model.params.forecast_ticks
        self.mtu_bytes = self.model.params.mtu_bytes
        self.ticks_processed = 0
        self.observations = 0
        # Lazy-forecast bookkeeping: `tick()` marks the belief dirty and
        # `forecast()` recomputes only then, so several forecasts between
        # ticks (e.g. feedback retransmits) cost one quantile extraction.
        self._belief_dirty = True
        self._cached_forecast_bytes: Optional[np.ndarray] = None
        # Batched-engine hook (install_step): a pre-computed result for the
        # *next* tick, plus hit/fallback counters for observability.
        self._installed: Optional[tuple] = None
        self.batched_steps = 0
        self.batched_fallbacks = 0

    def install_step(
        self,
        observed_bytes: Optional[float],
        at_least: bool,
        belief: np.ndarray,
        forecast_bytes: Optional[np.ndarray] = None,
    ) -> None:
        """Pre-load the result of the next :meth:`tick` call.

        The batched cross-cell engine (``repro.experiments.batched``)
        computes many cells' belief updates — and optionally their
        forecasts — in one vectorized kernel, then installs each cell's row
        here.  The installed step only applies if the next ``tick()`` call
        arrives with exactly the predicted observation; any mismatch falls
        back to the ordinary per-cell computation, so a driver mis-prediction
        can cost speed but never correctness.  ``belief`` (and
        ``forecast_bytes`` if given) are kept by reference — row views of a
        batch matrix are fine, as long as the caller never mutates them
        afterwards; the forecaster itself only reads them (``forecast()``
        hands out copies).
        """
        self._installed = (observed_bytes, at_least, belief, forecast_bytes)

    def _consume_installed(
        self, observed_bytes: Optional[float], at_least: bool
    ) -> bool:
        installed = self._installed
        if installed is None:
            return False
        self._installed = None
        expected_bytes, expected_at_least, belief, forecast_bytes = installed
        matches = (
            expected_bytes == observed_bytes
            if expected_bytes is not None and observed_bytes is not None
            else expected_bytes is None and observed_bytes is None
        )
        if not matches or bool(expected_at_least) != bool(at_least):
            self.batched_fallbacks += 1
            return False
        self.belief = belief
        if forecast_bytes is not None:
            self._cached_forecast_bytes = forecast_bytes
            self._belief_dirty = False
        else:
            self._belief_dirty = True
        self.batched_steps += 1
        return True

    def tick(self, observed_bytes: Optional[float], at_least: bool = False) -> None:
        if self._consume_installed(observed_bytes, at_least):
            if observed_bytes is not None:
                self.observations += 1
            self.ticks_processed += 1
            return
        if observed_bytes is None:
            self.belief = self.model.evolve(self.belief)
        else:
            if observed_bytes < 0:
                raise ValueError("observed_bytes must be non-negative")
            packets = observed_bytes / self.mtu_bytes
            self.belief = self.model.update(self.belief, packets, censored=at_least)
            self.observations += 1
        self.ticks_processed += 1
        self._belief_dirty = True

    def forecast(self) -> np.ndarray:
        if self._belief_dirty or self._cached_forecast_bytes is None:
            packets = self.model.cumulative_quantile(self.belief, self.percentile)
            self._cached_forecast_bytes = packets * self.mtu_bytes
            self._belief_dirty = False
        return self._cached_forecast_bytes.copy()

    def estimated_rate_bytes_per_sec(self) -> float:
        return self.model.expected_rate(self.belief) * self.mtu_bytes

    def rate_distribution(self) -> np.ndarray:
        """Copy of the current belief over the discretized rates."""
        return self.belief.copy()


class TickFromWallClock:
    """Maps continuous wall-clock time onto the forecaster's tick lattice.

    The simulator calls ``on_tick`` exactly every ``tick_interval`` seconds
    of *simulated* time; a real endpoint wakes up from ``select()`` at
    irregular wall-clock moments.  This adapter anchors a tick lattice
    ``base + k * tick_interval`` at :meth:`start` and answers, at each
    wake-up, how many ticks have fallen due since the last call — so the
    protocol's per-tick bookkeeping (observation windows, feedback cadence)
    stays on the paper's 20 ms grid regardless of scheduling jitter.

    A stall (GC pause, busy CPU) can leave many ticks pending at once.
    Re-playing them all would feed the forecaster a burst of empty
    observations at the wrong wall-clock moment, so catch-up is bounded by
    ``max_catchup`` ticks per wake-up; anything older is skipped (counted
    in :attr:`ticks_skipped`) and the lattice position simply advances, the
    same way a late video player drops frames rather than fast-forwarding.
    """

    def __init__(self, tick_interval: float, max_catchup: int = 8) -> None:
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if max_catchup < 1:
            raise ValueError("max_catchup must be at least 1")
        self.tick_interval = float(tick_interval)
        self.max_catchup = int(max_catchup)
        self._base: Optional[float] = None
        self._fired = 0
        self.ticks_fired = 0
        self.ticks_skipped = 0

    def start(self, now: float) -> None:
        """Anchor the lattice; the first tick falls due at ``now + interval``."""
        self._base = now
        self._fired = 0

    def due_ticks(self, now: float) -> int:
        """Number of ticks to run at this wake-up (0 if none are due yet).

        Advances the lattice position, so each tick is returned exactly
        once across calls; at most ``max_catchup`` per call, with older
        pending ticks dropped.
        """
        if self._base is None:
            self.start(now)
            return 0
        elapsed = int((now - self._base) / self.tick_interval + 1e-9)
        pending = elapsed - self._fired
        if pending <= 0:
            return 0
        if pending > self.max_catchup:
            skipped = pending - self.max_catchup
            self.ticks_skipped += skipped
            self._fired += skipped
            pending = self.max_catchup
        self._fired += pending
        self.ticks_fired += pending
        return pending

    def next_deadline(self) -> Optional[float]:
        """Wall-clock time of the next pending tick (None before start)."""
        if self._base is None:
            return None
        return self._base + (self._fired + 1) * self.tick_interval


class EWMAForecaster(Forecaster):
    """Sprout-EWMA's throughput tracker.

    The observed bytes per tick are smoothed with gain ``alpha``; the
    forecast simply assumes the link continues at the smoothed rate for the
    whole forecast horizon ("predicts that the link will continue at that
    speed for the next eight ticks", Section 5.3).
    """

    def __init__(
        self,
        alpha: float = 0.125,
        tick_duration: float = 0.020,
        forecast_ticks: int = 8,
        mtu_bytes: int = 1500,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if tick_duration <= 0:
            raise ValueError("tick_duration must be positive")
        if forecast_ticks < 1:
            raise ValueError("forecast_ticks must be at least 1")
        self.alpha = alpha
        self.tick_duration = tick_duration
        self.forecast_ticks = forecast_ticks
        self.mtu_bytes = mtu_bytes
        self.bytes_per_tick = 0.0
        self._initialised = False
        self.ticks_processed = 0
        self.observations = 0

    def tick(self, observed_bytes: Optional[float], at_least: bool = False) -> None:
        if observed_bytes is not None:
            if observed_bytes < 0:
                raise ValueError("observed_bytes must be non-negative")
            if at_least and self._initialised and observed_bytes < self.bytes_per_tick:
                # A sender-limited tick cannot pull the estimate down: the
                # link may have been able to deliver more than was offered.
                pass
            elif not self._initialised:
                self.bytes_per_tick = float(observed_bytes)
                self._initialised = True
            else:
                self.bytes_per_tick += self.alpha * (observed_bytes - self.bytes_per_tick)
            self.observations += 1
        self.ticks_processed += 1

    def forecast(self) -> np.ndarray:
        per_tick = max(self.bytes_per_tick, 0.0)
        return per_tick * np.arange(1, self.forecast_ticks + 1, dtype=float)

    def estimated_rate_bytes_per_sec(self) -> float:
        return max(self.bytes_per_tick, 0.0) / self.tick_duration
