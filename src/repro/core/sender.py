"""The Sprout sender (Sections 3.4-3.5).

The sender turns the receiver's cautious forecast into a *window*: the
number of bytes that can be transmitted right now while keeping a 95%
probability that every packet clears the queue within 100 ms.  On every
forecast it re-estimates the bytes already sitting in the network (bytes
sent minus the receiver's received-or-lost counter); between forecasts it
keeps that estimate up to date by adding every byte it sends and subtracting
the forecast deliveries as each forecast tick elapses.  The window looks
five ticks (100 ms) ahead of the current position in the forecast —
extending further as time passes, up to the 160 ms horizon — subtracts the
queue-occupancy estimate, and whatever remains is safe to send.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.core.packets import (
    CONTROL_PACKET_BYTES,
    HEADER_IS_HEARTBEAT,
    HEADER_SEQ_BYTES,
    HEADER_THROWAWAY_BYTES,
    HEADER_TIME_TO_NEXT,
    THROWAWAY_INTERVAL,
    data_packet_sizes,
    make_data_packet,
    parse_feedback,
)
from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.packet import MTU_BYTES, Packet

#: A payload provider: called with ``(now, budget_bytes)`` and returning the
#: sizes (bytes) of the packets to send, each no larger than one MTU and
#: summing to at most the budget.  The default provider models a saturating
#: application (always has data), which is what the paper's evaluation uses.
PayloadProvider = Callable[[float, int], List[int]]

#: A packet source: like a payload provider, but returning fully-formed
#: packets (e.g. tunnelled client packets) whose sizes sum to at most the
#: budget.  The Sprout sender adds its own control headers to each packet.
PacketSource = Callable[[float, int], List[Packet]]


def saturating_payload_provider(now: float, budget_bytes: int) -> List[int]:
    """Fill the whole budget with MTU-sized packets (bulk/saturating source)."""
    return data_packet_sizes(budget_bytes)


class SproutSender(Protocol):
    """Sender half of a Sprout connection.

    Args:
        lookahead_ticks: how far into the forecast the window looks (5 ticks
            = 100 ms, the paper's interactivity target).
        tick_interval: sender timer granularity; the paper's 20 ms.
        heartbeat_interval: idle interval after which a heartbeat is sent so
            the receiver can distinguish an idle sender from an outage.
        bootstrap_packets_per_tick: before the first forecast arrives the
            sender has no information at all; it sends this many MTU packets
            per tick (1 by default, i.e. 600 kbit/s) so the receiver's
            inference has observations to work with.
        payload_provider: where outgoing bytes come from; defaults to a
            saturating source.
        packet_source: alternative to ``payload_provider`` for callers (such
            as SproutTunnel) that supply fully-formed packets to carry; takes
            precedence over ``payload_provider`` when set.
        flow_id: label attached to data packets.
    """

    def __init__(
        self,
        lookahead_ticks: int = 5,
        tick_interval: float = 0.020,
        heartbeat_interval: float = 0.100,
        bootstrap_packets_per_tick: int = 1,
        payload_provider: Optional[PayloadProvider] = None,
        packet_source: Optional[PacketSource] = None,
        flow_id: str = "sprout",
    ) -> None:
        if lookahead_ticks < 1:
            raise ValueError("lookahead_ticks must be at least 1")
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if bootstrap_packets_per_tick < 0:
            raise ValueError("bootstrap_packets_per_tick must be non-negative")
        self.lookahead_ticks = lookahead_ticks
        self.tick_interval = tick_interval
        self.heartbeat_interval = heartbeat_interval
        self.bootstrap_packets_per_tick = bootstrap_packets_per_tick
        self.payload_provider = (
            payload_provider if payload_provider is not None else saturating_payload_provider
        )
        self.packet_source = packet_source
        self.flow_id = flow_id

        # Cumulative transmission accounting.
        self.bytes_sent = 0
        self.data_packets_sent = 0
        self.heartbeats_sent = 0
        self._last_send_time = 0.0
        # (send_time, cumulative_bytes_after_packet) for the throwaway number.
        self._send_history: Deque[Tuple[float, int]] = deque()

        # Forecast state.
        self._forecast: Optional[Tuple[float, ...]] = None
        self._forecast_base_time = 0.0
        self._forecast_time = -1.0
        self._ticks_drained = 0
        self._queue_estimate = 0.0
        self.forecasts_received = 0
        #: history of (time, window_bytes) used by diagnostics/examples
        self.window_history: List[Tuple[float, float]] = []

    # ------------------------------------------------------------- lifecycle

    def start(self, ctx: HostContext) -> None:
        super().start(ctx)
        self._last_send_time = ctx.now()

    # -------------------------------------------------------------- feedback

    def on_packet(self, packet: Packet, now: float) -> None:
        feedback = parse_feedback(packet)
        if feedback is None:
            return
        if feedback.forecast_time <= self._forecast_time:
            return  # stale or duplicate forecast
        self._forecast_time = feedback.forecast_time
        # Kept as a tuple of Python floats: the window math only ever
        # indexes single entries, and scalar indexing into an ndarray costs
        # ~10x a tuple access on this per-tick path.  Values are unchanged.
        self._forecast = tuple(float(v) for v in feedback.forecast_bytes)
        self._forecast_base_time = now
        self._ticks_drained = 0
        self._queue_estimate = max(0.0, float(self.bytes_sent - feedback.received_or_lost_bytes))
        self.forecasts_received += 1
        self._transmit_window(now)

    # ----------------------------------------------------------------- tick

    def on_tick(self, now: float) -> None:
        if self._forecast is None:
            self._bootstrap(now)
        else:
            self._transmit_window(now)
        self._maybe_heartbeat(now)

    # ------------------------------------------------------------- internals

    def _bootstrap(self, now: float) -> None:
        """Send a trickle of packets until the first forecast arrives."""
        if self.bootstrap_packets_per_tick == 0:
            return
        budget = self.bootstrap_packets_per_tick * MTU_BYTES
        if self.packet_source is not None:
            packets = self.packet_source(now, budget)
            if packets:
                self._send_packets(packets, now)
            return
        sizes = [MTU_BYTES] * self.bootstrap_packets_per_tick
        self._send_data(sizes, now)

    def _advance_forecast_clock(self, now: float) -> int:
        """Account for forecast ticks that have elapsed since the last update.

        Returns the (uncapped) number of forecast ticks that have passed
        since the forecast was received.  As each tick inside the forecast
        horizon elapses, the queue-occupancy estimate is decremented by that
        tick's forecast deliveries (bounded below at zero).
        """
        assert self._forecast is not None
        elapsed_ticks = int((now - self._forecast_base_time) / self.tick_interval)
        horizon = len(self._forecast)
        capped = min(elapsed_ticks, horizon)
        while self._ticks_drained < capped:
            j = self._ticks_drained  # draining forecast tick j -> j+1
            previous = self._forecast[j - 1] if j >= 1 else 0.0
            drained = max(0.0, float(self._forecast[j]) - float(previous))
            self._queue_estimate = max(0.0, self._queue_estimate - drained)
            self._ticks_drained += 1
        return elapsed_ticks

    def _window_bytes(self, now: float) -> int:
        """Bytes safe to send right now (Section 3.5, Figure 4)."""
        assert self._forecast is not None
        horizon = len(self._forecast)
        elapsed_ticks = self._advance_forecast_clock(now)
        position = min(elapsed_ticks, horizon)
        target = min(elapsed_ticks + self.lookahead_ticks, horizon)
        if target <= position:
            # The forecast is exhausted; without fresher information nothing
            # more is known to be deliverable within the delay target.
            expected_drain = 0.0
        else:
            already = self._forecast[position - 1] if position >= 1 else 0.0
            expected_drain = float(self._forecast[target - 1]) - float(already)
        window = expected_drain - self._queue_estimate
        return max(0, int(window))

    def _transmit_window(self, now: float) -> None:
        window = self._window_bytes(now)
        self.window_history.append((now, float(window)))
        if self.packet_source is not None:
            if window <= 0:
                return
            packets = self.packet_source(now, window)
            total = sum(p.size for p in packets)
            if total > window:
                raise ValueError(
                    f"packet source returned {total} bytes for a {window}-byte window"
                )
            if packets:
                self._send_packets(packets, now)
            return
        if window < MTU_BYTES:
            return
        sizes = self.payload_provider(now, window)
        total = sum(sizes)
        if total > window:
            raise ValueError(
                f"payload provider returned {total} bytes for a {window}-byte window"
            )
        if sizes:
            self._send_data(sizes, now)

    def _throwaway_bytes(self, now: float) -> int:
        """Sequence offset of the newest packet sent more than 10 ms ago."""
        cutoff = now - THROWAWAY_INTERVAL
        throwaway = 0
        while self._send_history and self._send_history[0][0] <= cutoff:
            throwaway = self._send_history.popleft()[1]
        if throwaway:
            self._latest_throwaway = throwaway
        return getattr(self, "_latest_throwaway", 0)

    def _send_packets(self, packets: List[Packet], now: float) -> None:
        """Send caller-supplied packets, stamping Sprout control headers."""
        throwaway = self._throwaway_bytes(now)
        for index, packet in enumerate(packets):
            is_last = index == len(packets) - 1
            time_to_next = self.heartbeat_interval if is_last else 0.0
            self.bytes_sent += packet.size
            packet.headers[HEADER_SEQ_BYTES] = self.bytes_sent
            packet.headers[HEADER_THROWAWAY_BYTES] = throwaway
            packet.headers[HEADER_TIME_TO_NEXT] = time_to_next
            packet.headers[HEADER_IS_HEARTBEAT] = False
            self._send_history.append((now, self.bytes_sent))
            self._queue_estimate += packet.size
            self.data_packets_sent += 1
            self._last_send_time = now
            self.ctx.send(packet)

    def _send_data(self, sizes: List[int], now: float) -> None:
        throwaway = self._throwaway_bytes(now)
        for index, size in enumerate(sizes):
            is_last = index == len(sizes) - 1
            # Mid-flight packets promise an immediate follow-up; the last
            # packet of a flight promises only that the receiver will hear
            # something (data or heartbeat) within a heartbeat interval, so
            # that a closed window is never mistaken for an outage.
            time_to_next = self.heartbeat_interval if is_last else 0.0
            self.bytes_sent += size
            packet = make_data_packet(
                size=size,
                seq_bytes=self.bytes_sent,
                throwaway_bytes=throwaway,
                time_to_next=time_to_next,
                flow_id=self.flow_id,
            )
            self._send_history.append((now, self.bytes_sent))
            self._queue_estimate += size
            self.data_packets_sent += 1
            self._last_send_time = now
            self.ctx.send(packet)

    def _maybe_heartbeat(self, now: float) -> None:
        if now - self._last_send_time < self.heartbeat_interval:
            return
        throwaway = self._throwaway_bytes(now)
        packet = make_data_packet(
            size=CONTROL_PACKET_BYTES,
            seq_bytes=self.bytes_sent,
            throwaway_bytes=throwaway,
            time_to_next=self.heartbeat_interval,
            flow_id=self.flow_id,
            is_heartbeat=True,
        )
        self.heartbeats_sent += 1
        self._last_send_time = now
        self.ctx.send(packet)
