"""Sprout: stochastic forecasts for high throughput and low delay.

This package is the paper's primary contribution:

* :mod:`repro.core.rate_model` — the discretized doubly-stochastic model of
  the link rate and everything precomputable about it;
* :mod:`repro.core.forecaster` — Bayesian belief updates and the cautious
  cumulative-delivery forecast (plus the EWMA tracker used by Sprout-EWMA);
* :mod:`repro.core.packets` — the Sprout control protocol's wire format;
* :mod:`repro.core.receiver` / :mod:`repro.core.sender` — the two protocol
  endpoints;
* :mod:`repro.core.connection` — convenience constructors tying them together.
"""

from repro.core.connection import (
    SproutConfig,
    SproutConnection,
    make_connection,
    make_sprout,
    make_sprout_ewma,
)
from repro.core.forecaster import BayesianForecaster, EWMAForecaster, Forecaster
from repro.core.packets import (
    SproutDataHeader,
    SproutFeedback,
    make_data_packet,
    make_feedback_packet,
    parse_data_header,
    parse_feedback,
)
from repro.core.rate_model import (
    ModelArtifactCache,
    RateModel,
    RateModelParams,
    configure_model_cache,
    model_cache,
    shared_rate_model,
)
from repro.core.receiver import SproutReceiver, make_sprout_ewma_receiver, make_sprout_receiver
from repro.core.sender import SproutSender, saturating_payload_provider

__all__ = [
    "BayesianForecaster",
    "EWMAForecaster",
    "Forecaster",
    "ModelArtifactCache",
    "RateModel",
    "RateModelParams",
    "configure_model_cache",
    "model_cache",
    "shared_rate_model",
    "SproutConfig",
    "SproutConnection",
    "SproutDataHeader",
    "SproutFeedback",
    "SproutReceiver",
    "SproutSender",
    "make_connection",
    "make_sprout",
    "make_sprout_ewma",
    "make_sprout_receiver",
    "make_sprout_ewma_receiver",
    "make_data_packet",
    "make_feedback_packet",
    "parse_data_header",
    "parse_feedback",
    "saturating_payload_provider",
]
