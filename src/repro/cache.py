"""Generic two-level (in-memory + on-disk) keyed-artifact cache.

This is the proven design of the shared trace cache (PR 2), extracted so
every expensive, deterministic precomputation in the repo — synthetic
delivery traces, the rate model's Monte-Carlo artifacts, whatever comes
next — memoises through one audited code path instead of re-growing its
own.  :class:`ArtifactCache` provides the machinery; a concrete cache
subclasses it and supplies only the artifact codec (how a value is written
to / read from one file) and the default disk location:

* an **in-process** table guarded by a lock, so a concurrent reader can
  never observe a partially built entry (an entry is published only after
  it is fully built), LRU-bounded by ``max_entries``;
* an optional **on-disk** layer shared between worker processes of a run
  (and across runs on the same machine).  Files are written to a temporary
  name and published with :func:`os.replace`, which is atomic on POSIX: a
  concurrent reader sees either the complete file or no file at all, never
  a torn one.  Unreadable, truncated, or foreign files are treated as
  misses and rebuilt (which also heals the disk entry for the next
  reader); an unwritable or full disk degrades to memory-only caching.

Keys are caller-supplied content hashes; values must be treated as
immutable by every caller, because the memory layer hands the same object
to all of them.  Builds are deterministic, so concurrent writers racing the
same key all produce the identical artifact and "last writer wins" is
harmless.  ``tests/test_trace_cache.py`` and ``tests/test_model_cache.py``
lock the two concrete caches (and thereby this machinery) down.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: in-process entries kept per cache unless the subclass says otherwise
DEFAULT_MAX_ENTRIES = 64

_LOG = logging.getLogger("repro.cache")


def env_positive_int(name: str, default: int) -> int:
    """Read a positive-integer env knob, warning and defaulting on bad input.

    Cache-sizing knobs (``REPRO_MODEL_CACHE_MAX``, ``REPRO_SHARED_MODEL_MAX``,
    ...) are read at import or on hot paths, so a typo must never crash — but
    it must not silently clamp either: ``REPRO_MODEL_CACHE_MAX=-5`` clamping
    to 1 looks like a mysterious perf cliff.  Unparseable or non-positive
    values log one warning naming the variable and fall back to ``default``.
    An unset/empty variable is not a misconfiguration and returns ``default``
    silently.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        _LOG.warning(
            "ignoring unparseable %s=%r; using default %d", name, raw, default
        )
        return default
    if value < 1:
        _LOG.warning(
            "ignoring non-positive %s=%d; using default %d", name, value, default
        )
        return default
    return value


def default_cache_directory(env_var: str, name: str) -> str:
    """Per-user default disk location, overridable through ``env_var``.

    Shared by every concrete cache's :meth:`ArtifactCache.default_directory`
    so the resolution rules (env override, per-uid temp-dir fallback) exist
    once.
    """
    override = os.environ.get(env_var)
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return os.path.join(tempfile.gettempdir(), f"{name}-{uid}")


def content_key(payload: object) -> str:
    """The standard key form: sha256 hex digest of ``repr(payload)``.

    Callers build ``payload`` from every input the artifact depends on
    (including a format version, so a codec change orphans stale entries).
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters exposed for tests and the benchmark record."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class ArtifactCache:
    """Two-level (memory, disk) memoiser for keyed immutable artifacts.

    Subclasses provide the codec and location by overriding
    :meth:`default_directory`, :meth:`write_artifact`,
    :meth:`read_artifact`, and the ``suffix`` class attribute.

    Attributes:
        directory: disk-layer location; ``None`` asks the subclass's
            :meth:`default_directory` (typically an env-var-overridable
            per-user directory under the system temp dir).
        use_disk: keep the in-process layer but skip disk when ``False``.
        enabled: bypass the cache entirely when ``False`` — every
            :meth:`get` calls its builder, nothing is stored.
        max_entries: LRU bound of the in-process layer (disk entries are
            never evicted).
        stats: per-layer hit/miss counters.
    """

    directory: Optional[str] = None
    use_disk: bool = True
    enabled: bool = True
    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)

    #: filename suffix of disk entries (override alongside the codec)
    suffix = ".bin"

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._disk_write_disabled = False

    @classmethod
    def from_env(cls, prefix: str, default_max: int = DEFAULT_MAX_ENTRIES):
        """Build a cache from the standard env-knob triple.

        ``<prefix>=0`` disables the cache, ``<prefix>_DISK=0`` skips the
        disk layer, ``<prefix>_MAX`` bounds the in-process layer.  (The
        ``<prefix>_DIR`` knob is read by the subclass's
        :meth:`default_directory`.)  A malformed or non-positive ``_MAX``
        value logs a warning and falls back to ``default_max`` rather than
        failing the package import or silently clamping
        (:func:`env_positive_int`).
        """
        return cls(
            enabled=os.environ.get(prefix, "1") != "0",
            use_disk=os.environ.get(f"{prefix}_DISK", "1") != "0",
            max_entries=env_positive_int(f"{prefix}_MAX", default_max),
        )

    def configure(
        self,
        directory: Optional[str] = None,
        use_disk: Optional[bool] = None,
        enabled: Optional[bool] = None,
        max_entries: Optional[int] = None,
    ) -> "ArtifactCache":
        """Reconfigure the cache's knobs; ``None`` keeps the current value.

        The in-process layer is cleared so stale entries cannot outlive a
        reconfiguration.  Returns ``self`` for chaining.
        """
        if directory is not None:
            self.directory = directory
        if use_disk is not None:
            self.use_disk = use_disk
        if enabled is not None:
            self.enabled = enabled
        if max_entries is not None:
            if max_entries < 1:
                raise ValueError("max_entries must be at least 1")
            self.max_entries = max_entries
        self._disk_write_disabled = False
        self.clear()
        return self

    # -------------------------------------------------------------- the codec

    def default_directory(self) -> str:
        """Disk location used when :attr:`directory` is ``None``."""
        raise NotImplementedError

    def write_artifact(self, handle, value) -> None:
        """Serialise ``value`` into the open binary file ``handle``."""
        raise NotImplementedError

    def read_artifact(self, path: str):
        """Deserialise one artifact from ``path``.

        Must raise :class:`OSError` or :class:`ValueError` for missing,
        truncated, or foreign files — both are treated as cache misses.
        """
        raise NotImplementedError

    # ---------------------------------------------------------------- lookup

    def get(self, key: str, build: Callable[[], Any]):
        """The artifact for ``key``, built by ``build()`` at most once here.

        Checks memory, then disk, then calls ``build()`` and publishes the
        result to both layers.  The returned object is shared between
        callers and must not be mutated.
        """
        if not self.enabled:
            return build()
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
        if cached is not None:
            return cached
        value = self._load(key)
        if value is not None:
            with self._lock:
                self.stats.disk_hits += 1
        else:
            with self._lock:
                self.stats.misses += 1
            value = build()
            self._store(key, value)
        with self._lock:
            # Publish only fully built values; last writer wins harmlessly
            # because every writer built the identical artifact.  LRU
            # eviction bounds the layer (disk entries are never evicted).
            self._memory[key] = value
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop the in-process layer (the disk layer is left alone)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------ disk layer

    def _path(self, key: str) -> Optional[str]:
        if not self.use_disk:
            return None
        directory = self.directory if self.directory is not None else self.default_directory()
        return os.path.join(directory, f"{key}{self.suffix}")

    def _load(self, key: str):
        path = self._path(key)
        if path is None:
            return None
        try:
            return self.read_artifact(path)
        except (OSError, ValueError):
            # Missing, truncated, or foreign file: rebuild.
            return None

    def _store(self, key: str, value) -> None:
        path = self._path(key)
        if path is None or self._disk_write_disabled:
            return
        try:
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    self.write_artifact(handle, value)
                # Atomic publish: readers see the whole file or none of it.
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            # A read-only or full disk (EACCES/ENOSPC/...) must not
            # propagate out of a model or trace build.  Log the first
            # failure, then stop attempting disk writes for this process —
            # reads stay on so a shared read-only cache directory keeps
            # serving hits.  ``configure()`` re-arms the write path.
            self._disk_write_disabled = True
            _LOG.warning(
                "%s: disk cache write failed (%s); disabling disk writes "
                "for this process (reads remain enabled)",
                type(self).__name__,
                error,
            )
