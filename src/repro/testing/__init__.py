"""Test-support utilities shipped with the package.

Currently home to the deterministic fault-injection harness
(:mod:`repro.testing.faults`) that the robustness test suite uses to
exercise the experiment engine's recovery paths end-to-end.  Nothing in
here runs unless explicitly armed (``REPRO_FAULT_SPEC``), so shipping it
inside the package — where forked and spawned worker processes can reach
it — costs the production path nothing.
"""

from repro.testing.faults import (
    FAULT_SPEC_ENV,
    FaultClause,
    InjectedCorruptArtifact,
    InjectedFault,
    fire_faults,
    parse_fault_spec,
)

__all__ = [
    "FAULT_SPEC_ENV",
    "FaultClause",
    "InjectedCorruptArtifact",
    "InjectedFault",
    "fire_faults",
    "parse_fault_spec",
]
