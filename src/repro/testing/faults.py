"""Deterministic fault injection for the experiment engine.

The fault-tolerance layer (``docs/robustness.md``) is only trustworthy if
every recovery path is exercised end-to-end: a worker raising mid-cell, a
worker hanging past the cell timeout, a worker exiting hard (taking the
process pool with it), and a corrupted on-disk model artifact.  Real
versions of those faults are flaky by nature; this module injects them
*deterministically*, driven by an environment variable so the injection
crosses process boundaries into pool workers for free (the pool forks or
spawns workers with the parent's environment).

Arming the harness::

    REPRO_FAULT_SPEC='[{"kind": "crash", "scheme": "Vegas", "times": 1}]'

The value is a JSON list of clause objects.  Each clause:

``kind``
    ``crash`` — raise :class:`InjectedFault` from inside the cell;
    ``hang`` — sleep ``seconds`` (default 3600) before running the cell,
    so a ``cell_timeout`` expires first;
    ``exit`` — ``os._exit(exit_code)``, killing the worker process hard
    (this is what breaks a ``ProcessPoolExecutor``);
    ``corrupt`` — overwrite every ``.npz`` model artifact in the model
    cache's disk directory with garbage and drop the in-memory model
    tiers, then (when ``strict``) raise :class:`InjectedCorruptArtifact`
    so the cell fails and its *retry* must heal the cache.
``scheme``, ``link``
    ``fnmatch`` patterns against the cell's scheme/link display names;
    default ``"*"``.
``index``
    Restrict to one batch position (the engine passes each cell's index);
    default matches any.  Use this to target one cell of a grid whose
    cells share a scheme and link.
``times``
    Fire only while the cell's attempt number is ≤ ``times``; ``null``
    (default) fires on every attempt.  ``"times": 1`` makes a
    retry-then-succeed cell.
``probability``, ``seed``
    Bernoulli gate, deterministic: the decision hashes (seed, kind,
    scheme, link, attempt), so reruns of the same spec make identical
    choices.  Default probability 1.0.
``seconds``, ``exit_code``, ``strict``
    Knobs of ``hang`` / ``exit`` / ``corrupt`` respectively.

The hook (:func:`fire_faults`) is called by the engine's cell entry point
and costs one environment lookup when unarmed — the no-fault path stays
bit-identical and effectively free.
"""

from __future__ import annotations

import fnmatch
import glob
import hashlib
import json
import os
import time
from dataclasses import dataclass, fields
from typing import List, Optional

#: environment variable carrying the JSON fault spec
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

FAULT_KINDS = ("crash", "hang", "exit", "corrupt")


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` clause (and identifies injected failures)."""


class InjectedCorruptArtifact(RuntimeError):
    """Raised by a strict ``corrupt`` clause after scribbling the cache."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a ``REPRO_FAULT_SPEC`` list."""

    kind: str
    scheme: str = "*"
    link: str = "*"
    index: Optional[int] = None
    times: Optional[int] = None
    probability: float = 1.0
    seed: int = 0
    seconds: float = 3600.0
    exit_code: int = 42
    strict: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {', '.join(FAULT_KINDS)}; "
                f"got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be at least 1, got {self.times}")

    def matches(
        self, scheme: str, link: str, attempt: int, index: Optional[int]
    ) -> bool:
        if not fnmatch.fnmatchcase(scheme, self.scheme):
            return False
        if not fnmatch.fnmatchcase(link, self.link):
            return False
        if self.index is not None and index != self.index:
            return False
        if self.times is not None and attempt > self.times:
            return False
        if self.probability < 1.0:
            if _coin(self.seed, self.kind, scheme, link, attempt) >= self.probability:
                return False
        return True


def _coin(seed: int, kind: str, scheme: str, link: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one (clause, cell, attempt)."""
    digest = hashlib.sha256(
        f"{seed}|{kind}|{scheme}|{link}|{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def parse_fault_spec(text: str) -> List[FaultClause]:
    """Parse the JSON clause list; unknown keys and bad shapes are errors."""
    try:
        raw = json.loads(text)
    except ValueError as error:
        raise ValueError(f"{FAULT_SPEC_ENV} is not valid JSON: {error}") from error
    if not isinstance(raw, list):
        raise ValueError(f"{FAULT_SPEC_ENV} must be a JSON list of clause objects")
    known = {f.name for f in fields(FaultClause)}
    clauses = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise ValueError(f"fault clause must be an object, got {entry!r}")
        unknown = set(entry) - known
        if unknown:
            raise ValueError(
                f"unknown fault clause keys: {', '.join(sorted(unknown))}"
            )
        clauses.append(FaultClause(**entry))
    return clauses


def _corrupt_model_artifacts() -> int:
    """Scribble over every on-disk model artifact and drop warm copies.

    Returns the number of files corrupted.  Also clears the in-memory
    model tiers (the shared-model memo and the artifact cache's memory
    layer) so the next model construction actually reads the corrupted
    files — in a forked worker the memory tier would otherwise mask the
    disk damage entirely.
    """
    from repro.core.rate_model import clear_shared_models, model_cache

    cache = model_cache()
    clear_shared_models()
    cache.clear()
    directory = (
        cache.directory if cache.directory is not None else cache.default_directory()
    )
    corrupted = 0
    for path in glob.glob(os.path.join(directory, f"*{cache.suffix}")):
        try:
            with open(path, "wb") as handle:
                handle.write(b"not an npz artifact")
            corrupted += 1
        except OSError:
            continue
    return corrupted


def _fire(clause: FaultClause, scheme: str, link: str, attempt: int) -> None:
    if clause.kind == "crash":
        raise InjectedFault(
            f"injected crash in cell ({scheme}, {link}) attempt {attempt}"
        )
    if clause.kind == "hang":
        time.sleep(clause.seconds)
        return
    if clause.kind == "exit":
        os._exit(clause.exit_code)
    if clause.kind == "corrupt":
        count = _corrupt_model_artifacts()
        if clause.strict:
            raise InjectedCorruptArtifact(
                f"injected corruption of {count} model artifact(s) before "
                f"cell ({scheme}, {link}) attempt {attempt}"
            )


def fire_faults(
    scheme: str, link: str, attempt: int = 1, index: Optional[int] = None
) -> None:
    """Fire every armed fault clause matching this cell execution.

    Called by the engine at the top of each cell attempt (in whichever
    process runs the cell).  A missing or empty ``REPRO_FAULT_SPEC`` is a
    single dict lookup — the production path pays nothing.
    """
    spec = os.environ.get(FAULT_SPEC_ENV)
    if not spec:
        return
    for clause in parse_fault_spec(spec):
        if clause.matches(scheme, link, attempt, index):
            _fire(clause, scheme, link, attempt)
