"""Command-line interface: ``python -m repro <command>`` / ``repro-sprout``.

Commands:

* ``run``        — run one scheme over one link and print its metrics
* ``figure``     — regenerate one of the paper's figures (1, 2, 7, 8, 9)
* ``table``      — regenerate one of the paper's tables (intro, ewma, loss, tunnel)
* ``report``     — run the full reproduction and print/write the report
* ``sweep``      — run a scenario grid over the matrix: one ``--param`` is a
  classic single-parameter sweep, several ``--param`` flags form the
  Cartesian product (e.g. a sigma × loss grid); axes include loss, sigma,
  tick, outage, scale, flows, tunnelled, aqm, qlimit, codel_target, and
  codel_interval, and results can be exported as tidy CSV or structured
  JSON (``--export``, docs/scenarios.md).  Every distinct swept model
  parameter set is built at most once per machine, ever: grid runs prewarm
  the persistent model-artifact cache before fanning out
  (docs/performance.md)
* ``live``       — run sized transfers over the real-socket loopback
  transport (``repro.transport``, docs/transport.md): Sprout over actual
  UDP datagrams with selective repeat and adaptive RTO, reporting
  throughput and per-packet delay percentiles; results export through the
  same schema-v4 CSV/JSON stack as simulated sweeps
* ``trace``      — generate a synthetic delivery trace file for a modelled link
* ``list``       — list the available schemes, links, and sweep/grid axes
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.analytic import ScreenConfig, render_divergences, validate_grid
from repro.experiments.competing import render_competing
from repro.experiments.figure1 import render_figure1, run_figure1
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.figure7 import render_figure7, run_figure7
from repro.experiments.figure8 import render_figure8, run_figure8
from repro.experiments.figure9 import render_figure9, run_figure9
from repro.experiments.policy import ErrorPolicy
from repro.experiments.registry import scheme_names
from repro.experiments.report import ReportConfig, generate_report
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.parallel import shared_pool
from repro.experiments.exports import export_text, write_export
from repro.experiments.sweeps import (
    GridSpec,
    expand_grid,
    get_sweep_parameter,
    render_grid,
    render_grid_frontiers,
    run_grid,
    sweep_parameter_names,
)
from repro.experiments.tables import (
    ewma_table,
    intro_table,
    loss_table,
    render_ewma_table,
    render_intro_table,
    render_loss_table,
    tunnel_table,
)
from repro.traces.format import write_trace
from repro.traces.networks import get_link, link_names, link_trace


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (exit 2 + usage on bad input)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive number."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text}")
    return value


def _probability(text: str) -> float:
    """argparse type: a probability in [0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(f"expected a probability in [0, 1), got {text}")
    return value


def _impair_spec(text: str) -> str:
    """argparse type: validate an --impair spec string at parse time."""
    from repro.transport.impair import ImpairSpecError, parse_impair_spec

    try:
        parse_impair_spec(text)
    except ImpairSpecError as error:
        raise argparse.ArgumentTypeError(str(error))
    return text


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=60.0, help="trace seconds to emulate")
    parser.add_argument("--warmup", type=float, default=10.0, help="seconds excluded from metrics")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=os.cpu_count(),
        help="worker processes for matrix experiments (1 = serial; "
        "results are identical regardless)",
    )


def _run_config(args: argparse.Namespace) -> RunConfig:
    return RunConfig(
        duration=args.duration,
        warmup=args.warmup,
        per_flow=getattr(args, "per_flow", False),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_scheme_on_link(args.scheme, args.link, _run_config(args))
    print(f"scheme:               {result.scheme}")
    print(f"link:                 {result.link}")
    print(f"throughput:           {result.throughput_kbps:.0f} kbps")
    print(f"self-inflicted delay: {result.self_inflicted_delay_ms:.0f} ms")
    print(f"utilization:          {100 * result.utilization:.1f} %")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = _run_config(args)
    if args.number == 1:
        print(render_figure1(run_figure1(duration=args.duration)))
    elif args.number == 2:
        print(render_figure2(run_figure2(duration=max(args.duration, 120.0))))
    elif args.number == 7:
        print(render_figure7(run_figure7(config=config, jobs=args.jobs)))
    elif args.number == 8:
        print(render_figure8(run_figure8(config=config, jobs=args.jobs)))
    elif args.number == 9:
        print(render_figure9(run_figure9(config=config)))
    else:
        print(f"no such figure: {args.number} (valid: 1, 2, 7, 8, 9)", file=sys.stderr)
        return 2
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    config = _run_config(args)
    if args.name == "intro":
        print(render_intro_table(intro_table(config=config, jobs=args.jobs)))
    elif args.name == "ewma":
        print(render_ewma_table(ewma_table(config=config, jobs=args.jobs)))
    elif args.name == "loss":
        print(render_loss_table(loss_table(config=config)))
    elif args.name == "tunnel":
        print(render_competing(tunnel_table(duration=args.duration, warmup=args.warmup)))
    else:
        print(f"no such table: {args.name}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = ReportConfig(duration=args.duration, warmup=args.warmup, jobs=args.jobs)
    report = generate_report(config)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    params: List[str] = args.param or []
    values: List[List[float]] = args.values or []
    if not params:
        print("sweep requires at least one --param", file=sys.stderr)
        return 2
    if len(params) != len(values):
        print(
            f"got {len(params)} --param but {len(values)} --values; "
            "each --param needs its own --values list",
            file=sys.stderr,
        )
        return 2
    if args.out and not args.export:
        print("--out requires --export (csv or json)", file=sys.stderr)
        return 2
    if args.retries and args.on_error == "fail_fast":
        print(
            "--retries requires --on-error collect or retry "
            "(fail_fast aborts on the first failure)",
            file=sys.stderr,
        )
        return 2
    links = tuple(args.links) if args.links else ()
    config = _run_config(args)
    try:
        # Several --param flags form ONE grid: the Cartesian product of the
        # axes, every point measuring the schemes × links matrix.
        spec = GridSpec(
            parameters=tuple(params),
            values=tuple(tuple(value_list) for value_list in values),
            schemes=tuple(args.schemes),
            links=links,
            policy=ErrorPolicy(
                on_error=args.on_error,
                retries=args.retries,
                cell_timeout=args.cell_timeout,
                checkpoint=args.checkpoint,
            ),
        )
        # Validate the full expansion up front (it is cheap) so a bad value
        # in a late axis cannot waste the minutes of emulation before it.
        expand_grid(spec, config)
    except ValueError as error:
        # Expander rejections (loss outside [0,1), sigma on a non-Sprout
        # scheme, ...) and bad policy knobs are user errors, not tracebacks.
        print(f"sweep error: {error}", file=sys.stderr)
        return 2
    screen = None
    if args.screen:
        try:
            screen = ScreenConfig(margin=args.screen_margin)
        except ValueError as error:
            print(f"sweep error: {error}", file=sys.stderr)
            return 2
    # The batched backend runs in-process; don't stand up a worker pool
    # that would never receive a cell.
    with shared_pool(args.jobs if args.backend == "processes" else None):
        data = run_grid(
            spec, config=config, jobs=args.jobs, backend=args.backend, screen=screen
        )
    print(render_grid(data))
    if len(spec.parameters) > 1 or args.per_flow:
        print(render_grid_frontiers(data))
    if args.export:
        if args.out:
            write_export(data, args.export, args.out)
            print(f"{args.export} export written to {args.out}")
        else:
            print(export_text(data, args.export), end="")
    exit_code = 0
    failed = len(data.errors)
    if failed:
        total = sum(len(point.results) for point in data.points)
        print(
            f"warning: {failed} of {total} cells failed "
            "(see the FAILED lines above; docs/robustness.md)",
            file=sys.stderr,
        )
        if failed == total:
            # Under --on-error collect/retry a fully-failed grid still
            # renders and exports (every row a FAILED line), but reporting
            # success for a run that measured nothing would let CI green-
            # light an all-red grid.
            print(
                "error: every cell failed; no measurements were produced",
                file=sys.stderr,
            )
            exit_code = 1
    if args.validate:
        divergences = validate_grid(data, config, tolerance=args.tolerance)
        print(render_divergences(divergences))
        if divergences:
            # The differential oracle is a CI gate: divergence is a failure.
            exit_code = 1
    return exit_code


def _cmd_live(args: argparse.Namespace) -> int:
    # Imported lazily: the transport stack is only needed by this command,
    # and keeping it out of module import keeps `repro list` etc. light.
    from repro.transport import LiveConfig, run_live_suite, sockets_available
    from repro.transport.harness import render_live_results

    if args.out and not args.export:
        print("--out requires --export (csv or json)", file=sys.stderr)
        return 2
    try:
        config = LiveConfig(
            transfer_bytes=args.bytes,
            repeats=args.repeats,
            loss_rate=args.loss,
            loss_seed=args.loss_seed,
            deadline=args.deadline,
            ewma=args.ewma,
            impair=args.impair,
            impair_seed=args.impair_seed,
            watchdog=args.watchdog,
        )
    except ValueError as error:
        print(f"live error: {error}", file=sys.stderr)
        return 2
    if not sockets_available():
        print(
            "live error: loopback UDP sockets are unavailable in this "
            "environment (docs/transport.md)",
            file=sys.stderr,
        )
        return 2
    grid, results = run_live_suite(config)
    print(render_live_results(results))
    print(render_grid(grid))
    if args.export:
        if args.out:
            write_export(grid, args.export, args.out)
            print(f"{args.export} export written to {args.out}")
        else:
            print(export_text(grid, args.export), end="")
    incomplete = [r for r in results if not r.completed]
    if incomplete:
        aborted = sum(1 for r in incomplete if r.failure)
        detail = (
            f"{aborted} aborted with a diagnosis, "
            f"{len(incomplete) - aborted} ran out the deadline"
            if aborted
            else "unacked packets remained at the deadline"
        )
        print(
            f"error: {len(incomplete)} of {len(results)} transfer(s) did not "
            f"complete ({detail})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    link = get_link(args.link)
    trace = link_trace(link, args.duration)
    write_trace(args.output, trace)
    print(f"wrote {len(trace)} delivery opportunities ({args.duration:.0f} s of "
          f"{link.name}) to {args.output}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    print("schemes:")
    for name in scheme_names():
        print(f"  {name}")
    print("links:")
    for name in link_names():
        print(f"  {name}")
    print("sweep parameters:")
    for name in sweep_parameter_names():
        print(f"  {name} — {get_sweep_parameter(name).description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sprout",
        description="Reproduction of Sprout (NSDI 2013): run schemes over emulated "
        "cellular links and regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scheme over one link")
    run_parser.add_argument("scheme", choices=scheme_names())
    run_parser.add_argument("link", choices=link_names())
    _add_run_options(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    figure_parser = sub.add_parser("figure", help="regenerate a figure (1, 2, 7, 8, 9)")
    figure_parser.add_argument("number", type=int)
    _add_run_options(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    table_parser = sub.add_parser("table", help="regenerate a table")
    table_parser.add_argument("name", choices=["intro", "ewma", "loss", "tunnel"])
    _add_run_options(table_parser)
    table_parser.set_defaults(func=_cmd_table)

    report_parser = sub.add_parser("report", help="run the full reproduction")
    _add_run_options(report_parser)
    report_parser.add_argument("--output", "-o", help="write the report to this file")
    report_parser.set_defaults(func=_cmd_report)

    sweep_parser = sub.add_parser(
        "sweep", help="run a scenario grid (1-D sweep or N-D Cartesian product)"
    )
    sweep_parser.add_argument(
        "--param",
        action="append",
        choices=sweep_parameter_names(),
        help="axis to sweep; repeating adds grid dimensions (two --param "
        "flags form a 2-D grid over the axes' Cartesian product)",
    )
    sweep_parser.add_argument(
        "--values",
        action="append",
        nargs="+",
        type=float,
        metavar="VALUE",
        help="values for the preceding --param",
    )
    sweep_parser.add_argument(
        "--per-flow",
        action="store_true",
        dest="per_flow",
        help="collect per-client-flow metrics (Skype delay vs Cubic "
        "throughput, sec. 5.7) on cells with multiplexed flows; adds "
        "per-flow frontier sections and flow_id columns to exports",
    )
    sweep_parser.add_argument(
        "--export",
        choices=["csv", "json"],
        help="also emit the grid as tidy CSV or structured JSON "
        "(schema in docs/scenarios.md)",
    )
    sweep_parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the --export payload to this file instead of stdout",
    )
    sweep_parser.add_argument(
        "--schemes",
        nargs="+",
        default=["Sprout"],
        choices=scheme_names(),
        metavar="SCHEME",
        help="schemes to measure at every swept value (default: Sprout)",
    )
    sweep_parser.add_argument(
        "--links",
        nargs="+",
        choices=link_names(),
        metavar="LINK",
        help="links to measure on (default: all eight)",
    )
    sweep_parser.add_argument(
        "--on-error",
        choices=["fail_fast", "collect", "retry"],
        default="fail_fast",
        dest="on_error",
        help="what a failing cell does to the grid: fail_fast aborts the "
        "whole run (default), collect records the failure and keeps going, "
        "retry re-runs the cell --retries times before recording it "
        "(docs/robustness.md)",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run a failing cell up to N extra times before recording "
        "the failure (needs --on-error collect or retry)",
    )
    sweep_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="cell_timeout",
        help="wall-clock budget per cell when running on a worker pool; an "
        "overrunning worker is killed and the cell retried or recorded as "
        "failed per --on-error",
    )
    sweep_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="journal completed cells to PATH (JSONL) and, when re-run with "
        "the same PATH, skip cells already completed there",
    )
    sweep_parser.add_argument(
        "--screen",
        action="store_true",
        help="analytic screening: predict every cell with the closed-form "
        "tier and emulate only cells near the predicted frontier or with "
        "high model uncertainty; screened-out cells export as predictions "
        "(schema v4 screened/predicted_* fields; docs/analytic.md)",
    )
    sweep_parser.add_argument(
        "--screen-margin",
        type=float,
        default=ScreenConfig.margin,
        metavar="FRACTION",
        dest="screen_margin",
        help="screening dominance margin: a cell is screened out only when "
        "another cell's predicted throughput beats it by this fraction "
        "(default %(default)s; larger = more conservative, more cells "
        "emulated)",
    )
    sweep_parser.add_argument(
        "--validate",
        action="store_true",
        help="differential validation: after the run, compare simulated "
        "Reno/Cubic throughput against the analytic prediction and report "
        "divergences beyond the calibrated tolerance; exits 1 on any "
        "divergence (docs/analytic.md)",
    )
    sweep_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="relative-error tolerance for --validate (default: the "
        "calibrated ORACLE_TOLERANCE, docs/analytic.md)",
    )
    sweep_parser.add_argument(
        "--backend",
        choices=["processes", "batched"],
        default="processes",
        help="cell execution engine: worker processes (default) or the "
        "in-process batched cross-cell engine, which vectorizes the Sprout "
        "forecaster across cells (bit-identical results; "
        "docs/performance.md)",
    )
    _add_run_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    live_parser = sub.add_parser(
        "live",
        help="run sized transfers over the real-socket loopback transport "
        "(docs/transport.md)",
    )
    live_parser.add_argument(
        "--bytes",
        type=_positive_int,
        default=256 * 1024,
        help="payload bytes per transfer (default %(default)s)",
    )
    live_parser.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="how many transfers to run (default %(default)s)",
    )
    live_parser.add_argument(
        "--loss",
        type=_probability,
        default=0.0,
        metavar="PROBABILITY",
        help="deterministic injected datagram-loss probability in [0, 1) "
        "(selective repeat must recover everything; default %(default)s)",
    )
    live_parser.add_argument(
        "--loss-seed",
        type=int,
        default=0,
        dest="loss_seed",
        help="seed of the deterministic loss gate (default %(default)s)",
    )
    live_parser.add_argument(
        "--deadline",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help="wall-clock budget per transfer (default %(default)s)",
    )
    live_parser.add_argument(
        "--impair",
        type=_impair_spec,
        default="",
        metavar="SPEC",
        help="adversarial impairment pipeline applied at the socket "
        "boundary, e.g. 'ge:p=0.05,burst=8;reorder:p=0.02;"
        "blackout:at=2s,len=1.5s' (stage table in docs/transport.md)",
    )
    live_parser.add_argument(
        "--impair-seed",
        type=int,
        default=0,
        dest="impair_seed",
        help="seed of the deterministic impairment draws (default %(default)s)",
    )
    live_parser.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help="peer-inactivity abort interval; default derives from "
        "--deadline, 0 disables the watchdog",
    )
    live_parser.add_argument(
        "--ewma",
        action="store_true",
        help="use the Sprout-EWMA forecaster instead of the Bayesian one",
    )
    live_parser.add_argument(
        "--export",
        choices=["csv", "json"],
        help="also emit the results as schema-v4 CSV or JSON (same stack "
        "as `repro sweep`)",
    )
    live_parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the --export payload to this file instead of stdout",
    )
    live_parser.set_defaults(func=_cmd_live)

    trace_parser = sub.add_parser("trace", help="write a synthetic trace file")
    trace_parser.add_argument("link", choices=link_names())
    trace_parser.add_argument("output")
    trace_parser.add_argument("--duration", type=float, default=120.0)
    trace_parser.set_defaults(func=_cmd_trace)

    list_parser = sub.add_parser(
        "list", help="list schemes, links, and sweep/grid axes"
    )
    list_parser.set_defaults(func=_cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
