"""Throughput and utilization metrics (Section 5.1).

Throughput is "the total number of bits received by an application, divided
by the duration of the experiment"; utilization (Figure 8) is the fraction
of the link's capacity — the bits the trace could have carried — that the
scheme actually achieved.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.simulation.packet import Packet


def received_bytes_in_window(
    received_log: Iterable[Tuple[float, Packet]],
    start_time: float,
    end_time: float,
) -> int:
    """Total bytes delivered to a host within ``[start_time, end_time]``."""
    total = 0
    for arrival_time, packet in received_log:
        if start_time <= arrival_time <= end_time:
            total += packet.size
    return total


def average_throughput_bps(
    received_log: Iterable[Tuple[float, Packet]],
    start_time: float,
    end_time: float,
) -> float:
    """Average received throughput in bits per second over the window."""
    if end_time <= start_time:
        raise ValueError("end_time must be after start_time")
    total_bytes = received_bytes_in_window(received_log, start_time, end_time)
    return total_bytes * 8.0 / (end_time - start_time)


def link_capacity_bps(
    delivery_times: Sequence[float],
    start_time: float,
    end_time: float,
    mtu_bytes: int = 1500,
) -> float:
    """Capacity the trace offered during the window, in bits per second."""
    if end_time <= start_time:
        raise ValueError("end_time must be after start_time")
    count = sum(1 for t in delivery_times if start_time <= t <= end_time)
    return count * mtu_bytes * 8.0 / (end_time - start_time)


def utilization(
    throughput_bps: float,
    capacity_bps: float,
) -> float:
    """Fraction of the link capacity achieved (0 when the link offered nothing)."""
    if capacity_bps <= 0:
        return 0.0
    return min(1.0, throughput_bps / capacity_bps)
