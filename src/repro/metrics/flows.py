"""Per-flow metrics: the Section 5.7 view of a multi-flow experiment.

The aggregate :class:`~repro.metrics.summary.SchemeResult` answers "what did
the link carry?"; this module answers "what did each *client flow* get?" —
the paper's Section 5.7 comparison is exactly that split (Cubic's bulk
throughput vs. Skype's delay tail).  The raw material is the per-flow
received-packet log kept by :class:`~repro.simulation.mux.MultiplexProtocol`
(and fed by the tunnel egress for tunnelled flows): for every flow, a list
of ``(delivery_time, packet)`` observations.

:class:`FlowAccumulator` collects those observations (directly or from a
mux log) and finalises them into one :class:`FlowMetrics` per flow over a
measurement window; :func:`flow_metrics_from_logs` is the one-shot helper
the experiment runner uses.  Delay uses the same instantaneous-delay-signal
percentile as the aggregate metrics (:mod:`repro.metrics.delay`), so a
flow's tail delay is directly comparable with the scheme-level numbers.

The accounting contract is **downlink-first**: throughput, the delay tail,
and ``packets``/``bytes`` describe the client-facing (receiver-side)
direction only, which is the direction the Section 5.7 comparison is
about.  The feedback direction (TCP ACKs, receiver reports, Sprout
forecasts) is *not* mixed into those numbers — but where a sender-side mux
log already sees its deliveries, they are counted into the diagnostic
``uplink_packets`` / ``uplink_bytes`` fields by
:func:`attach_uplink_deliveries`.  Flows seen only on the uplink gain no
entry of their own, and the uplink counters stay out of the export schema
(:mod:`repro.experiments.exports` serialises the downlink fields only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.metrics.delay import percentile_of_delay_signal
from repro.simulation.packet import Packet

#: one per-flow observation log: (delivery_time, packet) in arrival order
FlowLog = Sequence[Tuple[float, Packet]]


#: the FlowMetrics fields that enter :meth:`SchemeResult.as_dict` and the
#: export schema — the downlink (client-facing) view only, by contract
EXPORTED_FLOW_FIELDS: Tuple[str, ...] = (
    "throughput_bps",
    "delay_95_s",
    "flow",
    "packets",
    "bytes",
)


@dataclass
class FlowMetrics:
    """Metrics of one client flow over a measurement window.

    The measured fields (throughput, delay tail, ``packets``/``bytes``)
    cover the downlink direction only.  ``uplink_packets`` /
    ``uplink_bytes`` count the flow's feedback-direction deliveries when a
    sender-side mux log recorded them (:func:`attach_uplink_deliveries`);
    they are diagnostic and excluded from serialisation
    (:data:`EXPORTED_FLOW_FIELDS`).
    """

    throughput_bps: float
    delay_95_s: float
    flow: str = ""
    packets: int = 0
    bytes: int = 0
    uplink_packets: int = 0
    uplink_bytes: int = 0

    @property
    def throughput_kbps(self) -> float:
        return self.throughput_bps / 1000.0

    @property
    def delay_95_ms(self) -> float:
        return self.delay_95_s * 1000.0


def flow_metrics_from_arrivals(
    arrivals: FlowLog,
    start_time: float,
    end_time: float,
    flow: str = "",
) -> FlowMetrics:
    """Finalise one flow's observation log into its metrics.

    Throughput counts the bytes delivered inside ``[start_time, end_time]``;
    the delay tail is the 95th percentile of the flow's instantaneous delay
    signal over the same window (``nan`` when the flow saw no deliveries).
    """
    window = end_time - start_time
    if window <= 0:
        raise ValueError("end_time must be after start_time")
    in_window = [(t, p) for t, p in arrivals if start_time <= t <= end_time]
    total_bytes = sum(p.size for _, p in in_window)
    pairs = [(t, p.sent_at) for t, p in arrivals if p.sent_at is not None]
    delay = percentile_of_delay_signal(pairs, start_time=start_time, end_time=end_time)
    return FlowMetrics(
        throughput_bps=total_bytes * 8.0 / window,
        delay_95_s=delay,
        flow=flow,
        packets=len(in_window),
        bytes=total_bytes,
    )


class FlowAccumulator:
    """Accumulates per-flow packet observations across an experiment.

    Observations can be recorded one at a time (:meth:`record`, e.g. from a
    tunnel-egress delivery hook) or absorbed wholesale from a mux's
    ``received_by_flow`` log (:meth:`extend`); :meth:`metrics` finalises
    every flow, sorted by flow name so results are deterministic.
    """

    def __init__(self) -> None:
        self.arrivals: Dict[str, List[Tuple[float, Packet]]] = {}

    def record(self, flow: str, now: float, packet: Packet) -> None:
        """Record one delivered packet for ``flow`` at time ``now``."""
        self.arrivals.setdefault(flow, []).append((now, packet))

    def extend(self, logs: Mapping[str, Iterable[Tuple[float, Packet]]]) -> None:
        """Absorb a whole per-flow log (a mux's ``received_by_flow``)."""
        for flow, entries in logs.items():
            self.arrivals.setdefault(flow, []).extend(entries)

    def metrics(self, start_time: float, end_time: float) -> List[FlowMetrics]:
        """One :class:`FlowMetrics` per flow that saw any delivery, by name."""
        return [
            flow_metrics_from_arrivals(self.arrivals[flow], start_time, end_time, flow)
            for flow in sorted(self.arrivals)
            if self.arrivals[flow]
        ]


def flow_metrics_from_logs(
    logs: Mapping[str, Iterable[Tuple[float, Packet]]],
    start_time: float,
    end_time: float,
) -> List[FlowMetrics]:
    """Per-flow metrics straight from a mux's ``received_by_flow`` log."""
    accumulator = FlowAccumulator()
    accumulator.extend(logs)
    return accumulator.metrics(start_time, end_time)


def attach_uplink_deliveries(
    flows: Sequence[FlowMetrics],
    logs: Mapping[str, Iterable[Tuple[float, Packet]]],
    start_time: float,
    end_time: float,
) -> None:
    """Count feedback-direction deliveries into already-measured flows.

    ``logs`` is the *sender-side* mux's ``received_by_flow``: every packet
    it saw arrive travelled the uplink/feedback direction (ACKs, receiver
    reports, Sprout forecasts).  For each flow that already has a downlink
    :class:`FlowMetrics` entry, the deliveries inside ``[start_time,
    end_time]`` are tallied into ``uplink_packets`` / ``uplink_bytes`` —
    in place, never touching the downlink numbers.  Flows appearing only
    in ``logs`` are ignored: the downlink-first contract (module
    docstring) is that the uplink annotates measured flows, it does not
    create them.
    """
    by_name = {metrics.flow: metrics for metrics in flows}
    for flow, entries in logs.items():
        metrics = by_name.get(flow)
        if metrics is None:
            continue
        in_window = [p for t, p in entries if start_time <= t <= end_time]
        metrics.uplink_packets += len(in_window)
        metrics.uplink_bytes += sum(p.size for p in in_window)
