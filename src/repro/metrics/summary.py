"""Result records and cross-link aggregation.

Every experiment run produces a :class:`SchemeResult`; the table generators
aggregate them the way the paper's introduction does — the *average relative*
throughput gain and delay reduction of Sprout over each other scheme, taken
over all measured links — and Figure 8 style averages of utilization and
self-inflicted delay.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.metrics.flows import EXPORTED_FLOW_FIELDS, FlowMetrics


@dataclass
class SchemeResult:
    """Metrics of one scheme over one emulated link.

    ``flows`` is the optional per-flow breakdown (Section 5.7: each client
    flow's throughput and delay tail), populated when the run was collected
    with ``RunConfig(per_flow=True)`` and the receiving endpoint kept
    per-flow logs; ``None`` otherwise, and omitted from :meth:`as_dict` so
    aggregate-only results serialise exactly as before.
    """

    scheme: str
    link: str
    throughput_bps: float
    delay_95_s: float
    self_inflicted_delay_s: float
    utilization: float
    capacity_bps: float = 0.0
    omniscient_delay_95_s: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    flows: Optional[List[FlowMetrics]] = None

    @property
    def throughput_kbps(self) -> float:
        return self.throughput_bps / 1000.0

    @property
    def self_inflicted_delay_ms(self) -> float:
        return self.self_inflicted_delay_s * 1000.0

    def as_dict(self) -> dict:
        data = asdict(self)
        if self.flows is None:
            del data["flows"]
        else:
            # Flow dicts carry the downlink fields only: the diagnostic
            # uplink counters stay out of the (v3) export schema, so the
            # serialised shape is stable whether or not a sender-side mux
            # log was available to count the feedback direction.
            data["flows"] = [
                {key: flow[key] for key in EXPORTED_FLOW_FIELDS}
                for flow in data["flows"]
            ]
        data["throughput_kbps"] = self.throughput_kbps
        data["self_inflicted_delay_ms"] = self.self_inflicted_delay_ms
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SchemeResult":
        """Rebuild a result from :meth:`as_dict` output.

        Derived keys (``throughput_kbps``, ``self_inflicted_delay_ms``) and
        anything unknown are ignored; ``flows`` dicts are rehydrated into
        :class:`~repro.metrics.flows.FlowMetrics`.
        """
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        flows = payload.get("flows")
        if flows is not None:
            payload["flows"] = [
                flow if isinstance(flow, FlowMetrics) else FlowMetrics(**flow)
                for flow in flows
            ]
        return cls(**payload)


@dataclass
class ScreenedResult(SchemeResult):
    """A screened-out cell: *predicted* metrics standing in for a measurement.

    The analytic screening tier (:mod:`repro.experiments.analytic`) emits
    one of these — in the cell's position, like the error-policy layer's
    in-place :class:`~repro.experiments.policy.CellError` — for every cell
    it decided not to emulate.  The metric fields hold the closed-form
    predictions so tables and grid listings render naturally, but the
    record type (and the ``screened`` marker :meth:`as_dict` adds, which
    becomes the schema-v4 export column) keeps predictions distinguishable
    from measurements everywhere downstream: frontier rendering excludes
    them, and the differential validator skips them.

    ``prediction_uncertainty`` is the model's own confidence complement in
    ``[0, 1]`` — by construction below the screen's threshold, or the cell
    would have been emulated.
    """

    prediction_uncertainty: float = 0.0

    def as_dict(self) -> dict:
        data = super().as_dict()
        data["screened"] = True
        return data


def is_screened(result: object) -> bool:
    """Whether one grid outcome is a screened-out (predicted-only) cell."""
    return isinstance(result, ScreenedResult)


@dataclass
class RelativeComparison:
    """Average relative performance of a reference scheme vs. another scheme.

    ``speedup`` is how many times more throughput the *reference* achieved
    than the other scheme (the paper's "Avg. speedup vs Sprout" column reads
    the other way round: a value of 2.2 next to Skype means Sprout carried
    2.2x Skype's bit rate).  ``delay_reduction`` likewise is how many times
    larger the other scheme's self-inflicted delay is than the reference's.
    """

    scheme: str
    reference: str
    speedup: float
    delay_reduction: float
    mean_delay_s: float
    mean_throughput_bps: float


def _by_scheme(results: Iterable[SchemeResult]) -> Dict[str, Dict[str, SchemeResult]]:
    """Index results as scheme -> link -> result."""
    table: Dict[str, Dict[str, SchemeResult]] = {}
    for result in results:
        table.setdefault(result.scheme, {})[result.link] = result
    return table


def relative_to_reference(
    results: Iterable[SchemeResult],
    reference: str,
    floor_delay_s: float = 0.001,
) -> List[RelativeComparison]:
    """The introduction-table comparison: every scheme vs. the reference.

    For each link where both the scheme and the reference were measured, the
    per-link throughput ratio (reference / scheme) and self-inflicted-delay
    ratio (scheme / reference) are computed; the reported numbers are the
    averages of those per-link ratios, which mirrors the paper's "averaged
    over all four cellular networks in both directions".

    Args:
        results: all measured results.
        reference: scheme name the comparison is relative to (e.g. "Sprout").
        floor_delay_s: delays are floored at this value before forming
            ratios so that a near-zero denominator cannot blow up the ratio.
    """
    table = _by_scheme(results)
    if reference not in table:
        raise KeyError(f"no results for reference scheme {reference!r}")
    reference_results = table[reference]

    comparisons: List[RelativeComparison] = []
    for scheme, by_link in sorted(table.items()):
        speedups: List[float] = []
        delay_ratios: List[float] = []
        delays: List[float] = []
        throughputs: List[float] = []
        for link, result in by_link.items():
            ref = reference_results.get(link)
            if ref is None:
                continue
            if result.throughput_bps > 0:
                speedups.append(ref.throughput_bps / result.throughput_bps)
            ref_delay = max(ref.self_inflicted_delay_s, floor_delay_s)
            scheme_delay = max(result.self_inflicted_delay_s, floor_delay_s)
            delay_ratios.append(scheme_delay / ref_delay)
            delays.append(result.self_inflicted_delay_s)
            throughputs.append(result.throughput_bps)
        if not delays:
            continue
        comparisons.append(
            RelativeComparison(
                scheme=scheme,
                reference=reference,
                speedup=float(np.mean(speedups)) if speedups else float("nan"),
                delay_reduction=float(np.mean(delay_ratios)),
                mean_delay_s=float(np.mean(delays)),
                mean_throughput_bps=float(np.mean(throughputs)),
            )
        )
    return comparisons


def average_by_scheme(results: Iterable[SchemeResult]) -> Dict[str, Dict[str, float]]:
    """Figure 8-style averages: mean utilization and delay per scheme."""
    table = _by_scheme(results)
    averages: Dict[str, Dict[str, float]] = {}
    for scheme, by_link in table.items():
        values = list(by_link.values())
        averages[scheme] = {
            "mean_utilization": float(np.mean([r.utilization for r in values])),
            "mean_self_inflicted_delay_s": float(
                np.mean([r.self_inflicted_delay_s for r in values])
            ),
            "mean_throughput_bps": float(np.mean([r.throughput_bps for r in values])),
            "links": float(len(values)),
        }
    return averages


def format_results_table(results: Iterable[SchemeResult]) -> str:
    """Human-readable fixed-width table of per-link results."""
    rows = sorted(results, key=lambda r: (r.link, r.scheme))
    header = (
        f"{'link':34s} {'scheme':16s} {'tput kbps':>10s} "
        f"{'delay ms':>10s} {'util %':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.link:34s} {r.scheme:16s} {r.throughput_kbps:10.0f} "
            f"{r.self_inflicted_delay_ms:10.0f} {100 * r.utilization:8.1f}"
        )
    return "\n".join(lines)
