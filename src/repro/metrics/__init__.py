"""Evaluation metrics: throughput, delay, utilization (Section 5.1)."""

from repro.metrics.delay import (
    arrivals_from_log,
    delay_signal_segments,
    end_to_end_delay_95,
    percentile_of_delay_signal,
    self_inflicted_delay,
)
from repro.metrics.flows import (
    EXPORTED_FLOW_FIELDS,
    FlowAccumulator,
    FlowMetrics,
    attach_uplink_deliveries,
    flow_metrics_from_arrivals,
    flow_metrics_from_logs,
)
from repro.metrics.summary import (
    RelativeComparison,
    SchemeResult,
    average_by_scheme,
    format_results_table,
    relative_to_reference,
)
from repro.metrics.throughput import (
    average_throughput_bps,
    link_capacity_bps,
    received_bytes_in_window,
    utilization,
)

__all__ = [
    "arrivals_from_log",
    "delay_signal_segments",
    "end_to_end_delay_95",
    "percentile_of_delay_signal",
    "self_inflicted_delay",
    "EXPORTED_FLOW_FIELDS",
    "FlowAccumulator",
    "FlowMetrics",
    "attach_uplink_deliveries",
    "flow_metrics_from_arrivals",
    "flow_metrics_from_logs",
    "RelativeComparison",
    "SchemeResult",
    "average_by_scheme",
    "format_results_table",
    "relative_to_reference",
    "average_throughput_bps",
    "link_capacity_bps",
    "received_bytes_in_window",
    "utilization",
]
