"""Delay metrics: 95% end-to-end delay and self-inflicted delay (Section 5.1).

The paper's delay metric is built from the *instantaneous delay signal*: at
every moment in time, find the most recently-sent packet that has already
arrived at the receiver; the time since that packet was sent is a lower
bound on the glitch-free end-to-end delay at that moment.  Between arrivals
the signal rises at one second per second; when a packet arrives that was
sent more recently than any previous arrival, the signal drops to that
packet's one-way delay (footnote 7).  The 95th percentile of this signal
over the measurement window is the "95% end-to-end delay"; subtracting the
same quantity for the omniscient protocol gives the self-inflicted delay.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.simulation.packet import Packet

#: an arrival observation: (arrival_time, send_time)
Arrival = Tuple[float, float]


def arrivals_from_log(
    received_log: Iterable[Tuple[float, Packet]],
    include_control: bool = True,
) -> List[Arrival]:
    """Extract (arrival_time, send_time) pairs from a host's received log.

    Args:
        received_log: the ``Host.received_log`` of the data receiver.
        include_control: include heartbeats and other tiny packets; they are
            legitimate deliveries of the data direction, and excluding them
            would overstate delay during idle periods.
    """
    arrivals: List[Arrival] = []
    for arrival_time, packet in received_log:
        if packet.sent_at is None:
            continue
        if not include_control and packet.size < 200:
            continue
        arrivals.append((arrival_time, packet.sent_at))
    return arrivals


def delay_signal_segments(
    arrivals: Sequence[Arrival],
    start_time: float,
    end_time: float,
) -> List[Tuple[float, float]]:
    """Decompose the instantaneous delay signal into linear segments.

    Returns a list of ``(initial_delay, duration)`` pairs; within each
    segment the delay starts at ``initial_delay`` and rises at 1 s/s for
    ``duration`` seconds.  Only time within ``[start_time, end_time]`` is
    covered, and the signal starts at the first arrival that falls inside
    the window (before any packet has arrived the delay is undefined).
    """
    if end_time <= start_time:
        raise ValueError("end_time must be after start_time")
    ordered = sorted(arrivals, key=lambda a: a[0])

    segments: List[Tuple[float, float]] = []
    best_send: float = float("-inf")
    current_time: float = None  # type: ignore[assignment]

    for arrival_time, send_time in ordered:
        if arrival_time > end_time:
            break
        if send_time <= best_send:
            continue  # an older packet arriving late does not reduce delay
        if best_send == float("-inf"):
            # First useful arrival: the signal begins here (or at start_time
            # if the arrival precedes the window).
            current_time = max(arrival_time, start_time)
            best_send = send_time
            continue
        # Close the running segment at this arrival.
        segment_start = max(current_time, start_time)
        segment_end = min(max(arrival_time, segment_start), end_time)
        if segment_end > segment_start:
            initial_delay = segment_start - best_send
            segments.append((initial_delay, segment_end - segment_start))
        best_send = send_time
        current_time = max(arrival_time, start_time)

    # Tail segment up to end_time.
    if best_send != float("-inf") and current_time < end_time:
        segment_start = max(current_time, start_time)
        initial_delay = segment_start - best_send
        segments.append((initial_delay, end_time - segment_start))

    return segments


def percentile_of_delay_signal(
    arrivals: Sequence[Arrival],
    start_time: float,
    end_time: float,
    percentile: float = 95.0,
) -> float:
    """The given percentile of the instantaneous delay signal over a window.

    The signal is a collection of slope-1 segments; its distribution over
    time is a mixture of uniform distributions, so the percentile is found
    by bisection on the total time spent at or below a candidate delay.

    Returns ``nan`` when no packets arrived in the window.
    """
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    segments = delay_signal_segments(arrivals, start_time, end_time)
    if not segments:
        return float("nan")
    d0 = np.array([s[0] for s in segments])
    lengths = np.array([s[1] for s in segments])
    total = lengths.sum()
    if total <= 0:
        return float("nan")
    target = total * percentile / 100.0

    lo = float(d0.min())
    hi = float((d0 + lengths).max())

    def time_at_or_below(threshold: float) -> float:
        return float(np.clip(threshold - d0, 0.0, lengths).sum())

    if time_at_or_below(hi) <= target:
        return hi
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if time_at_or_below(mid) >= target:
            hi = mid
        else:
            lo = mid
        if hi - lo < 1e-9:
            break
    return hi


def end_to_end_delay_95(
    arrivals: Sequence[Arrival], start_time: float, end_time: float
) -> float:
    """95% end-to-end delay of a scheme over the measurement window."""
    return percentile_of_delay_signal(arrivals, start_time, end_time, percentile=95.0)


def self_inflicted_delay(protocol_delay_95: float, omniscient_delay_95: float) -> float:
    """Self-inflicted delay: the protocol's 95% delay beyond the omniscient one."""
    if np.isnan(protocol_delay_95) or np.isnan(omniscient_delay_95):
        return float("nan")
    return max(0.0, protocol_delay_95 - omniscient_delay_95)


def per_packet_delays(arrivals: Sequence[Arrival]) -> List[float]:
    """One-way delay of each delivered packet, in arrival order.

    The live transport measures delay from *real* timestamps: the sender
    stamps each datagram with its monotonic send time and the receiver
    subtracts it on arrival.  Over loopback both stamps come from the same
    clock, so the differences are true one-way delays; the instantaneous
    delay *signal* above is the right tool for the simulator's evaluation
    windows, while these raw per-packet values back the live harness's
    percentile report (Snippet-1-style speed-test output).
    """
    return [arrival_time - send_time for arrival_time, send_time in arrivals]


def delay_percentiles(
    delays: Sequence[float],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, float]:
    """Named percentiles of a per-packet delay sample (``{"p95": ...}``).

    Returns ``nan`` for every requested percentile when the sample is
    empty, mirroring :func:`percentile_of_delay_signal` on an empty window.
    """
    keys = [f"p{int(p) if float(p).is_integer() else p}" for p in percentiles]
    if not delays:
        return {key: float("nan") for key in keys}
    values = np.percentile(np.asarray(delays, dtype=float), list(percentiles))
    return {key: float(value) for key, value in zip(keys, values)}


def longest_arrival_gap(arrival_times: Sequence[float]) -> float:
    """Longest silence between consecutive arrivals, in seconds.

    The live harness's blackout visibility metric: a mid-transfer outage
    shows up as one arrival gap roughly the length of the blackout window
    (plus the recovery RTO), where percentile summaries of per-packet
    delay would dilute it away.  Zero for fewer than two arrivals.
    """
    if len(arrival_times) < 2:
        return 0.0
    ordered = sorted(arrival_times)
    return float(max(b - a for a, b in zip(ordered, ordered[1:])))
