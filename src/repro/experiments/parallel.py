"""Parallel experiment matrix runner.

The evaluation's measurement matrix (every scheme over every link, the
substrate of Figures 7-8 and the introduction tables) is embarrassingly
parallel: each cell is an independent emulation.  :func:`run_matrix` here
fans the cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns results in exactly the order of the serial runner — scheme-major,
link-minor — so every downstream consumer (tables, figures, reports) sees
bit-identical output regardless of ``jobs``.

Each worker process warms the shared :class:`~repro.core.rate_model.RateModel`
once at start-up, so the per-cell cost is pure emulation.  Because that
warm-up used to be expensive (~2 s of Monte-Carlo precomputation; now a
model-artifact cache hit after the first build — docs/performance.md
"Layer 3"), :func:`shared_pool` lets a multi-matrix run (the full report, a
parameter sweep) open **one** warmed pool and reuse it for every matrix
instead of paying the warm-up once per matrix; :func:`run_cells` /
:func:`run_matrix` transparently pick the shared pool up when one is
active.

The cell runner is also *cache-shaped*: before fanning a batch out,
:func:`run_cells` collects the distinct
:class:`~repro.core.rate_model.RateModelParams` the cells will request
(:func:`required_model_params` — swept sigma/tick variants, tunnelled
scenarios carrying a tuned Sprout, the defaults) and builds each missing
model artifact exactly once in the parent (:func:`prewarm_models`).
Workers then load every model from the cache — by inherited memory when
they fork after the prewarm, from disk otherwise — instead of rebuilding
it per process.

Cells whose scheme cannot be pickled (ad-hoc :class:`SchemeSpec` instances
built around closures) are detected up front and run in the parent process
while the pool chews on the rest; the result ordering is unaffected.
Registry-built sweep variants (:func:`~repro.experiments.registry.sprout_variant`)
pickle fine and parallelise normally.

Failure handling is governed by an :class:`~repro.experiments.policy.ErrorPolicy`
(docs/robustness.md).  The default — ``fail_fast`` with no per-cell
timeout — takes the exact historical code path and stays bit-identical to
the serial runner.  Under ``collect``/``retry`` (or with a ``cell_timeout``
or checkpoint), the batch instead runs on a fault-tolerant scheduler that
records failed cells as structured
:class:`~repro.experiments.policy.CellError` outcomes in-place, retries
within the policy's budget, enforces per-cell wall-clock deadlines by
killing and rebuilding the worker pool, heals a pool broken by a
hard-dying worker (bounded by ``max_pool_rebuilds``), quarantines a cell
that breaks the pool twice to a serial in-parent run, and journals
completed cells for checkpoint/resume.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.policy import (
    CellError,
    CellTimeoutError,
    CheckpointJournal,
    ErrorPolicy,
    IncompleteBatchError,
    cell_key,
    cell_link_name,
    cell_scheme_name,
)
from repro.experiments.registry import SCHEMES, SchemeSpec
from repro.experiments.runner import (
    RunConfig,
    run_scheme_on_link,
)
from repro.metrics.summary import SchemeResult
from repro.testing.faults import fire_faults
from repro.traces.networks import LinkSpec

#: one matrix cell: (scheme, link, run parameters)
Cell = Tuple[Union[str, SchemeSpec], Union[str, LinkSpec], Optional[RunConfig]]

#: one batch outcome: the cell's result, or its failure record under
#: the ``collect``/``retry`` error policies
CellOutcome = Union[SchemeResult, CellError]

#: callback invoked with each finished cell outcome of a batch.  Under the
#: default ``fail_fast`` policy this only ever sees ``SchemeResult``s (the
#: historical contract); under ``collect``/``retry`` it also receives the
#: ``CellError`` of each failed cell.
ProgressCallback = Callable[[CellOutcome], None]


def default_jobs() -> int:
    """The default worker count: one per CPU."""
    return os.cpu_count() or 1


def _warm_worker() -> None:
    """Pool initializer: build the shared rate model once per process."""
    from repro.core.rate_model import shared_rate_model

    shared_rate_model()


def _run_cell(
    scheme: Union[str, SchemeSpec],
    link: Union[str, LinkSpec],
    config: Optional[RunConfig],
    attempt: int = 1,
    index: Optional[int] = None,
) -> SchemeResult:
    """Execute one cell in whichever process hosts it.

    ``attempt`` and ``index`` exist for the fault-injection harness
    (:mod:`repro.testing.faults`): when ``REPRO_FAULT_SPEC`` is armed the
    harness can target a specific cell and attempt.  Unarmed, the hook is
    one environment lookup.
    """
    fire_faults(cell_scheme_name(scheme), cell_link_name(link), attempt, index)
    return run_scheme_on_link(scheme, link, config)


# --------------------------------------------------------- model prewarming


def _cell_model_params(scheme: Union[str, SchemeSpec]):
    """The :class:`RateModelParams` the cell's Sprout will request, if any.

    Mirrors the recovery rules of the sweep expanders: registry
    ``sprout_variant`` specs carry their :class:`SproutConfig`
    (:func:`~repro.experiments.registry.sprout_variant_config`); tunnelled
    competing-flows scenarios carry the tunnel's; the plain registry
    ``Sprout`` uses defaults.  Schemes with no Bayesian model (TCP
    baselines, Sprout-EWMA, direct scenarios) and ad-hoc specs whose
    config cannot be recovered return ``None`` — the worker then builds on
    demand, exactly as before, so prewarming can only ever help.
    """
    from repro.core.connection import SproutConfig
    from repro.core.rate_model import RateModelParams
    from repro.experiments.competing import competing_scheme_parts
    from repro.experiments.registry import sprout_variant_config

    spec = SCHEMES.get(scheme) if isinstance(scheme, str) else scheme
    if not isinstance(spec, SchemeSpec):
        return None
    parts = competing_scheme_parts(spec)
    if parts is not None:
        _, tunnelled, sprout_config = parts
        if not tunnelled:
            return None
        config = sprout_config if sprout_config is not None else SproutConfig()
        return config.model_params or RateModelParams()
    if spec.category != "sprout" or spec.name == "Sprout-EWMA":
        return None
    config = sprout_variant_config(spec)
    if config is not None:
        if config.use_ewma:
            return None
        return config.model_params or RateModelParams()
    if spec.name == "Sprout":
        return RateModelParams()
    return None


def required_model_params(cells: Sequence[Cell]) -> List:
    """Distinct model parameter sets the cells will need, first-use order."""
    seen = {}
    for scheme, _, _ in cells:
        params = _cell_model_params(scheme)
        if params is not None and params not in seen:
            seen[params] = None
    return list(seen)


def prewarm_models(cells: Sequence[Cell], pool_started: bool = False) -> List:
    """Build (or cache-load) every model artifact the cells need, here.

    Called by :func:`run_cells` before fanning a batch out, so each missing
    artifact is built exactly once in the parent and lands in the shared
    model-artifact cache; workers fork with the warm memory tier or pull
    the ``.npz`` from disk, never rebuilding per process.  Only the
    *artifact* is published — no :class:`RateModel` instance is retained
    in the parent, so prewarming a wide grid cannot pin model instances
    past the artifact cache's own LRU bound.  Returns the distinct
    parameter sets that were warmed.

    Prewarming is skipped when parent-side builds cannot reach the
    workers: with the model cache disabled (``REPRO_MODEL_CACHE=0``, the
    uncached seed behaviour), or with the disk tier off while the pool's
    workers already exist (``pool_started`` — fork inheritance can no
    longer deliver the memory tier).
    """
    from repro.core.rate_model import RateModel, model_cache

    cache = model_cache()
    if not cache.enabled or (not cache.use_disk and pool_started):
        return []
    params_list = required_model_params(cells)
    for params in params_list:
        RateModel(params)
    return params_list


def _poolable(value: object) -> object:
    """Return a picklable stand-in for ``value``, or ``None`` if there is none.

    Registry-backed :class:`SchemeSpec` instances are sent by name (cheap and
    always picklable); anything else is kept only if it pickles as-is.
    """
    if isinstance(value, SchemeSpec) and SCHEMES.get(value.name) is value:
        return value.name
    try:
        pickle.dumps(value)
    except Exception:
        return None
    return value


# ----------------------------------------------------------- shared pool

#: the pool opened by the innermost active :func:`shared_pool`, if any
_SHARED_POOL: Optional[ProcessPoolExecutor] = None


def active_pool() -> Optional[ProcessPoolExecutor]:
    """The currently shared worker pool, or ``None`` outside shared_pool()."""
    return _SHARED_POOL


@contextmanager
def shared_pool(jobs: Optional[int] = None) -> Iterator[Optional[ProcessPoolExecutor]]:
    """Open one warmed worker pool and share it across every matrix inside.

    All :func:`run_matrix` / :func:`run_cells` calls made while the context
    is active reuse this pool instead of opening (and re-warming) their own.
    ``jobs`` of ``None`` or ``1`` yields no pool at all — everything inside
    runs serially, which keeps ``shared_pool(cfg.jobs)`` a safe no-op on the
    serial path.  ``0`` means one worker per CPU.  Nested calls reuse the
    outer pool.
    """
    global _SHARED_POOL
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if _SHARED_POOL is not None:
        yield _SHARED_POOL
        return
    if jobs is None or jobs == 1:
        yield None
        return
    workers = default_jobs() if jobs == 0 else jobs
    pool = ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker)
    _SHARED_POOL = pool
    try:
        yield pool
    finally:
        # Pool self-healing may have replaced the shared pool since we
        # opened it; shut down whichever instance is current.
        current = _SHARED_POOL
        _SHARED_POOL = None
        if current is not None:
            current.shutdown(wait=True)


# ------------------------------------------------------------- execution


#: how long (seconds) to wait for a terminated worker process to reap
_KILL_JOIN_TIMEOUT = 5.0


class _PoolHost:
    """Owns one worker pool on behalf of a batch, replaceable mid-batch.

    The fault-tolerant scheduler kills and rebuilds the pool after a
    worker dies hard or a cell timeout expires.  When the hosted pool is
    the :func:`shared_pool` one, a rebuild also swaps the module-level
    ``_SHARED_POOL`` so later batches (and the context manager's final
    shutdown) see the live replacement, never the corpse.
    """

    def __init__(self, pool: ProcessPoolExecutor, workers: int, shared: bool):
        self.pool = pool
        self.workers = max(1, workers)
        self.shared = shared

    def kill(self) -> None:
        """Terminate the pool's workers and abandon it (non-blocking).

        A graceful ``shutdown(wait=True)`` would block forever behind a
        hung worker, so the processes are terminated first.
        """
        processes = list(getattr(self.pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        for process in processes:
            try:
                process.join(_KILL_JOIN_TIMEOUT)
            except Exception:
                pass
        self.pool.shutdown(wait=False, cancel_futures=True)

    def rebuild(self) -> None:
        """Kill the current pool and stand up a fresh warmed one."""
        global _SHARED_POOL
        replace_shared = self.shared and _SHARED_POOL is self.pool
        self.kill()
        self.pool = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_warm_worker
        )
        if replace_shared:
            _SHARED_POOL = self.pool


#: record(index, outcome) — the batch sink the engines feed
_RecordFn = Callable[[int, CellOutcome], None]


def _run_cell_serially(
    cells: Sequence[Cell],
    index: int,
    policy: ErrorPolicy,
    start_attempt: int = 1,
) -> CellOutcome:
    """Run one cell in this process under the policy's retry semantics.

    ``start_attempt`` continues the attempt numbering of earlier pool
    attempts (quarantine and serial-drain re-runs), which keeps the fault
    harness's per-attempt clauses deterministic across engine transitions.
    The per-cell timeout cannot be enforced in-process and is ignored
    here (docs/robustness.md).
    """
    scheme, link, config = cells[index]
    attempt = start_attempt
    failures = 0
    while True:
        try:
            return _run_cell(scheme, link, config, attempt=attempt, index=index)
        except Exception as error:
            if policy.fail_fast:
                raise
            failures += 1
            if failures > policy.retry_budget:
                return CellError.from_exception(
                    cells[index], error, attempts=attempt, kind="error"
                )
            attempt += 1


def _run_indices_serial(
    cells: Sequence[Cell],
    indices: Sequence[int],
    policy: ErrorPolicy,
    record: _RecordFn,
) -> None:
    for index in indices:
        record(index, _run_cell_serially(cells, index, policy))


def _split_poolable(
    cells: Sequence[Cell], indices: Sequence[int]
) -> Tuple[List[Tuple[int, Cell]], List[int]]:
    """Partition ``indices`` into pool-sendable cells and parent-run ones."""
    sendable: List[Tuple[int, Cell]] = []
    local: List[int] = []
    for index in indices:
        scheme, link, config = cells[index]
        poolable_scheme = _poolable(scheme)
        poolable_link = _poolable(link)
        poolable_config = _poolable(config) if config is not None else None
        if poolable_scheme is None or poolable_link is None or (
            config is not None and poolable_config is None
        ):
            local.append(index)
        else:
            sendable.append((index, (poolable_scheme, poolable_link, poolable_config)))
    return sendable, local


def _run_indices_fast_pool(
    pool: ProcessPoolExecutor,
    cells: Sequence[Cell],
    indices: Sequence[int],
    record: _RecordFn,
) -> None:
    """The historical fail-fast fan-out: submit everything, first error wins.

    This is the path every default-policy batch takes; it is byte-for-byte
    the pre-robustness behavior (golden fixtures run through here).
    """
    sendable, local_indices = _split_poolable(cells, indices)
    future_index = {}
    try:
        for index, (scheme, link, config) in sendable:
            future = pool.submit(_run_cell, scheme, link, config, 1, index)
            future_index[future] = index

        # Run the unpicklable cells here while the pool works on the rest.
        for index in local_indices:
            scheme, link, config = cells[index]
            record(index, run_scheme_on_link(scheme, link, config))

        pending = set(future_index)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                record(future_index[future], future.result())
    except BaseException:
        # Don't let a shared pool (or this pool's shutdown) run the rest of
        # the work to completion behind a propagating error.
        for future in future_index:
            future.cancel()
        raise


def _run_indices_fault_tolerant(
    host: _PoolHost,
    cells: Sequence[Cell],
    indices: Sequence[int],
    policy: ErrorPolicy,
    record: _RecordFn,
) -> None:
    """The resilient fan-out: retries, deadlines, healing, quarantine.

    Engaged whenever the policy is not plain fail-fast (``collect`` /
    ``retry``, a ``cell_timeout``, or both).  Submission is bounded to one
    in-flight cell per worker so a cell's wall-clock deadline can be
    measured from its submit time; a hung or hard-dying worker is handled
    by killing and rebuilding the pool (at most ``policy.max_pool_rebuilds``
    times, after which the remainder of the batch drains serially in the
    parent); a cell in flight across two pool breaks is quarantined to a
    serial in-parent run so one pathological cell cannot wedge the batch.
    """
    sendable, local_indices = _split_poolable(cells, indices)
    sendable_cell = dict(sendable)
    # (index, attempt, suspicion): suspicion counts pool breaks survived
    # while this cell was in flight — two strikes quarantines it.
    ready = deque((index, 1, 0) for index, _ in sendable)
    in_flight = {}
    quarantined: List[Tuple[int, int]] = []
    rebuilds = 0
    drain_serially = False

    def fail_cell(index: int, attempt: int, error: BaseException, kind: str) -> bool:
        """Record or requeue one failed attempt; True if requeued."""
        if attempt <= policy.retry_budget:
            return True
        record(
            index,
            CellError.from_exception(cells[index], error, attempts=attempt, kind=kind),
        )
        return False

    def absorb_break(victims) -> None:
        """Redistribute in-flight cells after the pool died under them.

        Every victim *might* be the killer; certainty is impossible once
        the workers are gone.  Each gets a suspicion strike — the second
        strike quarantines — and its attempt number advances so the fault
        harness's per-attempt clauses see the re-run coming.
        """
        nonlocal rebuilds
        for index, attempt, suspicion in victims:
            if suspicion + 1 >= 2:
                quarantined.append((index, attempt + 1))
            else:
                ready.append((index, attempt + 1, suspicion + 1))
        in_flight.clear()
        rebuilds += 1

    try:
        # Parent-side (unpicklable) cells first: the pool path below blocks
        # on its futures, and these cells obey the same retry semantics.
        for index in local_indices:
            record(index, _run_cell_serially(cells, index, policy))

        while ready or in_flight:
            if rebuilds > policy.max_pool_rebuilds:
                host.kill()
                drain_serially = True
                break
            broken = False
            try:
                while ready and len(in_flight) < host.workers:
                    index, attempt, suspicion = ready.popleft()
                    scheme, link, config = sendable_cell[index]
                    future = host.pool.submit(
                        _run_cell, scheme, link, config, attempt, index
                    )
                    deadline = (
                        time.monotonic() + policy.cell_timeout
                        if policy.cell_timeout is not None
                        else None
                    )
                    in_flight[future] = (index, attempt, suspicion, deadline)
            except BrokenExecutor:
                if policy.fail_fast:
                    raise
                ready.append((index, attempt, suspicion))
                absorb_break(
                    [(i, a, s) for i, a, s, _ in in_flight.values()]
                )
                host.rebuild()
                continue

            poll = None
            if policy.cell_timeout is not None:
                now = time.monotonic()
                poll = max(
                    0.05,
                    min(
                        deadline - now
                        for _, _, _, deadline in in_flight.values()
                    ),
                )
            done, _ = wait(in_flight, timeout=poll, return_when=FIRST_COMPLETED)

            for future in done:
                index, attempt, suspicion, _ = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenExecutor:
                    if policy.fail_fast:
                        raise
                    broken = True
                    # The pool died with this cell in flight; it is a
                    # suspect, not (yet) a failure.
                    in_flight[future] = (index, attempt, suspicion, None)
                    continue
                except Exception as error:
                    if policy.fail_fast:
                        raise
                    if fail_cell(index, attempt, error, "error"):
                        ready.append((index, attempt + 1, suspicion))
                    continue
                record(index, result)

            if broken:
                absorb_break([(i, a, s) for i, a, s, _ in in_flight.values()])
                host.rebuild()
                continue

            if policy.cell_timeout is not None and in_flight:
                now = time.monotonic()
                expired = [
                    (future, info)
                    for future, info in in_flight.items()
                    if info[3] is not None and now >= info[3]
                ]
                if expired:
                    if policy.fail_fast:
                        index = expired[0][1][0]
                        scheme, link, _ = cells[index]
                        host.kill()
                        raise CellTimeoutError(
                            f"cell ({cell_scheme_name(scheme)}, "
                            f"{cell_link_name(link)}) exceeded the "
                            f"{policy.cell_timeout:g}s cell_timeout"
                        )
                    expired_futures = {future for future, _ in expired}
                    for future, (index, attempt, suspicion, _) in expired:
                        scheme, link, _ = cells[index]
                        error = CellTimeoutError(
                            f"cell ({cell_scheme_name(scheme)}, "
                            f"{cell_link_name(link)}) attempt {attempt} "
                            f"exceeded the {policy.cell_timeout:g}s cell_timeout"
                        )
                        if fail_cell(index, attempt, error, "timeout"):
                            ready.append((index, attempt + 1, suspicion))
                    # The hung worker cannot be reclaimed individually;
                    # innocents in flight go back to the queue unjudged
                    # (same attempt, no suspicion) and the pool is rebuilt.
                    for future, (index, attempt, suspicion, _) in in_flight.items():
                        if future not in expired_futures:
                            ready.append((index, attempt, suspicion))
                    in_flight.clear()
                    rebuilds += 1
                    host.rebuild()

        if drain_serially:
            # The rebuild budget is spent: finish in the parent, where no
            # pool can break.  Quarantined cells join the serial queue.
            for index, attempt, _ in ready:
                record(
                    index,
                    _run_cell_serially(cells, index, policy, start_attempt=attempt),
                )
            ready.clear()
    except BaseException:
        for future in in_flight:
            future.cancel()
        raise

    for index, attempt in quarantined:
        record(
            index, _run_cell_serially(cells, index, policy, start_attempt=attempt)
        )


def _resolve_policy(
    policy: Optional[ErrorPolicy], cells: Sequence[Cell]
) -> ErrorPolicy:
    """Explicit argument first, then the first cell carrying one, else default."""
    if policy is not None:
        return policy
    for _, _, config in cells:
        carried = getattr(config, "error_policy", None)
        if carried is not None:
            return carried
    return ErrorPolicy()


#: the cell-execution backends ``run_cells`` accepts
BACKENDS = ("processes", "batched")


def run_cells(
    cells: Sequence[Cell],
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
    policy: Optional[ErrorPolicy] = None,
    backend: str = "processes",
) -> List[CellOutcome]:
    """Run explicit ``(scheme, link, config)`` cells, preserving their order.

    This is the workhorse under :func:`run_matrix` and the sweep engine
    (:mod:`repro.experiments.sweeps`): unlike ``run_matrix`` every cell may
    carry its own :class:`RunConfig`.  Results are bit-identical to calling
    :func:`~repro.experiments.runner.run_scheme_on_link` cell by cell.

    ``jobs``: worker processes.  ``1`` always runs serially in-process;
    ``None`` reuses an active :func:`shared_pool` if one is open and runs
    serially otherwise; ``0`` means one worker per CPU.

    ``policy``: the batch's :class:`~repro.experiments.policy.ErrorPolicy`.
    ``None`` adopts the first policy found on a cell's
    :attr:`RunConfig.error_policy`, falling back to the fail-fast default.
    Under ``collect``/``retry`` the returned list holds a
    :class:`~repro.experiments.policy.CellError` at each failed cell's
    position (``docs/robustness.md``); every index is always filled —
    a hole raises :class:`~repro.experiments.policy.IncompleteBatchError`
    rather than silently shrinking the list.

    ``backend``: ``"processes"`` (the default) fans out over worker
    processes as described above; ``"batched"`` runs eligible Sprout cells
    through the in-process batched cross-cell engine
    (:mod:`repro.experiments.batched`, docs/performance.md "Layer 4"),
    which steps many cells' event loops in lockstep and vectorizes the
    forecaster math across them — bit-identical results, no worker pool.
    Ineligible cells (scenarios, Sprout-EWMA, CoDel, ad-hoc endpoints)
    fall back to the per-cell loop.  A ``cell_timeout`` needs preemptable
    workers, so such batches route to the pooled fault-tolerant engine
    regardless of ``backend``.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {', '.join(BACKENDS)}; got {backend!r}"
        )
    if jobs == 0:
        jobs = default_jobs()
    cell_list = list(cells)
    if not cell_list:
        return []
    active_policy = _resolve_policy(policy, cell_list)

    results: List[Optional[CellOutcome]] = [None] * len(cell_list)
    journal: Optional[CheckpointJournal] = None
    keys: Optional[List[str]] = None
    if active_policy.checkpoint:
        journal = CheckpointJournal(active_policy.checkpoint)
        keys = [cell_key(cell) for cell in cell_list]
        finished = journal.load()
        for index, key in enumerate(keys):
            if key in finished:
                # Resumed from the journal: no re-run, no progress event.
                results[index] = finished[key]

    def record(index: int, outcome: CellOutcome) -> None:
        results[index] = outcome
        if journal is not None and isinstance(outcome, SchemeResult):
            journal.record(keys[index], outcome)
        if progress is not None:
            progress(outcome)

    pending = [index for index, slot in enumerate(results) if slot is None]
    try:
        if pending:
            if backend == "batched" and active_policy.cell_timeout is None:
                from repro.experiments.batched import run_indices_batched

                run_indices_batched(cell_list, pending, active_policy, record)
            else:
                _dispatch(cell_list, pending, active_policy, record, jobs)
    finally:
        if journal is not None:
            journal.close()

    missing = [index for index, slot in enumerate(results) if slot is None]
    if missing:
        raise IncompleteBatchError(missing, len(cell_list))
    return results


def _dispatch(
    cells: Sequence[Cell],
    pending: Sequence[int],
    policy: ErrorPolicy,
    record: _RecordFn,
    jobs: Optional[int],
) -> None:
    """Route the pending cells to the serial, fast-pool, or resilient engine."""
    if jobs == 1:
        _run_indices_serial(cells, pending, policy, record)
        return
    pending_cells = [cells[index] for index in pending]
    fast = policy.fail_fast and policy.cell_timeout is None
    shared = active_pool()
    if shared is not None:
        # A shared pool's workers spawn lazily on first submit; once any
        # exist, fork inheritance cannot deliver new in-memory artifacts.
        prewarm_models(
            pending_cells, pool_started=bool(getattr(shared, "_processes", None))
        )
        if fast:
            _run_indices_fast_pool(shared, cells, pending, record)
        else:
            host = _PoolHost(
                shared, getattr(shared, "_max_workers", None) or default_jobs(), True
            )
            _run_indices_fault_tolerant(host, cells, pending, policy, record)
        return
    workers = min(jobs or 1, len(pending))
    if workers <= 1:
        _run_indices_serial(cells, pending, policy, record)
        return
    # Build every distinct model artifact once, before the pool exists, so
    # the workers fork with (or disk-load) warm caches instead of each
    # rebuilding every swept model.
    prewarm_models(pending_cells)
    if fast:
        with ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker) as pool:
            _run_indices_fast_pool(pool, cells, pending, record)
        return
    host = _PoolHost(
        ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker),
        workers,
        False,
    )
    try:
        _run_indices_fault_tolerant(host, cells, pending, policy, record)
    finally:
        host.pool.shutdown(wait=True)


def run_matrix(
    schemes: Iterable[Union[str, SchemeSpec]],
    links: Iterable[Union[str, LinkSpec]],
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> List[SchemeResult]:
    """Run every scheme over every link, fanned out over worker processes.

    Args:
        schemes: scheme names (or specs) — the matrix rows.
        links: link names (or specs) — the matrix columns.
        config: run parameters shared by every cell.
        progress: invoked with each finished :class:`SchemeResult` as it
            completes (completion order, not matrix order).
        jobs: worker processes.  ``1`` always runs serially in-process;
            ``None`` reuses an active :func:`shared_pool` if one is open
            and runs serially otherwise; ``0`` means :func:`default_jobs`.

    Returns:
        Results in the serial runner's order (scheme-major, link-minor),
        bit-identical to ``repro.experiments.runner.run_matrix``.
    """
    link_list = list(links)
    cells: List[Cell] = [
        (scheme, link, config) for scheme in schemes for link in link_list
    ]
    return run_cells(cells, progress=progress, jobs=jobs)
