"""Parallel experiment matrix runner.

The evaluation's measurement matrix (every scheme over every link, the
substrate of Figures 7-8 and the introduction tables) is embarrassingly
parallel: each cell is an independent emulation.  :func:`run_matrix` here
fans the cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns results in exactly the order of the serial runner — scheme-major,
link-minor — so every downstream consumer (tables, figures, reports) sees
bit-identical output regardless of ``jobs``.

Each worker process warms the shared :class:`~repro.core.rate_model.RateModel`
once at start-up, so the per-cell cost is pure emulation.  Because that
warm-up used to be expensive (~2 s of Monte-Carlo precomputation; now a
model-artifact cache hit after the first build — docs/performance.md
"Layer 3"), :func:`shared_pool` lets a multi-matrix run (the full report, a
parameter sweep) open **one** warmed pool and reuse it for every matrix
instead of paying the warm-up once per matrix; :func:`run_cells` /
:func:`run_matrix` transparently pick the shared pool up when one is
active.

The cell runner is also *cache-shaped*: before fanning a batch out,
:func:`run_cells` collects the distinct
:class:`~repro.core.rate_model.RateModelParams` the cells will request
(:func:`required_model_params` — swept sigma/tick variants, tunnelled
scenarios carrying a tuned Sprout, the defaults) and builds each missing
model artifact exactly once in the parent (:func:`prewarm_models`).
Workers then load every model from the cache — by inherited memory when
they fork after the prewarm, from disk otherwise — instead of rebuilding
it per process.

Cells whose scheme cannot be pickled (ad-hoc :class:`SchemeSpec` instances
built around closures) are detected up front and run in the parent process
while the pool chews on the rest; the result ordering is unaffected.
Registry-built sweep variants (:func:`~repro.experiments.registry.sprout_variant`)
pickle fine and parallelise normally.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.registry import SCHEMES, SchemeSpec
from repro.experiments.runner import (
    ProgressCallback,
    RunConfig,
    run_scheme_on_link,
)
from repro.metrics.summary import SchemeResult
from repro.traces.networks import LinkSpec

#: one matrix cell: (scheme, link, run parameters)
Cell = Tuple[Union[str, SchemeSpec], Union[str, LinkSpec], Optional[RunConfig]]


def default_jobs() -> int:
    """The default worker count: one per CPU."""
    return os.cpu_count() or 1


def _warm_worker() -> None:
    """Pool initializer: build the shared rate model once per process."""
    from repro.core.rate_model import shared_rate_model

    shared_rate_model()


def _run_cell(
    scheme: Union[str, SchemeSpec],
    link: Union[str, LinkSpec],
    config: Optional[RunConfig],
) -> SchemeResult:
    return run_scheme_on_link(scheme, link, config)


# --------------------------------------------------------- model prewarming


def _cell_model_params(scheme: Union[str, SchemeSpec]):
    """The :class:`RateModelParams` the cell's Sprout will request, if any.

    Mirrors the recovery rules of the sweep expanders: registry
    ``sprout_variant`` specs carry their :class:`SproutConfig`
    (:func:`~repro.experiments.registry.sprout_variant_config`); tunnelled
    competing-flows scenarios carry the tunnel's; the plain registry
    ``Sprout`` uses defaults.  Schemes with no Bayesian model (TCP
    baselines, Sprout-EWMA, direct scenarios) and ad-hoc specs whose
    config cannot be recovered return ``None`` — the worker then builds on
    demand, exactly as before, so prewarming can only ever help.
    """
    from repro.core.connection import SproutConfig
    from repro.core.rate_model import RateModelParams
    from repro.experiments.competing import competing_scheme_parts
    from repro.experiments.registry import sprout_variant_config

    spec = SCHEMES.get(scheme) if isinstance(scheme, str) else scheme
    if not isinstance(spec, SchemeSpec):
        return None
    parts = competing_scheme_parts(spec)
    if parts is not None:
        _, tunnelled, sprout_config = parts
        if not tunnelled:
            return None
        config = sprout_config if sprout_config is not None else SproutConfig()
        return config.model_params or RateModelParams()
    if spec.category != "sprout" or spec.name == "Sprout-EWMA":
        return None
    config = sprout_variant_config(spec)
    if config is not None:
        if config.use_ewma:
            return None
        return config.model_params or RateModelParams()
    if spec.name == "Sprout":
        return RateModelParams()
    return None


def required_model_params(cells: Sequence[Cell]) -> List:
    """Distinct model parameter sets the cells will need, first-use order."""
    seen = {}
    for scheme, _, _ in cells:
        params = _cell_model_params(scheme)
        if params is not None and params not in seen:
            seen[params] = None
    return list(seen)


def prewarm_models(cells: Sequence[Cell], pool_started: bool = False) -> List:
    """Build (or cache-load) every model artifact the cells need, here.

    Called by :func:`run_cells` before fanning a batch out, so each missing
    artifact is built exactly once in the parent and lands in the shared
    model-artifact cache; workers fork with the warm memory tier or pull
    the ``.npz`` from disk, never rebuilding per process.  Only the
    *artifact* is published — no :class:`RateModel` instance is retained
    in the parent, so prewarming a wide grid cannot pin model instances
    past the artifact cache's own LRU bound.  Returns the distinct
    parameter sets that were warmed.

    Prewarming is skipped when parent-side builds cannot reach the
    workers: with the model cache disabled (``REPRO_MODEL_CACHE=0``, the
    uncached seed behaviour), or with the disk tier off while the pool's
    workers already exist (``pool_started`` — fork inheritance can no
    longer deliver the memory tier).
    """
    from repro.core.rate_model import RateModel, model_cache

    cache = model_cache()
    if not cache.enabled or (not cache.use_disk and pool_started):
        return []
    params_list = required_model_params(cells)
    for params in params_list:
        RateModel(params)
    return params_list


def _poolable(value: object) -> object:
    """Return a picklable stand-in for ``value``, or ``None`` if there is none.

    Registry-backed :class:`SchemeSpec` instances are sent by name (cheap and
    always picklable); anything else is kept only if it pickles as-is.
    """
    if isinstance(value, SchemeSpec) and SCHEMES.get(value.name) is value:
        return value.name
    try:
        pickle.dumps(value)
    except Exception:
        return None
    return value


# ----------------------------------------------------------- shared pool

#: the pool opened by the innermost active :func:`shared_pool`, if any
_SHARED_POOL: Optional[ProcessPoolExecutor] = None


def active_pool() -> Optional[ProcessPoolExecutor]:
    """The currently shared worker pool, or ``None`` outside shared_pool()."""
    return _SHARED_POOL


@contextmanager
def shared_pool(jobs: Optional[int] = None) -> Iterator[Optional[ProcessPoolExecutor]]:
    """Open one warmed worker pool and share it across every matrix inside.

    All :func:`run_matrix` / :func:`run_cells` calls made while the context
    is active reuse this pool instead of opening (and re-warming) their own.
    ``jobs`` of ``None`` or ``1`` yields no pool at all — everything inside
    runs serially, which keeps ``shared_pool(cfg.jobs)`` a safe no-op on the
    serial path.  ``0`` means one worker per CPU.  Nested calls reuse the
    outer pool.
    """
    global _SHARED_POOL
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if _SHARED_POOL is not None:
        yield _SHARED_POOL
        return
    if jobs is None or jobs == 1:
        yield None
        return
    workers = default_jobs() if jobs == 0 else jobs
    pool = ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker)
    _SHARED_POOL = pool
    try:
        yield pool
    finally:
        _SHARED_POOL = None
        pool.shutdown(wait=True)


# ------------------------------------------------------------- execution


def _run_cells_serial(
    cells: Sequence[Cell], progress: Optional[ProgressCallback]
) -> List[SchemeResult]:
    results: List[SchemeResult] = []
    for scheme, link, config in cells:
        result = run_scheme_on_link(scheme, link, config)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def _run_cells_on_pool(
    pool: ProcessPoolExecutor,
    cells: Sequence[Cell],
    progress: Optional[ProgressCallback],
) -> List[SchemeResult]:
    results: List[Optional[SchemeResult]] = [None] * len(cells)
    local_indices: List[int] = []
    future_index = {}
    try:
        for index, (scheme, link, config) in enumerate(cells):
            sendable_scheme = _poolable(scheme)
            sendable_link = _poolable(link)
            sendable_config = _poolable(config) if config is not None else None
            if sendable_scheme is None or sendable_link is None or (
                config is not None and sendable_config is None
            ):
                local_indices.append(index)
                continue
            future = pool.submit(_run_cell, sendable_scheme, sendable_link, sendable_config)
            future_index[future] = index

        # Run the unpicklable cells here while the pool works on the rest.
        for index in local_indices:
            scheme, link, config = cells[index]
            results[index] = run_scheme_on_link(scheme, link, config)
            if progress is not None:
                progress(results[index])

        pending = set(future_index)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                result = future.result()
                results[future_index[future]] = result
                if progress is not None:
                    progress(result)
    except BaseException:
        # Don't let a shared pool (or this pool's shutdown) run the rest of
        # the work to completion behind a propagating error.
        for future in future_index:
            future.cancel()
        raise
    return [result for result in results if result is not None]


def run_cells(
    cells: Sequence[Cell],
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> List[SchemeResult]:
    """Run explicit ``(scheme, link, config)`` cells, preserving their order.

    This is the workhorse under :func:`run_matrix` and the sweep engine
    (:mod:`repro.experiments.sweeps`): unlike ``run_matrix`` every cell may
    carry its own :class:`RunConfig`.  Results are bit-identical to calling
    :func:`~repro.experiments.runner.run_scheme_on_link` cell by cell.

    ``jobs``: worker processes.  ``1`` always runs serially in-process;
    ``None`` reuses an active :func:`shared_pool` if one is open and runs
    serially otherwise; ``0`` means one worker per CPU.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    cell_list = list(cells)
    if not cell_list:
        return []
    if jobs == 1:
        return _run_cells_serial(cell_list, progress)
    shared = active_pool()
    if shared is not None:
        # A shared pool's workers spawn lazily on first submit; once any
        # exist, fork inheritance cannot deliver new in-memory artifacts.
        prewarm_models(cell_list, pool_started=bool(getattr(shared, "_processes", None)))
        return _run_cells_on_pool(shared, cell_list, progress)
    workers = min(jobs or 1, len(cell_list))
    if workers <= 1:
        return _run_cells_serial(cell_list, progress)
    # Build every distinct model artifact once, before the pool exists, so
    # the workers fork with (or disk-load) warm caches instead of each
    # rebuilding every swept model.
    prewarm_models(cell_list)
    with ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker) as pool:
        return _run_cells_on_pool(pool, cell_list, progress)


def run_matrix(
    schemes: Iterable[Union[str, SchemeSpec]],
    links: Iterable[Union[str, LinkSpec]],
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> List[SchemeResult]:
    """Run every scheme over every link, fanned out over worker processes.

    Args:
        schemes: scheme names (or specs) — the matrix rows.
        links: link names (or specs) — the matrix columns.
        config: run parameters shared by every cell.
        progress: invoked with each finished :class:`SchemeResult` as it
            completes (completion order, not matrix order).
        jobs: worker processes.  ``1`` always runs serially in-process;
            ``None`` reuses an active :func:`shared_pool` if one is open
            and runs serially otherwise; ``0`` means :func:`default_jobs`.

    Returns:
        Results in the serial runner's order (scheme-major, link-minor),
        bit-identical to ``repro.experiments.runner.run_matrix``.
    """
    link_list = list(links)
    cells: List[Cell] = [
        (scheme, link, config) for scheme in schemes for link in link_list
    ]
    return run_cells(cells, progress=progress, jobs=jobs)
