"""Parallel experiment matrix runner.

The evaluation's measurement matrix (every scheme over every link, the
substrate of Figures 7-8 and the introduction tables) is embarrassingly
parallel: each cell is an independent emulation.  :func:`run_matrix` here
fans the cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns results in exactly the order of the serial runner — scheme-major,
link-minor — so every downstream consumer (tables, figures, reports) sees
bit-identical output regardless of ``jobs``.

Each worker process warms the shared :class:`~repro.core.rate_model.RateModel`
once at start-up (its Monte-Carlo CDF precomputation costs ~2 s), so the
per-cell cost is pure emulation.

Cells whose scheme cannot be pickled (ad-hoc :class:`SchemeSpec` instances
built around closures, e.g. the Figure 9 confidence sweep) are detected up
front and run in the parent process while the pool chews on the rest; the
result ordering is unaffected.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.experiments.registry import SCHEMES, SchemeSpec
from repro.experiments.runner import (
    ProgressCallback,
    RunConfig,
    run_scheme_on_link,
)
from repro.experiments.runner import run_matrix as run_matrix_serial
from repro.metrics.summary import SchemeResult
from repro.traces.networks import LinkSpec


def default_jobs() -> int:
    """The default worker count: one per CPU."""
    return os.cpu_count() or 1


def _warm_worker() -> None:
    """Pool initializer: build the shared rate model once per process."""
    from repro.core.rate_model import shared_rate_model

    shared_rate_model()


def _run_cell(
    scheme: Union[str, SchemeSpec],
    link: Union[str, LinkSpec],
    config: Optional[RunConfig],
) -> SchemeResult:
    return run_scheme_on_link(scheme, link, config)


def _poolable(value: object) -> object:
    """Return a picklable stand-in for ``value``, or ``None`` if there is none.

    Registry-backed :class:`SchemeSpec` instances are sent by name (cheap and
    always picklable); anything else is kept only if it pickles as-is.
    """
    if isinstance(value, SchemeSpec) and SCHEMES.get(value.name) is value:
        return value.name
    try:
        pickle.dumps(value)
    except Exception:
        return None
    return value


def run_matrix(
    schemes: Iterable[Union[str, SchemeSpec]],
    links: Iterable[Union[str, LinkSpec]],
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> List[SchemeResult]:
    """Run every scheme over every link, fanned out over worker processes.

    Args:
        schemes: scheme names (or specs) — the matrix rows.
        links: link names (or specs) — the matrix columns.
        config: run parameters shared by every cell.
        progress: invoked with each finished :class:`SchemeResult` as it
            completes (completion order, not matrix order).
        jobs: worker processes; ``None`` or ``1`` runs serially in-process,
            0 means :func:`default_jobs`.

    Returns:
        Results in the serial runner's order (scheme-major, link-minor),
        bit-identical to ``repro.experiments.runner.run_matrix``.
    """
    scheme_list = list(schemes)
    link_list = list(links)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    cells: List[Tuple[Union[str, SchemeSpec], Union[str, LinkSpec]]] = [
        (scheme, link) for scheme in scheme_list for link in link_list
    ]
    workers = min(jobs or 1, len(cells))
    if workers <= 1:
        return run_matrix_serial(scheme_list, link_list, config=config, progress=progress)

    results: List[Optional[SchemeResult]] = [None] * len(cells)
    local_indices: List[int] = []
    with ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker) as pool:
        future_index = {}
        try:
            for index, (scheme, link) in enumerate(cells):
                sendable_scheme = _poolable(scheme)
                sendable_link = _poolable(link)
                if sendable_scheme is None or sendable_link is None:
                    local_indices.append(index)
                    continue
                future = pool.submit(_run_cell, sendable_scheme, sendable_link, config)
                future_index[future] = index

            # Run the unpicklable cells here while the pool works on the rest.
            for index in local_indices:
                scheme, link = cells[index]
                results[index] = run_scheme_on_link(scheme, link, config)
                if progress is not None:
                    progress(results[index])

            pending = set(future_index)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()
                    results[future_index[future]] = result
                    if progress is not None:
                        progress(result)
        except BaseException:
            # Don't let the pool's shutdown(wait=True) run the rest of the
            # matrix to completion behind a propagating error.
            for future in future_index:
                future.cancel()
            raise
    return [result for result in results if result is not None]
