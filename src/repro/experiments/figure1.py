"""Figure 1: Skype and Sprout time series on the Verizon LTE downlink.

The paper's opening figure shows, over a ~60 second section of the Verizon
LTE downlink trace, the link capacity, each scheme's achieved throughput,
and each scheme's per-packet delay: Skype overshoots on rate drops and
builds multi-second standing queues, while Sprout tracks the capacity and
keeps delay near its 100 ms target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cellsim.cellsim import cellsim_for_link
from repro.experiments.registry import get_scheme
from repro.experiments.runner import RunConfig
from repro.traces.analysis import capacity_timeseries
from repro.traces.networks import get_link


@dataclass
class SchemeTimeseries:
    """Per-scheme series: throughput per second and per-packet delay."""

    scheme: str
    times: np.ndarray
    throughput_kbps: np.ndarray
    delay_times: np.ndarray
    delay_ms: np.ndarray


@dataclass
class Figure1Data:
    """Everything needed to redraw Figure 1."""

    link: str
    capacity_times: np.ndarray
    capacity_kbps: np.ndarray
    schemes: Dict[str, SchemeTimeseries]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Mean throughput and 95th-percentile delay per scheme."""
        out: Dict[str, Dict[str, float]] = {}
        for name, series in self.schemes.items():
            out[name] = {
                "mean_throughput_kbps": float(np.mean(series.throughput_kbps)),
                "p95_delay_ms": float(np.percentile(series.delay_ms, 95))
                if series.delay_ms.size
                else float("nan"),
            }
        return out


def _scheme_timeseries(
    scheme_name: str,
    link_name: str,
    duration: float,
    bin_width: float,
) -> SchemeTimeseries:
    spec = get_scheme(scheme_name)
    link = get_link(link_name)
    sender, receiver = spec.factory()
    sim = cellsim_for_link(sender, receiver, link, duration=duration, use_codel=spec.use_codel)
    sim.run(duration)

    arrivals: List[Tuple[float, float, int]] = []
    for arrival_time, packet in sim.receiver_host.received_log:
        if packet.sent_at is None:
            continue
        arrivals.append((arrival_time, packet.sent_at, packet.size))

    edges = np.arange(0.0, duration + bin_width, bin_width)
    centers = (edges[:-1] + edges[1:]) / 2.0
    throughput = np.zeros(len(centers))
    for arrival_time, _, size in arrivals:
        index = min(int(arrival_time / bin_width), len(centers) - 1)
        throughput[index] += size * 8.0 / bin_width / 1000.0

    delay_times = np.array([a for a, _, _ in arrivals])
    delay_ms = np.array([(a - s) * 1000.0 for a, s, _ in arrivals])
    return SchemeTimeseries(
        scheme=scheme_name,
        times=centers,
        throughput_kbps=throughput,
        delay_times=delay_times,
        delay_ms=delay_ms,
    )


def run_figure1(
    link_name: str = "Verizon LTE downlink",
    schemes: Sequence[str] = ("Skype", "Sprout"),
    duration: float = 60.0,
    bin_width: float = 1.0,
    config: Optional[RunConfig] = None,
) -> Figure1Data:
    """Regenerate the data behind Figure 1."""
    del config  # the time-series figure always runs the full window
    link = get_link(link_name)
    from repro.traces.networks import link_trace

    trace = link_trace(link, duration)
    capacity_times, capacity_kbps = capacity_timeseries(trace, bin_width=bin_width)

    series: Dict[str, SchemeTimeseries] = {}
    for scheme in schemes:
        series[scheme] = _scheme_timeseries(scheme, link_name, duration, bin_width)
    return Figure1Data(
        link=link.name,
        capacity_times=capacity_times,
        capacity_kbps=capacity_kbps,
        schemes=series,
    )


def render_figure1(data: Figure1Data) -> str:
    """Plain-text rendering of the Figure 1 comparison."""
    lines = [f"Figure 1 — {data.link}", ""]
    lines.append(
        f"{'scheme':12s} {'mean tput (kbps)':>18s} {'95th pct delay (ms)':>21s}"
    )
    for name, stats in data.summary().items():
        lines.append(
            f"{name:12s} {stats['mean_throughput_kbps']:18.0f} "
            f"{stats['p95_delay_ms']:21.0f}"
        )
    lines.append("")
    lines.append(f"link capacity: mean {np.mean(data.capacity_kbps):.0f} kbps, "
                 f"peak {np.max(data.capacity_kbps):.0f} kbps")
    return "\n".join(lines)
