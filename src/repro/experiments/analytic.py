"""Analytic screening tier: closed-form predictors, screening, validation.

Million-cell grids are intractable if every cell is emulated, but most cells
are nowhere near the throughput/delay frontier the paper's Figures 7/8 plot.
This module provides closed-form steady-state predictors — evaluated in
microseconds instead of the seconds a packet-level emulation costs — and
wires them into the grid engine two ways (docs/analytic.md):

* **Screening** (:func:`run_grid_screened`, or ``run_grid(screen=...)`` /
  ``repro sweep --screen``): every cell is predicted analytically, and only
  cells near the predicted Pareto frontier or with high model uncertainty
  are emulated.  Screened-out cells land in the grid as
  :class:`~repro.metrics.summary.ScreenedResult` records carrying the
  *predicted* metrics, exported with ``screened`` / ``predicted_*`` fields
  (schema v4) so a reader can never mistake a prediction for a measurement.
* **Differential validation** (:func:`validate_grid`): simulated Reno/Cubic
  throughput is compared against the analytic prediction, and structured
  :class:`Divergence` records — in the in-place reporting style of the
  error-policy layer's :class:`~repro.experiments.policy.CellError` — are
  emitted where relative error exceeds the calibrated tolerance.  This is a
  standing correctness oracle: an accidental change to the AIMD constants,
  the ACK clock, or the loss machinery trips it (``tests/test_analytic_
  oracle.py``).

The predictors:

* :func:`reno_throughput_pps` — the PFTK steady-state response function
  (Padhye, Firoiu, Towsley & Kurose, SIGCOMM 1998), with the timeout term.
* :func:`cubic_throughput_pps` — the CUBIC response function (Ha, Rhee &
  Xu 2008), lower-bounded by the TCP-friendly (Reno-equivalent) region the
  implementation enforces.
* :func:`csa_transfer_time` — a Cardwell–Savage–Anderson style model of a
  finite transfer: slow start, the first-loss cost, then PFTK-rate
  congestion avoidance.
* :func:`queueing_delay_s` — the standing-queue sojourn implied by
  (link rate, qlimit, aqm) for a buffer-filling loss-based sender.
* :func:`sprout_forecast_moments` — a moment-closure approximation of the
  Sprout forecast: mean/variance of cumulative delivery under the Brownian
  rate model, instead of the full per-tick CDF tensor.

All formulas use the textbook constants *independently* of the simulator's
baseline classes; the oracle tests assert the two agree (for example that
``RenoSender.BETA`` is the ``1/2`` baked into PFTK's ``sqrt(2bp/3)``), so a
drive-by change to either side surfaces as a test failure rather than a
silent recalibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.base import RttEstimator
from repro.core.connection import SproutConfig
from repro.core.rate_model import RateModelParams
from repro.experiments.competing import competing_scheme_parts
from repro.experiments.parallel import Cell, CellOutcome, run_cells
from repro.experiments.policy import (
    ErrorPolicy,
    cell_link_name,
    cell_scheme_name,
    is_cell_error,
)
from repro.experiments.registry import SchemeSpec, get_scheme, sprout_variant_config
from repro.experiments.runner import ProgressCallback, RunConfig
from repro.experiments.sweeps import GridData, GridSpec, expand_grid, grid_points
from repro.metrics.summary import ScreenedResult, SchemeResult, is_screened
from repro.simulation.delay_box import DEFAULT_PROPAGATION_DELAY
from repro.simulation.packet import MTU_BYTES
from repro.simulation.queues import AQM_CODEL, QueueConfig
from repro.traces.channel import ChannelConfig
from repro.traces.networks import LinkSpec, get_link

__all__ = [
    "AnalyticPrediction",
    "Divergence",
    "ORACLE_SCHEMES",
    "ORACLE_TOLERANCE",
    "ScreenConfig",
    "ScreenPlan",
    "csa_transfer_time",
    "cubic_throughput_pps",
    "effective_link_rate_pps",
    "plan_screen",
    "predict_cell",
    "queueing_delay_s",
    "render_divergences",
    "reno_throughput_pps",
    "run_grid_screened",
    "sprout_conservative_rate_pps",
    "sprout_forecast_moments",
    "validate_grid",
]

_INF = float("inf")

#: segments acknowledged per ACK.  :class:`~repro.baselines.base.AckingReceiver`
#: acks every data segment, so the PFTK ``b`` parameter is 1 here (delayed
#: ACKs would make it 2).
ACKS_PER_SEGMENT = 1.0


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _require_loss(loss: float) -> None:
    if not 0.0 <= loss < 1.0:
        raise ValueError(f"loss rate must be in [0, 1), got {loss}")


# ------------------------------------------------------- TCP response functions


def reno_throughput_pps(
    loss: float,
    rtt: float,
    *,
    b: float = ACKS_PER_SEGMENT,
    min_rto: float = RttEstimator.MIN_RTO,
    wmax: float = _INF,
) -> float:
    """PFTK steady-state Reno throughput in packets per second.

    The full response function of Padhye et al. (1998), equation (30)::

                       wmax          1
        B(p) = min( ------ , --------------------------------------------- )
                      RTT     RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))
                                                  * p * (1 + 32 p^2)

    with ``T0 = max(min_rto, 2*RTT)`` (the simulator's RFC 6298 floor).
    ``loss == 0`` returns the receive-window bound ``wmax / rtt`` — infinite
    at the default ``wmax``, meaning "capacity-limited, not loss-limited".
    """
    _require_loss(loss)
    _require_positive("rtt", rtt)
    _require_positive("b", b)
    window_bound = wmax / rtt
    if loss == 0.0:
        return window_bound
    t0 = max(min_rto, 2.0 * rtt)
    fast_retransmit = rtt * math.sqrt(2.0 * b * loss / 3.0)
    timeout = (
        t0
        * min(1.0, 3.0 * math.sqrt(3.0 * b * loss / 8.0))
        * loss
        * (1.0 + 32.0 * loss * loss)
    )
    return min(window_bound, 1.0 / (fast_retransmit + timeout))


#: CUBIC's constants (Ha, Rhee & Xu 2008); the oracle asserts these match
#: :class:`~repro.baselines.cubic.CubicSender`'s class attributes.
CUBIC_C = 0.4
CUBIC_BETA = 0.7


def cubic_throughput_pps(
    loss: float,
    rtt: float,
    *,
    c: float = CUBIC_C,
    beta: float = CUBIC_BETA,
    b: float = ACKS_PER_SEGMENT,
    min_rto: float = RttEstimator.MIN_RTO,
    wmax: float = _INF,
) -> float:
    """CUBIC steady-state throughput in packets per second.

    The deterministic-loss response function of the cubic growth curve::

        B(p) = ( C * (3 + beta) / (4 * (1 - beta)) )^(1/4)
               * RTT^(-1/4) * p^(-3/4)

    lower-bounded by the Reno response (:func:`reno_throughput_pps`) because
    the implementation's TCP-friendly region guarantees at least standard
    AIMD throughput — the binding regime at the short RTTs and non-trivial
    loss rates of the cellular links here.
    """
    _require_loss(loss)
    _require_positive("rtt", rtt)
    window_bound = wmax / rtt
    if loss == 0.0:
        return window_bound
    cubic = (c * (3.0 + beta) / (4.0 * (1.0 - beta))) ** 0.25 * rtt**-0.25 * loss**-0.75
    friendly = reno_throughput_pps(loss, rtt, b=b, min_rto=min_rto, wmax=wmax)
    return min(window_bound, max(cubic, friendly))


# --------------------------------------------------------- CSA transfer time


def _timeout_probability(loss: float, window: float) -> float:
    """PFTK's Q-hat: probability a loss is detected by timeout, not dupacks."""
    w = max(window, 1.0)
    omp = 1.0 - loss
    denominator = -math.expm1(w * math.log(omp))  # 1 - (1-p)^w
    if not denominator > 0.0:  # also catches the nan of w=inf, log(omp)=0
        return 1.0
    numerator = 1.0 + omp**3 * -math.expm1((w - 3.0) * math.log(omp))
    q = numerator * -math.expm1(3.0 * math.log(omp)) / denominator
    # The guard keeps the small-window regime (where the algebra can leave
    # [0, 1]) pinned to "every loss is a timeout", matching CSA's min(1, .).
    return min(1.0, max(0.0, q))


def csa_transfer_time(
    nbytes: float,
    mss: float,
    rtt: float,
    loss: float,
    *,
    initial_window: float = 3.0,
    gamma: float = 1.5,
    b: float = ACKS_PER_SEGMENT,
    min_rto: float = RttEstimator.MIN_RTO,
) -> float:
    """Expected transfer time (seconds) of ``nbytes`` in the CSA model.

    Cardwell, Savage & Anderson (INFOCOM 2000) extend PFTK to finite
    transfers: expected time is the sum of the initial slow-start phase,
    the cost of the first loss (timeout or fast retransmit), and the
    remaining packets sent at the PFTK congestion-avoidance rate.  ``gamma``
    is the per-RTT slow-start growth factor (1.5 with delayed ACKs in the
    original; the every-segment-ACK receiver here doubles, but the model is
    used with its published default for tolerance continuity).

    One deliberate deviation from the paper: the timeout-vs-dupack split of
    the first loss uses the *steady-state* window (PFTK's E[W]) rather than
    the expected slow-start window, which makes the model provably
    non-increasing in ``mss`` (the Hypothesis property suite relies on it)
    at negligible cost in accuracy over the swept ranges.
    """
    _require_positive("nbytes", nbytes)
    _require_positive("mss", mss)
    _require_positive("rtt", rtt)
    _require_loss(loss)
    if gamma <= 1.0:
        raise ValueError(f"gamma must exceed 1 (slow start must grow), got {gamma}")
    packets = float(math.ceil(nbytes / mss))
    omp = 1.0 - loss
    if loss == 0.0 or omp == 1.0:
        # Pure slow start: the window grows geometrically until the transfer
        # completes; time is the number of gamma-rounds covering ``packets``.
        # The ``omp == 1.0`` arm catches subnormal loss rates that underflow
        # ``1 - loss`` — the steady-state algebra below would overflow, and
        # the lossless model is the right limit anyway.
        return rtt * math.log(packets * (gamma - 1.0) / initial_window + 1.0) / math.log(gamma)
    # Expected packets sent in the initial slow-start phase (CSA eq. 5),
    # capped by the transfer itself.
    loss_before_end = -math.expm1(packets * math.log(omp))  # 1 - (1-p)^d
    slow_start_packets = min(packets, math.floor(loss_before_end * omp / loss + 1.0))
    slow_start_time = (
        rtt
        * math.log(slow_start_packets * (gamma - 1.0) / initial_window + 1.0)
        / math.log(gamma)
    )
    # Steady-state window and congestion-avoidance rate (PFTK / CSA eq. 22).
    t0 = max(min_rto, 2.0 * rtt)
    k = (2.0 + b) / (3.0 * b)
    steady_window = k + math.sqrt(8.0 * omp / (3.0 * b * loss) + k * k)
    q = _timeout_probability(loss, steady_window)
    g = 1.0 + loss + 2 * loss**2 + 4 * loss**3 + 8 * loss**4 + 16 * loss**5 + 32 * loss**6
    expected_timeout = g * t0 / omp
    # Cost of the first loss, weighted by the chance the transfer sees one.
    first_loss_time = loss_before_end * (q * expected_timeout + (1.0 - q) * rtt)
    # Remaining packets at the steady-state CA rate (packets per second).
    ca_rate = (omp / loss + steady_window / 2.0 + q) / (
        rtt * (b / 2.0 * steady_window + 1.0) + q * expected_timeout
    )
    ca_packets = max(0.0, packets - slow_start_packets)
    return slow_start_time + first_loss_time + ca_packets / ca_rate


# ------------------------------------------------------------ queueing delay


def queueing_delay_s(
    link_rate_pps: float,
    queue: Optional[QueueConfig] = None,
    *,
    use_codel: bool = False,
    mss: float = MTU_BYTES,
) -> float:
    """Standing-queue sojourn (seconds) a buffer-filling sender settles at.

    A loss-based sender with no link loss grows its window until the
    bottleneck queue pushes back: under CoDel the controller holds the
    sojourn near its target; under a byte-limited drop-tail buffer the
    queue fills, so the sojourn is the full buffer's drain time; under the
    deep (unbounded) drop-tail buffer of the paper's carriers the standing
    queue grows without bound — returned as ``inf``, which is the honest
    prediction for the bufferbloat regime.
    """
    _require_positive("link_rate_pps", link_rate_pps)
    resolved = (queue if queue is not None else QueueConfig()).resolve(use_codel=use_codel)
    if resolved.aqm == AQM_CODEL:
        # CoDel holds the sojourn a little above target: drops happen only
        # after the interval has elapsed above it.
        return resolved.codel_target + resolved.codel_interval / 2.0
    if resolved.byte_limit is not None:
        return resolved.byte_limit / (link_rate_pps * mss)
    return _INF


# -------------------------------------------------- Sprout moment closure


def sprout_forecast_moments(
    rate_pps: float,
    params: Optional[RateModelParams] = None,
    horizon_ticks: Optional[int] = None,
) -> Tuple[float, float]:
    """Mean and variance of cumulative delivery over the forecast horizon.

    Sprout's forecast evolves a full per-tick CDF of the Brownian-motion
    rate model (paper section 3.2).  The moment closure keeps only the first
    two moments: with rate ``lambda_t`` a driftless Brownian motion of noise
    power sigma started at ``lambda_0``, cumulative delivery
    ``C = integral(lambda_t dt)`` over horizon ``T`` has

    * ``E[C]   = lambda_0 * T``               (the martingale property), and
    * ``Var[C] = sigma^2 * T^3 / 3 + lambda_0 * T``

    — the Brownian integral's variance plus the Poisson packet-count
    variance around the realised rate.  Outage stickiness is not folded in;
    its effect lands in the screening tier as prediction *uncertainty*
    rather than a biased moment.
    """
    _require_positive("rate_pps", rate_pps)
    resolved = params if params is not None else RateModelParams()
    ticks = horizon_ticks if horizon_ticks is not None else resolved.forecast_ticks
    if ticks <= 0:
        raise ValueError(f"horizon_ticks must be positive, got {ticks}")
    horizon = ticks * resolved.tick
    mean = rate_pps * horizon
    variance = resolved.sigma**2 * horizon**3 / 3.0 + mean
    return mean, variance


def sprout_conservative_rate_pps(
    rate_pps: float,
    params: Optional[RateModelParams] = None,
    confidence: float = 0.95,
    horizon_ticks: Optional[int] = None,
) -> float:
    """Sprout's cautious send rate under the moment closure (packets/s).

    The forecast commits to the delivery amount it is ``confidence`` sure
    of: the lower normal quantile of the cumulative-delivery distribution,
    floored at zero, spread over the horizon.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    from scipy.special import ndtri

    resolved = params if params is not None else RateModelParams()
    ticks = horizon_ticks if horizon_ticks is not None else resolved.forecast_ticks
    mean, variance = sprout_forecast_moments(rate_pps, resolved, ticks)
    horizon = ticks * resolved.tick
    cautious = max(0.0, mean - float(ndtri(confidence)) * math.sqrt(variance))
    return cautious / horizon


# ------------------------------------------------------------- cell predictor


def effective_link_rate_pps(channel: ChannelConfig) -> float:
    """Long-run mean delivery rate of a modelled channel (packets/s).

    The O-U rate process reverts to ``mean_rate``; the sinusoidal fade
    multiplies by ``1 - fade_depth/2`` on average; outages (arrival rate
    ``outage_rate``, escape rate ``outage_escape_rate``) contribute an
    on-air duty cycle of ``escape / (escape + arrival)``.
    """
    if channel.outage_escape_rate > 0:
        duty = 1.0 / (1.0 + channel.outage_rate / channel.outage_escape_rate)
    else:
        duty = 0.0 if channel.outage_rate > 0 else 1.0
    fade = 1.0 - 0.5 * channel.fade_depth
    return channel.mean_rate * fade * duty


@dataclass(frozen=True)
class AnalyticPrediction:
    """A cell's predicted operating point, with the model's self-assessment.

    ``delay_s`` predicts the *self-inflicted* delay (the frontier metric);
    ``uncertainty`` in ``[0, 1]`` is the screening tier's confidence
    complement — cells at or above the screen's threshold are always
    emulated.  ``model`` names the formula that produced the numbers.
    """

    throughput_bps: float
    delay_s: float
    capacity_bps: float
    uncertainty: float
    model: str


#: fraction of the mean link rate a buffer-filling scheme is predicted to
#: achieve (trace burstiness keeps measured utilization below 100%)
_FILL_FACTOR = 0.95

#: per-regime uncertainty scores (docs/analytic.md's calibration table)
_UNCERTAINTY = {
    "loss_limited": 0.25,
    "loss_limited_volatile": 0.5,
    "cubic_mode": 0.65,
    "capacity_limited": 0.5,
    "codel": 0.55,
    "buffer_filling": 0.9,
    "sprout": 0.7,
    "ewma": 0.8,
}

#: above this ratio of the pure-cubic term to the TCP-friendly (Reno) term,
#: CUBIC's real-time window growth leaves the AIMD regime the response
#: function models well: random loss gaps let the cubic curve balloon far
#: past the deterministic-loss average (calibration: docs/analytic.md), so
#: such cells get ``cubic_mode`` uncertainty — always emulated, never
#: oracle-checked
CUBIC_FRIENDLY_RATIO = 0.4


def _channel_steady(channel: ChannelConfig) -> bool:
    """Is the channel deterministic at its mean rate (no variance terms)?"""
    return (
        channel.volatility == 0.0
        and channel.outage_rate == 0.0
        and channel.fade_depth == 0.0
    )


def _link_rtt_s(link: LinkSpec, rate_pps: float) -> float:
    """The cell's unloaded round-trip time: propagation plus transmission."""
    propagation = (
        link.propagation_delay
        if link.propagation_delay is not None
        else DEFAULT_PROPAGATION_DELAY
    )
    return 2.0 * propagation + 2.0 / max(rate_pps, 1.0)


def predict_cell(
    scheme: Union[str, SchemeSpec],
    link: Union[str, LinkSpec],
    config: Optional[RunConfig] = None,
) -> Optional[AnalyticPrediction]:
    """Closed-form prediction for one matrix cell, or ``None``.

    ``None`` means "this cell has no analytic model" — competing-flow
    scenarios, the videoconference apps, and TCP variants without a
    published response function (Vegas, Compound, LEDBAT) — and the
    screening tier always emulates such cells.
    """
    spec = get_scheme(scheme) if isinstance(scheme, str) else scheme
    cfg = config if config is not None else RunConfig()
    if competing_scheme_parts(spec) is not None:
        return None
    link_spec = get_link(link) if isinstance(link, str) else link
    rate_pps = effective_link_rate_pps(link_spec.config)
    if rate_pps <= 0:
        return None
    capacity_bps = rate_pps * MTU_BYTES * 8.0
    rtt = _link_rtt_s(link_spec, rate_pps)
    loss = cfg.loss_rate
    queue = link_spec.queue
    if cfg.queue_byte_limit is not None:
        queue = replace(queue if queue is not None else QueueConfig(), byte_limit=cfg.queue_byte_limit)

    if spec.category == "sprout":
        sprout_cfg = sprout_variant_config(spec)
        if sprout_cfg is None:
            if spec.name == "Sprout":
                sprout_cfg = SproutConfig()
            elif spec.name == "Sprout-EWMA":
                sprout_cfg = SproutConfig(use_ewma=True)
            else:
                return None
        params = sprout_cfg.model_params or RateModelParams()
        usable = min(rate_pps, params.max_rate)
        if sprout_cfg.use_ewma:
            # EWMA tracks the mean rate without a cautious quantile: near-full
            # throughput, but delay spikes survive a rate crash.
            tput_pps = _FILL_FACTOR * usable * (1.0 - loss)
            delay = 2.0 * sprout_cfg.lookahead_ticks * sprout_cfg.tick_interval
            return AnalyticPrediction(
                throughput_bps=tput_pps * MTU_BYTES * 8.0,
                delay_s=delay,
                capacity_bps=capacity_bps,
                uncertainty=_UNCERTAINTY["ewma"],
                model="ewma",
            )
        cautious = sprout_conservative_rate_pps(
            usable, params, confidence=sprout_cfg.confidence
        )
        tput_pps = cautious * (1.0 - loss)
        # Sprout aims its queue occupancy at the lookahead window.
        delay = sprout_cfg.lookahead_ticks * sprout_cfg.tick_interval
        return AnalyticPrediction(
            throughput_bps=tput_pps * MTU_BYTES * 8.0,
            delay_s=delay,
            capacity_bps=capacity_bps,
            uncertainty=_UNCERTAINTY["sprout"],
            model="moment-closure",
        )

    if spec.category == "tcp" and spec.name in ("Reno", "Cubic", "Cubic-CoDel"):
        codel_cell = spec.use_codel or (
            queue is not None and queue.resolve(use_codel=spec.use_codel).aqm == AQM_CODEL
        )
        if loss <= 0.0:
            delay = queueing_delay_s(rate_pps, queue, use_codel=spec.use_codel)
            uncertainty = (
                _UNCERTAINTY["codel"] if codel_cell else _UNCERTAINTY["buffer_filling"]
            )
            return AnalyticPrediction(
                throughput_bps=_FILL_FACTOR * capacity_bps,
                delay_s=delay,
                capacity_bps=capacity_bps,
                uncertainty=uncertainty,
                model="capacity",
            )
        response = reno_throughput_pps if spec.name == "Reno" else cubic_throughput_pps
        raw_pps = response(loss, rtt)
        if raw_pps >= rate_pps:
            # Loss is too light to bind before the link does: back to the
            # buffer-filling regime, with its queue-shaped delay.
            delay = queueing_delay_s(rate_pps, queue, use_codel=spec.use_codel)
            return AnalyticPrediction(
                throughput_bps=_FILL_FACTOR * capacity_bps,
                delay_s=delay,
                capacity_bps=capacity_bps,
                uncertainty=_UNCERTAINTY["capacity_limited"],
                model="capacity",
            )
        if codel_cell:
            delay = queueing_delay_s(rate_pps, queue, use_codel=spec.use_codel)
            uncertainty = _UNCERTAINTY["codel"]
        else:
            # Loss-limited: the standing queue is about half the window
            # beyond the (small) bandwidth-delay product.
            window = raw_pps * rtt
            delay = window / (2.0 * rate_pps)
            uncertainty = _UNCERTAINTY["loss_limited"]
            if not _channel_steady(link_spec.config):
                # On a varying channel the deep buffer absorbs loss events
                # during rate surges, so PFTK/CUBIC underestimate measured
                # throughput: calibrated-tolerance territory only on steady
                # links (docs/analytic.md).
                uncertainty = max(uncertainty, _UNCERTAINTY["loss_limited_volatile"])
        if spec.name != "Reno":
            pure_cubic = (
                (CUBIC_C * (3.0 + CUBIC_BETA) / (4.0 * (1.0 - CUBIC_BETA))) ** 0.25
                * rtt**-0.25
                * loss**-0.75
            )
            friendly = reno_throughput_pps(loss, rtt)
            if pure_cubic > CUBIC_FRIENDLY_RATIO * friendly:
                uncertainty = max(uncertainty, _UNCERTAINTY["cubic_mode"])
        return AnalyticPrediction(
            throughput_bps=raw_pps * MTU_BYTES * 8.0,
            delay_s=delay,
            capacity_bps=capacity_bps,
            uncertainty=uncertainty,
            model="pftk" if spec.name == "Reno" else "cubic",
        )

    return None


# ----------------------------------------------------------------- screening


@dataclass(frozen=True)
class ScreenConfig:
    """Knobs of the screening heuristic (docs/analytic.md).

    A predicted cell is emulated unless some other predicted cell *strongly*
    dominates it: at least ``1 + margin`` times its predicted throughput,
    with a predicted delay no worse than the cell's by more than
    ``delay_slack_s`` (inside the slack, delays count as tied and the
    frontier is throughput-driven — the models cannot resolve delay finer
    than emulation noise reorders it), and a prediction from a *comparable
    regime* (the capacity model carries a per-link bias that cancels only
    within-regime, so a capacity prediction may be screened out only by
    another capacity prediction).  Cells whose prediction carries
    ``uncertainty >= uncertainty_threshold`` — and cells with no model at
    all — are always emulated.
    """

    margin: float = 0.25
    delay_slack_s: float = 0.02
    uncertainty_threshold: float = 0.6

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError(f"margin must be non-negative, got {self.margin}")
        if self.delay_slack_s < 0:
            raise ValueError(
                f"delay_slack_s must be non-negative, got {self.delay_slack_s}"
            )
        if not 0.0 < self.uncertainty_threshold <= 1.0:
            raise ValueError(
                "uncertainty_threshold must be in (0, 1], got "
                f"{self.uncertainty_threshold}"
            )


@dataclass
class ScreenPlan:
    """Which cells of one expanded grid get emulated, and why not the rest."""

    cells: List[Cell]
    predictions: List[Optional[AnalyticPrediction]]
    simulate: List[bool]

    @property
    def n_simulated(self) -> int:
        return sum(self.simulate)

    @property
    def n_screened(self) -> int:
        return len(self.simulate) - self.n_simulated


#: models whose cross-scheme comparisons are bias-free (both calibrated
#: against emulation in the loss-limited regime: docs/analytic.md)
_COMPARABLE_MODELS = frozenset(("pftk", "cubic"))


def _models_comparable(a: str, b: str) -> bool:
    """May a prediction of model ``a`` screen out one of model ``b``?"""
    return a == b or (a in _COMPARABLE_MODELS and b in _COMPARABLE_MODELS)


def plan_screen(cells: Sequence[Cell], screen: Optional[ScreenConfig] = None) -> ScreenPlan:
    """Decide per cell: emulate, or trust the analytic prediction.

    Frontier adjacency is judged per link (matching the report's per-link
    frontier sections): within each link's cell group, a cell is screened
    out only when another cell's prediction from a comparable regime
    strongly dominates it under the screen's margins.
    """
    cfg = screen if screen is not None else ScreenConfig()
    cells = list(cells)
    predictions = [predict_cell(scheme, link, config) for scheme, link, config in cells]
    simulate = [False] * len(cells)
    groups: Dict[str, List[int]] = {}
    for index, (cell, prediction) in enumerate(zip(cells, predictions)):
        if prediction is None or prediction.uncertainty >= cfg.uncertainty_threshold:
            simulate[index] = True
        else:
            groups.setdefault(cell_link_name(cell[1]), []).append(index)
    for indices in groups.values():
        tputs = [predictions[i].throughput_bps for i in indices]
        delays = [predictions[i].delay_s for i in indices]
        models = [predictions[i].model for i in indices]
        for position, index in enumerate(indices):
            tput, delay, model = tputs[position], delays[position], models[position]
            strongly_dominated = any(
                tputs[other] >= tput * (1.0 + cfg.margin)
                and delays[other] <= delay + cfg.delay_slack_s
                and _models_comparable(models[other], model)
                for other in range(len(indices))
                if other != position
            )
            if not strongly_dominated:
                simulate[index] = True
    return ScreenPlan(cells=cells, predictions=predictions, simulate=simulate)


def _screened_result(cell: Cell, prediction: AnalyticPrediction) -> ScreenedResult:
    """The grid record standing in for a screened-out (unemulated) cell."""
    scheme, link, _ = cell
    link_spec = get_link(link) if isinstance(link, str) else link
    propagation = (
        link_spec.propagation_delay
        if link_spec.propagation_delay is not None
        else DEFAULT_PROPAGATION_DELAY
    )
    utilization = (
        prediction.throughput_bps / prediction.capacity_bps
        if prediction.capacity_bps > 0
        else 0.0
    )
    return ScreenedResult(
        scheme=cell_scheme_name(scheme),
        link=cell_link_name(link),
        throughput_bps=prediction.throughput_bps,
        delay_95_s=prediction.delay_s + propagation,
        self_inflicted_delay_s=prediction.delay_s,
        utilization=min(1.0, utilization),
        capacity_bps=prediction.capacity_bps,
        omniscient_delay_95_s=propagation,
        prediction_uncertainty=prediction.uncertainty,
    )


def run_grid_screened(
    spec: GridSpec,
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
    policy: Optional[ErrorPolicy] = None,
    backend: str = "processes",
    screen: Union[ScreenConfig, bool, None] = None,
) -> GridData:
    """Run a grid with analytic screening (``run_grid(screen=...)``'s engine).

    Every cell is predicted; only the cells :func:`plan_screen` selects are
    emulated (through the ordinary cell runner, so ``jobs`` / ``policy`` /
    ``backend`` behave exactly as in an unscreened run and the emulated
    cells' results are bit-identical to an unscreened run's).  Screened-out
    cells appear as :class:`~repro.metrics.summary.ScreenedResult` records
    in their cell positions; ``progress`` fires for emulated cells only.
    """
    cells = expand_grid(spec, config)
    # ``screen=True`` (or any non-config truthy) means "screen with defaults".
    screen_config = screen if isinstance(screen, ScreenConfig) else ScreenConfig()
    plan = plan_screen(cells, screen_config)
    selected = [cell for cell, simulate in zip(cells, plan.simulate) if simulate]
    outcomes = run_cells(
        selected,
        progress=progress,
        jobs=jobs,
        policy=policy or spec.policy,
        backend=backend,
    )
    merged: List[CellOutcome] = []
    iterator = iter(outcomes)
    for cell, simulate, prediction in zip(cells, plan.simulate, plan.predictions):
        if simulate:
            merged.append(next(iterator))
        else:
            assert prediction is not None  # plan_screen simulates None-model cells
            merged.append(_screened_result(cell, prediction))
    return GridData(spec=spec, points=grid_points(spec, merged))


# ------------------------------------------------------ differential validation

#: schemes the differential oracle covers: the two TCP baselines with a
#: published closed-form response function
ORACLE_SCHEMES = ("Reno", "Cubic")

#: calibrated relative-error tolerance for simulated-vs-predicted throughput
#: in oracle-grade regimes (loss-limited, uncapped steady link, and for
#: Cubic the strongly TCP-friendly region under
#: :data:`CUBIC_FRIENDLY_RATIO`).  Calibration: a 4 loss x 3 rtt steady-link
#: grid at 60 s showed relative errors up to 0.107 (Reno) / 0.051
#: (friendly-region Cubic); 0.25 clears that noise floor while a perturbed
#: Reno additive-increase constant (ALPHA 1.0 -> 0.15, throughput scaling
#: ~sqrt(ALPHA), ~61% error) still trips.  Per-cell table: docs/analytic.md.
ORACLE_TOLERANCE = 0.25

#: predictions at/above this uncertainty are outside the oracle's mandate
_ORACLE_UNCERTAINTY_CAP = 0.5


@dataclass(frozen=True)
class Divergence:
    """One simulated-vs-analytic disagreement (in-place, CellError-style).

    Like the error-policy layer's :class:`~repro.experiments.policy.CellError`,
    a divergence is a structured record tied to its cell's identity, so a
    validation pass reports *which* cells drifted and by how much instead of
    a bare assertion failure.
    """

    scheme: str
    link: str
    label: str
    metric: str
    simulated: float
    predicted: float
    relative_error: float
    tolerance: float

    @property
    def summary(self) -> str:
        return (
            f"{self.scheme} on {self.link} [{self.label}]: {self.metric} "
            f"diverged {100 * self.relative_error:.0f}% from analytic "
            f"({self.simulated:.0f} vs {self.predicted:.0f} predicted, "
            f"tolerance {100 * self.tolerance:.0f}%)"
        )

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "link": self.link,
            "label": self.label,
            "metric": self.metric,
            "simulated": self.simulated,
            "predicted": self.predicted,
            "relative_error": self.relative_error,
            "tolerance": self.tolerance,
        }


def validate_grid(
    data: GridData,
    config: Optional[RunConfig] = None,
    tolerance: Optional[float] = None,
    schemes: Sequence[str] = ORACLE_SCHEMES,
) -> List[Divergence]:
    """Differential validation: simulated TCP throughput vs the prediction.

    Checks every emulated Reno/Cubic cell in an *oracle-grade* regime —
    non-zero loss (so the cell is loss-limited, the regime PFTK/CUBIC
    model) with prediction uncertainty under the oracle cap — against the
    closed-form prediction, and returns one :class:`Divergence` per cell
    whose relative throughput error exceeds ``tolerance``
    (:data:`ORACLE_TOLERANCE` by default).  ``config`` must be the
    ``RunConfig`` the grid was run with (the expansion is re-derived from
    the spec, exactly as ``run_grid`` derived it).
    """
    tol = tolerance if tolerance is not None else ORACLE_TOLERANCE
    if tol <= 0:
        raise ValueError(f"tolerance must be positive, got {tol}")
    cells = expand_grid(data.spec, config)
    divergences: List[Divergence] = []
    index = 0
    for point in data.points:
        for row in point.results:
            cell = cells[index]
            index += 1
            if is_cell_error(row) or is_screened(row):
                continue
            scheme, _, cell_config = cell
            if cell_scheme_name(scheme) not in schemes:
                continue
            if cell_config is None or cell_config.loss_rate <= 0.0:
                continue
            prediction = predict_cell(*cell)
            if prediction is None or prediction.uncertainty >= _ORACLE_UNCERTAINTY_CAP:
                continue
            if prediction.throughput_bps <= 0:
                continue
            relative = abs(row.throughput_bps - prediction.throughput_bps) / (
                prediction.throughput_bps
            )
            if relative > tol:
                divergences.append(
                    Divergence(
                        scheme=row.scheme,
                        link=row.link,
                        label=point.label,
                        metric="throughput_bps",
                        simulated=row.throughput_bps,
                        predicted=prediction.throughput_bps,
                        relative_error=relative,
                        tolerance=tol,
                    )
                )
    return divergences


def render_divergences(divergences: Sequence[Divergence]) -> str:
    """Plain-text validation report, one DIVERGED line per record."""
    if not divergences:
        return "differential validation: all oracle-grade cells within tolerance"
    lines = [f"differential validation: {len(divergences)} cell(s) DIVERGED"]
    for record in divergences:
        lines.append(f"  DIVERGED {record.summary}")
    return "\n".join(lines)
