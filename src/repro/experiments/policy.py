"""Fault-tolerance policy layer for the experiment engine.

The fan-out engine (:mod:`repro.experiments.parallel`) was historically
fail-fast: the first cell exception aborted the whole batch, and a worker
dying hard (OOM kill, ``os._exit``) tore down the shared process pool with
it.  For the grids the ROADMAP aims at — hours of emulation across
thousands of cells — that turns one poison cell into a total loss.  This
module holds the *policy* vocabulary the engine executes:

* :class:`ErrorPolicy` — what to do when a cell fails: ``fail_fast`` (the
  historical behavior and the default), ``collect`` (record a structured
  :class:`CellError` in the cell's result slot and keep going), or
  ``retry`` (re-run the cell up to ``retries`` times, then record).  The
  policy also carries the per-cell wall-clock timeout, the checkpoint
  journal path, and the pool-rebuild bound.
* :class:`CellError` — the structured record of one failed cell: the cell
  identity (scheme, link), the exception type and message, the full
  traceback text, how many attempts were made, and the failure kind
  (``error`` / ``timeout``).  It occupies the failed cell's position in the
  result list, so grid slicing stays positional, and it flows through the
  schema-v3 exports and the report's failure sections.
* :class:`CheckpointJournal` — an append-only JSONL journal of completed
  :class:`~repro.metrics.summary.SchemeResult` rows keyed on cell *content*
  (:func:`cell_key`), so an interrupted grid resumes by re-running only the
  cells that never finished.

Everything here is engine-agnostic: no imports from the execution modules,
so the policy types can be carried by :class:`~repro.experiments.runner.RunConfig`,
:class:`~repro.experiments.sweeps.GridSpec`, and the CLI without cycles.
See ``docs/robustness.md`` for the user-level story.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import traceback as traceback_module
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.cache import content_key
from repro.metrics.summary import SchemeResult

#: the three failure-handling modes, in documentation order
ERROR_MODES = ("fail_fast", "collect", "retry")

#: bump when the checkpoint line format or the cell-key payload changes;
#: stale journals from another version are then simply not matched
CHECKPOINT_FORMAT_VERSION = 1


class CellTimeoutError(RuntimeError):
    """A cell exceeded its :attr:`ErrorPolicy.cell_timeout` wall-clock."""


class IncompleteBatchError(RuntimeError):
    """The engine finished a batch with unfilled cell slots.

    This is the completeness invariant of ``run_cells``: every cell index
    must end up holding either a ``SchemeResult`` or a :class:`CellError`.
    A hole means an engine bug (or a worker returning ``None``) and is
    reported loudly with the missing indices instead of being silently
    dropped from the result list.
    """

    def __init__(self, missing, total: int):
        self.missing = list(missing)
        self.total = total
        shown = ", ".join(str(i) for i in self.missing[:20])
        if len(self.missing) > 20:
            shown += ", ..."
        super().__init__(
            f"cell runner lost {len(self.missing)} of {total} cells "
            f"(indices {shown}); every cell must produce a SchemeResult or "
            "a CellError — this indicates an engine bug or a worker that "
            "returned None"
        )


@dataclass(frozen=True)
class ErrorPolicy:
    """How a batch of cells responds to per-cell failure.

    Attributes:
        on_error: ``"fail_fast"`` propagates the first cell exception and
            cancels the rest (the historical behavior, and the default);
            ``"collect"`` records a :class:`CellError` in the failed cell's
            slot and keeps going; ``"retry"`` re-runs a failed cell before
            recording (``collect`` with a retry budget).
        retries: extra attempts granted to a failing cell before its error
            is recorded.  Honored by both ``collect`` and ``retry``
            (``retry`` defaults it to 1 when left at 0); ignored by
            ``fail_fast``.
        cell_timeout: per-cell wall-clock limit in seconds, enforced on the
            process-pool path by terminating the hung worker's pool and
            healing it.  ``None`` disables.  The serial path (``jobs=1``)
            cannot preempt a running cell and ignores the timeout.
        checkpoint: path of the resume journal (:class:`CheckpointJournal`).
            When set, completed cells are journaled as they finish and a
            later run over the same cells skips the ones already recorded.
        max_pool_rebuilds: how many times one batch may rebuild a broken
            (or deliberately killed, after a timeout) worker pool before
            degrading to serial in-parent execution for the remainder.
    """

    on_error: str = "fail_fast"
    retries: int = 0
    cell_timeout: Optional[float] = None
    checkpoint: Optional[str] = None
    max_pool_rebuilds: int = 8

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {', '.join(ERROR_MODES)}; "
                f"got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.on_error == "retry" and self.retries == 0:
            object.__setattr__(self, "retries", 1)
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be positive seconds, got {self.cell_timeout}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be non-negative, got {self.max_pool_rebuilds}"
            )

    @property
    def fail_fast(self) -> bool:
        """Whether failures propagate instead of being recorded."""
        return self.on_error == "fail_fast"

    @property
    def retry_budget(self) -> int:
        """Extra attempts granted per failing cell under this policy."""
        return 0 if self.fail_fast else self.retries


@dataclass
class CellError:
    """Structured record of one failed matrix cell.

    Occupies the failed cell's position in the engine's result list under
    the ``collect``/``retry`` policies, exactly where the
    :class:`~repro.metrics.summary.SchemeResult` would have been, so grid
    slicing and point chunking stay positional.
    """

    scheme: str
    link: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    #: ``"error"`` (the cell raised) or ``"timeout"`` (cell_timeout expired)
    kind: str = "error"

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "link": self.link,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "kind": self.kind,
        }

    @property
    def summary(self) -> str:
        """``"RuntimeError: boom"`` — the one-line rendering."""
        return f"{self.error_type}: {self.message}"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellError":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_exception(
        cls,
        cell: Tuple[Any, Any, Any],
        error: BaseException,
        attempts: int = 1,
        kind: str = "error",
    ) -> "CellError":
        scheme, link, _ = cell
        formatted = "".join(
            traceback_module.format_exception(type(error), error, error.__traceback__)
        )
        return cls(
            scheme=cell_scheme_name(scheme),
            link=cell_link_name(link),
            error_type=type(error).__name__,
            message=str(error),
            traceback=formatted,
            attempts=attempts,
            kind=kind,
        )


def cell_scheme_name(scheme: Any) -> str:
    """Display name of a cell's scheme (a registry name or a spec)."""
    return scheme if isinstance(scheme, str) else getattr(scheme, "name", str(scheme))


def cell_link_name(link: Any) -> str:
    """Display name of a cell's link (a registry name or a spec)."""
    return link if isinstance(link, str) else getattr(link, "name", str(link))


def is_cell_error(outcome: Any) -> bool:
    """Whether one engine outcome is a failure record."""
    return isinstance(outcome, CellError)


# ------------------------------------------------------------ cell identity


def _describe_callable(value: Any) -> Tuple:
    """A stable (address-free) description of a factory callable.

    ``functools.partial`` factories (the registry's ``sprout_variant``
    idiom) decompose into the wrapped function plus the ``repr`` of their
    arguments — dataclass reprs, so deterministic across processes and
    runs.  Plain functions describe as module + qualname.  Anything else
    falls back to ``repr``, which may embed a memory address: such cells
    get a fresh key every run, so they are re-executed rather than ever
    wrongly skipped on resume.
    """
    if isinstance(value, functools.partial):
        return (
            "partial",
            _describe_callable(value.func),
            repr(value.args),
            repr(sorted((value.keywords or {}).items())),
        )
    qualname = getattr(value, "__qualname__", None)
    if qualname is not None:
        return ("callable", getattr(value, "__module__", ""), qualname)
    return ("repr", repr(value))


def describe_cell(cell: Tuple[Any, Any, Any]) -> Tuple:
    """The canonical content payload behind :func:`cell_key`.

    Covers everything that determines the cell's result: the scheme
    identity (name, category, queue options, and the full factory
    configuration for ad-hoc variants), the link spec (the dataclass repr
    covers the channel model, queue config, and propagation settings), and
    the run parameters.  The error policy is *excluded* — how failures are
    handled cannot change what a successful cell computes, so a resume
    under a different policy still matches.
    """
    scheme, link, config = cell
    if isinstance(scheme, str):
        scheme_payload: Tuple = ("name", scheme)
    else:
        scheme_payload = (
            "spec",
            getattr(scheme, "name", ""),
            getattr(scheme, "category", ""),
            getattr(scheme, "use_codel", False),
            _describe_callable(getattr(scheme, "factory", None)),
        )
    link_payload = ("name", link) if isinstance(link, str) else ("spec", repr(link))
    if config is None:
        config_payload: Tuple = ("default",)
    else:
        neutral = (
            replace(config, error_policy=None)
            if getattr(config, "error_policy", None) is not None
            else config
        )
        config_payload = ("config", repr(neutral))
    return (CHECKPOINT_FORMAT_VERSION, scheme_payload, link_payload, config_payload)


def cell_key(cell: Tuple[Any, Any, Any]) -> str:
    """Content key of one cell (sha256 over :func:`describe_cell`)."""
    return content_key(describe_cell(cell))


# -------------------------------------------------------------- checkpoints


class CheckpointJournal:
    """Append-only JSONL journal of completed cells, keyed on content.

    One line per completed cell::

        {"v": 1, "key": "<sha256 of describe_cell(...)>", "result": {...}}

    ``result`` is :meth:`SchemeResult.as_dict`.  Lines are flushed as they
    are written, so a run killed mid-grid loses at most the in-flight
    cells; :meth:`load` stops at the first unparsable line, which makes a
    torn final line (the crash case) harmless.  Only *successful* results
    are journaled — failed cells are re-executed on resume by design.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = None

    def load(self) -> Dict[str, SchemeResult]:
        """Every journaled result, keyed by cell key; ``{}`` if no file."""
        entries: Dict[str, SchemeResult] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        if record.get("v") != CHECKPOINT_FORMAT_VERSION:
                            continue
                        entries[record["key"]] = SchemeResult.from_dict(
                            record["result"]
                        )
                    except (ValueError, KeyError, TypeError):
                        # A torn tail (the writer was killed mid-line) ends
                        # the readable prefix; everything before it stands.
                        break
        except OSError:
            return {}
        return entries

    def record(self, key: str, result: SchemeResult) -> None:
        """Append one completed cell (thread-safe, flushed immediately)."""
        line = json.dumps(
            {"v": CHECKPOINT_FORMAT_VERSION, "key": key, "result": result.as_dict()}
        )
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
