"""Figure 8: average utilization vs. average self-inflicted delay.

The paper compares Sprout and Sprout-EWMA (end-to-end) against Cubic and
Cubic-over-CoDel (which needs in-network deployment), averaged across the
eight links: CoDel sharply reduces Cubic's delay at modest throughput cost,
Sprout achieves even lower delay purely end-to-end, and Sprout-EWMA gets
within a few percent of Cubic-CoDel's delay with substantially more
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.parallel import run_matrix
from repro.experiments.runner import RunConfig
from repro.metrics.summary import SchemeResult, average_by_scheme
from repro.traces.networks import link_names

#: the four schemes the paper places on Figure 8
FIGURE8_SCHEMES = ("Sprout", "Sprout-EWMA", "Cubic", "Cubic-CoDel")


@dataclass
class Figure8Data:
    """Per-scheme averages over all measured links."""

    results: List[SchemeResult]
    averages: Dict[str, Dict[str, float]]

    def utilization_percent(self, scheme: str) -> float:
        return 100.0 * self.averages[scheme]["mean_utilization"]

    def mean_delay_ms(self, scheme: str) -> float:
        return 1000.0 * self.averages[scheme]["mean_self_inflicted_delay_s"]


def run_figure8(
    links: Optional[Sequence[str]] = None,
    config: Optional[RunConfig] = None,
    results: Optional[List[SchemeResult]] = None,
    jobs: Optional[int] = None,
) -> Figure8Data:
    """Regenerate Figure 8.

    Pass ``results`` (e.g. from a Figure 7 run that already covered these
    schemes) to avoid re-running the emulations.
    """
    if results is None:
        link_list = list(links) if links is not None else link_names()
        results = run_matrix(FIGURE8_SCHEMES, link_list, config=config, jobs=jobs)
    wanted = [r for r in results if r.scheme in FIGURE8_SCHEMES]
    return Figure8Data(results=wanted, averages=average_by_scheme(wanted))


def render_figure8(data: Figure8Data) -> str:
    """Plain-text rendering of the utilization/delay averages."""
    lines = ["Figure 8 — average utilization vs average self-inflicted delay", ""]
    lines.append(f"{'scheme':14s} {'utilization %':>14s} {'delay (ms)':>12s}")
    for scheme in FIGURE8_SCHEMES:
        if scheme not in data.averages:
            continue
        lines.append(
            f"{scheme:14s} {data.utilization_percent(scheme):14.1f} "
            f"{data.mean_delay_ms(scheme):12.0f}"
        )
    return "\n".join(lines)
