"""Parameterized scenario sweeps over the scheme × link matrix.

The paper's headline figures come from one scheme × link matrix at the
paper's frozen parameters.  This module generalises that into *sweeps*: a
:class:`SweepSpec` names one swept parameter (from :data:`SWEEP_PARAMETERS`)
and the values to try; the engine expands every ``value × scheme × link``
combination into an explicit matrix cell and runs the whole flattened batch
through :func:`repro.experiments.parallel.run_cells` — one warmed worker
pool for the entire sweep, with the shared trace cache
(:mod:`repro.traces.cache`) deduplicating trace generation across cells.

Swept parameters:

``loss``
    Bernoulli packet-loss probability of the emulated link (the §5.6 axis);
    values are absolute loss rates in ``[0, 1)``.
``sigma``
    The forecaster's Brownian noise power σ (paper §3.1, frozen at 200);
    values are absolute σ in packets/s/√s.  Applies to the Sprout scheme.
``tick``
    Sprout's inference tick length (paper: 20 ms); values are absolute
    seconds.  Applies to the Sprout scheme.
``outage``
    Multiplier on the link's outage arrival rate (1.0 = the calibrated
    channel); the feedback direction keeps the calibrated channel, as in
    the paper's testbed where only the direction under test is degraded.
``scale``
    Multiplier on the link's mean rate, volatility, and rate cap — a whole
    -link capacity scaling.

Every expansion is deterministic and picklable, so sweep cells parallelise
exactly like ordinary matrix cells, and results are bit-identical to
running each expanded cell serially by hand (``tests/test_sweeps.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.connection import SproutConfig
from repro.core.rate_model import RateModelParams
from repro.experiments.parallel import Cell, run_cells, shared_pool
from repro.experiments.registry import SchemeSpec, get_scheme, sprout_variant
from repro.experiments.runner import ProgressCallback, RunConfig
from repro.metrics.summary import SchemeResult
from repro.traces.networks import LinkSpec, get_link, link_names

SchemeLike = Union[str, SchemeSpec]
LinkLike = Union[str, LinkSpec]

#: expander signature: (scheme, link, config, value) -> one matrix cell
CellExpander = Callable[[SchemeLike, LinkLike, RunConfig, float], Cell]


def _resolve_link(link: LinkLike) -> LinkSpec:
    return get_link(link) if isinstance(link, str) else link


def _sprout_base(scheme: SchemeLike, parameter: str) -> Tuple[str, SproutConfig]:
    """The base scheme's name and its full :class:`SproutConfig`.

    Starting the variant from the base's *own* config (not defaults) keeps
    a sweep over, say, ``sprout_with_confidence(0.25)`` honestly labelled:
    the measured cell really carries the 25% confidence plus the swept
    parameter.  Specs whose config cannot be recovered are rejected rather
    than silently re-run at paper defaults under the base's name.
    """
    spec = get_scheme(scheme) if isinstance(scheme, str) else scheme
    if spec.category != "sprout" or spec.name == "Sprout-EWMA":
        raise ValueError(
            f"the {parameter!r} sweep tunes Sprout's stochastic model and does "
            f"not apply to scheme {spec.name!r}; sweep Sprout instead"
        )
    factory = spec.factory
    if (
        isinstance(factory, partial)
        and len(factory.args) == 1
        and isinstance(factory.args[0], SproutConfig)
        and not factory.keywords
    ):
        return spec.name, factory.args[0]  # a registry sprout_variant
    if spec.name == "Sprout":
        return spec.name, SproutConfig()  # the registry default scheme
    raise ValueError(
        f"cannot recover the SproutConfig behind scheme {spec.name!r} for the "
        f"{parameter!r} sweep; build it with repro.experiments.registry.sprout_variant"
    )


def _expand_loss(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"loss rate must be in [0, 1), got {value}")
    return (scheme, link, replace(config, loss_rate=value))


def _expand_sigma(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value < 0:
        raise ValueError(f"sigma must be non-negative, got {value}")
    base_name, base_config = _sprout_base(scheme, "sigma")
    params = base_config.model_params or RateModelParams()
    variant = sprout_variant(
        f"{base_name} [sigma={value:g}]",
        replace(base_config, model_params=replace(params, sigma=value)),
    )
    return (variant, link, config)


def _expand_tick(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value <= 0:
        raise ValueError(f"tick length must be positive, got {value}")
    base_name, base_config = _sprout_base(scheme, "tick")
    params = base_config.model_params or RateModelParams()
    variant = sprout_variant(
        f"{base_name} [tick={value:g}s]",
        replace(
            base_config,
            tick_interval=value,
            model_params=replace(params, tick=value),
        ),
    )
    return (variant, link, config)


def _expand_outage(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value < 0:
        raise ValueError(f"outage multiplier must be non-negative, got {value}")
    spec = _resolve_link(link)
    channel = replace(spec.config, outage_rate=spec.config.outage_rate * value)
    return (scheme, replace(spec, config=channel), config)


def _expand_scale(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value <= 0:
        raise ValueError(f"link scale must be positive, got {value}")
    spec = _resolve_link(link)
    channel = replace(
        spec.config,
        mean_rate=spec.config.mean_rate * value,
        volatility=spec.config.volatility * value,
        max_rate=spec.config.max_rate * value,
    )
    return (scheme, replace(spec, config=channel), config)


@dataclass(frozen=True)
class SweepParameter:
    """One sweepable knob: its name, axis label, and cell expander."""

    name: str
    description: str
    expand: CellExpander = field(compare=False)


#: the registry of sweepable parameters, keyed by CLI/spec name
SWEEP_PARAMETERS: Dict[str, SweepParameter] = {
    parameter.name: parameter
    for parameter in (
        SweepParameter("loss", "Bernoulli packet-loss rate", _expand_loss),
        SweepParameter("sigma", "forecaster noise power sigma (pkt/s/sqrt(s))", _expand_sigma),
        SweepParameter("tick", "Sprout inference tick length (s)", _expand_tick),
        SweepParameter("outage", "link outage-rate multiplier", _expand_outage),
        SweepParameter("scale", "link capacity scale multiplier", _expand_scale),
    )
}


def sweep_parameter_names() -> List[str]:
    """All sweepable parameter names."""
    return list(SWEEP_PARAMETERS)


def get_sweep_parameter(name: str) -> SweepParameter:
    """Look up a sweepable parameter by name.

    Raises:
        KeyError: listing the valid names, if the parameter is unknown.
    """
    try:
        return SWEEP_PARAMETERS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep parameter {name!r}; valid parameters: "
            f"{', '.join(SWEEP_PARAMETERS)}"
        ) from None


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: a parameter, its values, and the base matrix to expand."""

    parameter: str
    values: Tuple[float, ...]
    schemes: Tuple[str, ...] = ("Sprout",)
    links: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        get_sweep_parameter(self.parameter)
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.values:
            raise ValueError("a sweep needs at least one value")
        if not self.schemes:
            raise ValueError("a sweep needs at least one scheme")
        if not self.links:
            object.__setattr__(self, "links", tuple(link_names()))

    @property
    def cells_per_value(self) -> int:
        return len(self.schemes) * len(self.links)


@dataclass
class SweepPoint:
    """All matrix results measured at one value of the swept parameter."""

    parameter: str
    value: float
    results: List[SchemeResult]


@dataclass
class SweepData:
    """A finished sweep: one :class:`SweepPoint` per requested value."""

    spec: SweepSpec
    points: List[SweepPoint]

    def for_value(self, value: float) -> SweepPoint:
        for point in self.points:
            if point.value == value:
                return point
        raise KeyError(f"no sweep point for value {value!r}")


def expand_sweep(spec: SweepSpec, config: Optional[RunConfig] = None) -> List[Cell]:
    """Flatten a sweep spec into explicit matrix cells, value-major.

    Cell order is ``value -> scheme -> link``, mirroring the serial runner's
    scheme-major/link-minor order inside each value, so results slice back
    into :class:`SweepPoint` chunks deterministically.
    """
    cfg = config if config is not None else RunConfig()
    parameter = get_sweep_parameter(spec.parameter)
    cells: List[Cell] = []
    for value in spec.values:
        for scheme in spec.schemes:
            for link in spec.links:
                cells.append(parameter.expand(scheme, link, cfg, value))
    return cells


def run_sweep(
    spec: SweepSpec,
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> SweepData:
    """Run one parameter sweep through the (shared-pool-aware) cell runner.

    The entire flattened batch is submitted at once, so a multi-value sweep
    saturates the worker pool instead of draining between values, and every
    cell that shares a link pulls its trace from the shared cache.
    """
    cells = expand_sweep(spec, config)
    results = run_cells(cells, progress=progress, jobs=jobs)
    chunk = spec.cells_per_value
    points = [
        SweepPoint(
            parameter=spec.parameter,
            value=value,
            results=results[i * chunk : (i + 1) * chunk],
        )
        for i, value in enumerate(spec.values)
    ]
    return SweepData(spec=spec, points=points)


def run_sweep_suite(
    specs: Sequence[SweepSpec],
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> List[SweepData]:
    """Run several sweeps over **one** shared warmed worker pool."""
    with shared_pool(jobs):
        return [
            run_sweep(spec, config=config, progress=progress, jobs=jobs)
            for spec in specs
        ]


def render_sweep(data: SweepData) -> str:
    """Plain-text rendering: one block per swept value."""
    parameter = get_sweep_parameter(data.spec.parameter)
    lines: List[str] = [
        f"Sweep — {parameter.name} ({parameter.description})",
        "",
    ]
    for point in data.points:
        lines.append(f"{parameter.name} = {point.value:g}")
        lines.append(
            f"  {'scheme':22s} {'link':30s} {'tput (kbps)':>12s} "
            f"{'delay (ms)':>12s} {'util %':>8s}"
        )
        for row in point.results:
            lines.append(
                f"  {row.scheme:22s} {row.link:30s} {row.throughput_kbps:12.0f} "
                f"{row.self_inflicted_delay_ms:12.0f} {100 * row.utilization:8.1f}"
            )
        lines.append("")
    return "\n".join(lines)
