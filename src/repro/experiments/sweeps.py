"""Multi-dimensional scenario grids over the scheme × link matrix.

The paper's headline figures come from one scheme × link matrix at the
paper's frozen parameters.  This module generalises that into N-dimensional
*grids*: a :class:`GridSpec` names any number of swept axes (from
:data:`SWEEP_PARAMETERS`) and the values to try per axis; the engine expands
the Cartesian product of every ``coordinate × scheme × link`` combination
into an explicit matrix cell and runs the whole flattened batch through
:func:`repro.experiments.parallel.run_cells` — one warmed worker pool for
the entire grid, with the shared trace cache (:mod:`repro.traces.cache`)
deduplicating trace generation across cells and the model-artifact cache
prewarmed for every distinct swept :class:`RateModelParams` before the
fan-out (:func:`repro.experiments.parallel.prewarm_models`), so a wide
sigma/tick grid builds each model once ever instead of once per worker.
:class:`SweepSpec` survives as the one-axis special case and is
implemented on top of the grid engine.

Sweepable axes (full semantics in ``docs/scenarios.md``):

``loss``
    Bernoulli packet-loss probability of the emulated link (the §5.6 axis);
    values are absolute loss rates in ``[0, 1)``.
``sigma``
    The forecaster's Brownian noise power σ (paper §3.1, frozen at 200);
    values are absolute σ in packets/s/√s.  Applies to the Sprout scheme.
``tick``
    Sprout's inference tick length (paper: 20 ms); values are absolute
    seconds.  Applies to the Sprout scheme.
``outage``
    Multiplier on the link's outage arrival rate (1.0 = the calibrated
    channel); the feedback direction keeps the calibrated channel, as in
    the paper's testbed where only the direction under test is degraded.
``scale``
    Multiplier on the link's mean rate, volatility, and rate cap — a whole
    -link capacity scaling.
``flows``
    Number of competing client flows (one Skype call plus N-1 Cubic bulk
    downloads, §5.7) carried through SproutTunnel; the measured cell is the
    whole scenario over the link (:mod:`repro.experiments.competing`).
``tunnelled``
    Direct-vs-tunnelled scenario toggle for the competing-flows mix:
    ``0`` shares the link's single queue directly, ``1`` carries the flows
    through SproutTunnel.
``aqm``
    Queue discipline of the emulated link's bottleneck queues (§5.4):
    ``0`` is the deep drop-tail buffer, ``1`` applies CoDel to both
    directions.  Carried on a copy of the link spec, so the trace (and the
    trace cache) are shared across disciplines — every discipline sees the
    identical delivery schedule, as the paper's comparison requires.
``qlimit``
    Byte limit of the bottleneck queues; ``0`` keeps the deep
    (effectively unbounded) buffer.  Composes with ``aqm`` in either order.
``rtt``
    Round-trip propagation delay of the emulated path in seconds (the
    emulator default is 40 ms); carried on a copy of the link spec like
    ``aqm``/``qlimit``, so every RTT variant of one link shares the
    identical delivery trace.
``codel_target``
    CoDel's target sojourn time in seconds (the algorithm's 5 ms default);
    rides :class:`~repro.simulation.queues.QueueConfig` like ``qlimit``,
    so it takes effect on any cell whose queue resolves to CoDel (the
    ``aqm = 1`` axis value or a CoDel scheme such as Cubic-CoDel) and is
    inert on drop-tail cells.
``codel_interval``
    CoDel's estimation interval in seconds (100 ms default); same carriage
    and composition rules as ``codel_target``.

Axes are applied to each cell in the order the spec lists them, so a
``sigma × flows`` grid (in that order) carries the swept stochastic model
into the tunnel's Sprout.  Every expansion is deterministic and picklable,
so grid cells parallelise exactly like ordinary matrix cells, and results
are bit-identical to running each expanded cell serially by hand
(``tests/test_sweeps.py``, ``tests/test_exports.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.connection import SproutConfig
from repro.core.rate_model import RateModelParams
from repro.experiments.competing import competing_scheme, competing_scheme_parts
from repro.experiments.parallel import Cell, CellOutcome, run_cells, shared_pool
from repro.experiments.policy import CellError, ErrorPolicy, is_cell_error
from repro.experiments.registry import (
    SchemeSpec,
    get_scheme,
    sprout_variant,
    sprout_variant_config,
)
from repro.experiments.runner import ProgressCallback, RunConfig
from repro.metrics.flows import FlowMetrics
from repro.metrics.summary import SchemeResult, is_screened
from repro.simulation.queues import AQM_CODEL, AQM_DROP_TAIL, QueueConfig
from repro.traces.networks import LinkSpec, get_link, link_names

SchemeLike = Union[str, SchemeSpec]
LinkLike = Union[str, LinkSpec]

#: expander signature: (scheme, link, config, value) -> one matrix cell
CellExpander = Callable[[SchemeLike, LinkLike, RunConfig, float], Cell]


def _resolve_link(link: LinkLike) -> LinkSpec:
    return get_link(link) if isinstance(link, str) else link


def _sprout_base(scheme: SchemeLike, parameter: str) -> Tuple[str, SproutConfig]:
    """The base scheme's name and its full :class:`SproutConfig`.

    Starting the variant from the base's *own* config (not defaults) keeps
    a sweep over, say, ``sprout_with_confidence(0.25)`` honestly labelled:
    the measured cell really carries the 25% confidence plus the swept
    parameter.  Specs whose config cannot be recovered are rejected rather
    than silently re-run at paper defaults under the base's name.
    """
    spec = get_scheme(scheme) if isinstance(scheme, str) else scheme
    if competing_scheme_parts(spec) is not None:
        raise ValueError(
            f"the {parameter!r} axis cannot re-tune the already-built scenario "
            f"{spec.name!r}; list {parameter!r} before 'flows'/'tunnelled' so "
            "the model axis applies to the tunnel's Sprout"
        )
    if spec.category != "sprout" or spec.name == "Sprout-EWMA":
        raise ValueError(
            f"the {parameter!r} sweep tunes Sprout's stochastic model and does "
            f"not apply to scheme {spec.name!r}; sweep Sprout instead"
        )
    config = sprout_variant_config(spec)
    if config is not None:
        return spec.name, config
    if spec.name == "Sprout":
        return spec.name, SproutConfig()  # the registry default scheme
    raise ValueError(
        f"cannot recover the SproutConfig behind scheme {spec.name!r} for the "
        f"{parameter!r} sweep; build it with repro.experiments.registry.sprout_variant"
    )


def _expand_loss(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"loss rate must be in [0, 1), got {value}")
    return (scheme, link, replace(config, loss_rate=value))


def _expand_sigma(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value < 0:
        raise ValueError(f"sigma must be non-negative, got {value}")
    base_name, base_config = _sprout_base(scheme, "sigma")
    params = base_config.model_params or RateModelParams()
    variant = sprout_variant(
        f"{base_name} [sigma={value:g}]",
        replace(base_config, model_params=replace(params, sigma=value)),
    )
    return (variant, link, config)


def _expand_tick(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value <= 0:
        raise ValueError(f"tick length must be positive, got {value}")
    base_name, base_config = _sprout_base(scheme, "tick")
    params = base_config.model_params or RateModelParams()
    variant = sprout_variant(
        f"{base_name} [tick={value:g}s]",
        replace(
            base_config,
            tick_interval=value,
            model_params=replace(params, tick=value),
        ),
    )
    return (variant, link, config)


def _expand_outage(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value < 0:
        raise ValueError(f"outage multiplier must be non-negative, got {value}")
    spec = _resolve_link(link)
    channel = replace(spec.config, outage_rate=spec.config.outage_rate * value)
    return (scheme, replace(spec, config=channel), config)


def _expand_scale(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value <= 0:
        raise ValueError(f"link scale must be positive, got {value}")
    spec = _resolve_link(link)
    channel = replace(
        spec.config,
        mean_rate=spec.config.mean_rate * value,
        volatility=spec.config.volatility * value,
        max_rate=spec.config.max_rate * value,
    )
    return (scheme, replace(spec, config=channel), config)


def _scenario_base(
    scheme: SchemeLike, parameter: str
) -> Tuple[int, bool, Optional[SproutConfig]]:
    """Current ``(flows, tunnelled, sprout_config)`` behind ``scheme``.

    A scheme already built by :func:`~repro.experiments.competing.competing_scheme`
    keeps its settings (so ``flows`` and ``tunnelled`` compose in either
    order); a Sprout-category scheme contributes its recovered
    :class:`SproutConfig` to the tunnel and starts from the paper's §5.7
    defaults (two flows, tunnelled).  Anything else is rejected.
    """
    spec = get_scheme(scheme) if isinstance(scheme, str) else scheme
    parts = competing_scheme_parts(spec)
    if parts is not None:
        return parts
    _, sprout_config = _sprout_base(spec, parameter)
    return 2, True, sprout_config


def _expand_flows(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value != int(value) or value < 1:
        raise ValueError(f"flows must be a positive integer, got {value}")
    _, tunnelled, sprout_config = _scenario_base(scheme, "flows")
    return (competing_scheme(int(value), tunnelled, sprout_config), link, config)


def _expand_tunnelled(
    scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float
) -> Cell:
    if value not in (0.0, 1.0):
        raise ValueError(
            f"tunnelled must be 0 (direct) or 1 (via SproutTunnel), got {value}"
        )
    flows, _, sprout_config = _scenario_base(scheme, "tunnelled")
    return (competing_scheme(flows, bool(value), sprout_config), link, config)


def _link_queue(link: LinkLike) -> Tuple[LinkSpec, QueueConfig]:
    """The cell's link spec and its current (possibly inherit-all) queue."""
    spec = _resolve_link(link)
    return spec, spec.queue if spec.queue is not None else QueueConfig()


def _expand_aqm(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value not in (float(AQM_DROP_TAIL), float(AQM_CODEL)):
        raise ValueError(
            f"aqm must be {AQM_DROP_TAIL} (drop-tail) or {AQM_CODEL} (CoDel), got {value}"
        )
    spec, queue = _link_queue(link)
    return (scheme, replace(spec, queue=replace(queue, aqm=int(value))), config)


def _expand_qlimit(
    scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float
) -> Cell:
    if value != int(value) or value < 0:
        raise ValueError(
            f"qlimit must be a whole number of bytes (0 = deep buffer), got {value}"
        )
    spec, queue = _link_queue(link)
    limit = None if value == 0 else int(value)
    return (scheme, replace(spec, queue=replace(queue, byte_limit=limit)), config)


def _expand_rtt(scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float) -> Cell:
    if value <= 0:
        raise ValueError(f"rtt must be positive seconds, got {value}")
    spec = _resolve_link(link)
    # The axis value is the round-trip propagation; the emulator takes the
    # one-way wire delay.
    return (scheme, replace(spec, propagation_delay=value / 2.0), config)


def _expand_codel_target(
    scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float
) -> Cell:
    if value <= 0:
        raise ValueError(f"codel_target must be positive seconds, got {value}")
    spec, queue = _link_queue(link)
    return (scheme, replace(spec, queue=replace(queue, codel_target=value)), config)


def _expand_repeat(
    scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float
) -> Cell:
    # Inert axis: the live loopback harness (repro.transport.harness) labels
    # each repeated transfer with its repetition index so live results ride
    # the grid/export stack; on a simulated cell the repetition changes
    # nothing (the emulator is deterministic), so the cell passes through.
    if value != int(value) or value < 1:
        raise ValueError(f"repeat must be a positive integer, got {value}")
    return (scheme, link, config)


def _expand_codel_interval(
    scheme: SchemeLike, link: LinkLike, config: RunConfig, value: float
) -> Cell:
    if value <= 0:
        raise ValueError(f"codel_interval must be positive seconds, got {value}")
    spec, queue = _link_queue(link)
    return (
        scheme,
        replace(spec, queue=replace(queue, codel_interval=value)),
        config,
    )


@dataclass(frozen=True)
class SweepParameter:
    """One sweepable knob: its name, axis label, and cell expander."""

    name: str
    description: str
    expand: CellExpander = field(compare=False)


#: the registry of sweepable parameters, keyed by CLI/spec name
SWEEP_PARAMETERS: Dict[str, SweepParameter] = {
    parameter.name: parameter
    for parameter in (
        SweepParameter("loss", "Bernoulli packet-loss rate", _expand_loss),
        SweepParameter("sigma", "forecaster noise power sigma (pkt/s/sqrt(s))", _expand_sigma),
        SweepParameter("tick", "Sprout inference tick length (s)", _expand_tick),
        SweepParameter("outage", "link outage-rate multiplier", _expand_outage),
        SweepParameter("scale", "link capacity scale multiplier", _expand_scale),
        SweepParameter(
            "flows", "competing client flows (1 Skype + N-1 Cubic, sec. 5.7)", _expand_flows
        ),
        SweepParameter(
            "tunnelled", "competing flows direct (0) or via SproutTunnel (1)", _expand_tunnelled
        ),
        SweepParameter(
            "aqm", "bottleneck queue discipline: drop-tail (0) or CoDel (1), sec. 5.4", _expand_aqm
        ),
        SweepParameter(
            "qlimit", "bottleneck queue byte limit (0 = deep buffer)", _expand_qlimit
        ),
        SweepParameter(
            "rtt", "round-trip propagation delay of the path (s)", _expand_rtt
        ),
        SweepParameter(
            "codel_target",
            "CoDel target sojourn time (s) on CoDel cells, sec. 5.4",
            _expand_codel_target,
        ),
        SweepParameter(
            "codel_interval",
            "CoDel estimation interval (s) on CoDel cells, sec. 5.4",
            _expand_codel_interval,
        ),
        SweepParameter(
            "repeat",
            "live-harness repetition index (inert on simulated cells)",
            _expand_repeat,
        ),
    )
}


def sweep_parameter_names() -> List[str]:
    """All sweepable parameter names."""
    return list(SWEEP_PARAMETERS)


def get_sweep_parameter(name: str) -> SweepParameter:
    """Look up a sweepable parameter by name.

    Raises:
        KeyError: listing the valid names, if the parameter is unknown.
    """
    try:
        return SWEEP_PARAMETERS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep parameter {name!r}; valid parameters: "
            f"{', '.join(SWEEP_PARAMETERS)}"
        ) from None


# ------------------------------------------------------------------- grids


@dataclass(frozen=True)
class GridSpec:
    """An N-dimensional grid: axes, per-axis values, and the base matrix.

    The grid's points are the Cartesian product of the per-axis value lists,
    iterated *value-major*: the first axis varies slowest, the last fastest
    (``itertools.product`` order).  Every point measures the full
    ``schemes × links`` matrix.
    """

    parameters: Tuple[str, ...]
    values: Tuple[Tuple[float, ...], ...]
    schemes: Tuple[str, ...] = ("Sprout",)
    links: Tuple[str, ...] = ()
    #: failure handling for the whole grid (docs/robustness.md); ``None``
    #: leaves the choice to ``run_grid``'s caller / the fail-fast default.
    #: Excluded from equality: two grids over the same cells are the same
    #: grid however their failures are handled.
    policy: Optional[ErrorPolicy] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", tuple(self.parameters))
        object.__setattr__(self, "values", tuple(tuple(axis) for axis in self.values))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.parameters:
            raise ValueError("a grid needs at least one axis")
        if len(set(self.parameters)) != len(self.parameters):
            raise ValueError(f"grid axes must be distinct, got {self.parameters}")
        for name in self.parameters:
            get_sweep_parameter(name)
        if len(self.values) != len(self.parameters):
            raise ValueError(
                f"{len(self.parameters)} axes but {len(self.values)} value lists; "
                "each axis needs its own values"
            )
        for name, axis in zip(self.parameters, self.values):
            if not axis:
                raise ValueError(f"axis {name!r} needs at least one value")
        if not self.schemes:
            raise ValueError("a grid needs at least one scheme")
        if not self.links:
            object.__setattr__(self, "links", tuple(link_names()))

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per axis, e.g. ``(3, 2)`` for a 3 × 2 grid."""
        return tuple(len(axis) for axis in self.values)

    @property
    def cells_per_point(self) -> int:
        return len(self.schemes) * len(self.links)

    def coordinates(self) -> List[Tuple[float, ...]]:
        """Every grid point, value-major (first axis slowest)."""
        return list(product(*self.values))

    def axis_values(self, parameter: str) -> Tuple[float, ...]:
        """The value list of one named axis."""
        try:
            return self.values[self.parameters.index(parameter)]
        except ValueError:
            raise KeyError(
                f"no axis {parameter!r} in this grid; axes: {', '.join(self.parameters)}"
            ) from None


@dataclass
class GridPoint:
    """All matrix results measured at one grid coordinate.

    Under the ``collect``/``retry`` error policies ``results`` may hold a
    :class:`~repro.experiments.policy.CellError` in a failed cell's
    position; :attr:`ok_results` and :attr:`errors` split the two.  A
    screened run (``run_grid(screen=...)``, docs/analytic.md) may likewise
    hold a :class:`~repro.metrics.summary.ScreenedResult` — a predicted,
    never-emulated cell — in place; :attr:`ok_results` carries *measured*
    results only, with :attr:`screened_results` holding the predictions.
    Under the default fail-fast unscreened run every entry is a measured
    ``SchemeResult``.
    """

    parameters: Tuple[str, ...]
    coordinates: Tuple[float, ...]
    results: List[CellOutcome]

    @property
    def ok_results(self) -> List[SchemeResult]:
        """The point's successful *measured* results, in cell order."""
        return [
            row
            for row in self.results
            if not is_cell_error(row) and not is_screened(row)
        ]

    @property
    def screened_results(self) -> List[SchemeResult]:
        """The point's screened-out (predicted-only) cells, in cell order."""
        return [row for row in self.results if is_screened(row)]

    @property
    def errors(self) -> List[CellError]:
        """The point's failed cells, in cell order."""
        return [row for row in self.results if is_cell_error(row)]

    def coordinate(self, parameter: str) -> float:
        """This point's value on one named axis."""
        try:
            return self.coordinates[self.parameters.index(parameter)]
        except ValueError:
            raise KeyError(
                f"no axis {parameter!r}; axes: {', '.join(self.parameters)}"
            ) from None

    @property
    def label(self) -> str:
        """``"sigma = 100, loss = 0.01"`` — the point's display name."""
        return ", ".join(
            f"{name} = {value:g}" for name, value in zip(self.parameters, self.coordinates)
        )


@dataclass
class GridData:
    """A finished grid: one :class:`GridPoint` per coordinate, value-major."""

    spec: GridSpec
    points: List[GridPoint]

    def for_coordinates(self, coordinates: Sequence[float]) -> GridPoint:
        wanted = tuple(coordinates)
        for point in self.points:
            if point.coordinates == wanted:
                return point
        raise KeyError(f"no grid point at coordinates {wanted!r}")

    def slice(self, parameter: str, value: float) -> List[GridPoint]:
        """All points whose ``parameter`` coordinate equals ``value``."""
        self.spec.axis_values(parameter)  # validate the axis name
        return [point for point in self.points if point.coordinate(parameter) == value]

    @property
    def errors(self) -> List[CellError]:
        """Every failed cell across the grid, point-major cell order."""
        return [error for point in self.points for error in point.errors]

    @property
    def screened(self) -> List[SchemeResult]:
        """Every screened-out cell across the grid, point-major cell order."""
        return [row for point in self.points for row in point.screened_results]


def expand_grid(spec: GridSpec, config: Optional[RunConfig] = None) -> List[Cell]:
    """Flatten a grid spec into explicit matrix cells, value-major.

    Cell order is ``coordinate -> scheme -> link``, mirroring the serial
    runner's scheme-major/link-minor order inside each point, so results
    slice back into :class:`GridPoint` chunks deterministically.  Each
    axis's expander is applied to the cell in spec order, so later axes see
    (and may refine) the schemes and links produced by earlier ones.
    """
    cfg = config if config is not None else RunConfig()
    expanders = [get_sweep_parameter(name).expand for name in spec.parameters]
    cells: List[Cell] = []
    for coordinate in spec.coordinates():
        for scheme in spec.schemes:
            for link in spec.links:
                cell: Cell = (scheme, link, cfg)
                for expand, value in zip(expanders, coordinate):
                    cell = expand(cell[0], cell[1], cell[2], value)
                cells.append(cell)
    return cells


def grid_points(spec: GridSpec, results: Sequence[CellOutcome]) -> List[GridPoint]:
    """Slice a flattened outcome list back into value-major grid points.

    ``results`` must be in :func:`expand_grid` cell order (one outcome per
    cell); this is the one place that knows how a flat batch folds back
    into :class:`GridPoint` chunks, shared by the plain and screened
    (:mod:`repro.experiments.analytic`) grid runners.
    """
    chunk = spec.cells_per_point
    expected = chunk * len(spec.coordinates())
    if len(results) != expected:
        raise ValueError(
            f"grid outcome count mismatch: got {len(results)} results for "
            f"{expected} cells"
        )
    return [
        GridPoint(
            parameters=spec.parameters,
            coordinates=coordinate,
            results=list(results[i * chunk : (i + 1) * chunk]),
        )
        for i, coordinate in enumerate(spec.coordinates())
    ]


def run_grid(
    spec: GridSpec,
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
    policy: Optional[ErrorPolicy] = None,
    backend: str = "processes",
    screen: Optional[object] = None,
) -> GridData:
    """Run one grid through the (shared-pool-aware) cell runner.

    The entire flattened batch is submitted at once, so a multi-point grid
    saturates the worker pool instead of draining between points, and every
    cell that shares a channel pulls its trace from the shared cache.

    ``policy`` (explicit argument, else ``spec.policy``, else the config's,
    else fail-fast — docs/robustness.md) governs failure handling; under
    ``collect``/``retry`` each failed cell surfaces as a
    :class:`~repro.experiments.policy.CellError` in its point's results.

    ``backend="batched"`` runs the grid's Sprout cells through the batched
    cross-cell engine instead of a worker pool (docs/performance.md
    "Layer 4"); results are bit-identical either way.

    ``screen`` (a :class:`repro.experiments.analytic.ScreenConfig`) turns
    on analytic screening: every cell is predicted in closed form and only
    cells near the predicted frontier — or with high model uncertainty —
    are emulated; the rest land as
    :class:`~repro.metrics.summary.ScreenedResult` records
    (docs/analytic.md).  Emulated cells are bit-identical to an unscreened
    run's.
    """
    if screen is not None:
        # Imported lazily: the analytic module builds on this one.
        from repro.experiments.analytic import run_grid_screened

        return run_grid_screened(
            spec,
            config=config,
            progress=progress,
            jobs=jobs,
            policy=policy,
            backend=backend,
            screen=screen,
        )
    cells = expand_grid(spec, config)
    results = run_cells(
        cells,
        progress=progress,
        jobs=jobs,
        policy=policy or spec.policy,
        backend=backend,
    )
    return GridData(spec=spec, points=grid_points(spec, results))


# ------------------------------------------------------------------ sweeps
# The historical one-axis API, now a thin wrapper over the grid engine.


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: a single parameter, its values, and the base matrix.

    A sweep is exactly a one-axis :class:`GridSpec` (see :meth:`to_grid`);
    it survives as the convenient spelling for the common case.
    """

    parameter: str
    values: Tuple[float, ...]
    schemes: Tuple[str, ...] = ("Sprout",)
    links: Tuple[str, ...] = ()
    #: failure handling for the sweep (docs/robustness.md); like
    #: :attr:`GridSpec.policy`, excluded from equality
    policy: Optional[ErrorPolicy] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        get_sweep_parameter(self.parameter)
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.values:
            raise ValueError("a sweep needs at least one value")
        if not self.schemes:
            raise ValueError("a sweep needs at least one scheme")
        if not self.links:
            object.__setattr__(self, "links", tuple(link_names()))

    @property
    def cells_per_value(self) -> int:
        return len(self.schemes) * len(self.links)

    def to_grid(self) -> GridSpec:
        """This sweep as the equivalent one-axis grid."""
        return GridSpec(
            parameters=(self.parameter,),
            values=(self.values,),
            schemes=self.schemes,
            links=self.links,
            policy=self.policy,
        )


@dataclass
class SweepPoint:
    """All matrix results measured at one value of the swept parameter."""

    parameter: str
    value: float
    results: List[CellOutcome]

    @property
    def ok_results(self) -> List[SchemeResult]:
        """The point's successful results, in cell order."""
        return [row for row in self.results if not is_cell_error(row)]

    @property
    def errors(self) -> List[CellError]:
        """The point's failed cells, in cell order."""
        return [row for row in self.results if is_cell_error(row)]


@dataclass
class SweepData:
    """A finished sweep: one :class:`SweepPoint` per requested value."""

    spec: SweepSpec
    points: List[SweepPoint]

    def for_value(self, value: float) -> SweepPoint:
        for point in self.points:
            if point.value == value:
                return point
        raise KeyError(f"no sweep point for value {value!r}")

    def to_grid_data(self) -> GridData:
        """This sweep's results as the equivalent one-axis grid data."""
        return GridData(
            spec=self.spec.to_grid(),
            points=[
                GridPoint(
                    parameters=(self.spec.parameter,),
                    coordinates=(point.value,),
                    results=point.results,
                )
                for point in self.points
            ],
        )


def expand_sweep(spec: SweepSpec, config: Optional[RunConfig] = None) -> List[Cell]:
    """Flatten a sweep spec into explicit matrix cells, value-major."""
    return expand_grid(spec.to_grid(), config)


def run_sweep(
    spec: SweepSpec,
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
    policy: Optional[ErrorPolicy] = None,
    backend: str = "processes",
) -> SweepData:
    """Run one parameter sweep (a one-axis grid) through the cell runner."""
    grid = run_grid(
        spec.to_grid(),
        config=config,
        progress=progress,
        jobs=jobs,
        policy=policy,
        backend=backend,
    )
    points = [
        SweepPoint(parameter=spec.parameter, value=point.coordinates[0], results=point.results)
        for point in grid.points
    ]
    return SweepData(spec=spec, points=points)


def run_sweep_suite(
    specs: Sequence[SweepSpec],
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> List[SweepData]:
    """Run several sweeps over **one** shared warmed worker pool."""
    with shared_pool(jobs):
        return [
            run_sweep(spec, config=config, progress=progress, jobs=jobs)
            for spec in specs
        ]


# --------------------------------------------------------------- rendering

_RESULT_HEADER = (
    f"  {'scheme':22s} {'link':30s} {'tput (kbps)':>12s} "
    f"{'delay (ms)':>12s} {'util %':>8s}"
)


def _result_line(row: SchemeResult) -> str:
    line = (
        f"  {row.scheme:22s} {row.link:30s} {row.throughput_kbps:12.0f} "
        f"{row.self_inflicted_delay_ms:12.0f} {100 * row.utilization:8.1f}"
    )
    if is_screened(row):
        # Predicted, never emulated (docs/analytic.md) — say so in place.
        line += "  (screened: predicted)"
    return line


def _error_line(row: CellError) -> str:
    return (
        f"  {row.scheme:22s} {row.link:30s} FAILED "
        f"[{row.kind}, {row.attempts} attempt(s)] {row.summary}"
    )


def _outcome_lines(rows: Sequence[CellOutcome]) -> List[str]:
    return [
        _error_line(row) if is_cell_error(row) else _result_line(row) for row in rows
    ]


def _failure_footer(points: Sequence) -> List[str]:
    """The trailing "N cells failed" section, empty on all-green runs."""
    failed = sum(len(point.errors) for point in points)
    if not failed:
        return []
    total = sum(len(point.results) for point in points)
    return [f"{failed} of {total} cells failed", ""]


def _screened_footer(points: Sequence) -> List[str]:
    """The trailing screening note, empty on unscreened runs."""
    screened = sum(len(point.screened_results) for point in points)
    if not screened:
        return []
    total = sum(len(point.results) for point in points)
    return [
        f"{screened} of {total} cells screened analytically "
        "(predicted, not emulated; docs/analytic.md)",
        "",
    ]


def render_sweep(data: SweepData) -> str:
    """Plain-text rendering: one block per swept value.

    Failed cells (``collect``/``retry`` error policies) render as
    ``FAILED`` lines in place, and a trailing "N cells failed" section is
    appended; all-green output is byte-identical to the fail-fast era.
    """
    return render_grid(data.to_grid_data())


def render_grid(data: GridData) -> str:
    """Plain-text rendering: one block per grid point, value-major.

    One-axis grids render in the sweep format (``Sweep — loss (...)``) so
    ``repro sweep`` output is unchanged for single-parameter runs.  Failed
    cells render as ``FAILED`` lines in their cell's position, plus a
    trailing "N cells failed" section (docs/robustness.md).
    """
    spec = data.spec
    if len(spec.parameters) == 1:
        parameter = get_sweep_parameter(spec.parameters[0])
        header = f"Sweep — {parameter.name} ({parameter.description})"
    else:
        axes = " × ".join(spec.parameters)
        shape = " × ".join(str(n) for n in spec.shape)
        header = f"Grid — {axes} ({shape} = {len(data.points)} points)"
    lines: List[str] = [header, ""]
    for point in data.points:
        lines.append(point.label)
        lines.append(_RESULT_HEADER)
        lines.extend(_outcome_lines(point.results))
        lines.append("")
    lines.extend(_screened_footer(data.points))
    lines.extend(_failure_footer(data.points))
    return "\n".join(lines)


# --------------------------------------------------------------- frontiers


def pareto_frontier_points(points: Sequence[Tuple[float, float]]) -> List[bool]:
    """Which ``(throughput, delay)`` points sit on the Pareto frontier.

    A point is on the frontier when no other point has both at least its
    throughput and at most its delay, with one strictly better — the
    upper-left boundary of the paper's Figure 7 plane.  ``nan`` delays
    (flows that saw no traffic in the window) never make the frontier.
    """
    flags: List[bool] = []
    for i, (throughput, delay) in enumerate(points):
        if delay != delay:  # nan delay: no measurable operating point
            flags.append(False)
            continue
        dominated = any(
            other_throughput >= throughput
            and other_delay <= delay
            and (other_throughput > throughput or other_delay < delay)
            for j, (other_throughput, other_delay) in enumerate(points)
            if j != i and other_delay == other_delay
        )
        flags.append(not dominated)
    return flags


def pareto_frontier(rows: Sequence[SchemeResult]) -> List[bool]:
    """Which rows sit on the throughput/delay Pareto frontier."""
    return pareto_frontier_points(
        [(row.throughput_bps, row.self_inflicted_delay_s) for row in rows]
    )


#: a per-flow candidate operating point: (grid point, result row, flow)
FlowEntry = Tuple[GridPoint, SchemeResult, FlowMetrics]


def _per_flow_frontier_lines(entries: Sequence[FlowEntry]) -> List[str]:
    """Frontier table for one link's per-flow series.

    The frontier is computed *within* each flow series (all grid points of
    one flow name), so a bulk flow's large throughput cannot blot out the
    interactive flow's frontier — the §5.7 comparison is per flow.
    """
    lines = [
        f"  {'point':30s} {'scheme':22s} {'flow':14s} {'tput (kbps)':>12s} "
        f"{'delay95 (ms)':>12s} {'frontier':>9s}"
    ]
    flow_names = sorted({flow.flow for _, _, flow in entries})
    for flow_name in flow_names:
        series = [entry for entry in entries if entry[2].flow == flow_name]
        flags = pareto_frontier_points(
            [(flow.throughput_bps, flow.delay_95_s) for _, _, flow in series]
        )
        ordered = sorted(
            zip(series, flags),
            key=lambda pair: (
                pair[0][2].delay_95_s != pair[0][2].delay_95_s,  # nan last
                pair[0][2].delay_95_s,
                -pair[0][2].throughput_bps,
            ),
        )
        for (point, row, flow), on_frontier in ordered:
            star = "*" if on_frontier else ""
            lines.append(
                f"  {point.label:30s} {row.scheme:22s} {flow.flow:14s} "
                f"{flow.throughput_kbps:12.0f} {flow.delay_95_ms:12.0f} {star:>9s}"
            )
    return lines


def render_grid_frontiers(data: GridData) -> str:
    """Per-link throughput/delay frontiers across every grid slice.

    For each link, every ``(grid point, scheme)`` measurement becomes one
    candidate operating point; candidates are listed by ascending delay and
    the Pareto-optimal ones (:func:`pareto_frontier`) are starred.  This is
    the report's frontier-comparison section (``docs/scenarios.md``).

    When results carry per-flow metrics (``RunConfig(per_flow=True)``), each
    link additionally gets a per-flow section: one candidate per ``(grid
    point, scheme, flow)``, starred by a frontier computed within each flow
    series — Skype's delay tail and Cubic's bulk throughput traced across
    the same scenario space.
    """
    spec = data.spec
    axes = " × ".join(spec.parameters)
    lines: List[str] = [f"Frontier — throughput vs delay across the {axes} grid", ""]
    screened = len(data.screened)
    if screened:
        # Screened cells are predictions, not measurements; the frontier is
        # a claim about measured operating points only, and the screening
        # heuristic's job (docs/analytic.md) is to emulate every cell that
        # could plausibly appear on it.
        lines[1:1] = [f"({screened} screened cells excluded — predictions only)", ""]
    failed = len(data.errors)
    if failed:
        # Failed cells have no operating point; the frontier is computed
        # over the cells that finished (the grid listing itemises failures).
        lines[1:1] = [f"({failed} failed cells excluded)", ""]
    for link in spec.links:
        link_name = link if isinstance(link, str) else link.name
        entries = [
            (point, row)
            for point in data.points
            for row in point.ok_results
            if row.link == link_name
        ]
        if not entries:
            continue
        flags = pareto_frontier([row for _, row in entries])
        ordered = sorted(
            zip(entries, flags),
            key=lambda pair: (
                pair[0][1].self_inflicted_delay_s,
                -pair[0][1].throughput_bps,
            ),
        )
        lines.append(link_name)
        lines.append(
            f"  {'point':30s} {'scheme':22s} {'tput (kbps)':>12s} "
            f"{'delay (ms)':>12s} {'frontier':>9s}"
        )
        for (point, row), on_frontier in ordered:
            star = "*" if on_frontier else ""
            lines.append(
                f"  {point.label:30s} {row.scheme:22s} {row.throughput_kbps:12.0f} "
                f"{row.self_inflicted_delay_ms:12.0f} {star:>9s}"
            )
        lines.append("")
        flow_entries: List[FlowEntry] = [
            (point, row, flow)
            for point, row in entries
            for flow in (row.flows or [])
        ]
        if flow_entries:
            lines.append(f"{link_name} — per-flow")
            lines.extend(_per_flow_frontier_lines(flow_entries))
            lines.append("")
    return "\n".join(lines)
