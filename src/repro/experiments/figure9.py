"""Figure 9: the effect of Sprout's confidence parameter (Section 5.5).

Sprout's receiver normally forecasts the bytes deliverable with 95%
confidence.  Lowering the confidence trades delay for throughput; the paper
sweeps 95/75/50/25/5% on the T-Mobile 3G (UMTS) uplink and shows the
resulting frontier, together with the other schemes for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.registry import sprout_with_confidence
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.metrics.summary import SchemeResult

#: the confidence values swept in the paper
DEFAULT_CONFIDENCES = (0.95, 0.75, 0.50, 0.25, 0.05)


@dataclass
class Figure9Data:
    """Sweep results plus any context schemes measured on the same link."""

    link: str
    sweep: Dict[float, SchemeResult]
    context: List[SchemeResult]

    def frontier(self) -> List[SchemeResult]:
        """Sweep results ordered from most to least cautious."""
        return [self.sweep[c] for c in sorted(self.sweep, reverse=True)]


def run_figure9(
    link_name: str = "T-Mobile 3G (UMTS) uplink",
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    context_schemes: Sequence[str] = ("Sprout-EWMA", "Cubic", "Vegas", "Skype"),
    config: Optional[RunConfig] = None,
) -> Figure9Data:
    """Regenerate the confidence-parameter sweep of Figure 9."""
    sweep: Dict[float, SchemeResult] = {}
    for confidence in confidences:
        spec = sprout_with_confidence(confidence)
        sweep[confidence] = run_scheme_on_link(spec, link_name, config)
    context = [
        run_scheme_on_link(scheme, link_name, config) for scheme in context_schemes
    ]
    return Figure9Data(link=link_name, sweep=sweep, context=context)


def render_figure9(data: Figure9Data) -> str:
    """Plain-text rendering of the throughput/delay frontier."""
    lines = [f"Figure 9 — confidence parameter sweep on {data.link}", ""]
    lines.append(f"{'scheme':18s} {'tput (kbps)':>12s} {'delay (ms)':>12s}")
    for result in data.frontier():
        lines.append(
            f"{result.scheme:18s} {result.throughput_kbps:12.0f} "
            f"{result.self_inflicted_delay_ms:12.0f}"
        )
    for result in data.context:
        lines.append(
            f"{result.scheme:18s} {result.throughput_kbps:12.0f} "
            f"{result.self_inflicted_delay_ms:12.0f}"
        )
    return "\n".join(lines)
