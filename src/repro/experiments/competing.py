"""Competing-traffic experiments: Cubic + Skype, direct vs. SproutTunnel (§5.7).

The paper runs a TCP Cubic bulk download and a Skype call simultaneously
over the Verizon LTE downlink, first directly (both flows share the same
deep carrier queue) and then through SproutTunnel (each flow in its own
queue at the tunnel ingress, the total limited by Sprout's forecast).
Directly, Cubic fills the queue and Skype's delay explodes; through the
tunnel, Skype is isolated from Cubic's backlog at some cost to Cubic's
throughput.

Simplifications relative to the paper's testbed (documented in DESIGN.md):
the Skype call is modelled download-only, and client feedback (TCP ACKs,
receiver reports) returns over the reverse direction outside the tunnel —
the uplink is lightly loaded in this experiment, so the feedback path is not
the bottleneck either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import AckingReceiver
from repro.baselines.cubic import CubicSender
from repro.baselines.videoconference import (
    SKYPE_PROFILE,
    VideoconferenceReceiver,
    VideoconferenceSender,
)
from repro.cellsim.cellsim import build_cellsim, traces_for_link
from repro.core.connection import SproutConfig
from repro.metrics.flows import FlowMetrics, flow_metrics_from_arrivals
from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.mux import MultiplexProtocol
from repro.simulation.packet import Packet
from repro.simulation.queues import QueueConfig
from repro.traces.networks import get_link
from repro.tunnel.tunnel import HEADER_TUNNEL_FLOW, make_tunnel


@dataclass
class CompetingResult:
    """Results of one competing-traffic run (direct or tunnelled)."""

    mode: str
    flows: Dict[str, FlowMetrics]
    tunnel_drops: int = 0


@dataclass
class CompetingComparison:
    """Direct vs. tunnelled runs, the rows of the Section 5.7 table."""

    direct: CompetingResult
    tunnelled: CompetingResult

    def change_percent(self, flow: str, metric: str) -> float:
        """Relative change (percent) of ``metric`` for ``flow`` via the tunnel."""
        before = getattr(self.direct.flows[flow], metric)
        after = getattr(self.tunnelled.flows[flow], metric)
        if before == 0:
            return float("inf")
        return 100.0 * (after - before) / before


class _TunnelClientContext(HostContext):
    """Redirects a client protocol's sends into the tunnel ingress."""

    def __init__(self, parent: HostContext, flow: str, ingress) -> None:
        super().__init__(parent._loop, parent._transmit, f"{parent.name}:{flow}")
        self._flow = flow
        self._ingress = ingress

    def send(self, packet: Packet) -> None:
        packet.sent_at = self.now()
        packet.flow_id = self._flow
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self._ingress.accept(self._flow, packet)


class TunnelClient(Protocol):
    """Wraps a client protocol so its traffic enters the tunnel ingress."""

    def __init__(self, inner: Protocol, flow: str, ingress) -> None:
        self.inner = inner
        self.flow = flow
        self.ingress = ingress
        self.tick_interval = inner.tick_interval

    def start(self, ctx: HostContext) -> None:
        super().start(ctx)
        self.inner.start(_TunnelClientContext(ctx, self.flow, self.ingress))

    def on_packet(self, packet: Packet, now: float) -> None:
        self.inner.on_packet(packet, now)

    def on_tick(self, now: float) -> None:
        self.inner.on_tick(now)

    def stop(self, now: float) -> None:
        self.inner.stop(now)


def _flow_metrics(
    arrivals: List[Tuple[float, Packet]],
    warmup: float,
    duration: float,
    flow: str = "",
) -> FlowMetrics:
    return flow_metrics_from_arrivals(arrivals, warmup, duration, flow)


def run_direct(
    link_name: str = "Verizon LTE downlink",
    duration: float = 60.0,
    warmup: float = 10.0,
    queue: Optional[QueueConfig] = None,
) -> CompetingResult:
    """Cubic and Skype sharing the emulated link's single queue directly.

    ``queue`` selects the carrier queue (e.g. CoDel, or a finite byte
    limit); the default is the paper's deep drop-tail buffer.
    """
    link = get_link(link_name)
    forward, reverse = traces_for_link(link, duration)

    sender_mux = MultiplexProtocol(
        {
            "cubic": CubicSender(flow_id="cubic"),
            "skype": VideoconferenceSender(SKYPE_PROFILE, flow_id="skype"),
        }
    )
    receiver_mux = MultiplexProtocol(
        {
            "cubic": AckingReceiver(flow_id="cubic"),
            "skype": VideoconferenceReceiver(flow_id="skype"),
        }
    )
    sim = build_cellsim(
        sender_mux,
        receiver_mux,
        forward,
        reverse,
        queue=queue,
        name=f"{link.name} direct",
        seed=link.seed,
    )
    sim.run(duration)

    flows = {
        name: _flow_metrics(
            receiver_mux.received_by_flow.get(name, []), warmup, duration, name
        )
        for name in ("cubic", "skype")
    }
    return CompetingResult(mode="direct", flows=flows)


def run_tunnelled(
    link_name: str = "Verizon LTE downlink",
    duration: float = 60.0,
    warmup: float = 10.0,
    sprout_config: Optional[SproutConfig] = None,
    queue: Optional[QueueConfig] = None,
) -> CompetingResult:
    """Cubic and Skype carried through SproutTunnel over the same link."""
    link = get_link(link_name)
    forward, reverse = traces_for_link(link, duration)
    tunnel = make_tunnel(sprout_config)

    cubic_receiver = AckingReceiver(flow_id="cubic")
    skype_receiver = VideoconferenceReceiver(flow_id="skype")

    sender_mux = MultiplexProtocol(
        {
            "sprout-tunnel": tunnel.sender_protocol,
            "cubic": TunnelClient(CubicSender(flow_id="cubic"), "cubic", tunnel.ingress),
            "skype": TunnelClient(
                VideoconferenceSender(SKYPE_PROFILE, flow_id="skype"), "skype", tunnel.ingress
            ),
        }
    )
    receiver_mux = MultiplexProtocol(
        {
            "sprout-tunnel": tunnel.receiver_protocol,
            "cubic": cubic_receiver,
            "skype": skype_receiver,
        }
    )
    # Tunnelled client packets are delivered to the local client receivers by
    # the egress, which also triggers their feedback (ACKs / reports).
    delivered: Dict[str, List[Tuple[float, Packet]]] = {"cubic": [], "skype": []}

    def _handler(flow: str, receiver: Protocol):
        def handle(packet: Packet, now: float) -> None:
            delivered[flow].append((now, packet))
            receiver.on_packet(packet, now)

        return handle

    tunnel.egress.register_flow("cubic", _handler("cubic", cubic_receiver))
    tunnel.egress.register_flow("skype", _handler("skype", skype_receiver))

    sim = build_cellsim(
        sender_mux,
        receiver_mux,
        forward,
        reverse,
        queue=queue,
        name=f"{link.name} tunnel",
        seed=link.seed,
    )
    sim.run(duration)

    flows = {
        name: _flow_metrics(delivered[name], warmup, duration, name)
        for name in ("cubic", "skype")
    }
    return CompetingResult(
        mode="sprout-tunnel", flows=flows, tunnel_drops=tunnel.dropped_for_limit
    )


def run_competing_comparison(
    link_name: str = "Verizon LTE downlink",
    duration: float = 60.0,
    warmup: float = 10.0,
    queue: Optional[QueueConfig] = None,
) -> CompetingComparison:
    """The full Section 5.7 comparison: direct vs. through SproutTunnel."""
    direct = run_direct(link_name, duration, warmup, queue=queue)
    tunnelled = run_tunnelled(link_name, duration, warmup, queue=queue)
    return CompetingComparison(direct=direct, tunnelled=tunnelled)


# --------------------------------------------------------------------------
# Competing-traffic scenarios as matrix cells (the flows / tunnelled axes)
# --------------------------------------------------------------------------
#
# The sweep engine measures (scheme, link, config) cells through
# ``run_scheme_on_link``, which only needs a picklable factory returning a
# (sender, receiver) protocol pair.  The builders below package the whole
# Section 5.7 scenario — one Skype call competing with N-1 Cubic bulk
# downloads, either sharing the link's queue directly or carried through
# SproutTunnel — into exactly that shape, so contention and tunnelling can
# be swept like loss or sigma (see repro.experiments.sweeps and
# docs/scenarios.md).  The measured SchemeResult is then what the receiving
# host saw *over the emulated link*: aggregate delivered throughput and the
# 95th-percentile packet delay (of the tunnel's own packets when tunnelled).


def competing_flow_names(flows: int) -> List[str]:
    """The client flows of an N-flow scenario: one Skype call + N-1 Cubics.

    ``flows=2`` is the paper's Section 5.7 mix (Cubic + Skype); higher
    values add more bulk downloads competing with the one interactive flow.
    """
    if flows < 1 or flows != int(flows):
        raise ValueError(f"flows must be a positive integer, got {flows!r}")
    return ["skype"] + [f"cubic-{i}" for i in range(1, int(flows))]


def _client_pair(flow: str) -> Tuple[Protocol, Protocol]:
    if flow == "skype":
        return (
            VideoconferenceSender(SKYPE_PROFILE, flow_id=flow),
            VideoconferenceReceiver(flow_id=flow),
        )
    return CubicSender(flow_id=flow), AckingReceiver(flow_id=flow)


def competing_direct_pair(flows: int = 2) -> Tuple[Protocol, Protocol]:
    """Sender/receiver muxes for N client flows sharing the link directly."""
    senders: Dict[str, Protocol] = {}
    receivers: Dict[str, Protocol] = {}
    for flow in competing_flow_names(flows):
        senders[flow], receivers[flow] = _client_pair(flow)
    return MultiplexProtocol(senders), MultiplexProtocol(receivers)


def competing_tunnel_pair(
    flows: int = 2, sprout_config: Optional[SproutConfig] = None
) -> Tuple[Protocol, Protocol]:
    """Sender/receiver muxes for N client flows carried through SproutTunnel.

    The egress delivers each unwrapped client packet to its local receiver,
    whose feedback (ACKs, receiver reports) returns over the reverse
    direction outside the tunnel, exactly as in :func:`run_tunnelled`.  Each
    egress delivery is also logged into the receiver mux's per-flow log, so
    per-flow metrics (``RunConfig(per_flow=True)``) see the client flows and
    not just the tunnel frames that crossed the link.
    """
    tunnel = make_tunnel(sprout_config)
    senders: Dict[str, Protocol] = {"sprout-tunnel": tunnel.sender_protocol}
    receivers: Dict[str, Protocol] = {"sprout-tunnel": tunnel.receiver_protocol}
    client_receivers: Dict[str, Protocol] = {}
    for flow in competing_flow_names(flows):
        client_sender, client_receiver = _client_pair(flow)
        senders[flow] = TunnelClient(client_sender, flow, tunnel.ingress)
        receivers[flow] = client_receiver
        client_receivers[flow] = client_receiver
    receiver_mux = MultiplexProtocol(receivers)

    def _egress_handler(flow: str, receiver: Protocol):
        log = receiver_mux.received_by_flow[flow]

        def handle(packet: Packet, now: float) -> None:
            log.append((now, packet))
            receiver.on_packet(packet, now)

        return handle

    for flow, client_receiver in client_receivers.items():
        tunnel.egress.register_flow(flow, _egress_handler(flow, client_receiver))
    return MultiplexProtocol(senders), receiver_mux


def competing_scheme(
    flows: int = 2,
    tunnelled: bool = True,
    sprout_config: Optional[SproutConfig] = None,
):
    """A registry-style scheme spec wrapping one competing-traffic scenario.

    The factory is a :func:`functools.partial` over the module-level pair
    builders, so the spec pickles and parallelises like any registry scheme.
    ``sprout_config`` tunes the tunnel's Sprout (ignored when direct), which
    is what lets sigma x flows grids carry the swept model into the tunnel.
    """
    from repro.experiments.registry import SchemeSpec

    names = competing_flow_names(flows)
    if tunnelled:
        factory = partial(competing_tunnel_pair, int(flows), sprout_config)
        mode = "tunnel"
    else:
        factory = partial(competing_direct_pair, int(flows))
        mode = "direct"
    return SchemeSpec(
        name=f"Competing x{len(names)} [{mode}]",
        factory=factory,
        category="scenario",
    )


def competing_scheme_parts(
    spec,
) -> Optional[Tuple[int, bool, Optional[SproutConfig]]]:
    """Recover ``(flows, tunnelled, sprout_config)`` from a scenario spec.

    Returns ``None`` for schemes not built by :func:`competing_scheme`, so
    the sweep expanders can tell scenario cells from ordinary ones.
    """
    factory = getattr(spec, "factory", None)
    if not isinstance(factory, partial) or factory.keywords:
        return None
    if factory.func is competing_tunnel_pair and len(factory.args) == 2:
        return int(factory.args[0]), True, factory.args[1]
    if factory.func is competing_direct_pair and len(factory.args) == 1:
        return int(factory.args[0]), False, None
    return None


def render_competing(comparison: CompetingComparison) -> str:
    """Plain-text rendering of the Section 5.7 table."""
    d, t = comparison.direct, comparison.tunnelled
    lines = ["Section 5.7 — Cubic + Skype, direct vs via SproutTunnel", ""]
    lines.append(f"{'metric':24s} {'direct':>12s} {'via Sprout':>12s} {'change':>10s}")
    rows = [
        ("Cubic throughput (kbps)", d.flows["cubic"].throughput_kbps,
         t.flows["cubic"].throughput_kbps, comparison.change_percent("cubic", "throughput_bps")),
        ("Skype throughput (kbps)", d.flows["skype"].throughput_kbps,
         t.flows["skype"].throughput_kbps, comparison.change_percent("skype", "throughput_bps")),
        ("Skype 95% delay (ms)", d.flows["skype"].delay_95_ms,
         t.flows["skype"].delay_95_ms, comparison.change_percent("skype", "delay_95_s")),
    ]
    for label, before, after, change in rows:
        lines.append(f"{label:24s} {before:12.0f} {after:12.0f} {change:+9.0f}%")
    return "\n".join(lines)
