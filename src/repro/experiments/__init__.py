"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.registry import (
    FIGURE7_SCHEMES,
    INTRO_TABLE_SCHEMES,
    SCHEMES,
    SchemeSpec,
    get_scheme,
    scheme_names,
    sprout_with_confidence,
)
from repro.experiments.runner import (
    RunConfig,
    collect_metrics,
    run_scheme_on_link,
    run_with_loss_rates,
)

# The package-level run_matrix is the jobs-aware runner; it short-circuits
# to the serial implementation for jobs in (None, 1) with identical results.
from repro.experiments.parallel import default_jobs, run_cells, run_matrix, shared_pool
from repro.experiments.sweeps import (
    SWEEP_PARAMETERS,
    SweepData,
    SweepPoint,
    SweepSpec,
    expand_sweep,
    get_sweep_parameter,
    render_sweep,
    run_sweep,
    run_sweep_suite,
    sweep_parameter_names,
)
from repro.experiments.figure1 import Figure1Data, render_figure1, run_figure1
from repro.experiments.figure2 import Figure2Data, render_figure2, run_figure2
from repro.experiments.figure7 import Figure7Data, render_figure7, run_figure7
from repro.experiments.figure8 import FIGURE8_SCHEMES, Figure8Data, render_figure8, run_figure8
from repro.experiments.figure9 import Figure9Data, render_figure9, run_figure9
from repro.experiments.competing import (
    CompetingComparison,
    CompetingResult,
    render_competing,
    run_competing_comparison,
    run_direct,
    run_tunnelled,
)
from repro.experiments.tables import (
    LossTableData,
    ewma_table,
    intro_table,
    loss_table,
    render_ewma_table,
    render_intro_table,
    render_loss_table,
    tunnel_table,
)
from repro.experiments.report import ReportConfig, generate_report

__all__ = [
    "SCHEMES",
    "SchemeSpec",
    "FIGURE7_SCHEMES",
    "FIGURE8_SCHEMES",
    "INTRO_TABLE_SCHEMES",
    "get_scheme",
    "scheme_names",
    "sprout_with_confidence",
    "RunConfig",
    "collect_metrics",
    "default_jobs",
    "run_cells",
    "run_matrix",
    "shared_pool",
    "SWEEP_PARAMETERS",
    "SweepData",
    "SweepPoint",
    "SweepSpec",
    "expand_sweep",
    "get_sweep_parameter",
    "render_sweep",
    "run_sweep",
    "run_sweep_suite",
    "sweep_parameter_names",
    "run_scheme_on_link",
    "run_with_loss_rates",
    "Figure1Data",
    "Figure2Data",
    "Figure7Data",
    "Figure8Data",
    "Figure9Data",
    "run_figure1",
    "run_figure2",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "render_figure1",
    "render_figure2",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "CompetingComparison",
    "CompetingResult",
    "run_competing_comparison",
    "run_direct",
    "run_tunnelled",
    "render_competing",
    "LossTableData",
    "intro_table",
    "ewma_table",
    "loss_table",
    "tunnel_table",
    "render_intro_table",
    "render_ewma_table",
    "render_loss_table",
    "ReportConfig",
    "generate_report",
]
