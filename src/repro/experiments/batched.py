"""Batched cross-cell simulation engine (docs/performance.md "Layer 4").

A grid of Sprout cells spends most of its time in the forecaster's per-tick
math: one belief evolution (a 256-vector × 256×256 transition product) and,
on feedback ticks, one cautious-quantile extraction against the shared
model artifact.  Every cell performs that math against the *same* read-only
:class:`~repro.core.rate_model.RateModel` arrays, on the same 20 ms tick
lattice — which makes the work batchable: stack the cells' beliefs into a
``(cells, bins)`` matrix and contract them against the shared artifact once
per tick round instead of once per cell per tick.

The engine here steps every eligible cell's event loop to its next receiver
tick (:meth:`EventLoop.run_until` with ``stop_before``, which pauses the
loop *exactly* before the tick event and after everything ordered ahead of
it), pre-reads each paused cell's pending observation
(:meth:`SproutReceiver.peek_observation`), computes all the belief updates
in one :meth:`RateModel.batched_tick` call — plus the cautious forecasts of
the cells about to send feedback in one
:meth:`RateModel.batched_cumulative_quantile` call — and installs each
cell's row on its forecaster (:meth:`BayesianForecaster.install_step`)
before resuming the loop to fire the tick.  The installed step only applies
if the tick arrives with exactly the predicted observation; any mismatch
falls back to the ordinary per-cell computation, so a driver mis-prediction
can cost speed but never correctness.  Because the batched kernels are
bit-identical to their serial counterparts (``tests/test_batched.py``),
results are bit-identical to the serial runner.

Irregular cells fall back to the existing per-cell event loop: competing /
tunnelled scenarios (the receiving endpoint is a multiplexer, not a
:class:`SproutReceiver`), Sprout-EWMA (no Bayesian model), CoDel cells
(either direction), and any scheme whose endpoints do not introspect as a
plain Sprout receiver.  Fallback cells run serially in the parent under the
batch's :class:`~repro.experiments.policy.ErrorPolicy`, exactly like the
``jobs=1`` path.

Entry point: :func:`run_indices_batched`, invoked by
:func:`repro.experiments.parallel.run_cells` for ``backend="batched"``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cellsim.cellsim import Cellsim, cellsim_for_link
from repro.core.forecaster import BayesianForecaster
from repro.core.receiver import SproutReceiver
from repro.experiments.policy import CellError, ErrorPolicy
from repro.experiments.registry import SchemeSpec, get_scheme
from repro.experiments.runner import RunConfig, collect_metrics
from repro.simulation.events import Event
from repro.simulation.queues import CoDelQueue
from repro.testing.faults import fire_faults
from repro.traces.networks import get_link


class _BatchedCell:
    """One eligible cell: its assembled emulation plus the driver handles."""

    __slots__ = (
        "index",
        "scheme_name",
        "link_name",
        "config",
        "sim",
        "receiver",
        "forecaster",
        "duration",
    )

    def __init__(
        self,
        index: int,
        scheme_name: str,
        link_name: str,
        config: RunConfig,
        sim: Cellsim,
        receiver: SproutReceiver,
        forecaster: BayesianForecaster,
    ) -> None:
        self.index = index
        self.scheme_name = scheme_name
        self.link_name = link_name
        self.config = config
        self.sim = sim
        self.receiver = receiver
        self.forecaster = forecaster
        self.duration = config.duration


def _eligible_spec(spec: object) -> bool:
    """Cheap pre-screen before building the cell's emulation.

    Only plain Sprout-category schemes can batch: scenario schemes
    (competing flows, tunnels) put a multiplexer at the receiving end,
    Sprout-EWMA has no Bayesian model, and CoDel cells are excluded as
    irregular (their drop timing makes tick work uneven; they run on the
    per-cell loop).  The post-build introspection in :func:`_try_build`
    re-verifies all of this against the actual endpoints, so the pre-screen
    only ever avoids wasted builds.
    """
    if not isinstance(spec, SchemeSpec):
        return False
    if spec.use_codel:
        return False
    if spec.category != "sprout" or spec.name == "Sprout-EWMA":
        return False
    return True


def _try_build(
    index: int, scheme: object, link: object, config: Optional[RunConfig]
) -> Optional[_BatchedCell]:
    """Assemble one cell's emulation if it is batchable, else ``None``.

    Mirrors :func:`~repro.experiments.runner.run_scheme_on_link` exactly up
    to (but not including) ``sim.run``, then verifies by introspection that
    the built endpoints really are a plain Sprout receiver with a Bayesian
    forecaster over drop-tail queues.  Anything else — however it was
    configured — is rejected to the per-cell fallback.
    """
    spec = get_scheme(scheme) if isinstance(scheme, str) else scheme
    if not _eligible_spec(spec):
        return None
    link_spec = get_link(link) if isinstance(link, str) else link
    cfg = config if config is not None else RunConfig()
    sender, receiver = spec.factory()
    sim = cellsim_for_link(
        sender,
        receiver,
        link_spec,
        duration=cfg.duration,
        loss_rate=cfg.loss_rate,
        use_codel=spec.use_codel,
        queue_byte_limit=cfg.queue_byte_limit,
    )
    protocol = sim.receiver_host.protocol
    forecaster = getattr(protocol, "forecaster", None)
    if not isinstance(protocol, SproutReceiver) or not isinstance(
        forecaster, BayesianForecaster
    ):
        return None
    if isinstance(sim.path.forward.queue, CoDelQueue) or isinstance(
        sim.path.reverse.queue, CoDelQueue
    ):
        return None
    return _BatchedCell(
        index=index,
        scheme_name=spec.name,
        link_name=link_spec.name,
        config=cfg,
        sim=sim,
        receiver=protocol,
        forecaster=forecaster,
    )


def _advance(cell: _BatchedCell) -> Optional[Event]:
    """Advance one cell to its next receiver-tick pause, or to completion.

    Returns the pending tick event when the loop paused exactly before it
    (everything ordered ahead of the tick has fired; the clock still reads
    the previous event's time), or ``None`` when the cell reached its
    duration — in which case both hosts are stopped, completing the exact
    :meth:`Cellsim.run` sequence.
    """
    event = cell.sim.receiver_host._tick_event
    if event is not None and not event.cancelled and event.time <= cell.duration:
        if cell.sim.loop.run_until(cell.duration, stop_before=event):
            return event
    else:
        cell.sim.loop.run_until(cell.duration)
    cell.sim.sender_host.stop()
    cell.sim.receiver_host.stop()
    return None


def _run_group(
    group: List[_BatchedCell],
    record_success: Callable[[_BatchedCell], None],
    record_failure: Callable[[_BatchedCell, BaseException], None],
) -> None:
    """Step one shared-model group of cells in lockstep rounds.

    Each round advances every live cell to its next receiver tick, batches
    the belief updates (and the feedback cells' forecasts) into one kernel
    call apiece, installs the rows, and fires the ticks.  Cells whose next
    tick lies beyond their duration finish and are recorded; a cell whose
    emulation raises is handed to ``record_failure`` and dropped without
    disturbing the rest of the group.
    """
    model = group[0].forecaster.model
    live: List[_BatchedCell] = []
    for cell in group:
        try:
            fire_faults(cell.scheme_name, cell.link_name, 1, cell.index)
            cell.sim.sender_host.start()
            cell.sim.receiver_host.start()
        except Exception as error:
            record_failure(cell, error)
            continue
        live.append(cell)

    # The group's belief matrix, row-aligned with ``live``.  Installed
    # beliefs are row *views* of the previous round's kernel output, which
    # is safe because beliefs are never mutated in place (evolve/update
    # return fresh arrays) — so as long as every install was consumed, the
    # matrix already holds each forecaster's current belief and needs no
    # per-round re-stack.  Any fallback (the forecaster recomputed on its
    # own) or change in the live set invalidates the cached matrix.
    beliefs: Optional[np.ndarray] = None
    group_fallbacks = 0

    while live:
        paused: List[Tuple[_BatchedCell, Event]] = []
        for cell in live:
            try:
                event = _advance(cell)
            except Exception as error:
                record_failure(cell, error)
                continue
            if event is None:
                try:
                    record_success(cell)
                except Exception as error:
                    record_failure(cell, error)
            else:
                paused.append((cell, event))
        if not paused:
            return
        if beliefs is None or len(paused) != len(live):
            beliefs = np.stack([cell.forecaster.belief for cell, _ in paused])

        # One vectorized tick across every paused cell.  The observation is
        # pre-read at the tick's own time (the clock has not advanced yet),
        # converted to packets with the same scalar division the serial
        # forecaster performs, and the resulting rows are installed before
        # the ticks fire.  Nothing can run between an install and its tick
        # (the tick is the next queued event), so the install matches by
        # construction; the forecaster still verifies and falls back on any
        # mismatch.
        peeks = [cell.receiver.peek_observation(event.time) for cell, event in paused]
        packets = [
            None if observed is None else observed / cell.forecaster.mtu_bytes
            for (observed, _), (cell, _) in zip(peeks, paused)
        ]
        censored = [at_least for _, at_least in peeks]
        new_beliefs = model.batched_tick(beliefs, packets, censored)

        feedback = [
            i for i, (cell, _) in enumerate(paused) if cell.receiver.will_send_feedback()
        ]
        forecast_rows: Optional[np.ndarray] = None
        if feedback:
            forecast_rows = model.batched_cumulative_quantile(
                new_beliefs[np.asarray(feedback)],
                [paused[i][0].forecaster.percentile for i in feedback],
            )
            # One shared mtu per group (one model), so the bytes conversion
            # vectorizes; each row still matches the serial ``packets * mtu``
            # elementwise product bitwise.
            forecast_rows *= model.params.mtu_bytes

        next_live: List[_BatchedCell] = []
        next_feedback = 0
        for i, (cell, event) in enumerate(paused):
            observed, at_least = peeks[i]
            forecast_bytes = None
            if next_feedback < len(feedback) and feedback[next_feedback] == i:
                forecast_bytes = forecast_rows[next_feedback]
                next_feedback += 1
            cell.forecaster.install_step(
                observed, at_least, new_beliefs[i], forecast_bytes
            )
            try:
                cell.sim.loop.run_until(event.time)
            except Exception as error:
                record_failure(cell, error)
                continue
            next_live.append(cell)

        fallbacks = sum(cell.forecaster.batched_fallbacks for cell in next_live)
        if len(next_live) == len(paused) and fallbacks == group_fallbacks:
            beliefs = new_beliefs
        else:
            beliefs = None
            group_fallbacks = fallbacks
        live = next_live


def run_indices_batched(
    cells: Sequence[Tuple],
    indices: Sequence[int],
    policy: ErrorPolicy,
    record: Callable[[int, object], None],
) -> None:
    """Run a batch of cells through the batched cross-cell engine.

    Eligible cells are grouped by shared model artifact and stepped in
    lockstep; ineligible (or unbuildable) cells run serially in the parent
    afterwards, under the same :class:`ErrorPolicy` as the ``jobs=1`` path.
    Results land through ``record`` at each cell's own index, so ordering
    guarantees are untouched.  Per-cell failures follow the policy: raised
    under ``fail_fast``; under ``collect``/``retry`` the failed cell is
    either retried serially from scratch (the batched attempt counts as
    attempt one) or recorded as a :class:`CellError` in place.  Like the
    serial engine, this in-process driver cannot preempt a running cell, so
    ``cell_timeout`` batches are routed to the pooled fault-tolerant engine
    by :func:`~repro.experiments.parallel.run_cells` before reaching here.

    Successful cells share a baseline memo for the trace-only metric
    baselines (link capacity and the omniscient lower bound): cells on the
    same delivery trace and measurement window reuse the first cell's
    values, which are deterministic pure functions of the trace — the memo
    changes nothing but time.
    """
    from repro.experiments.parallel import _run_cell_serially

    groups: Dict[int, List[_BatchedCell]] = {}
    fallback: List[int] = []
    for index in indices:
        scheme, link, config = cells[index]
        try:
            built = _try_build(index, scheme, link, config)
        except Exception:
            # The serial fallback rebuilds from scratch and surfaces the
            # same (deterministic) error under the policy's semantics.
            built = None
        if built is None:
            fallback.append(index)
        else:
            groups.setdefault(id(built.forecaster.model), []).append(built)

    baselines: Dict[Tuple, Tuple] = {}

    def record_success(cell: _BatchedCell) -> None:
        record(
            cell.index,
            collect_metrics(
                cell.sim,
                cell.scheme_name,
                cell.link_name,
                cell.config,
                baseline_cache=baselines,
            ),
        )

    def record_failure(cell: _BatchedCell, error: BaseException) -> None:
        if policy.fail_fast:
            raise error
        if policy.retry_budget > 0:
            record(
                cell.index,
                _run_cell_serially(cells, cell.index, policy, start_attempt=2),
            )
        else:
            record(
                cell.index,
                CellError.from_exception(
                    cells[cell.index], error, attempts=1, kind="error"
                ),
            )

    for group in groups.values():
        _run_group(group, record_success, record_failure)

    for index in fallback:
        record(index, _run_cell_serially(cells, index, policy))
