"""Assemble every experiment into a single textual report.

``python -m repro report`` (see :mod:`repro.cli`) runs the full reproduction
and writes a report containing each figure's and table's regenerated data —
the same content EXPERIMENTS.md summarises against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.competing import render_competing
from repro.experiments.figure1 import render_figure1, run_figure1
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.figure7 import Figure7Data, render_figure7, run_figure7
from repro.experiments.figure8 import render_figure8, run_figure8
from repro.experiments.figure9 import render_figure9, run_figure9
from repro.experiments.parallel import shared_pool
from repro.experiments.policy import ErrorPolicy
from repro.experiments.registry import INTRO_TABLE_SCHEMES
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import (
    GridSpec,
    SweepSpec,
    render_grid,
    render_grid_frontiers,
    render_sweep,
    run_grid,
    run_sweep,
)
from repro.experiments.tables import (
    intro_table,
    loss_table,
    render_ewma_table,
    render_intro_table,
    render_loss_table,
    ewma_table,
    tunnel_table,
)


@dataclass
class ReportConfig:
    """Controls how much work the full report does."""

    duration: float = 60.0
    warmup: float = 10.0
    figure1_duration: float = 60.0
    figure2_duration: float = 300.0
    tunnel_duration: float = 60.0
    include_sections: Optional[List[str]] = None
    #: worker processes for matrix experiments (None/1 = serial, 0 = per CPU)
    jobs: Optional[int] = None
    #: optional parameter sweeps appended to the report (docs/sweeps.md)
    sweeps: Optional[List[SweepSpec]] = None
    #: optional multi-dimensional grids appended to the report, each
    #: followed by its per-link frontier section (docs/scenarios.md)
    grids: Optional[List[GridSpec]] = None
    #: failure handling for the report's sweep/grid sections
    #: (docs/robustness.md); ``None`` keeps the fail-fast default
    error_policy: Optional[ErrorPolicy] = None
    #: analytic screening for the report's grid sections: ``None`` emulates
    #: every cell; a :class:`~repro.experiments.analytic.ScreenConfig` (or
    #: ``True`` for the defaults) emulates only cells near the predicted
    #: frontier and reports the rest as predictions (docs/analytic.md)
    screen: Optional[object] = None

    def run_config(self) -> RunConfig:
        return RunConfig(duration=self.duration, warmup=self.warmup)

    def wants(self, section: str) -> bool:
        return self.include_sections is None or section in self.include_sections


def generate_report(config: Optional[ReportConfig] = None, progress=print) -> str:
    """Run every experiment and return the combined textual report.

    The whole run shares **one** warmed worker pool (when ``jobs`` asks for
    parallelism): every matrix section and sweep reuses it instead of paying
    the per-pool rate-model warm-up again.
    """
    cfg = config if config is not None else ReportConfig()
    with shared_pool(cfg.jobs):
        return _generate_report_sections(cfg, progress)


def _generate_report_sections(cfg: ReportConfig, progress) -> str:
    run_cfg = cfg.run_config()
    sections: List[str] = []

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    figure7_data: Optional[Figure7Data] = None
    if cfg.wants("figure7") or cfg.wants("tables") or cfg.wants("figure8"):
        note("running the Figure 7 measurement matrix (all schemes x all links)...")
        figure7_data = run_figure7(
            schemes=INTRO_TABLE_SCHEMES,
            config=run_cfg,
            progress=lambda r: note(f"  {r.link}: {r.scheme} done"),
            jobs=cfg.jobs,
        )

    if cfg.wants("figure1"):
        note("running Figure 1 (Skype vs Sprout time series)...")
        sections.append(render_figure1(run_figure1(duration=cfg.figure1_duration)))
    if cfg.wants("figure2"):
        note("running Figure 2 (interarrival distribution)...")
        sections.append(render_figure2(run_figure2(duration=cfg.figure2_duration)))
    if figure7_data is not None and cfg.wants("figure7"):
        sections.append(render_figure7(figure7_data))
    if figure7_data is not None and cfg.wants("figure8"):
        sections.append(render_figure8(run_figure8(results=figure7_data.results)))
    if cfg.wants("figure9"):
        note("running Figure 9 (confidence sweep)...")
        sections.append(render_figure9(run_figure9(config=run_cfg)))
    if figure7_data is not None and cfg.wants("tables"):
        sections.append(render_intro_table(intro_table(results=figure7_data.results)))
        sections.append(render_ewma_table(ewma_table(results=figure7_data.results)))
    if cfg.wants("loss"):
        note("running the Section 5.6 loss-resilience table...")
        sections.append(render_loss_table(loss_table(config=run_cfg)))
    if cfg.wants("tunnel"):
        note("running the Section 5.7 competing-traffic comparison...")
        sections.append(render_competing(tunnel_table(duration=cfg.tunnel_duration)))
    if cfg.sweeps and cfg.wants("sweeps"):
        for spec in cfg.sweeps:
            note(f"running the {spec.parameter} sweep ({len(spec.values)} values)...")
            sections.append(
                render_sweep(
                    run_sweep(
                        spec, config=run_cfg, jobs=cfg.jobs, policy=cfg.error_policy
                    )
                )
            )
    if cfg.grids and cfg.wants("grids"):
        for grid_spec in cfg.grids:
            axes = " × ".join(grid_spec.parameters)
            note(
                f"running the {axes} grid "
                f"({len(grid_spec.coordinates())} points)..."
            )
            data = run_grid(
                grid_spec,
                config=run_cfg,
                jobs=cfg.jobs,
                policy=cfg.error_policy,
                screen=cfg.screen,
            )
            sections.append(render_grid(data))
            sections.append(render_grid_frontiers(data))

    return "\n\n" + "\n\n".join(sections) + "\n"
