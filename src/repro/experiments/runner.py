"""Run one scheme over one emulated link and compute the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.baselines.omniscient import omniscient_delay
from repro.cellsim.cellsim import Cellsim, build_cellsim, cellsim_for_link, traces_for_link
from repro.experiments.policy import ErrorPolicy
from repro.experiments.registry import SchemeSpec, get_scheme
from repro.metrics.delay import arrivals_from_log, end_to_end_delay_95, self_inflicted_delay
from repro.metrics.flows import attach_uplink_deliveries, flow_metrics_from_logs
from repro.metrics.summary import SchemeResult
from repro.metrics.throughput import average_throughput_bps, link_capacity_bps, utilization
from repro.traces.networks import DEFAULT_TRACE_DURATION, LinkSpec, get_link


@dataclass
class RunConfig:
    """Parameters of one experiment run.

    The paper skips the first minute of every application run to avoid
    start-up effects; with the shorter default traces used here the warm-up
    is scaled down proportionally but serves the same purpose.

    ``per_flow`` asks the metrics collection to also break the run down per
    client flow (Section 5.7: Skype's delay vs. Cubic's throughput) when the
    receiving endpoint keeps per-flow logs — a multiplexed scenario cell.
    It is pure collection: the emulation's physics are identical either way.

    ``error_policy`` rides along for the batch engines
    (:func:`repro.experiments.parallel.run_cells` and the sweep/grid
    runners): how a *batch* containing this cell responds to failures
    (docs/robustness.md).  It never affects the cell's own emulation or
    metrics, and a single :func:`run_scheme_on_link` call ignores it.
    """

    duration: float = DEFAULT_TRACE_DURATION
    warmup: float = 15.0
    loss_rate: float = 0.0
    queue_byte_limit: Optional[int] = None
    per_flow: bool = False
    error_policy: Optional[ErrorPolicy] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must be within [0, duration)")


def run_scheme_on_link(
    scheme: Union[str, SchemeSpec],
    link: Union[str, LinkSpec],
    config: Optional[RunConfig] = None,
) -> SchemeResult:
    """Run ``scheme`` over ``link`` and return its measured metrics.

    Args:
        scheme: a scheme name from the registry or an explicit spec.
        link: a link name (e.g. ``"Verizon LTE downlink"``) or spec.
        config: run parameters; defaults mirror the evaluation settings.
    """
    spec = get_scheme(scheme) if isinstance(scheme, str) else scheme
    link_spec = get_link(link) if isinstance(link, str) else link
    cfg = config if config is not None else RunConfig()

    sender, receiver = spec.factory()
    sim = cellsim_for_link(
        sender,
        receiver,
        link_spec,
        duration=cfg.duration,
        loss_rate=cfg.loss_rate,
        use_codel=spec.use_codel,
        queue_byte_limit=cfg.queue_byte_limit,
    )
    sim.run(cfg.duration)
    return collect_metrics(sim, spec.name, link_spec.name, cfg)


def collect_metrics(
    sim: Cellsim,
    scheme_name: str,
    link_name: str,
    config: RunConfig,
    baseline_cache: Optional[dict] = None,
) -> SchemeResult:
    """Compute the paper's metrics from a finished emulation.

    With ``config.per_flow`` set and a receiver that keeps per-flow logs
    (:class:`~repro.simulation.mux.MultiplexProtocol`, whose log the tunnel
    egress also feeds), the result additionally carries one
    :class:`~repro.metrics.flows.FlowMetrics` per client flow.

    ``baseline_cache`` (used by the batched cross-cell engine) memoizes the
    trace-only baselines — link capacity and the omniscient delay bound —
    across cells sharing a delivery trace and measurement window.  Both are
    deterministic pure functions of the trace, so the memo returns the
    identical values; the cache entry pins the trace object it was keyed
    on, so an ``id`` can never be recycled within one batch.
    """
    start = config.warmup
    end = config.duration

    received_log = sim.receiver_host.received_log
    throughput = average_throughput_bps(received_log, start, end)

    arrivals = arrivals_from_log(received_log)
    delay_95 = end_to_end_delay_95(arrivals, start, end)

    propagation = sim.path.config.propagation_delay
    cached = None
    if baseline_cache is not None:
        key = (id(sim.forward_trace), propagation, start, end)
        cached = baseline_cache.get(key)
    if cached is None:
        capacity = link_capacity_bps(sim.forward_trace, start, end)
        base_delay = omniscient_delay(
            sim.forward_trace,
            propagation_delay=propagation,
            start_time=start,
            end_time=end,
        )
        if baseline_cache is not None:
            baseline_cache[key] = (sim.forward_trace, capacity, base_delay)
    else:
        _, capacity, base_delay = cached
    inflicted = self_inflicted_delay(delay_95, base_delay)

    flows = None
    if config.per_flow:
        flow_logs = getattr(sim.receiver_host.protocol, "received_by_flow", None)
        if flow_logs is not None:
            flows = flow_metrics_from_logs(flow_logs, start, end) or None
        if flows is not None:
            # Downlink-first contract (repro.metrics.flows): the measured
            # numbers come from the receiver side; when the sender side is
            # also a mux, its log has already seen the feedback direction,
            # so tally those deliveries into the diagnostic uplink counters.
            uplink_logs = getattr(sim.sender_host.protocol, "received_by_flow", None)
            if uplink_logs is not None:
                attach_uplink_deliveries(flows, uplink_logs, start, end)

    return SchemeResult(
        scheme=scheme_name,
        link=link_name,
        throughput_bps=throughput,
        delay_95_s=delay_95,
        self_inflicted_delay_s=inflicted,
        utilization=utilization(throughput, capacity),
        capacity_bps=capacity,
        omniscient_delay_95_s=base_delay,
        extra={
            "packets_delivered": float(len(received_log)),
            "forward_queue_drops": float(getattr(sim.path.forward.queue, "drops", 0)),
            "forward_loss_drops": float(sim.path.forward.packets_lost),
        },
        flows=flows,
    )


#: callback invoked with each finished result of a matrix run
ProgressCallback = Callable[[SchemeResult], None]


def run_matrix(
    schemes: Iterable[Union[str, SchemeSpec]],
    links: Iterable[Union[str, LinkSpec]],
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[SchemeResult]:
    """Run every scheme over every link (the Figure 7 measurement matrix).

    This is the serial reference path; :func:`repro.experiments.parallel.run_matrix`
    produces identical results fanned out over worker processes.
    """
    results: List[SchemeResult] = []
    links = list(links)
    for scheme in schemes:
        for link in links:
            result = run_scheme_on_link(scheme, link, config)
            results.append(result)
            if progress is not None:
                progress(result)
    return results


def run_with_loss_rates(
    scheme: Union[str, SchemeSpec],
    link: Union[str, LinkSpec],
    loss_rates: Sequence[float],
    config: Optional[RunConfig] = None,
) -> Dict[float, SchemeResult]:
    """Run one scheme over one link at several Bernoulli loss rates (§5.6)."""
    cfg = config if config is not None else RunConfig()
    results: Dict[float, SchemeResult] = {}
    for rate in loss_rates:
        results[rate] = run_scheme_on_link(scheme, link, replace(cfg, loss_rate=rate))
    return results
