"""The paper's tables: the two introduction tables, §5.6 loss resilience,
and §5.7 competing traffic.

Each generator either runs the required emulations itself or accepts a list
of already-measured :class:`SchemeResult` rows (so a single Figure 7 matrix
run can feed the introduction tables without repeating work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.competing import CompetingComparison, run_competing_comparison
from repro.experiments.parallel import run_matrix
from repro.experiments.registry import INTRO_TABLE_SCHEMES
from repro.experiments.runner import RunConfig, run_with_loss_rates
from repro.metrics.summary import (
    RelativeComparison,
    SchemeResult,
    relative_to_reference,
)
from repro.traces.networks import link_names


# --------------------------------------------------------------------------
# Introduction table 1: every scheme vs Sprout
# --------------------------------------------------------------------------

def intro_table(
    results: Optional[List[SchemeResult]] = None,
    links: Optional[Sequence[str]] = None,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
) -> List[RelativeComparison]:
    """Average speedup and delay reduction of Sprout vs every other scheme.

    Mirrors the first table of the paper's introduction: for each scheme,
    how many times more throughput Sprout achieved and how many times larger
    the scheme's self-inflicted delay was, averaged over all measured links.
    """
    if results is None:
        link_list = list(links) if links is not None else link_names()
        results = run_matrix(INTRO_TABLE_SCHEMES, link_list, config=config, jobs=jobs)
    return relative_to_reference(results, reference="Sprout")


def render_intro_table(comparisons: List[RelativeComparison]) -> str:
    lines = ["Introduction table — relative to Sprout", ""]
    lines.append(
        f"{'scheme':16s} {'avg speedup vs scheme':>22s} {'delay reduction':>16s} "
        f"{'(avg delay s)':>14s}"
    )
    for row in sorted(comparisons, key=lambda c: c.scheme != "Sprout"):
        lines.append(
            f"{row.scheme:16s} {row.speedup:22.2f} {row.delay_reduction:16.1f} "
            f"{row.mean_delay_s:14.2f}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Introduction table 2: Sprout-EWMA comparison
# --------------------------------------------------------------------------

#: the schemes of the introduction's second table
EWMA_TABLE_SCHEMES = ("Sprout-EWMA", "Sprout", "Cubic", "Cubic-CoDel")


def ewma_table(
    results: Optional[List[SchemeResult]] = None,
    links: Optional[Sequence[str]] = None,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
) -> List[RelativeComparison]:
    """The introduction's second table, relative to Sprout-EWMA."""
    if results is None:
        link_list = list(links) if links is not None else link_names()
        results = run_matrix(EWMA_TABLE_SCHEMES, link_list, config=config, jobs=jobs)
    wanted = [r for r in results if r.scheme in EWMA_TABLE_SCHEMES]
    return relative_to_reference(wanted, reference="Sprout-EWMA")


def render_ewma_table(comparisons: List[RelativeComparison]) -> str:
    lines = ["Introduction table — relative to Sprout-EWMA", ""]
    lines.append(
        f"{'scheme':16s} {'avg speedup vs scheme':>22s} {'delay reduction':>16s} "
        f"{'(avg delay s)':>14s}"
    )
    for row in sorted(comparisons, key=lambda c: c.scheme != "Sprout-EWMA"):
        lines.append(
            f"{row.scheme:16s} {row.speedup:22.2f} {row.delay_reduction:16.1f} "
            f"{row.mean_delay_s:14.2f}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Section 5.6: loss resilience
# --------------------------------------------------------------------------

#: the loss rates evaluated by the paper (each direction independently)
LOSS_RATES = (0.0, 0.05, 0.10)


@dataclass
class LossTableData:
    """Sprout's throughput/delay under Bernoulli loss, per direction."""

    rows: Dict[str, Dict[float, SchemeResult]]


def loss_table(
    scheme: str = "Sprout",
    links: Sequence[str] = ("Verizon LTE downlink", "Verizon LTE uplink"),
    loss_rates: Sequence[float] = LOSS_RATES,
    config: Optional[RunConfig] = None,
) -> LossTableData:
    """Regenerate the Section 5.6 loss-resilience table."""
    rows: Dict[str, Dict[float, SchemeResult]] = {}
    for link in links:
        rows[link] = run_with_loss_rates(scheme, link, loss_rates, config=config)
    return LossTableData(rows=rows)


def render_loss_table(data: LossTableData) -> str:
    lines = ["Section 5.6 — Sprout under Bernoulli packet loss", ""]
    lines.append(f"{'link':26s} {'loss rate':>10s} {'tput (kbps)':>12s} {'delay (ms)':>12s}")
    for link, by_rate in data.rows.items():
        for rate in sorted(by_rate):
            result = by_rate[rate]
            lines.append(
                f"{link:26s} {rate * 100:9.0f}% {result.throughput_kbps:12.0f} "
                f"{result.self_inflicted_delay_ms:12.0f}"
            )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Section 5.7: competing traffic through SproutTunnel
# --------------------------------------------------------------------------

def tunnel_table(
    link_name: str = "Verizon LTE downlink",
    duration: float = 60.0,
    warmup: float = 10.0,
) -> CompetingComparison:
    """Regenerate the Section 5.7 table (Cubic + Skype, direct vs tunnel)."""
    return run_competing_comparison(link_name, duration=duration, warmup=warmup)
