"""Figure 2: interarrival distribution of a saturated LTE downlink.

The paper saturates a Verizon LTE downlink and plots the distribution of
packet interarrival times on a log-log scale: the body is memoryless
(Poisson-like), the tail between 20 ms and several seconds is heavy and well
fit by a power law (the paper quotes an exponent of about 3.27 for the
density).  This module regenerates the survival curve and the tail fit from
the synthetic channel (or, optionally, a Saturator measurement of it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.traces.analysis import (
    InterarrivalStats,
    fit_powerlaw_tail,
    interarrival_stats,
    interarrival_survival,
    interarrival_times,
)
from repro.traces.networks import get_link, link_trace
from repro.traces.saturator import record_trace_with_saturator

#: thresholds (seconds) at which the survival curve is reported, matching the
#: 1 ms .. 4 s span of the paper's x-axis
DEFAULT_THRESHOLDS = tuple(float(t) for t in np.geomspace(0.001, 4.0, 25))


@dataclass
class Figure2Data:
    """The interarrival survival curve and its power-law tail fit."""

    link: str
    thresholds: np.ndarray
    survival_percent: np.ndarray
    stats: InterarrivalStats

    @property
    def tail_exponent(self) -> float:
        return self.stats.tail_exponent


def run_figure2(
    link_name: str = "Verizon LTE downlink",
    duration: float = 300.0,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    use_saturator: bool = False,
    tail_start: float = 0.020,
) -> Figure2Data:
    """Regenerate the data behind Figure 2.

    Args:
        link_name: which modelled link to saturate.
        duration: how much of the link to observe (longer = smoother tail).
        thresholds: interarrival thresholds of the survival curve.
        use_saturator: measure the link with the Saturator tool instead of
            reading the channel's ground-truth delivery times (slower, but
            exercises the measurement path end to end).
        tail_start: where the power-law tail fit begins (20 ms in the paper).
    """
    link = get_link(link_name)
    if use_saturator:
        trace = record_trace_with_saturator(link.config, duration, seed=link.seed)
    else:
        trace = link_trace(link, duration)
    gaps = interarrival_times(trace)
    survival = interarrival_survival(gaps, thresholds) * 100.0
    stats = interarrival_stats(trace, tail_start=tail_start)
    return Figure2Data(
        link=link.name,
        thresholds=np.asarray(thresholds, dtype=float),
        survival_percent=survival,
        stats=stats,
    )


def render_figure2(data: Figure2Data) -> str:
    """Plain-text rendering of the interarrival survival curve."""
    lines = [f"Figure 2 — interarrival distribution, {data.link}", ""]
    lines.append(f"{'interarrival (ms)':>18s} {'% interarrivals above':>22s}")
    for threshold, pct in zip(data.thresholds, data.survival_percent):
        lines.append(f"{threshold * 1000:18.1f} {pct:22.4f}")
    lines.append("")
    lines.append(
        f"power-law tail (> {20:.0f} ms): density exponent ~ t^-{data.tail_exponent:.2f} "
        f"(paper: t^-3.27); tail fraction {data.stats.tail_fraction * 100:.2f}%"
    )
    return "\n".join(lines)
