"""Figure 7: throughput vs. self-inflicted delay on every measured link.

The paper's main result figure: eight charts (four networks, both
directions), each placing every scheme by its average throughput and 95%
self-inflicted delay.  Up and to the right is better.  This module runs the
full measurement matrix and groups results per link so they can be rendered
(or plotted by downstream users).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.parallel import run_matrix
from repro.experiments.registry import FIGURE7_SCHEMES
from repro.experiments.runner import ProgressCallback, RunConfig
from repro.metrics.summary import SchemeResult
from repro.traces.networks import link_names


@dataclass
class Figure7Data:
    """Per-link results for every scheme in the comparison."""

    results: List[SchemeResult] = field(default_factory=list)

    def by_link(self) -> Dict[str, List[SchemeResult]]:
        grouped: Dict[str, List[SchemeResult]] = {}
        for result in self.results:
            grouped.setdefault(result.link, []).append(result)
        return grouped

    def for_link(self, link: str) -> List[SchemeResult]:
        return [r for r in self.results if r.link == link]

    def best_delay_scheme(self, link: str) -> Optional[str]:
        """The scheme with the lowest self-inflicted delay on ``link``."""
        rows = self.for_link(link)
        if not rows:
            return None
        return min(rows, key=lambda r: r.self_inflicted_delay_s).scheme


def run_figure7(
    schemes: Optional[Sequence[str]] = None,
    links: Optional[Sequence[str]] = None,
    config: Optional[RunConfig] = None,
    progress: Optional[ProgressCallback] = None,
    jobs: Optional[int] = None,
) -> Figure7Data:
    """Run the Figure 7 measurement matrix.

    Args:
        schemes: schemes to measure; the paper's nine by default.
        links: links to measure; all eight modelled links by default.
        config: run parameters (trace duration, warm-up, ...).
        progress: optional callback invoked with each finished result.
        jobs: worker processes for the matrix (``None``/1 = serial, 0 = one
            per CPU); results are identical regardless.
    """
    scheme_list = list(schemes) if schemes is not None else list(FIGURE7_SCHEMES)
    link_list = list(links) if links is not None else link_names()
    results = run_matrix(
        scheme_list, link_list, config=config, progress=progress, jobs=jobs
    )
    return Figure7Data(results=results)


def render_figure7(data: Figure7Data) -> str:
    """Plain-text rendering: one block per link, schemes sorted by delay."""
    lines: List[str] = ["Figure 7 — throughput vs self-inflicted delay", ""]
    for link, rows in data.by_link().items():
        lines.append(link)
        lines.append(f"  {'scheme':16s} {'tput (kbps)':>12s} {'delay (ms)':>12s}")
        for row in sorted(rows, key=lambda r: r.self_inflicted_delay_s):
            lines.append(
                f"  {row.scheme:16s} {row.throughput_kbps:12.0f} "
                f"{row.self_inflicted_delay_ms:12.0f}"
            )
        lines.append("")
    return "\n".join(lines)
