"""Structured exports of sweep/grid results: tidy CSV and structured JSON.

Every finished :class:`~repro.experiments.sweeps.GridData` (or one-axis
:class:`~repro.experiments.sweeps.SweepData`) can be serialised for plotting
or archival without re-running a single emulation.  Two formats, both
schema-versioned (:data:`EXPORT_SCHEMA_VERSION`) and documented
column-by-column / key-by-key in ``docs/scenarios.md``:

* **CSV** (:func:`export_csv`) — tidy long format: one row per measured
  ``(grid point, scheme, link)`` cell.  The first column is
  ``schema_version``, then one column per grid axis (named after the axis,
  in grid order), then ``scheme``, ``link``, and the metric columns of
  :data:`METRIC_COLUMNS`.  Floats are written with ``repr`` (shortest
  round-trip form), so parsing the CSV back recovers bit-identical values.
* **JSON** (:func:`export_json`) — the full grid structure: spec
  (parameters, per-axis values, schemes, links), then one entry per grid
  point with its coordinates (keyed by axis name) and complete
  :class:`~repro.metrics.summary.SchemeResult` dictionaries.

Both directions are covered: :func:`parse_csv` / :func:`parse_json` read an
export back, and :func:`grid_data_from_json` rebuilds a full ``GridData`` —
the round-trip is exact (``tests/test_exports.py``).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import fields
from typing import Dict, List, Sequence, Union

from repro.experiments.sweeps import GridData, GridPoint, GridSpec, SweepData
from repro.metrics.summary import SchemeResult

#: bump when a column/key is added, removed, or changes meaning
EXPORT_SCHEMA_VERSION = 1

#: metric columns of the CSV export, in order (docs/scenarios.md)
METRIC_COLUMNS: List[str] = [
    "throughput_bps",
    "throughput_kbps",
    "delay_95_s",
    "self_inflicted_delay_s",
    "self_inflicted_delay_ms",
    "utilization",
    "capacity_bps",
    "omniscient_delay_95_s",
]

GridLike = Union[GridData, SweepData]


def as_grid_data(data: GridLike) -> GridData:
    """Normalise sweep results to grid results (sweeps are one-axis grids)."""
    if isinstance(data, SweepData):
        return data.to_grid_data()
    return data


def csv_columns(spec: GridSpec) -> List[str]:
    """The CSV header row for one grid: version, axes, identity, metrics."""
    return ["schema_version", *spec.parameters, "scheme", "link", *METRIC_COLUMNS]


def export_rows(data: GridLike) -> List[Dict[str, object]]:
    """The tidy long-format rows of an export, one per measured cell."""
    grid = as_grid_data(data)
    rows: List[Dict[str, object]] = []
    for point in grid.points:
        for result in point.results:
            row: Dict[str, object] = {"schema_version": EXPORT_SCHEMA_VERSION}
            row.update(zip(point.parameters, point.coordinates))
            row["scheme"] = result.scheme
            row["link"] = result.link
            for column in METRIC_COLUMNS:
                row[column] = getattr(result, column)
            rows.append(row)
    return rows


def export_csv(data: GridLike) -> str:
    """Serialise a grid/sweep as tidy long-format CSV (exact floats)."""
    grid = as_grid_data(data)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(csv_columns(grid.spec))
    for row in export_rows(grid):
        writer.writerow(
            [repr(value) if isinstance(value, float) else value for value in row.values()]
        )
    return buffer.getvalue()


def export_json(data: GridLike) -> str:
    """Serialise a grid/sweep as structured JSON (exact floats via repr)."""
    grid = as_grid_data(data)
    spec = grid.spec
    payload = {
        "schema_version": EXPORT_SCHEMA_VERSION,
        "kind": "grid",
        "parameters": list(spec.parameters),
        "axis_values": [list(axis) for axis in spec.values],
        "schemes": list(spec.schemes),
        "links": list(spec.links),
        "points": [
            {
                "coordinates": dict(zip(point.parameters, point.coordinates)),
                "results": [result.as_dict() for result in point.results],
            }
            for point in grid.points
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def export_text(data: GridLike, fmt: str) -> str:
    """Dispatch on format name: ``"csv"`` or ``"json"``."""
    if fmt == "csv":
        return export_csv(data)
    if fmt == "json":
        return export_json(data)
    raise ValueError(f"unknown export format {fmt!r}; valid formats: csv, json")


def write_export(data: GridLike, fmt: str, path: str) -> None:
    """Write an export to ``path`` (see :func:`export_text`)."""
    text = export_text(data, fmt)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)


# ----------------------------------------------------------------- parsing


def parse_csv(text: str) -> List[Dict[str, object]]:
    """Parse a CSV export back into typed rows (exact float round-trip).

    Axis and metric columns come back as floats, ``schema_version`` as an
    int, ``scheme``/``link`` as strings.  Raises ``ValueError`` on a schema
    version this code does not understand.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV export: no header row") from None
    if not header or header[0] != "schema_version":
        raise ValueError("not a grid export: first column must be schema_version")
    rows: List[Dict[str, object]] = []
    for line, raw in enumerate(reader, start=2):
        if not raw:
            continue
        if len(raw) != len(header):
            raise ValueError(
                f"malformed CSV export: line {line} has {len(raw)} fields, "
                f"header has {len(header)} (truncated file?)"
            )
        row: Dict[str, object] = {}
        for column, value in zip(header, raw):
            if column == "schema_version":
                row[column] = _check_schema_version(int(value))
            elif column in ("scheme", "link"):
                row[column] = value
            else:
                row[column] = float(value)
        rows.append(row)
    return rows


def parse_json(text: str) -> dict:
    """Parse a JSON export, validating its schema version."""
    payload = json.loads(text)
    _check_schema_version(payload.get("schema_version"))
    if payload.get("kind") != "grid":
        raise ValueError(f"not a grid export: kind={payload.get('kind')!r}")
    return payload


_RESULT_FIELDS = {f.name for f in fields(SchemeResult)}


def _check_schema_version(version: object) -> int:
    if version != EXPORT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported export schema version {version!r} "
            f"(this code reads version {EXPORT_SCHEMA_VERSION})"
        )
    return EXPORT_SCHEMA_VERSION


def grid_data_from_json(payload: Union[str, dict]) -> GridData:
    """Rebuild a full :class:`GridData` from a JSON export.

    The reconstruction is exact: every ``SchemeResult`` field (including
    the ``extra`` counters) round-trips bit-identically, so downstream
    analysis (frontiers, tables) can run from an export alone.
    """
    if isinstance(payload, str):
        payload = parse_json(payload)
    else:
        _check_schema_version(payload.get("schema_version"))
    spec = GridSpec(
        parameters=tuple(payload["parameters"]),
        values=tuple(tuple(axis) for axis in payload["axis_values"]),
        schemes=tuple(payload["schemes"]),
        links=tuple(payload["links"]),
    )
    points = []
    for entry in payload["points"]:
        coordinates = entry["coordinates"]
        results = [
            SchemeResult(**{k: v for k, v in row.items() if k in _RESULT_FIELDS})
            for row in entry["results"]
        ]
        points.append(
            GridPoint(
                parameters=spec.parameters,
                coordinates=tuple(coordinates[name] for name in spec.parameters),
                results=results,
            )
        )
    return GridData(spec=spec, points=points)
