"""Structured exports of sweep/grid results: tidy CSV and structured JSON.

Every finished :class:`~repro.experiments.sweeps.GridData` (or one-axis
:class:`~repro.experiments.sweeps.SweepData`) can be serialised for plotting
or archival without re-running a single emulation.  Two formats, both
schema-versioned (:data:`EXPORT_SCHEMA_VERSION`) and documented
column-by-column / key-by-key in ``docs/scenarios.md``:

* **CSV** (:func:`export_csv`) — tidy long format: one row per measured
  ``(grid point, scheme, link)`` cell, plus — when a cell carries per-flow
  metrics — one row per ``(cell, flow)``.  The first column is
  ``schema_version``, then one column per grid axis (named after the axis,
  in grid order), then ``scheme``, ``link``, the metric columns of
  :data:`METRIC_COLUMNS`, (schema v4) the screening columns of
  :data:`SCREEN_COLUMNS`, the per-flow columns of :data:`FLOW_COLUMNS`,
  and (schema v3) the trailing ``error`` column.  Aggregate rows leave the
  flow columns empty; per-flow rows leave the aggregate metric columns
  empty (the discriminator is ``flow_id``); a *failed* cell — a
  :class:`~repro.experiments.policy.CellError` collected under the
  ``collect``/``retry`` error policies (docs/robustness.md) — exports one
  row with every metric empty and ``error`` holding
  ``"ErrorType: message"``.  A *screened* cell — an analytic prediction
  standing in for an emulation (docs/analytic.md) — exports one row with
  every measured metric empty, ``screened = 1``, and the prediction in the
  ``predicted_*`` / ``prediction_uncertainty`` columns; measured aggregate
  rows carry ``screened = 0``, so a reader can never mistake a prediction
  for a measurement.  Floats are written with ``repr`` (shortest
  round-trip form), so parsing the CSV back recovers bit-identical values —
  including non-finite ones, which ``repr`` writes as ``nan`` / ``inf`` /
  ``-inf`` and ``float()`` reads straight back.
* **JSON** (:func:`export_json`) — the full grid structure: spec
  (parameters, per-axis values, schemes, links), then one entry per grid
  point with its coordinates (keyed by axis name), the complete
  :class:`~repro.metrics.summary.SchemeResult` dictionaries of its
  successful cells (including the optional per-flow ``flows`` list), —
  schema v3, only when the point had failures — an ``errors`` list of
  structured :class:`~repro.experiments.policy.CellError` records, each
  carrying the ``index`` of its cell within the point so the interleaved
  cell order reconstructs exactly, and — schema v4, only when the grid was
  screened — a ``screened`` list of
  :class:`~repro.metrics.summary.ScreenedResult` records with the same
  ``index`` convention.

Both directions are covered: :func:`parse_csv` / :func:`parse_json` read an
export back — current (v4) **and** the v1/v2/v3 exports written before the
per-flow columns, the error channel, and the screening tier existed — and
:func:`grid_data_from_json` rebuilds a full ``GridData`` (failed cells come
back as ``CellError`` outcomes, screened cells as ``ScreenedResult``
records, each in its original position); the round-trip is exact
(``tests/test_exports.py``).  A v4 file that marks a row/record *both*
screened and per-flow is self-contradictory — screened cells were never
emulated, so they cannot have measured flows — and is rejected rather than
silently merged.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import fields
from typing import Dict, List, Sequence, Union

from repro.experiments.policy import CellError, is_cell_error
from repro.experiments.sweeps import GridData, GridPoint, GridSpec, SweepData
from repro.metrics.flows import FlowMetrics
from repro.metrics.summary import SchemeResult, ScreenedResult, is_screened

#: bump when a column/key is added, removed, or changes meaning
EXPORT_SCHEMA_VERSION = 4

#: schema versions :func:`parse_csv` / :func:`parse_json` understand
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)

#: metric columns of the CSV export, in order (docs/scenarios.md)
METRIC_COLUMNS: List[str] = [
    "throughput_bps",
    "throughput_kbps",
    "delay_95_s",
    "self_inflicted_delay_s",
    "self_inflicted_delay_ms",
    "utilization",
    "capacity_bps",
    "omniscient_delay_95_s",
]

#: screening columns of the CSV export (schema v4), after the metric
#: columns: ``screened`` is 1 on a predicted (never-emulated) row, 0 on a
#: measured aggregate row, empty on flow/error rows; the ``predicted_*`` /
#: ``prediction_uncertainty`` columns are set only when ``screened`` is 1
SCREEN_COLUMNS: List[str] = [
    "screened",
    "predicted_throughput_bps",
    "predicted_delay_s",
    "prediction_uncertainty",
]

#: per-flow columns of the CSV export (schema v2), after the metric columns
FLOW_COLUMNS: List[str] = [
    "flow_id",
    "flow_throughput_bps",
    "flow_delay_95_s",
]

#: the trailing failure column of the CSV export (schema v3): empty on
#: success rows, ``"ErrorType: message"`` on a failed cell's row
ERROR_COLUMN = "error"

GridLike = Union[GridData, SweepData]

_INF = float("inf")


def as_grid_data(data: GridLike) -> GridData:
    """Normalise sweep results to grid results (sweeps are one-axis grids)."""
    if isinstance(data, SweepData):
        return data.to_grid_data()
    return data


def csv_columns(spec: GridSpec) -> List[str]:
    """The CSV header row for one grid: version, axes, identity, metrics."""
    return [
        "schema_version",
        *spec.parameters,
        "scheme",
        "link",
        *METRIC_COLUMNS,
        *SCREEN_COLUMNS,
        *FLOW_COLUMNS,
        ERROR_COLUMN,
    ]


def export_rows(data: GridLike) -> List[Dict[str, object]]:
    """The tidy long-format rows of an export.

    One aggregate row per measured cell (flow columns ``None``,
    ``screened = 0``) followed by one per-flow row per flow the cell
    recorded (aggregate metric columns ``None``, flow columns set) — row
    kind is discriminated by ``flow_id``.  A failed cell contributes one
    row with every metric and flow column ``None`` and the ``error`` column
    set.  A screened cell (docs/analytic.md) contributes one row with every
    measured metric ``None``, ``screened = 1``, and the prediction in the
    ``predicted_*`` / ``prediction_uncertainty`` columns.
    """
    grid = as_grid_data(data)
    rows: List[Dict[str, object]] = []
    for point in grid.points:
        for result in point.results:
            base: Dict[str, object] = {"schema_version": EXPORT_SCHEMA_VERSION}
            base.update(zip(point.parameters, point.coordinates))
            base["scheme"] = result.scheme
            base["link"] = result.link
            if is_cell_error(result):
                failed = dict(base)
                for column in (*METRIC_COLUMNS, *SCREEN_COLUMNS, *FLOW_COLUMNS):
                    failed[column] = None
                failed[ERROR_COLUMN] = result.summary
                rows.append(failed)
                continue
            if is_screened(result):
                screened = dict(base)
                for column in METRIC_COLUMNS:
                    screened[column] = None
                screened["screened"] = 1
                screened["predicted_throughput_bps"] = result.throughput_bps
                screened["predicted_delay_s"] = result.self_inflicted_delay_s
                screened["prediction_uncertainty"] = result.prediction_uncertainty
                for column in FLOW_COLUMNS:
                    screened[column] = None
                screened[ERROR_COLUMN] = None
                rows.append(screened)
                continue
            aggregate = dict(base)
            for column in METRIC_COLUMNS:
                aggregate[column] = getattr(result, column)
            aggregate["screened"] = 0
            for column in SCREEN_COLUMNS[1:]:
                aggregate[column] = None
            for column in FLOW_COLUMNS:
                aggregate[column] = None
            aggregate[ERROR_COLUMN] = None
            rows.append(aggregate)
            for flow in result.flows or []:
                flow_row = dict(base)
                for column in (*METRIC_COLUMNS, *SCREEN_COLUMNS):
                    flow_row[column] = None
                flow_row["flow_id"] = flow.flow
                flow_row["flow_throughput_bps"] = flow.throughput_bps
                flow_row["flow_delay_95_s"] = flow.delay_95_s
                flow_row[ERROR_COLUMN] = None
                rows.append(flow_row)
    return rows


def export_csv(data: GridLike) -> str:
    """Serialise a grid/sweep as tidy long-format CSV (exact floats)."""
    grid = as_grid_data(data)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(csv_columns(grid.spec))
    for row in export_rows(grid):
        writer.writerow(
            [repr(value) if isinstance(value, float) else value for value in row.values()]
        )
    return buffer.getvalue()


def _jsonable(value: object) -> object:
    """``value`` with every non-finite float replaced by a JSON-safe stand-in.

    ``json.dumps`` would otherwise emit the bare tokens ``NaN`` /
    ``Infinity`` — accepted by Python's own parser but invalid RFC 8259, so
    jq / JavaScript / pandas reject the whole file (and with
    ``allow_nan=False`` the dump itself raises).  Both are reachable: nan
    from a flow with no delay-signal segments inside the window, inf from
    failed-cell-adjacent ratio metrics.  nan exports as ``null`` (the v3
    convention, kept for fixture compatibility) and infinities as the
    strings ``"Infinity"`` / ``"-Infinity"``; all three parse back to the
    original float (:func:`_result_from_dict`).
    """
    if isinstance(value, float):
        if value != value:
            return None
        if value == _INF:
            return "Infinity"
        if value == -_INF:
            return "-Infinity"
        return value
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    return value


def export_json(data: GridLike) -> str:
    """Serialise a grid/sweep as structured JSON (exact floats via repr;
    nan as ``null`` and infinities as ``"Infinity"`` / ``"-Infinity"``
    strings so the output stays strict RFC 8259)."""
    grid = as_grid_data(data)
    spec = grid.spec
    payload = {
        "schema_version": EXPORT_SCHEMA_VERSION,
        "kind": "grid",
        "parameters": list(spec.parameters),
        "axis_values": [list(axis) for axis in spec.values],
        "schemes": list(spec.schemes),
        # ad-hoc LinkSpec entries (not in the registry) export by name, the
        # same identifier every result row carries
        "links": [link if isinstance(link, str) else link.name for link in spec.links],
        "points": [_point_payload(point) for point in grid.points],
    }
    return json.dumps(_jsonable(payload), indent=2, allow_nan=False) + "\n"


def _point_payload(point: GridPoint) -> Dict[str, object]:
    """One JSON point: coordinates, results, (v3) failures, (v4) screening.

    ``errors`` is present only when the point had failures, and
    ``screened`` only when the grid was run under analytic screening
    (docs/analytic.md) — so an all-green unscreened v4 export differs from
    v3 solely by its version number and parses under the same mental
    model.  Each error/screened record carries the ``index`` of its cell
    within the point's interleaved outcome order, which lets
    :func:`grid_data_from_json` put it back in its original position.
    """
    payload: Dict[str, object] = {
        "coordinates": dict(zip(point.parameters, point.coordinates)),
        "results": [result.as_dict() for result in point.ok_results],
    }
    errors = [
        {**outcome.as_dict(), "index": index}
        for index, outcome in enumerate(point.results)
        if is_cell_error(outcome)
    ]
    if errors:
        payload["errors"] = errors
    screened = [
        {**outcome.as_dict(), "index": index}
        for index, outcome in enumerate(point.results)
        if is_screened(outcome)
    ]
    if screened:
        payload["screened"] = screened
    return payload


def export_text(data: GridLike, fmt: str) -> str:
    """Dispatch on format name: ``"csv"`` or ``"json"``."""
    if fmt == "csv":
        return export_csv(data)
    if fmt == "json":
        return export_json(data)
    raise ValueError(f"unknown export format {fmt!r}; valid formats: csv, json")


def write_export(data: GridLike, fmt: str, path: str) -> None:
    """Write an export to ``path`` (see :func:`export_text`)."""
    text = export_text(data, fmt)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)


# ----------------------------------------------------------------- parsing


def _check_prediction_bounds(
    uncertainty: object, throughput: object, where: str
) -> None:
    """Reject out-of-domain v4 prediction values at parse time.

    ``prediction_uncertainty`` is a confidence complement in ``[0, 1]`` by
    construction and a predicted throughput cannot be negative; a value
    outside its domain means the export was corrupted or hand-edited, the
    same class of defect as the screened/per-flow contradiction.  ``None``
    (missing) and nan (serialised missing) pass — only finite out-of-range
    numbers are contradictions.
    """
    if (
        isinstance(uncertainty, (int, float))
        and uncertainty == uncertainty
        and not 0.0 <= uncertainty <= 1.0
    ):
        raise ValueError(
            f"malformed v4 export: {where} carries "
            f"prediction_uncertainty={uncertainty!r} outside [0, 1]"
        )
    if (
        isinstance(throughput, (int, float))
        and throughput == throughput
        and throughput < 0.0
    ):
        raise ValueError(
            f"malformed v4 export: {where} carries a negative "
            f"predicted throughput ({throughput!r} bps)"
        )


def parse_csv(text: str) -> List[Dict[str, object]]:
    """Parse a CSV export back into typed rows (exact float round-trip).

    Axis and metric columns come back as floats, ``schema_version`` as an
    int, ``scheme``/``link`` as strings.  Schema v2 adds the per-flow
    columns: ``flow_id`` is a string (``None`` on aggregate rows) and empty
    metric cells come back as ``None``.  Schema v3 adds the trailing
    ``error`` column (a string on a failed cell's row, ``None``
    otherwise).  Schema v4 adds the screening columns: ``screened`` is an
    int (1 on a predicted row, 0 on a measured aggregate row, ``None`` on
    flow/error rows) and the ``predicted_*`` / ``prediction_uncertainty``
    columns are floats or ``None``.  v1–v3 exports parse unchanged.
    Raises ``ValueError`` on a schema version this code does not
    understand, on a self-contradictory v4 row that is both screened
    and per-flow (a screened cell was never emulated, so it cannot carry a
    measured flow section), and on v4 prediction values outside their
    domain (``prediction_uncertainty`` not in ``[0, 1]``, negative
    ``predicted_throughput_bps``).
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV export: no header row") from None
    if not header or header[0] != "schema_version":
        raise ValueError("not a grid export: first column must be schema_version")
    rows: List[Dict[str, object]] = []
    for line, raw in enumerate(reader, start=2):
        if not raw:
            continue
        if len(raw) != len(header):
            raise ValueError(
                f"malformed CSV export: line {line} has {len(raw)} fields, "
                f"header has {len(header)} (truncated file?)"
            )
        row: Dict[str, object] = {}
        for column, value in zip(header, raw):
            if column == "schema_version":
                row[column] = _check_schema_version(int(value))
            elif column in ("scheme", "link"):
                row[column] = value
            elif column in ("flow_id", ERROR_COLUMN):
                row[column] = value if value != "" else None
            elif column == "screened":
                row[column] = int(value) if value != "" else None
            elif (
                column in METRIC_COLUMNS
                or column in FLOW_COLUMNS
                or column in SCREEN_COLUMNS
            ):
                row[column] = float(value) if value != "" else None
            else:
                row[column] = float(value)  # a grid-axis coordinate
        if row.get("screened") == 1 and row.get("flow_id") is not None:
            raise ValueError(
                f"malformed v4 export: line {line} marks a screened "
                "(never-emulated) cell but carries a per-flow section "
                f"(flow_id={row['flow_id']!r}); refusing to merge "
                "predictions with measurements"
            )
        _check_prediction_bounds(
            row.get("prediction_uncertainty"),
            row.get("predicted_throughput_bps"),
            f"line {line}",
        )
        rows.append(row)
    return rows


def parse_json(text: str) -> dict:
    """Parse a JSON export, validating its schema version.

    v4 payloads are additionally checked for the screened/per-flow
    contradiction (a never-emulated cell carrying measured flows) and for
    out-of-domain prediction values (``prediction_uncertainty`` not in
    ``[0, 1]``, negative predicted throughput), so a malformed export
    fails at parse time rather than deep inside
    :func:`grid_data_from_json`.
    """
    payload = json.loads(text)
    _check_schema_version(payload.get("schema_version"))
    if payload.get("kind") != "grid":
        raise ValueError(f"not a grid export: kind={payload.get('kind')!r}")
    for point in payload.get("points") or []:
        for record in point.get("screened") or []:
            if record.get("flows"):
                raise ValueError(
                    "malformed v4 export: a screened (never-emulated) record "
                    f"for scheme={record.get('scheme')!r} "
                    f"link={record.get('link')!r} carries a per-flow section; "
                    "refusing to merge predictions with measurements"
                )
            _check_prediction_bounds(
                record.get("prediction_uncertainty"),
                record.get("throughput_bps"),
                f"a screened record for scheme={record.get('scheme')!r} "
                f"link={record.get('link')!r}",
            )
        for record in point.get("results") or []:
            if record.get("screened") and record.get("flows"):
                raise ValueError(
                    "malformed v4 export: a result marked screened for "
                    f"scheme={record.get('scheme')!r} "
                    f"link={record.get('link')!r} carries a per-flow section; "
                    "refusing to merge predictions with measurements"
                )
    return payload


_RESULT_FIELDS = {f.name for f in fields(SchemeResult)}
_SCREENED_FIELDS = {f.name for f in fields(ScreenedResult)}


def _check_schema_version(version: object) -> int:
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise ValueError(
            f"unsupported export schema version {version!r} "
            f"(this code reads versions {supported})"
        )
    return int(version)  # type: ignore[arg-type]


_RESULT_FLOAT_FIELDS = {
    f.name for f in fields(SchemeResult) if f.type in ("float", float)
}
_FLOW_FLOAT_FIELDS = {
    f.name for f in fields(FlowMetrics) if f.type in ("float", float)
}
_SCREENED_FLOAT_FIELDS = _RESULT_FLOAT_FIELDS | {"prediction_uncertainty"}


#: JSON stand-ins for non-finite floats (see :func:`_jsonable`); nan's
#: stand-in is ``None``, handled separately because it doubles as "missing"
_NONFINITE_TOKENS = {"Infinity": float("inf"), "-Infinity": float("-inf")}


def _restore_floats(data: Dict[str, object], float_fields) -> Dict[str, object]:
    """Undo :func:`_jsonable` on known float fields: ``null`` back to nan,
    ``"Infinity"`` / ``"-Infinity"`` back to the infinities."""
    restored = dict(data)
    for key in float_fields:
        value = restored.get(key, _MISSING)
        if value is None:
            restored[key] = float("nan")
        elif isinstance(value, str) and value in _NONFINITE_TOKENS:
            restored[key] = _NONFINITE_TOKENS[value]
    return restored


_MISSING = object()


def _result_from_dict(row: Dict[str, object]) -> SchemeResult:
    if row.get("screened") and row.get("flows"):
        raise ValueError(
            "malformed v4 export: a result marked screened for "
            f"scheme={row.get('scheme')!r} link={row.get('link')!r} "
            "carries a per-flow section; refusing to merge predictions "
            "with measurements"
        )
    data = _restore_floats(
        {k: v for k, v in row.items() if k in _RESULT_FIELDS}, _RESULT_FLOAT_FIELDS
    )
    flows = data.get("flows")
    if flows is not None:
        data["flows"] = [
            FlowMetrics(**_restore_floats(flow, _FLOW_FLOAT_FIELDS)) for flow in flows
        ]
    return SchemeResult(**data)  # type: ignore[arg-type]


def _screened_from_dict(record: Dict[str, object]) -> ScreenedResult:
    """Rebuild one v4 ``screened`` record as a :class:`ScreenedResult`.

    A screened cell was never emulated, so a record that nonetheless
    carries a populated per-flow section is self-contradictory — it would
    silently merge predictions with measurements — and is rejected.
    """
    if record.get("flows"):
        raise ValueError(
            "malformed v4 export: a screened (never-emulated) record for "
            f"scheme={record.get('scheme')!r} link={record.get('link')!r} "
            "carries a per-flow section; refusing to merge predictions "
            "with measurements"
        )
    _check_prediction_bounds(
        record.get("prediction_uncertainty"),
        record.get("throughput_bps"),
        f"a screened record for scheme={record.get('scheme')!r} "
        f"link={record.get('link')!r}",
    )
    data = _restore_floats(
        {k: v for k, v in record.items() if k in _SCREENED_FIELDS},
        _SCREENED_FLOAT_FIELDS,
    )
    data.pop("flows", None)
    return ScreenedResult(**data)  # type: ignore[arg-type]


def _point_outcomes(entry: Dict[str, object]) -> List[object]:
    """One point's interleaved cell outcomes from its JSON entry.

    Successful results are re-slotted around the (v3) ``errors`` and (v4)
    ``screened`` records using each record's ``index``, so the rebuilt
    point preserves the original cell order exactly.  v1/v2 entries have
    neither key and reduce to the plain results list.
    """
    results = [_result_from_dict(row) for row in entry["results"]]
    errors = entry.get("errors") or []
    screened = entry.get("screened") or []
    if not errors and not screened:
        return results
    outcomes: List[object] = [None] * (len(results) + len(errors) + len(screened))
    for record in errors:
        outcomes[record["index"]] = CellError.from_dict(record)
    for record in screened:
        index = record["index"]
        if outcomes[index] is not None:
            raise ValueError(
                f"malformed v4 export: cell index {index} appears in both "
                "the errors and screened lists of one point"
            )
        outcomes[index] = _screened_from_dict(record)
    iterator = iter(results)
    for index, slot in enumerate(outcomes):
        if slot is None:
            outcomes[index] = next(iterator)
    return outcomes


def grid_data_from_json(payload: Union[str, dict]) -> GridData:
    """Rebuild a full :class:`GridData` from a JSON export (v1–v4).

    The reconstruction is exact: every ``SchemeResult`` field (including
    the ``extra`` counters and the optional per-flow list) round-trips
    bit-identically, v3 failure records come back as
    :class:`~repro.experiments.policy.CellError` outcomes, and v4
    screening records as :class:`~repro.metrics.summary.ScreenedResult`
    predictions, each in its original cell position — so downstream
    analysis (frontiers, tables, failure reports, differential
    validation) can run from an export alone.
    """
    if isinstance(payload, str):
        payload = parse_json(payload)
    else:
        _check_schema_version(payload.get("schema_version"))
    spec = GridSpec(
        parameters=tuple(payload["parameters"]),
        values=tuple(tuple(axis) for axis in payload["axis_values"]),
        schemes=tuple(payload["schemes"]),
        links=tuple(payload["links"]),
    )
    points = []
    for entry in payload["points"]:
        coordinates = entry["coordinates"]
        points.append(
            GridPoint(
                parameters=spec.parameters,
                coordinates=tuple(coordinates[name] for name in spec.parameters),
                results=_point_outcomes(entry),
            )
        )
    return GridData(spec=spec, points=points)
