"""Registry of the evaluation's schemes (the columns of Figure 7).

Each entry knows how to build a fresh (sender, receiver) protocol pair and
whether the scheme requires CoDel at the bottleneck (Cubic-CoDel is TCP
Cubic run over a CoDel-managed queue — an in-network change, Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Tuple

from repro.baselines.base import AckingReceiver
from repro.baselines.compound import CompoundSender
from repro.baselines.cubic import CubicSender
from repro.baselines.ledbat import LedbatSender
from repro.baselines.reno import RenoSender
from repro.baselines.vegas import VegasSender
from repro.baselines.videoconference import make_facetime, make_hangout, make_skype
from repro.core.connection import SproutConfig, make_connection
from repro.simulation.endpoints import Protocol

SchemeFactory = Callable[[], Tuple[Protocol, Protocol]]


@dataclass(frozen=True)
class SchemeSpec:
    """A runnable scheme: display name, endpoint factory, link options."""

    name: str
    factory: SchemeFactory = field(compare=False)
    use_codel: bool = False
    category: str = "transport"


def _sprout_pair(confidence: float = 0.95) -> Tuple[Protocol, Protocol]:
    connection = make_connection(SproutConfig(confidence=confidence))
    return connection.sender, connection.receiver


def _sprout_ewma_pair() -> Tuple[Protocol, Protocol]:
    connection = make_connection(SproutConfig(use_ewma=True))
    return connection.sender, connection.receiver


def _tcp_pair(sender_cls) -> SchemeFactory:
    def factory() -> Tuple[Protocol, Protocol]:
        return sender_cls(), AckingReceiver()

    return factory


def _sprout_pair_from_config(config: SproutConfig) -> Tuple[Protocol, Protocol]:
    connection = make_connection(config)
    return connection.sender, connection.receiver


def sprout_variant(name: str, config: SproutConfig) -> SchemeSpec:
    """An ad-hoc Sprout scheme built from an explicit :class:`SproutConfig`.

    The factory is a :func:`functools.partial` over a module-level function,
    so — unlike a closure — the spec pickles and can be shipped to matrix
    worker processes.  The sweep engine builds its sigma/tick variants here.
    """
    return SchemeSpec(
        name=name,
        factory=partial(_sprout_pair_from_config, config),
        category="sprout",
    )


def sprout_variant_config(spec: SchemeSpec) -> "SproutConfig | None":
    """The :class:`SproutConfig` behind a :func:`sprout_variant` spec.

    Returns ``None`` for specs built any other way.  This is the one place
    that knows the variant factory's shape, so the sweep expanders and the
    model prewarmer recover configs through a checkable contract instead of
    each pattern-matching ``partial`` internals.
    """
    factory = spec.factory
    if (
        isinstance(factory, partial)
        and factory.func is _sprout_pair_from_config
        and len(factory.args) == 1
        and isinstance(factory.args[0], SproutConfig)
        and not factory.keywords
    ):
        return factory.args[0]
    return None


def sprout_with_confidence(confidence: float) -> SchemeSpec:
    """Sprout with a non-default forecast confidence (Figure 9's sweep)."""
    return sprout_variant(
        f"Sprout ({int(round(confidence * 100))}%)",
        SproutConfig(confidence=confidence),
    )


#: All named schemes of the evaluation.
SCHEMES: Dict[str, SchemeSpec] = {
    spec.name: spec
    for spec in (
        SchemeSpec("Sprout", _sprout_pair, category="sprout"),
        SchemeSpec("Sprout-EWMA", _sprout_ewma_pair, category="sprout"),
        SchemeSpec("Cubic", _tcp_pair(CubicSender), category="tcp"),
        SchemeSpec("Cubic-CoDel", _tcp_pair(CubicSender), use_codel=True, category="tcp"),
        SchemeSpec("Reno", _tcp_pair(RenoSender), category="tcp"),
        SchemeSpec("Vegas", _tcp_pair(VegasSender), category="tcp"),
        SchemeSpec("Compound TCP", _tcp_pair(CompoundSender), category="tcp"),
        SchemeSpec("LEDBAT", _tcp_pair(LedbatSender), category="tcp"),
        SchemeSpec("Skype", make_skype, category="videoconference"),
        SchemeSpec("Google Hangout", make_hangout, category="videoconference"),
        SchemeSpec("Facetime", make_facetime, category="videoconference"),
    )
}

#: The schemes plotted in Figure 7 (Reno is extra; the paper plots these 11
#: minus Reno and Cubic-CoDel, which appears in Figure 8 / the intro table).
FIGURE7_SCHEMES: List[str] = [
    "Sprout",
    "Sprout-EWMA",
    "Skype",
    "Google Hangout",
    "Facetime",
    "Cubic",
    "Vegas",
    "Compound TCP",
    "LEDBAT",
]

#: The schemes in the introduction's headline table.
INTRO_TABLE_SCHEMES: List[str] = FIGURE7_SCHEMES + ["Cubic-CoDel"]


def get_scheme(name: str) -> SchemeSpec:
    """Look up a scheme by display name.

    Raises:
        KeyError: listing the valid names, if the scheme is unknown.
    """
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; valid schemes: {', '.join(SCHEMES)}"
        ) from None


def scheme_names() -> List[str]:
    """All registered scheme names."""
    return list(SCHEMES.keys())
