"""repro — a reproduction of Sprout (Winstein, Sivaraman, Balakrishnan, NSDI 2013).

Sprout is an end-to-end transport protocol for interactive applications over
cellular wireless networks.  Instead of reacting to losses or round-trip
delays, the receiver observes packet arrival times, infers the distribution
of the time-varying link rate with a doubly-stochastic Poisson model, and
sends the sender a cautious forecast of how many bytes the link will deliver
in the near future; the sender turns that forecast into a window that bounds
the risk of packets queueing for more than 100 ms.

Package layout:

* :mod:`repro.core` — the Sprout protocol itself (forecaster, sender,
  receiver, Sprout-EWMA variant);
* :mod:`repro.cache` — the generic two-level (memory + disk)
  keyed-artifact store behind the trace and model-artifact caches;
* :mod:`repro.simulation` — deterministic discrete-event substrate;
* :mod:`repro.traces` — synthetic cellular-link traces, the Saturator, and
  trace analysis;
* :mod:`repro.cellsim` — the trace-driven link emulator (with CoDel and
  loss injection);
* :mod:`repro.baselines` — every comparison scheme in the paper's
  evaluation (TCP Cubic/Vegas/Reno, Compound TCP, LEDBAT, and the
  Skype/Hangout/Facetime videoconference models);
* :mod:`repro.tunnel` — SproutTunnel;
* :mod:`repro.metrics` — throughput, self-inflicted delay, utilization;
* :mod:`repro.experiments` — the harness that regenerates the paper's
  tables and figures.
"""

__version__ = "1.0.0"

from repro.core import (  # noqa: F401
    BayesianForecaster,
    EWMAForecaster,
    SproutConfig,
    SproutConnection,
    SproutReceiver,
    SproutSender,
    make_sprout,
    make_sprout_ewma,
)

__all__ = [
    "__version__",
    "BayesianForecaster",
    "EWMAForecaster",
    "SproutConfig",
    "SproutConnection",
    "SproutReceiver",
    "SproutSender",
    "make_sprout",
    "make_sprout_ewma",
]
