"""Trace analysis helpers (used to regenerate Figure 2 and sanity checks).

Figure 2 of the paper shows the distribution of interarrival times of 1.2
million MTU-sized packets on a saturated Verizon LTE downlink: the bulk fits
a memoryless (Poisson) process, while the tail between 20 ms and several
seconds is heavy, well described by a power law (the paper quotes
:math:`t^{-3.27}`).  The helpers here compute the interarrival distribution,
its survival function, and a maximum-likelihood (Hill) estimate of the tail
exponent from a delivery trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass
class InterarrivalStats:
    """Summary of a trace's interarrival distribution."""

    count: int
    mean: float
    median: float
    p99: float
    p9999: float
    max: float
    tail_exponent: float
    tail_fraction: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "median_s": self.median,
            "p99_s": self.p99,
            "p99.99_s": self.p9999,
            "max_s": self.max,
            "tail_exponent": self.tail_exponent,
            "tail_fraction": self.tail_fraction,
        }


def interarrival_times(delivery_times: Sequence[float]) -> np.ndarray:
    """Interarrival gaps (seconds) of a sorted delivery trace."""
    times = np.asarray(sorted(delivery_times), dtype=float)
    if times.size < 2:
        return np.empty(0, dtype=float)
    return np.diff(times)


def interarrival_survival(
    interarrivals: Sequence[float], thresholds: Sequence[float]
) -> np.ndarray:
    """Fraction of interarrivals strictly greater than each threshold.

    This is the complementary CDF plotted (as a percentage, log-log) in
    Figure 2.
    """
    gaps = np.asarray(interarrivals, dtype=float)
    out = np.empty(len(thresholds), dtype=float)
    if gaps.size == 0:
        out.fill(0.0)
        return out
    for i, threshold in enumerate(thresholds):
        out[i] = float(np.mean(gaps > threshold))
    return out


def fit_powerlaw_tail(
    interarrivals: Sequence[float], tail_start: float = 0.020
) -> Tuple[float, float]:
    """Estimate the power-law exponent of the interarrival tail.

    Uses the Hill maximum-likelihood estimator on gaps larger than
    ``tail_start`` (20 ms by default, the point at which the paper says the
    distribution departs from memoryless behaviour).

    Returns:
        ``(exponent, tail_fraction)`` where ``exponent`` is the probability
        density's power-law exponent alpha (density ~ t^-alpha) and
        ``tail_fraction`` is the fraction of samples in the tail.  The
        exponent is ``nan`` when fewer than 10 samples lie in the tail.
    """
    gaps = np.asarray(interarrivals, dtype=float)
    tail = gaps[gaps > tail_start]
    if tail.size < 10:
        return float("nan"), float(tail.size) / max(gaps.size, 1)
    # Hill estimator for the survival exponent; density exponent is +1.
    hill = tail.size / np.sum(np.log(tail / tail_start))
    alpha = 1.0 + float(hill)
    return alpha, float(tail.size) / gaps.size


def interarrival_stats(
    delivery_times: Sequence[float], tail_start: float = 0.020
) -> InterarrivalStats:
    """Full interarrival summary for a trace."""
    gaps = interarrival_times(delivery_times)
    if gaps.size == 0:
        return InterarrivalStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, float("nan"), 0.0)
    exponent, tail_fraction = fit_powerlaw_tail(gaps, tail_start)
    return InterarrivalStats(
        count=int(gaps.size),
        mean=float(np.mean(gaps)),
        median=float(np.median(gaps)),
        p99=float(np.percentile(gaps, 99)),
        p9999=float(np.percentile(gaps, 99.99)),
        max=float(np.max(gaps)),
        tail_exponent=exponent,
        tail_fraction=tail_fraction,
    )


def capacity_timeseries(
    delivery_times: Sequence[float],
    bin_width: float = 1.0,
    mtu_bytes: int = 1500,
) -> Tuple[np.ndarray, np.ndarray]:
    """Link capacity over time.

    Returns ``(bin_centers, kbps)`` where each bin of ``bin_width`` seconds
    reports the capacity (in kbit/s) the trace offered during that bin.  This
    is the "Capacity" series of Figure 1.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    times = np.asarray(sorted(delivery_times), dtype=float)
    if times.size == 0:
        return np.empty(0), np.empty(0)
    duration = times[-1]
    n_bins = max(1, int(np.ceil(duration / bin_width)))
    edges = np.arange(0, (n_bins + 1) * bin_width, bin_width)
    counts, _ = np.histogram(times, bins=edges)
    kbps = counts * mtu_bytes * 8.0 / bin_width / 1000.0
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, kbps
