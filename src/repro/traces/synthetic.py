"""Convenience front-end for generating synthetic delivery traces."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.simulation.random import SeedLike
from repro.traces.channel import CellularChannel, ChannelConfig


def generate_trace(
    config: ChannelConfig,
    duration: float,
    seed: SeedLike = 0,
    rates: Optional[np.ndarray] = None,
) -> List[float]:
    """Generate delivery-opportunity times (seconds) for a channel.

    Args:
        config: channel parameters (see :class:`ChannelConfig`).
        duration: length of the trace in seconds.
        seed: RNG seed; the same (config, duration, seed) triple always
            produces the identical trace, which is what makes experiments
            reproducible run-to-run.
        rates: optionally, a precomputed rate process (packets/s per
            ``config.time_step``); supplying it lets callers reuse a single
            ground-truth rate path for several derived traces.

    Returns:
        Sorted list of delivery times in seconds.
    """
    channel = CellularChannel(config, seed=seed)
    times = channel.delivery_times(duration, rates=rates)
    times.sort()
    return times
