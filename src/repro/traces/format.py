"""On-disk format for delivery-opportunity traces.

The format is the one popularised by the paper's Cellsim and its successor
mahimahi: a plain text file with one non-negative integer per line, the time
in *milliseconds* at which the link can deliver one MTU-sized packet.
Repeated timestamps mean several opportunities in the same millisecond.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence, Union

PathLike = Union[str, os.PathLike]


def write_trace(path: PathLike, delivery_times: Sequence[float]) -> None:
    """Write delivery times (seconds) to ``path`` in milliseconds, sorted.

    Raises:
        ValueError: if any delivery time is negative.
    """
    times_ms: List[int] = []
    for t in delivery_times:
        if t < 0:
            raise ValueError(f"delivery times must be non-negative, got {t}")
        times_ms.append(int(round(t * 1000.0)))
    times_ms.sort()
    with open(path, "w", encoding="ascii") as f:
        for ms in times_ms:
            f.write(f"{ms}\n")


def read_trace(path: PathLike) -> List[float]:
    """Read a trace file and return delivery times in seconds, sorted.

    Blank lines and lines starting with ``#`` are ignored so traces may be
    annotated by hand.

    Raises:
        ValueError: if a line is not a non-negative integer.
    """
    times: List[float] = []
    with open(path, "r", encoding="ascii") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                ms = int(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: expected an integer millisecond timestamp, got {line!r}"
                ) from exc
            if ms < 0:
                raise ValueError(f"{path}:{lineno}: negative timestamp {ms}")
            times.append(ms / 1000.0)
    times.sort()
    return times


def trace_duration(delivery_times: Iterable[float]) -> float:
    """Duration covered by a trace: the time of its last opportunity."""
    last = 0.0
    for t in delivery_times:
        if t > last:
            last = t
    return last


def trace_mean_rate(delivery_times: Sequence[float], mtu_bytes: int = 1500) -> float:
    """Average capacity of a trace in bits per second."""
    duration = trace_duration(delivery_times)
    if duration <= 0:
        return 0.0
    return len(delivery_times) * mtu_bytes * 8.0 / duration
