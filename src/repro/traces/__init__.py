"""Cellular-link traces: generation, storage, and analysis.

The paper drives every experiment from packet-delivery traces recorded by a
"Saturator" on four commercial cellular networks.  Those traces are not
publicly reproducible, so this package provides a faithful synthetic
substitute (documented in DESIGN.md): a doubly-stochastic channel model with
Brownian rate drift and sticky outages — the same family of models Sprout
itself assumes — from which delivery-opportunity traces are generated, plus
readers/writers for the on-disk trace format, per-network presets matching
the paper's eight links, a Saturator implementation, and analysis helpers
used to regenerate Figure 2.
"""

from repro.traces.cache import TraceCache, cached_trace, configure as configure_trace_cache, global_cache
from repro.traces.channel import ChannelConfig, CellularChannel
from repro.traces.format import read_trace, write_trace, trace_duration
from repro.traces.synthetic import generate_trace
from repro.traces.networks import (
    DEFAULT_TRACE_DURATION,
    NETWORKS,
    LinkSpec,
    NetworkSpec,
    get_link,
    get_network,
    link_names,
    link_trace,
    network_names,
)
from repro.traces.saturator import Saturator, SaturatorConfig, record_trace_with_saturator
from repro.traces.analysis import (
    InterarrivalStats,
    capacity_timeseries,
    interarrival_stats,
    interarrival_times,
    interarrival_survival,
    fit_powerlaw_tail,
)

__all__ = [
    "TraceCache",
    "cached_trace",
    "configure_trace_cache",
    "global_cache",
    "ChannelConfig",
    "CellularChannel",
    "read_trace",
    "write_trace",
    "trace_duration",
    "generate_trace",
    "DEFAULT_TRACE_DURATION",
    "link_trace",
    "interarrival_stats",
    "NETWORKS",
    "LinkSpec",
    "NetworkSpec",
    "get_link",
    "get_network",
    "link_names",
    "network_names",
    "Saturator",
    "SaturatorConfig",
    "record_trace_with_saturator",
    "InterarrivalStats",
    "capacity_timeseries",
    "interarrival_times",
    "interarrival_survival",
    "fit_powerlaw_tail",
]
