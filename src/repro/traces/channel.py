"""Doubly-stochastic model of a cellular link's packet-delivery process.

Section 3.1 of the paper models the link as a Poisson packet-delivery
process whose rate :math:`\\lambda` itself varies in Brownian motion, with a
"sticky" outage state at :math:`\\lambda = 0` whose duration is exponential.
Our synthetic channel is drawn from the same family, with two pragmatic
extensions that make multi-minute traces realistic rather than divergent:

* the rate follows a *mean-reverting* (Ornstein–Uhlenbeck) random walk
  rather than a pure Brownian motion, so long traces keep the average rate
  of the network they are meant to imitate while still swinging by close to
  an order of magnitude within seconds (Section 2.2);
* slow "fading" oscillations and occasional deep dips model the effects of
  mobility and channel-quality-dependent scheduling that give the measured
  interarrival distribution its heavy (1/f-like) tail (Figure 2).

The channel produces the *ground truth* delivery opportunities: the times at
which an MTU-sized packet could cross the link if one were waiting, exactly
what the Saturator records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.simulation.random import SeedLike, make_rng


@dataclass
class ChannelConfig:
    """Parameters of the synthetic cellular channel.

    Rates are in MTU-sized packets per second (1 packet = 1500 bytes, so
    1 Mbit/s is roughly 83 packets/s).

    Attributes:
        mean_rate: long-run average delivery rate the process reverts to.
        volatility: instantaneous standard deviation of the rate's random
            walk, in packets/s per sqrt(second).  Larger values produce the
            dramatic sub-second swings seen on LTE.
        reversion_time: time constant (seconds) of mean reversion; the rate
            forgets its current value over roughly this horizon.
        max_rate: hard cap on the instantaneous rate (the paper's inference
            grid tops out at 1000 packets/s = 11 Mbit/s).
        outage_rate: Poisson rate (per second) at which the channel falls
            into an outage (rate pinned to zero).
        outage_escape_rate: exponential rate (per second) of leaving an
            outage; the paper's model uses lambda_z = 1/s.
        fade_period: period (seconds) of the slow fading oscillation.
        fade_depth: fraction of the mean rate removed at the bottom of a
            fade (0 disables fading).
        time_step: integration step for the rate process, seconds.
    """

    mean_rate: float
    volatility: float
    reversion_time: float = 4.0
    max_rate: float = 1000.0
    outage_rate: float = 0.01
    outage_escape_rate: float = 1.0
    fade_period: float = 11.0
    fade_depth: float = 0.5
    time_step: float = 0.02

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if self.volatility < 0:
            raise ValueError("volatility must be non-negative")
        if not 0 <= self.fade_depth <= 1:
            raise ValueError("fade_depth must be within [0, 1]")
        if self.time_step <= 0:
            raise ValueError("time_step must be positive")
        if self.max_rate < self.mean_rate:
            raise ValueError("max_rate must be at least mean_rate")


class CellularChannel:
    """Generates the time-varying rate process and its delivery opportunities."""

    def __init__(self, config: ChannelConfig, seed: SeedLike = 0) -> None:
        self.config = config
        self._rng = make_rng(seed, "cellular-channel")

    # ------------------------------------------------------------ rate path

    def rate_process(self, duration: float) -> np.ndarray:
        """Sample the instantaneous rate on a grid of ``time_step`` seconds.

        Returns an array ``rates`` with ``rates[i]`` the delivery rate
        (packets/s) during ``[i * time_step, (i + 1) * time_step)``.
        """
        cfg = self.config
        if duration <= 0:
            raise ValueError("duration must be positive")
        steps = int(math.ceil(duration / cfg.time_step))
        rates = np.empty(steps, dtype=float)

        rate = cfg.mean_rate
        in_outage = False
        # Random phase so different seeds do not all fade in unison.
        fade_phase = self._rng.uniform(0.0, 2.0 * math.pi)

        sqrt_dt = math.sqrt(cfg.time_step)
        theta = 1.0 / max(cfg.reversion_time, 1e-9)
        p_outage_start = 1.0 - math.exp(-cfg.outage_rate * cfg.time_step)
        p_outage_end = 1.0 - math.exp(-cfg.outage_escape_rate * cfg.time_step)

        for i in range(steps):
            t = i * cfg.time_step
            if in_outage:
                rates[i] = 0.0
                if self._rng.random() < p_outage_end:
                    in_outage = False
                    # Recover to a fraction of the mean rate and let the
                    # mean-reverting walk pull it back up.
                    rate = cfg.mean_rate * self._rng.uniform(0.1, 0.5)
                continue

            if self._rng.random() < p_outage_start:
                in_outage = True
                rates[i] = 0.0
                continue

            # Ornstein-Uhlenbeck step around the mean rate.
            noise = self._rng.normal(0.0, cfg.volatility * sqrt_dt)
            rate += theta * (cfg.mean_rate - rate) * cfg.time_step + noise
            rate = float(np.clip(rate, 0.0, cfg.max_rate))

            # Slow multiplicative fading (mobility / scheduling effects).
            if cfg.fade_depth > 0:
                fade = 1.0 - cfg.fade_depth * 0.5 * (
                    1.0 + math.sin(2.0 * math.pi * t / cfg.fade_period + fade_phase)
                )
            else:
                fade = 1.0
            rates[i] = rate * fade

        return rates

    # ----------------------------------------------------------- deliveries

    def delivery_times(
        self, duration: float, rates: Optional[np.ndarray] = None
    ) -> List[float]:
        """Sample delivery-opportunity times over ``[0, duration)``.

        Within each time step the number of opportunities is Poisson with
        mean ``rate * time_step`` and the opportunities are spread uniformly
        at random inside the step, giving the memoryless small-scale
        behaviour the paper measures (Figure 2) while the step-to-step rate
        variation supplies the heavy tail.
        """
        cfg = self.config
        if rates is None:
            rates = self.rate_process(duration)
        times: List[float] = []
        for i, rate in enumerate(rates):
            if rate <= 0.0:
                continue
            count = self._rng.poisson(rate * cfg.time_step)
            if count == 0:
                continue
            start = i * cfg.time_step
            offsets = self._rng.uniform(0.0, cfg.time_step, size=count)
            offsets.sort()
            times.extend(start + o for o in offsets)
        # Guard: a trace must contain at least one opportunity for the
        # emulator to have a meaningful period.
        if not times:
            times.append(duration)
        return times
