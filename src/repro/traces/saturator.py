"""Reproduction of the paper's Saturator measurement tool (Section 4.1).

The Saturator characterises a cellular link by keeping its queue backlogged
with MTU-sized packets and recording the times at which packets actually
cross the link.  It keeps a window of N packets in flight and adjusts N to
hold the observed RTT between 750 ms and 3000 ms: above 750 ms of queueing
the link is certainly not starved, and below 3000 ms the carrier is unlikely
to throttle or drop.

In the reproduction the "real network" is a :class:`CellularChannel`; running
the Saturator against a link driven by the channel's ground-truth delivery
opportunities yields a measured trace that matches the ground truth whenever
the window control keeps the queue non-empty, which is how we validate the
tool (see tests/test_saturator.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simulation.endpoints import Host, HostContext, Protocol
from repro.simulation.event_loop import EventLoop
from repro.simulation.packet import MTU_BYTES, Packet
from repro.simulation.path import DuplexLinkConfig, DuplexPath
from repro.simulation.random import SeedLike
from repro.traces.channel import CellularChannel, ChannelConfig


@dataclass
class SaturatorConfig:
    """Window-control parameters of the Saturator."""

    rtt_floor: float = 0.750
    rtt_ceiling: float = 3.000
    initial_window: int = 50
    min_window: int = 5
    max_window: int = 4000
    #: fraction by which the window moves on each adjustment
    window_gain: float = 0.10
    #: minimum absolute window change per adjustment, packets
    window_step: int = 5
    #: minimum time between window adjustments; reacting faster than the
    #: queue can drain causes wild oscillation around the RTT band
    adjust_interval: float = 0.5
    ack_size: int = 50
    tick_interval: float = 0.02


class SaturatorSender(Protocol):
    """Keeps ``window`` MTU-sized packets in flight, adjusting on each ACK."""

    def __init__(self, config: Optional[SaturatorConfig] = None) -> None:
        self.config = config if config is not None else SaturatorConfig()
        self.tick_interval = self.config.tick_interval
        self.window = self.config.initial_window
        self.next_seq = 0
        self.in_flight = 0
        self.last_rtt: Optional[float] = None
        self.rtt_samples: List[float] = []
        self._last_adjust_time = float("-inf")

    def start(self, ctx: HostContext) -> None:
        super().start(ctx)
        self._fill_window()

    def _fill_window(self) -> None:
        while self.in_flight < self.window:
            packet = Packet(
                size=MTU_BYTES,
                flow_id="saturator",
                headers={"seq": self.next_seq, "sent_time": self.ctx.now()},
            )
            self.next_seq += 1
            self.in_flight += 1
            self.ctx.send(packet)

    def on_packet(self, packet: Packet, now: float) -> None:
        # Feedback packet: carries the echo of the data packet's send time.
        sent_time = packet.headers.get("echo_sent_time")
        if sent_time is None:
            return
        rtt = now - sent_time
        self.last_rtt = rtt
        self.rtt_samples.append(rtt)
        self.in_flight = max(0, self.in_flight - 1)

        cfg = self.config
        if now - self._last_adjust_time >= cfg.adjust_interval:
            step = max(cfg.window_step, int(self.window * cfg.window_gain))
            if rtt < cfg.rtt_floor:
                self.window = min(cfg.max_window, self.window + step)
                self._last_adjust_time = now
            elif rtt > cfg.rtt_ceiling:
                self.window = max(cfg.min_window, self.window - step)
                self._last_adjust_time = now
        self._fill_window()

    def on_tick(self, now: float) -> None:
        # Periodic refill guards against ACK losses stalling the window.
        self._fill_window()


class SaturatorSink(Protocol):
    """Receiver side: records arrivals and returns one small ACK per packet."""

    def __init__(self, ack_size: int = 50) -> None:
        self.ack_size = ack_size
        self.delivery_times: List[float] = []

    def on_packet(self, packet: Packet, now: float) -> None:
        self.delivery_times.append(now)
        ack = Packet(
            size=self.ack_size,
            flow_id="saturator-ack",
            headers={
                "echo_seq": packet.headers.get("seq"),
                "echo_sent_time": packet.headers.get("sent_time"),
            },
        )
        self.ctx.send(ack)


#: Backwards-compatible alias; the tool as a whole is "the Saturator".
Saturator = SaturatorSender


def record_trace_with_saturator(
    channel_config: ChannelConfig,
    duration: float,
    seed: SeedLike = 0,
    feedback_rate: float = 800.0,
    saturator_config: Optional[SaturatorConfig] = None,
) -> List[float]:
    """Measure a channel with the Saturator and return the recorded trace.

    Args:
        channel_config: the channel under test.
        duration: measurement length in seconds.
        seed: RNG seed for the channel.
        feedback_rate: delivery rate (packets/s) of the feedback path.  The
            paper uses a second, lightly-loaded phone for feedback; a fast
            constant-rate path plays that role here.
        saturator_config: window-control parameters.

    Returns:
        Times (seconds) at which data packets crossed the link under test.
    """
    channel = CellularChannel(channel_config, seed=seed)
    ground_truth = channel.delivery_times(duration)

    # Constant-rate feedback path (one opportunity every 1/feedback_rate s).
    step = 1.0 / feedback_rate
    feedback_trace = [i * step for i in range(1, int(duration / step) + 1)]

    loop = EventLoop()
    path = DuplexPath(
        loop,
        DuplexLinkConfig(
            forward_trace=ground_truth,
            reverse_trace=feedback_trace,
            name="saturator-measurement",
        ),
    )
    sender = SaturatorSender(saturator_config)
    sink = SaturatorSink()
    sender_host = Host(loop, sender, path.send_from_a, name="saturator-sender")
    sink_host = Host(loop, sink, path.send_from_b, name="saturator-sink")
    path.attach_a(sender_host.deliver)
    path.attach_b(sink_host.deliver)

    sender_host.start()
    sink_host.start()
    loop.run_until(duration)
    sender_host.stop()
    sink_host.stop()

    # The measured trace is the set of times packets crossed the bottleneck
    # link (its dequeue times); report them relative to the link, excluding
    # the downstream propagation delay, exactly as Cellsim replays them.
    measured = [
        packet.dequeued_at
        for _, packet in sink_host.received_log
        if packet.dequeued_at is not None
    ]
    measured.sort()
    return measured
