"""Per-network channel presets matching the paper's eight measured links.

The paper's evaluation (Section 4.1) uses roughly 17-minute Saturator traces
of four commercial networks, each in both directions:

* Verizon LTE (downlink / uplink)
* Verizon 3G 1xEV-DO (downlink / uplink)
* AT&T LTE (downlink / uplink)
* T-Mobile 3G UMTS (downlink / uplink)

The original traces are not available, so each link is represented here by a
:class:`ChannelConfig` whose mean rate and variability are calibrated to the
throughput ranges visible in Figure 7 and the narrative of Section 2.2
(order-of-magnitude swings within a second on LTE, slower 3G links with
frequent deep fades, sticky multi-second outages).  Rates are in MTU-sized
packets per second; multiply by 12 for kbit/s.

All presets are deterministic: a given ``(link, duration, seed)`` triple
always yields the same trace, and traces are memoised so that repeated
experiments over the same link reuse identical delivery opportunities, which
is exactly what trace-driven evaluation requires (every scheme sees the same
link, Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simulation.queues import QueueConfig
from repro.traces.cache import global_cache
from repro.traces.channel import ChannelConfig

#: trace length used by default throughout the experiment harness (seconds).
#: The paper uses ~17 minute traces; 120 s keeps the full evaluation matrix
#: tractable in pure Python while spanning many rate swings and outages.
DEFAULT_TRACE_DURATION = 120.0


@dataclass(frozen=True)
class LinkSpec:
    """One direction of one cellular network.

    ``queue`` carries an optional bottleneck-queue configuration into the
    emulation (``None`` for the registry presets — the deep drop-tail buffer
    of the paper's carriers).  The ``aqm``/``qlimit`` sweep axes produce
    variants of a registry link with this field set; the trace cache keys on
    the channel config alone, so all queue variants of one link share the
    identical delivery trace, exactly as the paper's Section 5.4 comparison
    requires.

    ``propagation_delay`` is the one-way wire delay in seconds; ``None``
    uses the emulator's default (the paper's 20 ms each way).  The ``rtt``
    sweep axis sets it on a copy of the link spec, and — like the queue —
    it does not participate in the trace-cache key, so all RTT variants of
    one link see the identical delivery schedule.
    """

    network: str
    direction: str  # "downlink" or "uplink"
    config: ChannelConfig
    seed: int
    queue: Optional[QueueConfig] = None
    propagation_delay: Optional[float] = None

    @property
    def name(self) -> str:
        return f"{self.network} {self.direction}"

    @property
    def key(self) -> str:
        """Stable machine-readable identifier, e.g. ``verizon-lte-downlink``."""
        return (
            self.network.lower()
            .replace(" ", "-")
            .replace("(", "")
            .replace(")", "")
            .replace("&", "")
            + "-"
            + self.direction
        )


@dataclass(frozen=True)
class NetworkSpec:
    """A cellular network with its two directions."""

    name: str
    downlink: LinkSpec
    uplink: LinkSpec

    @property
    def links(self) -> Tuple[LinkSpec, LinkSpec]:
        return (self.downlink, self.uplink)


def _make_network(
    name: str,
    down_rate: float,
    down_volatility: float,
    up_rate: float,
    up_volatility: float,
    outage_rate: float,
    seed_base: int,
    fade_depth: float = 0.5,
    fade_period: float = 11.0,
) -> NetworkSpec:
    down = LinkSpec(
        network=name,
        direction="downlink",
        config=ChannelConfig(
            mean_rate=down_rate,
            volatility=down_volatility,
            outage_rate=outage_rate,
            fade_depth=fade_depth,
            fade_period=fade_period,
        ),
        seed=seed_base,
    )
    up = LinkSpec(
        network=name,
        direction="uplink",
        config=ChannelConfig(
            mean_rate=up_rate,
            volatility=up_volatility,
            outage_rate=outage_rate,
            fade_depth=fade_depth,
            fade_period=fade_period * 1.3,
        ),
        seed=seed_base + 1,
    )
    return NetworkSpec(name=name, downlink=down, uplink=up)


#: The four networks of the paper's evaluation, calibrated as described above.
NETWORKS: Dict[str, NetworkSpec] = {
    spec.name: spec
    for spec in (
        _make_network(
            "Verizon LTE",
            down_rate=450.0,
            down_volatility=220.0,
            up_rate=330.0,
            up_volatility=160.0,
            outage_rate=0.008,
            seed_base=1000,
            fade_depth=0.55,
            fade_period=9.0,
        ),
        _make_network(
            "Verizon 3G (1xEV-DO)",
            down_rate=55.0,
            down_volatility=28.0,
            up_rate=48.0,
            up_volatility=22.0,
            outage_rate=0.02,
            seed_base=2000,
            fade_depth=0.6,
            fade_period=14.0,
        ),
        _make_network(
            "AT&T LTE",
            down_rate=280.0,
            down_volatility=150.0,
            up_rate=80.0,
            up_volatility=40.0,
            outage_rate=0.012,
            seed_base=3000,
            fade_depth=0.5,
            fade_period=10.0,
        ),
        _make_network(
            "T-Mobile 3G (UMTS)",
            down_rate=140.0,
            down_volatility=70.0,
            up_rate=100.0,
            up_volatility=50.0,
            outage_rate=0.015,
            seed_base=4000,
            fade_depth=0.55,
            fade_period=13.0,
        ),
    )
}


def network_names() -> List[str]:
    """Names of all modelled networks, in the paper's presentation order."""
    return list(NETWORKS.keys())


def link_names() -> List[str]:
    """Names of all eight modelled links (network x direction)."""
    names: List[str] = []
    for spec in NETWORKS.values():
        names.append(spec.downlink.name)
        names.append(spec.uplink.name)
    return names


def get_network(name: str) -> NetworkSpec:
    """Look up a network by exact name.

    Raises:
        KeyError: with the list of valid names, if ``name`` is unknown.
    """
    try:
        return NETWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; valid networks: {', '.join(NETWORKS)}"
        ) from None


def get_link(name: str) -> LinkSpec:
    """Look up a single link by ``"<network> <direction>"`` or by key."""
    for spec in NETWORKS.values():
        for link in spec.links:
            if name in (link.name, link.key):
                return link
    raise KeyError(f"unknown link {name!r}; valid links: {', '.join(link_names())}")


def link_trace(
    link: LinkSpec, duration: float = DEFAULT_TRACE_DURATION, seed_offset: int = 0
) -> List[float]:
    """Delivery-opportunity trace for ``link``, memoised for reuse.

    Memoisation goes through :mod:`repro.traces.cache`, keyed by the link's
    full channel configuration (not its name), so sweep-modified variants of
    a registry link get their own traces.  The returned list is a defensive
    copy — mutating it cannot corrupt the cache.

    ``seed_offset`` selects an alternative realisation of the same channel
    (used, e.g., to give the feedback direction of an experiment a trace that
    is statistically identical to but independent from the data direction).
    """
    return list(
        global_cache().trace(
            link.config, float(duration), int(link.seed) + int(seed_offset)
        )
    )
