"""Process-safe memoised cache of synthetic delivery traces.

Every cell of a scheme × link matrix replays the same deterministic trace,
and before this module each cell regenerated it from scratch — in every
worker process.  :class:`TraceCache` memoises ``(channel config, duration,
seed) -> trace`` through the generic two-level keyed-artifact store of
:mod:`repro.cache` (this cache is where that design was proven before it
was extracted): a locked in-process table holding each trace as an
immutable tuple, plus an optional on-disk layer shared between worker
processes (atomic ``os.replace`` publication, so a concurrent reader sees
either the complete file or no file at all; unreadable or truncated files
are treated as misses and regenerated).

Keys are content hashes of the full channel configuration — not the link's
registry name — so a sweep-modified link (say, double the outage rate) can
never collide with the pristine registry entry.  Generation is exactly
:func:`repro.traces.synthetic.generate_trace`, so cached and uncached
callers get bit-identical traces; ``tests/test_trace_cache.py`` enforces
this, along with the defensive-copy contract of :func:`link_trace`.

Knobs (also see docs/sweeps.md):

* ``REPRO_TRACE_CACHE=0`` disables the cache entirely (every call
  regenerates, the seed behaviour);
* ``REPRO_TRACE_CACHE_DISK=0`` keeps the in-process layer but skips disk;
* ``REPRO_TRACE_CACHE_DIR`` relocates the disk layer (default: a
  per-user directory under the system temp dir);
* ``REPRO_TRACE_CACHE_MAX`` bounds the in-process layer.

The model-artifact cache (:mod:`repro.core.rate_model`,
docs/performance.md "Layer 3") rides the same generic store with the
mirror-image ``REPRO_MODEL_CACHE*`` knobs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache import ArtifactCache, CacheStats, content_key, default_cache_directory
from repro.traces.channel import ChannelConfig
from repro.traces.synthetic import generate_trace

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "TraceCache",
    "cached_trace",
    "configure",
    "default_cache_dir",
    "global_cache",
    "trace_key",
]

#: bump when trace generation changes so stale disk entries are orphaned
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> str:
    """The default on-disk location: per-user, under the system temp dir."""
    return default_cache_directory("REPRO_TRACE_CACHE_DIR", "repro-trace-cache")


def trace_key(config: ChannelConfig, duration: float, seed: int) -> str:
    """Content hash identifying one deterministic trace realisation."""
    fields = tuple(
        (f.name, repr(getattr(config, f.name))) for f in dataclasses.fields(config)
    )
    return content_key((CACHE_FORMAT_VERSION, fields, float(duration), int(seed)))


#: in-process entries kept per cache (the seed's lru_cache held 64); a 120 s
#: LTE trace is ~1.4 MB as a tuple, so this bounds the layer at ~90 MB even
#: for sweeps that mint a distinct channel config per cell
DEFAULT_MAX_ENTRIES = 64


@dataclass
class TraceCache(ArtifactCache):
    """Two-level (memory, disk) memoiser for synthetic delivery traces.

    All machinery — locked publication, LRU bound, atomic disk writes,
    corrupt-entry fallback — lives in :class:`repro.cache.ArtifactCache`;
    this class supplies only the trace codec (``.npy`` files of float64
    delivery times) and the trace-flavoured key/lookup API.
    """

    max_entries: int = DEFAULT_MAX_ENTRIES

    suffix = ".npy"

    # ------------------------------------------------------------- the codec

    def default_directory(self) -> str:
        return default_cache_dir()

    def write_artifact(self, handle, trace: Tuple[float, ...]) -> None:
        np.save(handle, np.asarray(trace, dtype=np.float64))

    def read_artifact(self, path: str) -> Tuple[float, ...]:
        return tuple(float(t) for t in np.load(path, allow_pickle=False))

    # ---------------------------------------------------------------- lookup

    def trace(self, config: ChannelConfig, duration: float, seed: int) -> Tuple[float, ...]:
        """The delivery trace for ``(config, duration, seed)``, memoised.

        Returns an immutable tuple; callers that need a mutable trace copy
        it (see :func:`link_trace`).
        """
        if not self.enabled:
            return tuple(generate_trace(config, duration, seed=seed))
        key = trace_key(config, duration, seed)
        return self.get(key, lambda: tuple(generate_trace(config, duration, seed=seed)))


#: the process-wide cache used by :func:`repro.traces.networks.link_trace`
_GLOBAL_CACHE = TraceCache.from_env("REPRO_TRACE_CACHE", default_max=DEFAULT_MAX_ENTRIES)


def global_cache() -> TraceCache:
    """The process-wide trace cache."""
    return _GLOBAL_CACHE


def configure(
    directory: Optional[str] = None,
    use_disk: Optional[bool] = None,
    enabled: Optional[bool] = None,
) -> TraceCache:
    """Reconfigure the process-wide cache (used by tests and the CLI).

    Any argument left as ``None`` keeps its current value.  The in-process
    layer is cleared so stale entries cannot outlive a reconfiguration.
    """
    return _GLOBAL_CACHE.configure(
        directory=directory, use_disk=use_disk, enabled=enabled
    )


def cached_trace(config: ChannelConfig, duration: float, seed: int) -> List[float]:
    """A defensively-copied delivery trace for an explicit channel config."""
    return list(_GLOBAL_CACHE.trace(config, duration, seed))
