"""Process-safe memoised cache of synthetic delivery traces.

Every cell of a scheme × link matrix replays the same deterministic trace,
and before this module each cell regenerated it from scratch — in every
worker process.  :class:`TraceCache` memoises ``(channel config, duration,
seed) -> trace`` at two levels:

* an **in-process** table holding each trace as an immutable tuple, guarded
  by a lock so a concurrent reader can never observe a partially built
  entry (an entry is published only after it is fully generated);
* an optional **on-disk** layer shared between worker processes of a run
  (and across runs on the same machine).  Files are written to a temporary
  name and published with :func:`os.replace`, which is atomic on POSIX: a
  concurrent reader sees either the complete file or no file at all, never
  a torn one.  Unreadable or truncated files are treated as misses and
  regenerated.

Keys are content hashes of the full channel configuration — not the link's
registry name — so a sweep-modified link (say, double the outage rate) can
never collide with the pristine registry entry.  Generation is exactly
:func:`repro.traces.synthetic.generate_trace`, so cached and uncached
callers get bit-identical traces; ``tests/test_trace_cache.py`` enforces
this, along with the defensive-copy contract of :func:`link_trace`.

Knobs (also see docs/sweeps.md):

* ``REPRO_TRACE_CACHE=0`` disables the cache entirely (every call
  regenerates, the seed behaviour);
* ``REPRO_TRACE_CACHE_DISK=0`` keeps the in-process layer but skips disk;
* ``REPRO_TRACE_CACHE_DIR`` relocates the disk layer (default: a
  per-user directory under the system temp dir).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.traces.channel import ChannelConfig
from repro.traces.synthetic import generate_trace

#: bump when trace generation changes so stale disk entries are orphaned
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> str:
    """The default on-disk location: per-user, under the system temp dir."""
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return os.path.join(tempfile.gettempdir(), f"repro-trace-cache-{uid}")


def trace_key(config: ChannelConfig, duration: float, seed: int) -> str:
    """Content hash identifying one deterministic trace realisation."""
    fields = tuple(
        (f.name, repr(getattr(config, f.name))) for f in dataclasses.fields(config)
    )
    payload = repr((CACHE_FORMAT_VERSION, fields, float(duration), int(seed)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters exposed for tests and the benchmark record."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


#: in-process entries kept per cache (the seed's lru_cache held 64); a 120 s
#: LTE trace is ~1.4 MB as a tuple, so this bounds the layer at ~90 MB even
#: for sweeps that mint a distinct channel config per cell
DEFAULT_MAX_ENTRIES = 64


@dataclass
class TraceCache:
    """Two-level (memory, disk) memoiser for synthetic delivery traces."""

    directory: Optional[str] = None
    use_disk: bool = True
    enabled: bool = True
    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Tuple[float, ...]]" = OrderedDict()

    # ---------------------------------------------------------------- lookup

    def trace(self, config: ChannelConfig, duration: float, seed: int) -> Tuple[float, ...]:
        """The delivery trace for ``(config, duration, seed)``, memoised.

        Returns an immutable tuple; callers that need a mutable trace copy
        it (see :func:`link_trace`).
        """
        if not self.enabled:
            return tuple(generate_trace(config, duration, seed=seed))
        key = trace_key(config, duration, seed)
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
        if cached is not None:
            return cached
        trace = self._load(key)
        if trace is not None:
            with self._lock:
                self.stats.disk_hits += 1
        else:
            with self._lock:
                self.stats.misses += 1
            trace = tuple(generate_trace(config, duration, seed=seed))
            self._store(key, trace)
        with self._lock:
            # Publish only fully built tuples; last writer wins harmlessly
            # because every writer generated the identical trace.  LRU
            # eviction bounds the layer (disk entries are never evicted).
            self._memory[key] = trace
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
        return trace

    def clear(self) -> None:
        """Drop the in-process layer (the disk layer is left alone)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------ disk layer

    def _path(self, key: str) -> Optional[str]:
        if not self.use_disk:
            return None
        directory = self.directory if self.directory is not None else default_cache_dir()
        return os.path.join(directory, f"{key}.npy")

    def _load(self, key: str) -> Optional[Tuple[float, ...]]:
        path = self._path(key)
        if path is None:
            return None
        try:
            return tuple(float(t) for t in np.load(path, allow_pickle=False))
        except (OSError, ValueError):
            # Missing, truncated, or foreign file: regenerate.
            return None

    def _store(self, key: str, trace: Tuple[float, ...]) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.save(handle, np.asarray(trace, dtype=np.float64))
                # Atomic publish: readers see the whole file or none of it.
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            pass


def _cache_from_env() -> TraceCache:
    return TraceCache(
        enabled=os.environ.get("REPRO_TRACE_CACHE", "1") != "0",
        use_disk=os.environ.get("REPRO_TRACE_CACHE_DISK", "1") != "0",
        max_entries=int(os.environ.get("REPRO_TRACE_CACHE_MAX", str(DEFAULT_MAX_ENTRIES))),
    )


#: the process-wide cache used by :func:`repro.traces.networks.link_trace`
_GLOBAL_CACHE = _cache_from_env()


def global_cache() -> TraceCache:
    """The process-wide trace cache."""
    return _GLOBAL_CACHE


def configure(
    directory: Optional[str] = None,
    use_disk: Optional[bool] = None,
    enabled: Optional[bool] = None,
) -> TraceCache:
    """Reconfigure the process-wide cache (used by tests and the CLI).

    Any argument left as ``None`` keeps its current value.  The in-process
    layer is cleared so stale entries cannot outlive a reconfiguration.
    """
    cache = _GLOBAL_CACHE
    if directory is not None:
        cache.directory = directory
    if use_disk is not None:
        cache.use_disk = use_disk
    if enabled is not None:
        cache.enabled = enabled
    cache.clear()
    return cache


def cached_trace(config: ChannelConfig, duration: float, seed: int) -> List[float]:
    """A defensively-copied delivery trace for an explicit channel config."""
    return list(_GLOBAL_CACHE.trace(config, duration, seed))
