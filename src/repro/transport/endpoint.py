"""UDP endpoints that run the simulator's Sprout protocols over real sockets.

The protocol objects (:class:`~repro.core.sender.SproutSender`,
:class:`~repro.core.receiver.SproutReceiver`) only ever touch their
:class:`~repro.simulation.endpoints.HostContext` — read the clock, send a
packet — so running them live takes three adapters and no protocol changes:

* :class:`WallClockContext` exposes the ``HostContext`` surface over a real
  monotonic clock and a transmit callback that serialises each simulator
  :class:`~repro.simulation.packet.Packet` into a wire frame;
* :class:`~repro.core.forecaster.TickFromWallClock` maps irregular
  ``select()`` wake-ups onto the paper's 20 ms tick lattice;
* the endpoints below own the socket loop, the selective-repeat layer
  (:mod:`repro.transport.reliable`), and the translation between wire
  frames and the header-dict packets the protocols parse.

The lifecycle is hardened against adversarial networks
(:mod:`repro.transport.impair` injects them deliberately):

* a **peer-inactivity watchdog** on both endpoints aborts with a
  structured :class:`TransferAborted` (a :class:`TransferDiagnosis` of
  last-heard ages, retransmit/RTO/decode-error counters, and the event
  ring tail) instead of silently sleeping out the deadline;
* the CLOSE handshake is **reliable**: the sender backoff-retransmits
  CLOSE until the receiver's CLOSE-ACK answers, and the receiver lingers
  briefly to re-ack retransmitted CLOSEs;
* the retransmit buffer is **bounded with backpressure**: near its
  watermark the sender defers protocol ticks (no fresh data or heartbeats
  are offered) rather than dropping at the brim;
* **per-peer quarantine** silences sources that only ever send malformed
  datagrams, and every lifecycle event lands in a timestamped
  :class:`~repro.transport.impair.EventRing` for postmortems.

Loss injection happens at the sender's ``sendto``: a deterministic
Bernoulli gate (the sha256 idiom of :func:`repro.testing.faults._coin`,
keyed on ``(seed, wire_seq, attempt)``) silently drops the datagram, so a
10% loss test replays identically every run while the selective-repeat
machinery does real recovery work.  Richer adversarial behaviour (bursty
loss, reordering, duplication, corruption, throttling, blackouts) comes
from an :class:`~repro.transport.impair.ImpairmentPipeline` applied at the
same boundary, per direction.
"""

from __future__ import annotations

import hashlib
import logging
import select
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.forecaster import EWMAForecaster, TickFromWallClock
from repro.core.packets import (
    CONTROL_PACKET_BYTES,
    make_data_packet,
    make_feedback_packet,
    parse_data_header,
    parse_feedback,
)
from repro.core.receiver import SproutReceiver
from repro.core.sender import SproutSender
from repro.simulation.packet import MTU_BYTES, Packet
from repro.transport.impair import (
    EventRing,
    ImpairmentPipeline,
    PeerQuarantine,
    TransportEvent,
)
from repro.transport.reliable import AdaptiveRTO, ReorderWindow, RetransmitBuffer
from repro.transport.wire import (
    MAX_FORECAST_TICKS,
    CloseAckFrame,
    CloseFrame,
    DataFrame,
    FeedbackFrame,
    WireFormatError,
    decode_frame,
    encode_close,
    encode_close_ack,
    encode_data,
    encode_feedback,
    seq_add,
)

_LOG = logging.getLogger("repro.transport")

#: loss gate: ``(wire_seq, attempt) -> True`` to drop the datagram unsent
LossGate = Callable[[int, int], bool]

#: ceiling on one select() sleep, so deadline checks stay responsive
MAX_SELECT_WAIT = 0.05

#: most CLOSE (re)transmissions before the sender gives up on the handshake
CLOSE_MAX_ATTEMPTS = 8

#: wall-clock budget for the whole CLOSE handshake after transfer completion
CLOSE_BUDGET = 2.0

#: how long the receiver lingers after CLOSE-ACK to answer retransmitted
#: CLOSEs (the TIME_WAIT idiom, scaled to loopback)
CLOSE_LINGER = 0.25

#: a feedback silence this long gets a "stall" event in the ring
STALL_AFTER = 0.5


def default_watchdog(deadline: float) -> float:
    """Watchdog interval for a given transfer deadline.

    A quarter of the deadline, clamped to [0.5 s, 4 s]: long enough to ride
    out a mid-transfer blackout of a couple of seconds, short enough that an
    abort lands well inside half of any reasonable deadline — the chaos
    suite's acceptance bar.
    """
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    return min(4.0, max(0.5, deadline / 4.0))


def bernoulli_loss_gate(probability: float, seed: int = 0) -> LossGate:
    """Deterministic datagram-loss gate (sha256 Bernoulli draw).

    The decision hashes ``(seed, wire_seq, attempt)`` — the same idiom as
    :func:`repro.testing.faults._coin` — so a retransmission of a dropped
    seq draws a fresh coin, and the whole loss pattern replays identically
    for a given seed.
    """
    if not 0.0 <= probability < 1.0:
        raise ValueError(f"loss probability must be in [0, 1), got {probability}")

    def gate(wire_seq: int, attempt: int) -> bool:
        digest = hashlib.sha256(
            f"{seed}|datagram|{wire_seq}|{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < probability

    return gate


# --------------------------------------------------------- structured aborts


@dataclass
class TransferDiagnosis:
    """Everything a postmortem needs about an aborted (or probed) transfer."""

    reason: str
    role: str
    elapsed_s: float
    last_heard_age_s: float
    last_progress_age_s: float
    datagrams_sent: int
    feedback_received: int
    decode_errors: int
    total_retransmits: int
    fast_retransmits: int
    timeout_retransmits: int
    rto_backoffs: int
    outstanding: int
    outstanding_bytes: int
    ticks_skipped: int
    quarantined_peers: int
    cause: str = ""
    events: List[TransportEvent] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "reason": self.reason,
            "role": self.role,
            "elapsed_s": self.elapsed_s,
            "last_heard_age_s": self.last_heard_age_s,
            "last_progress_age_s": self.last_progress_age_s,
            "datagrams_sent": self.datagrams_sent,
            "feedback_received": self.feedback_received,
            "decode_errors": self.decode_errors,
            "total_retransmits": self.total_retransmits,
            "fast_retransmits": self.fast_retransmits,
            "timeout_retransmits": self.timeout_retransmits,
            "rto_backoffs": self.rto_backoffs,
            "outstanding": self.outstanding,
            "outstanding_bytes": self.outstanding_bytes,
            "ticks_skipped": self.ticks_skipped,
            "quarantined_peers": self.quarantined_peers,
        }
        if self.cause:
            payload["cause"] = self.cause
        payload["events"] = [(e.t, e.kind, e.detail) for e in self.events]
        return payload

    def describe(self) -> str:
        head = (
            f"{self.role} aborted: {self.reason} after {self.elapsed_s:.2f}s "
            f"(last heard {self.last_heard_age_s:.2f}s ago, last progress "
            f"{self.last_progress_age_s:.2f}s ago; {self.total_retransmits} rtx "
            f"of which {self.timeout_retransmits} by RTO with {self.rto_backoffs} "
            f"backoffs; {self.decode_errors} decode errors; "
            f"{self.outstanding} datagrams / {self.outstanding_bytes} bytes unacked)"
        )
        if self.cause:
            head += f"; cause: {self.cause}"
        return head


class TransferAborted(RuntimeError):
    """A transfer endpoint gave up deliberately, diagnosis attached."""

    def __init__(self, diagnosis: TransferDiagnosis) -> None:
        super().__init__(diagnosis.describe())
        self.diagnosis = diagnosis


class WallClockContext:
    """The :class:`~repro.simulation.endpoints.HostContext` surface, live.

    ``clock`` is a zero-argument callable returning seconds on a shared
    monotonic timebase; both endpoints of a loopback transfer use the same
    base so a receiver can subtract a sender timestamp directly.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        transmit: Callable[[Packet], None],
        name: str,
    ) -> None:
        self._clock = clock
        self._transmit = transmit
        self.name = name
        self.bytes_sent = 0
        self.packets_sent = 0

    def now(self) -> float:
        return self._clock()

    def send(self, packet: Packet) -> None:
        packet.sent_at = self.now()
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self._transmit(packet)

    def schedule_after(self, delay: float, callback: Callable[[], None]):
        # The Sprout protocols are tick-driven and never set ad-hoc timers;
        # anything that needs one must run inside the simulator.
        raise NotImplementedError(
            "WallClockContext has no event loop; drive the protocol by ticks"
        )


class SizedTransferProvider:
    """Payload provider offering exactly ``total_bytes``, MTU-chunked.

    Plugs into :class:`~repro.core.sender.SproutSender` as its
    ``payload_provider``: each call consumes up to ``budget`` bytes of the
    remaining transfer (never splitting mid-MTU except for the final tail),
    so the Sprout window still paces everything.
    """

    def __init__(self, total_bytes: int, mtu_bytes: int = MTU_BYTES) -> None:
        if total_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {total_bytes}")
        self.total_bytes = int(total_bytes)
        self.mtu_bytes = int(mtu_bytes)
        self.remaining = self.total_bytes

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def __call__(self, now: float, budget_bytes: int) -> List[int]:
        sizes: List[int] = []
        budget = int(budget_bytes)
        while self.remaining > 0:
            take = min(self.mtu_bytes, self.remaining)
            if take > budget:
                break
            sizes.append(take)
            self.remaining -= take
            budget -= take
        return sizes


def _drain_datagrams(sock: socket.socket) -> List[Tuple[bytes, Tuple]]:
    """Non-blocking drain of every datagram currently queued on ``sock``."""
    datagrams: List[Tuple[bytes, Tuple]] = []
    while True:
        try:
            data, addr = sock.recvfrom(65536)
        except (BlockingIOError, InterruptedError):
            return datagrams
        except OSError:
            return datagrams
        datagrams.append((data, addr))


class SenderEndpoint:
    """Live Sprout sender: protocol + selective repeat + the socket loop.

    Runs a sized transfer to ``remote``: the Sprout window paces fresh
    data, every datagram (data and heartbeat alike) carries a wire seq and
    sits in the retransmit buffer until the receiver's feedback acks it,
    and the transfer is complete when the payload is fully offered *and*
    every wire seq is acked — the "zero lost-forever packets" criterion is
    exactly ``lost_forever == 0`` at completion, sealed by the reliable
    CLOSE/CLOSE-ACK handshake.

    ``watchdog`` (seconds, ``None`` disables) arms two abort triggers,
    both raising :class:`TransferAborted` instead of waiting out the
    deadline: *peer-inactivity* (no valid feedback for that long) and
    *no-progress* (feedback flows but nothing new is acked — the signature
    of a one-way blackout).  ``abort_check`` is polled every loop and lets
    the harness surface a crashed receiver thread immediately.
    """

    def __init__(
        self,
        remote: Tuple[str, int],
        total_bytes: int,
        clock: Callable[[], float],
        loss_gate: Optional[LossGate] = None,
        deadline: float = 30.0,
        ewma: bool = False,
        rto: Optional[AdaptiveRTO] = None,
        impairment: Optional[ImpairmentPipeline] = None,
        watchdog: Optional[float] = None,
        abort_check: Optional[Callable[[], Optional[BaseException]]] = None,
        ring: Optional[EventRing] = None,
    ) -> None:
        self.remote = remote
        self.provider = SizedTransferProvider(total_bytes)
        self.clock = clock
        self.loss_gate = loss_gate
        self.deadline = float(deadline)
        self.ewma = ewma  # recorded for the harness report; the sender side
        # has no forecaster of its own, the receiver picks the engine.
        self.impairment = impairment
        if watchdog is not None and watchdog <= 0:
            raise ValueError(f"watchdog must be positive, got {watchdog}")
        self.watchdog = watchdog
        self.abort_check = abort_check
        self.ring = ring if ring is not None else EventRing()
        if impairment is not None and impairment.ring is None:
            impairment.ring = self.ring
        self.protocol = SproutSender(payload_provider=self.provider, flow_id="sprout-live")
        self.ctx = WallClockContext(clock, self._transmit_packet, "live-sender")
        self.buffer = RetransmitBuffer(rto=rto)
        self.ticker = TickFromWallClock(self.protocol.tick_interval)
        self.quarantine = PeerQuarantine()
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        self._next_seq = 0
        self.datagrams_sent = 0
        self.injected_drops = 0
        self.malformed_received = 0
        self.feedback_received = 0
        self.rto_backoffs = 0
        self.backpressure_deferrals = 0
        self.close_retransmits = 0
        self.close_acked = False
        self.completed = False
        self.elapsed = 0.0
        self._last_heard = 0.0
        self._last_progress = 0.0
        self._stalled = False

    @property
    def decode_errors(self) -> int:
        """Datagrams that failed :func:`decode_frame` (alias for reports)."""
        return self.malformed_received

    # ------------------------------------------------------------ transmit

    def _transmit_packet(self, packet: Packet) -> None:
        """ctx.send callback: serialise one protocol packet onto the wire."""
        header = parse_data_header(packet)
        if header is None:
            return  # the sender protocol only emits data/heartbeat packets
        now = self.ctx.now()
        frame = DataFrame(
            wire_seq=self._next_seq,
            seq_bytes=header.seq_bytes,
            throwaway_bytes=header.throwaway_bytes,
            time_to_next=header.time_to_next,
            timestamp=now,
            transfer_total=self.provider.total_bytes,
            size=packet.size,
            heartbeat=header.is_heartbeat,
            fin=self.provider.exhausted,
        )
        encoded = encode_data(frame)
        if not self.buffer.has_room():
            # Backpressure defers protocol ticks near the watermark, so the
            # hard bound is only reachable through a pathological burst;
            # drop rather than wedge, and leave a trace in the ring.
            self.ring.record(now, "buffer_full_drop", f"wire seq {self._next_seq}")
            _LOG.warning("retransmit buffer full; dropping wire seq %d", self._next_seq)
            return
        self.buffer.track(frame.wire_seq, encoded, now)
        self._next_seq = seq_add(self._next_seq)
        self._raw_send(frame.wire_seq, encoded, attempt=0)

    def _raw_send(self, wire_seq: int, encoded: bytes, attempt: int) -> None:
        if self.loss_gate is not None and self.loss_gate(wire_seq, attempt):
            self.injected_drops += 1
            return
        self._emit(encoded)

    def _emit(self, encoded: bytes) -> None:
        """Hand one datagram to the wire, via the impairment pipeline if any."""
        if self.impairment is None:
            self._sendto(encoded)
            return
        for out in self.impairment.submit(encoded, self.ctx.now()):
            self._sendto(out)

    def _sendto(self, encoded: bytes) -> None:
        try:
            self.sock.sendto(encoded, self.remote)
        except OSError as error:
            # A full socket buffer behaves like loss; the RTO recovers it.
            _LOG.debug("sendto failed: %s", error)
            return
        self.datagrams_sent += 1

    def _pump_impairment(self, now: float) -> None:
        if self.impairment is not None:
            for out in self.impairment.pump(now):
                self._sendto(out)

    # ------------------------------------------------------------ feedback

    def _handle_feedback(self, frame: FeedbackFrame, now: float) -> None:
        self.feedback_received += 1
        self._last_heard = now
        # Karn-safe RTT sample: only a seq that is still outstanding and
        # was never retransmitted gives an unambiguous echo.
        if frame.echo_timestamp > 0.0 and self.buffer.rtt_sample_ok(frame.echo_seq):
            rtt = now - frame.echo_timestamp - frame.echo_delay
            self.buffer.rto.sample(rtt)
        acked = self.buffer.on_feedback(frame.ack_seq, frame.sack_bitmap, now)
        if acked:
            self._last_progress = now
        packet = make_feedback_packet(
            forecast_bytes=frame.forecast_bytes,
            forecast_time=frame.forecast_time,
            received_or_lost_bytes=frame.received_or_lost_bytes,
            flow_id="sprout-live-feedback",
        )
        self.protocol.on_packet(packet, now)

    def _retransmit_due(self, now: float) -> None:
        for wire_seq, encoded in self.buffer.due(now):
            frame = decode_frame(encoded)
            if not isinstance(frame, DataFrame):  # pragma: no cover - tracked frames are data
                continue
            was_fast = self.buffer.fast_due(wire_seq)
            frame.timestamp = now
            frame.retransmit = True
            refreshed = encode_data(frame)
            self.buffer.retransmitted(wire_seq, refreshed, now)
            attempts = self.buffer.attempts(wire_seq)
            if was_fast:
                self.ring.record(now, "fast_retransmit", f"wire seq {wire_seq}")
            else:
                self.ring.record(now, "rto_retransmit", f"wire seq {wire_seq}")
                if attempts > 1:
                    self.rto_backoffs += 1
                    self.ring.record(
                        now, "rto_backoff", f"wire seq {wire_seq} attempt {attempts}"
                    )
            self._raw_send(wire_seq, refreshed, attempt=attempts)

    # ------------------------------------------------------------ watchdog

    def _diagnosis(self, reason: str, now: float, start: float, cause: str = "") -> TransferDiagnosis:
        return TransferDiagnosis(
            reason=reason,
            role="sender",
            elapsed_s=now - start,
            last_heard_age_s=now - self._last_heard,
            last_progress_age_s=now - self._last_progress,
            datagrams_sent=self.datagrams_sent,
            feedback_received=self.feedback_received,
            decode_errors=self.malformed_received,
            total_retransmits=self.buffer.total_retransmits,
            fast_retransmits=self.buffer.fast_retransmits,
            timeout_retransmits=self.buffer.timeout_retransmits,
            rto_backoffs=self.rto_backoffs,
            outstanding=len(self.buffer),
            outstanding_bytes=self.buffer.bytes_held,
            ticks_skipped=self.ticker.ticks_skipped,
            quarantined_peers=self.quarantine.quarantined_peers,
            cause=cause,
            events=self.ring.tail(16),
        )

    def _check_watchdog(self, now: float, start: float) -> None:
        if self.abort_check is not None:
            error = self.abort_check()
            if error is not None:
                self.ring.record(now, "watchdog_abort", "receiver failure")
                raise TransferAborted(
                    self._diagnosis("receiver-failure", now, start, cause=repr(error))
                )
        if self.watchdog is None:
            return
        if now - self._last_heard > self.watchdog:
            self.ring.record(now, "watchdog_abort", "peer inactivity")
            raise TransferAborted(self._diagnosis("peer-inactivity", now, start))
        if now - self._last_progress > self.watchdog:
            self.ring.record(now, "watchdog_abort", "no progress")
            raise TransferAborted(self._diagnosis("no-progress", now, start))

    def _note_stall(self, now: float) -> None:
        silent = now - self._last_heard
        if silent > STALL_AFTER:
            if not self._stalled:
                self._stalled = True
                self.ring.record(now, "stall", f"no feedback for {silent:.2f}s")
        else:
            self._stalled = False

    # ----------------------------------------------------------------- run

    def run(self) -> bool:
        """Drive the transfer to completion; True iff everything was acked.

        Blocks until the payload is fully offered and every wire seq acked
        (then runs the reliable CLOSE handshake and returns True).  A
        watchdog expiry or a receiver failure raises
        :class:`TransferAborted` with a populated diagnosis; only with the
        watchdog disabled can the transfer run out the ``deadline`` and
        return False with whatever state the endpoint reached.
        """
        start = self.clock()
        give_up = start + self.deadline
        self._last_heard = start
        self._last_progress = start
        self.protocol.start(self.ctx)
        self.ticker.start(start)
        if self.impairment is not None:
            self.impairment.start(start)
        try:
            while True:
                now = self.clock()
                if self.provider.exhausted and len(self.buffer) == 0:
                    self.completed = True
                    self._close_handshake(min(give_up, self.clock() + CLOSE_BUDGET))
                    break
                if now >= give_up:
                    self.ring.record(now, "deadline_expired", "")
                    break
                self._check_watchdog(now, start)
                self._note_stall(now)
                timeout = self._select_timeout(now)
                readable, _, _ = select.select([self.sock], [], [], timeout)
                now = self.clock()
                if readable:
                    for data, addr in _drain_datagrams(self.sock):
                        frame = self._decode(data, addr, now)
                        if isinstance(frame, FeedbackFrame):
                            self._handle_feedback(frame, now)
                # In drain mode (payload fully offered) the protocol has
                # nothing left to say: ticking it would only emit fresh
                # heartbeats that push completion further out.  Under
                # buffer backpressure, ticking would offer data the buffer
                # cannot hold: defer instead of dropping.
                if not self.provider.exhausted:
                    if self.buffer.under_backpressure:
                        if self.ticker.due_ticks(now):
                            self.backpressure_deferrals += 1
                            self.ring.record(
                                now, "backpressure", f"{len(self.buffer)} unacked"
                            )
                    else:
                        for _ in range(self.ticker.due_ticks(now)):
                            self.protocol.on_tick(now)
                self._retransmit_due(now)
                self._pump_impairment(now)
        finally:
            self.elapsed = self.clock() - start
            self.sock.close()
        return self.completed

    def _decode(self, data: bytes, addr: Tuple, now: float):
        """Decode one datagram with quarantine accounting; None if rejected."""
        if self.quarantine.is_quarantined(addr):
            return None
        try:
            frame = decode_frame(data)
        except WireFormatError as error:
            self.malformed_received += 1
            self.ring.record(now, "decode_error", str(error))
            if self.quarantine.note_malformed(addr):
                self.ring.record(now, "quarantine", f"peer {addr!r}")
            return None
        self.quarantine.note_valid(addr)
        return frame

    def _select_timeout(self, now: float) -> float:
        deadlines = [now + MAX_SELECT_WAIT]
        tick = self.ticker.next_deadline()
        if tick is not None and not self.provider.exhausted:
            deadlines.append(tick)
        rto = self.buffer.next_deadline(now)
        if rto is not None:
            deadlines.append(rto)
        if self.impairment is not None:
            held = self.impairment.next_deadline()
            if held is not None:
                deadlines.append(held)
        return max(0.0, min(deadlines) - now)

    def _close_handshake(self, give_up: float) -> None:
        """Reliable CLOSE: backoff-retransmit until CLOSE-ACK or budget end.

        CLOSE is exempt from the legacy Bernoulli loss gate (it carries no
        data) but *does* traverse the impairment pipeline — a blackout over
        the tail of a transfer exercises exactly this retransmit path.
        """
        encoded = encode_close(CloseFrame(wire_seq=self._next_seq))
        attempt = 0
        while attempt < CLOSE_MAX_ATTEMPTS:
            now = self.clock()
            if now >= give_up:
                break
            self._emit(encoded)
            attempt += 1
            if attempt > 1:
                self.close_retransmits += 1
                self.ring.record(now, "close_retransmit", f"attempt {attempt}")
            wait_until = min(give_up, now + max(0.02, self.buffer.rto.timeout(attempt - 1)))
            while True:
                now = self.clock()
                if now >= wait_until:
                    break
                readable, _, _ = select.select(
                    [self.sock], [], [], min(MAX_SELECT_WAIT, wait_until - now)
                )
                now = self.clock()
                self._pump_impairment(now)
                if not readable:
                    continue
                for data, addr in _drain_datagrams(self.sock):
                    frame = self._decode(data, addr, now)
                    if isinstance(frame, CloseAckFrame):
                        self.close_acked = True
                        self.ring.record(now, "close_acked", f"after {attempt} attempt(s)")
                        return
        self.ring.record(self.clock(), "close_gave_up", f"after {attempt} attempt(s)")

    @property
    def lost_forever(self) -> int:
        """Wire seqs never acknowledged — 0 after a completed transfer."""
        return len(self.buffer)


class ReceiverEndpoint:
    """Live Sprout receiver: reorder window + protocol + feedback frames.

    Binds a loopback UDP socket (ephemeral port by default; read
    :attr:`port` after construction), feeds every *unique* data frame to
    the unmodified :class:`~repro.core.receiver.SproutReceiver`, and wraps
    the protocol's feedback packets with the transport's ack/SACK state and
    RTT echo on their way out.  Per-packet one-way delays come straight
    from the real timestamps: receive time minus the frame's send stamp,
    both on the harness's shared monotonic timebase.

    Lifecycle: a CLOSE is answered with CLOSE-ACK and a short linger (so
    retransmitted CLOSEs are re-acked); ``watchdog`` seconds of peer
    silence raises :class:`TransferAborted`; ``stop_check`` lets the
    harness stop the receiver promptly once the sender is done for.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        deadline: float = 30.0,
        ewma: bool = False,
        impairment: Optional[ImpairmentPipeline] = None,
        watchdog: Optional[float] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        ring: Optional[EventRing] = None,
    ) -> None:
        self.clock = clock
        self.deadline = float(deadline)
        forecaster = EWMAForecaster() if ewma else None
        self.impairment = impairment
        if watchdog is not None and watchdog <= 0:
            raise ValueError(f"watchdog must be positive, got {watchdog}")
        self.watchdog = watchdog
        self.stop_check = stop_check
        self.ring = ring if ring is not None else EventRing()
        if impairment is not None and impairment.ring is None:
            impairment.ring = self.ring
        self.protocol = SproutReceiver(forecaster=forecaster, flow_id="sprout-live")
        self.ctx = WallClockContext(clock, self._transmit_feedback, "live-receiver")
        self.window = ReorderWindow(first_seq=0)
        self.ticker = TickFromWallClock(self.protocol.tick_interval)
        self.quarantine = PeerQuarantine()
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(bind)
        self.sock.setblocking(False)
        self.port = self.sock.getsockname()[1]
        self._peer: Optional[Tuple] = None
        self._feedback_seq = 0
        self._echo: Optional[Tuple[int, float, float]] = None  # seq, stamp, arrival
        self.delays: List[float] = []
        self.arrival_times: List[float] = []
        self.unique_data_bytes = 0
        self.data_frames = 0
        self.heartbeat_frames = 0
        self.malformed_received = 0
        self.feedback_frames_sent = 0
        self.close_acks_sent = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None
        self.saw_fin = False
        self.closed = False
        self.stopped = False
        self._last_heard = 0.0
        self._close_linger_until: Optional[float] = None

    @property
    def decode_errors(self) -> int:
        """Datagrams that failed :func:`decode_frame` (alias for reports)."""
        return self.malformed_received

    # ------------------------------------------------------------ feedback

    def _transmit_feedback(self, packet: Packet) -> None:
        """ctx.send callback: wrap a protocol feedback packet in a frame."""
        feedback = parse_feedback(packet)
        if feedback is None or self._peer is None:
            return
        now = self.ctx.now()
        echo_seq, echo_timestamp, echo_delay = 0, 0.0, 0.0
        if self._echo is not None:
            echo_seq, echo_timestamp, arrival = self._echo
            echo_delay = max(0.0, now - arrival)
        frame = FeedbackFrame(
            wire_seq=self._feedback_seq,
            forecast_bytes=list(feedback.forecast_bytes)[:MAX_FORECAST_TICKS],
            forecast_time=feedback.forecast_time,
            received_or_lost_bytes=feedback.received_or_lost_bytes,
            ack_seq=self.window.ack_seq,
            sack_bitmap=self.window.sack_bitmap(),
            echo_seq=echo_seq,
            echo_timestamp=echo_timestamp,
            echo_delay=echo_delay,
        )
        self._feedback_seq = seq_add(self._feedback_seq)
        if self._emit(encode_feedback(frame), now):
            self.feedback_frames_sent += 1

    def _emit(self, encoded: bytes, now: float) -> bool:
        """Send one datagram to the peer through the impairment pipeline."""
        if self._peer is None:
            return False
        outs = [encoded] if self.impairment is None else self.impairment.submit(encoded, now)
        sent = False
        for out in outs:
            try:
                self.sock.sendto(out, self._peer)
                sent = True
            except OSError:
                continue  # the feedback channel is unreliable by design
        return sent or bool(self.impairment)

    def _pump_impairment(self, now: float) -> None:
        if self.impairment is None or self._peer is None:
            return
        for out in self.impairment.pump(now):
            try:
                self.sock.sendto(out, self._peer)
            except OSError:
                continue

    # ------------------------------------------------------------- receive

    def _handle_data(self, frame: DataFrame, addr: Tuple, now: float) -> None:
        self._peer = addr
        # Echo the newest arrival whatever its novelty; the sender's Karn
        # check discards ambiguous (retransmitted) samples.
        self._echo = (frame.wire_seq, frame.timestamp, now)
        if not self.window.accept(frame.wire_seq):
            return
        self.delays.append(now - frame.timestamp)
        self.arrival_times.append(now)
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        if frame.heartbeat:
            self.heartbeat_frames += 1
        else:
            self.data_frames += 1
            self.unique_data_bytes += frame.size
        if frame.fin:
            self.saw_fin = True
        packet = make_data_packet(
            size=max(frame.size, CONTROL_PACKET_BYTES),
            seq_bytes=frame.seq_bytes,
            throwaway_bytes=frame.throwaway_bytes,
            time_to_next=frame.time_to_next,
            flow_id="sprout-live",
            is_heartbeat=frame.heartbeat,
        )
        packet.sent_at = frame.timestamp
        packet.delivered_at = now
        self.protocol.on_packet(packet, now)

    def _handle_close(self, frame: CloseFrame, addr: Tuple, now: float) -> None:
        self._peer = addr
        if not self.closed:
            self.closed = True
            self.ring.record(now, "close_received", "")
            self._close_linger_until = now + CLOSE_LINGER
        # Re-ack every CLOSE, original or retransmitted: the ack may have
        # been lost and the sender is backoff-retransmitting against us.
        if self._emit(encode_close_ack(CloseAckFrame(wire_seq=frame.wire_seq)), now):
            self.close_acks_sent += 1

    # ------------------------------------------------------------ watchdog

    def _diagnosis(self, reason: str, now: float, start: float) -> TransferDiagnosis:
        return TransferDiagnosis(
            reason=reason,
            role="receiver",
            elapsed_s=now - start,
            last_heard_age_s=now - self._last_heard,
            last_progress_age_s=now - (self.last_arrival if self.last_arrival else start),
            datagrams_sent=self.feedback_frames_sent,
            feedback_received=self.window.unique_accepted,
            decode_errors=self.malformed_received,
            total_retransmits=0,
            fast_retransmits=0,
            timeout_retransmits=0,
            rto_backoffs=0,
            outstanding=self.window.missing,
            outstanding_bytes=0,
            ticks_skipped=self.ticker.ticks_skipped,
            quarantined_peers=self.quarantine.quarantined_peers,
            events=self.ring.tail(16),
        )

    # ----------------------------------------------------------------- run

    def run(self) -> bool:
        """Receive until the close handshake, a stop, an abort, or deadline.

        True iff the transfer ended with the CLOSE handshake.  ``watchdog``
        seconds of total peer silence raise :class:`TransferAborted` (with
        diagnosis) instead of idling to the deadline.
        """
        start = self.clock()
        give_up = start + self.deadline
        self._last_heard = start
        self.protocol.start(self.ctx)
        self.ticker.start(start)
        if self.impairment is not None:
            self.impairment.start(start)
        try:
            while True:
                now = self.clock()
                if self.closed and (
                    self._close_linger_until is None or now >= self._close_linger_until
                ):
                    break
                if now >= give_up:
                    if not self.closed:
                        self.ring.record(now, "deadline_expired", "")
                    break
                if self.stop_check is not None and self.stop_check():
                    self.stopped = True
                    self.ring.record(now, "harness_stop", "")
                    break
                if (
                    self.watchdog is not None
                    and not self.closed
                    and now - self._last_heard > self.watchdog
                ):
                    self.ring.record(now, "watchdog_abort", "peer inactivity")
                    raise TransferAborted(self._diagnosis("peer-inactivity", now, start))
                timeout = self._select_timeout(now)
                readable, _, _ = select.select([self.sock], [], [], timeout)
                now = self.clock()
                if readable:
                    for data, addr in _drain_datagrams(self.sock):
                        frame = self._decode(data, addr, now)
                        if frame is None:
                            continue
                        self._last_heard = now
                        if isinstance(frame, DataFrame):
                            self._handle_data(frame, addr, now)
                        elif isinstance(frame, CloseFrame):
                            self._handle_close(frame, addr, now)
                if not self.closed:
                    for _ in range(self.ticker.due_ticks(now)):
                        self.protocol.on_tick(now)
                self._pump_impairment(now)
        finally:
            self.sock.close()
        return self.closed

    def _decode(self, data: bytes, addr: Tuple, now: float):
        """Decode one datagram with quarantine accounting; None if rejected."""
        if self.quarantine.is_quarantined(addr):
            return None
        try:
            frame = decode_frame(data)
        except WireFormatError as error:
            self.malformed_received += 1
            self.ring.record(now, "decode_error", str(error))
            if self.quarantine.note_malformed(addr):
                self.ring.record(now, "quarantine", f"peer {addr!r}")
            return None
        self.quarantine.note_valid(addr)
        return frame

    def _select_timeout(self, now: float) -> float:
        deadlines = [now + MAX_SELECT_WAIT]
        tick = self.ticker.next_deadline()
        if tick is not None:
            deadlines.append(tick)
        if self.impairment is not None:
            held = self.impairment.next_deadline()
            if held is not None:
                deadlines.append(held)
        if self._close_linger_until is not None:
            deadlines.append(self._close_linger_until)
        return max(0.0, min(deadlines) - now)


def shared_monotonic_clock() -> Callable[[], float]:
    """A zero-based monotonic clock both endpoints of a transfer share."""
    base = time.monotonic()
    return lambda: time.monotonic() - base
