"""UDP endpoints that run the simulator's Sprout protocols over real sockets.

The protocol objects (:class:`~repro.core.sender.SproutSender`,
:class:`~repro.core.receiver.SproutReceiver`) only ever touch their
:class:`~repro.simulation.endpoints.HostContext` — read the clock, send a
packet — so running them live takes three adapters and no protocol changes:

* :class:`WallClockContext` exposes the ``HostContext`` surface over a real
  monotonic clock and a transmit callback that serialises each simulator
  :class:`~repro.simulation.packet.Packet` into a wire frame;
* :class:`~repro.core.forecaster.TickFromWallClock` maps irregular
  ``select()`` wake-ups onto the paper's 20 ms tick lattice;
* the endpoints below own the socket loop, the selective-repeat layer
  (:mod:`repro.transport.reliable`), and the translation between wire
  frames and the header-dict packets the protocols parse.

Loss injection happens at the sender's ``sendto``: a deterministic
Bernoulli gate (the sha256 idiom of :func:`repro.testing.faults._coin`,
keyed on ``(seed, wire_seq, attempt)``) silently drops the datagram, so a
10% loss test replays identically every run while the selective-repeat
machinery does real recovery work.
"""

from __future__ import annotations

import hashlib
import logging
import select
import socket
import time
from typing import Callable, List, Optional, Tuple

from repro.core.forecaster import EWMAForecaster, TickFromWallClock
from repro.core.packets import (
    CONTROL_PACKET_BYTES,
    make_data_packet,
    make_feedback_packet,
    parse_data_header,
    parse_feedback,
)
from repro.core.receiver import SproutReceiver
from repro.core.sender import SproutSender
from repro.simulation.packet import MTU_BYTES, Packet
from repro.transport.reliable import AdaptiveRTO, ReorderWindow, RetransmitBuffer
from repro.transport.wire import (
    MAX_FORECAST_TICKS,
    CloseFrame,
    DataFrame,
    FeedbackFrame,
    WireFormatError,
    decode_frame,
    encode_close,
    encode_data,
    encode_feedback,
    seq_add,
)

_LOG = logging.getLogger("repro.transport")

#: loss gate: ``(wire_seq, attempt) -> True`` to drop the datagram unsent
LossGate = Callable[[int, int], bool]

#: how many best-effort CLOSE frames end a completed transfer
CLOSE_REPEATS = 3

#: ceiling on one select() sleep, so deadline checks stay responsive
MAX_SELECT_WAIT = 0.05


def bernoulli_loss_gate(probability: float, seed: int = 0) -> LossGate:
    """Deterministic datagram-loss gate (sha256 Bernoulli draw).

    The decision hashes ``(seed, wire_seq, attempt)`` — the same idiom as
    :func:`repro.testing.faults._coin` — so a retransmission of a dropped
    seq draws a fresh coin, and the whole loss pattern replays identically
    for a given seed.
    """
    if not 0.0 <= probability < 1.0:
        raise ValueError(f"loss probability must be in [0, 1), got {probability}")

    def gate(wire_seq: int, attempt: int) -> bool:
        digest = hashlib.sha256(
            f"{seed}|datagram|{wire_seq}|{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < probability

    return gate


class WallClockContext:
    """The :class:`~repro.simulation.endpoints.HostContext` surface, live.

    ``clock`` is a zero-argument callable returning seconds on a shared
    monotonic timebase; both endpoints of a loopback transfer use the same
    base so a receiver can subtract a sender timestamp directly.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        transmit: Callable[[Packet], None],
        name: str,
    ) -> None:
        self._clock = clock
        self._transmit = transmit
        self.name = name
        self.bytes_sent = 0
        self.packets_sent = 0

    def now(self) -> float:
        return self._clock()

    def send(self, packet: Packet) -> None:
        packet.sent_at = self.now()
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self._transmit(packet)

    def schedule_after(self, delay: float, callback: Callable[[], None]):
        # The Sprout protocols are tick-driven and never set ad-hoc timers;
        # anything that needs one must run inside the simulator.
        raise NotImplementedError(
            "WallClockContext has no event loop; drive the protocol by ticks"
        )


class SizedTransferProvider:
    """Payload provider offering exactly ``total_bytes``, MTU-chunked.

    Plugs into :class:`~repro.core.sender.SproutSender` as its
    ``payload_provider``: each call consumes up to ``budget`` bytes of the
    remaining transfer (never splitting mid-MTU except for the final tail),
    so the Sprout window still paces everything.
    """

    def __init__(self, total_bytes: int, mtu_bytes: int = MTU_BYTES) -> None:
        if total_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {total_bytes}")
        self.total_bytes = int(total_bytes)
        self.mtu_bytes = int(mtu_bytes)
        self.remaining = self.total_bytes

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def __call__(self, now: float, budget_bytes: int) -> List[int]:
        sizes: List[int] = []
        budget = int(budget_bytes)
        while self.remaining > 0:
            take = min(self.mtu_bytes, self.remaining)
            if take > budget:
                break
            sizes.append(take)
            self.remaining -= take
            budget -= take
        return sizes


def _drain_datagrams(sock: socket.socket) -> List[Tuple[bytes, Tuple]]:
    """Non-blocking drain of every datagram currently queued on ``sock``."""
    datagrams: List[Tuple[bytes, Tuple]] = []
    while True:
        try:
            data, addr = sock.recvfrom(65536)
        except (BlockingIOError, InterruptedError):
            return datagrams
        except OSError:
            return datagrams
        datagrams.append((data, addr))


class SenderEndpoint:
    """Live Sprout sender: protocol + selective repeat + the socket loop.

    Runs a sized transfer to ``remote``: the Sprout window paces fresh
    data, every datagram (data and heartbeat alike) carries a wire seq and
    sits in the retransmit buffer until the receiver's feedback acks it,
    and the transfer is complete when the payload is fully offered *and*
    every wire seq is acked — the "zero lost-forever packets" criterion is
    exactly ``lost_forever == 0`` at completion.
    """

    def __init__(
        self,
        remote: Tuple[str, int],
        total_bytes: int,
        clock: Callable[[], float],
        loss_gate: Optional[LossGate] = None,
        deadline: float = 30.0,
        ewma: bool = False,
        rto: Optional[AdaptiveRTO] = None,
    ) -> None:
        self.remote = remote
        self.provider = SizedTransferProvider(total_bytes)
        self.clock = clock
        self.loss_gate = loss_gate
        self.deadline = float(deadline)
        self.ewma = ewma  # recorded for the harness report; the sender side
        # has no forecaster of its own, the receiver picks the engine.
        self.protocol = SproutSender(payload_provider=self.provider, flow_id="sprout-live")
        self.ctx = WallClockContext(clock, self._transmit_packet, "live-sender")
        self.buffer = RetransmitBuffer(rto=rto)
        self.ticker = TickFromWallClock(self.protocol.tick_interval)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        self._next_seq = 0
        self.datagrams_sent = 0
        self.injected_drops = 0
        self.malformed_received = 0
        self.feedback_received = 0
        self.completed = False
        self.elapsed = 0.0

    # ------------------------------------------------------------ transmit

    def _transmit_packet(self, packet: Packet) -> None:
        """ctx.send callback: serialise one protocol packet onto the wire."""
        header = parse_data_header(packet)
        if header is None:
            return  # the sender protocol only emits data/heartbeat packets
        now = self.ctx.now()
        frame = DataFrame(
            wire_seq=self._next_seq,
            seq_bytes=header.seq_bytes,
            throwaway_bytes=header.throwaway_bytes,
            time_to_next=header.time_to_next,
            timestamp=now,
            transfer_total=self.provider.total_bytes,
            size=packet.size,
            heartbeat=header.is_heartbeat,
            fin=self.provider.exhausted,
        )
        encoded = encode_data(frame)
        if not self.buffer.has_room():
            # The window protocol should never get here (Sprout's window is
            # far below 1024 packets in flight); drop rather than wedge.
            _LOG.warning("retransmit buffer full; dropping wire seq %d", self._next_seq)
            return
        self.buffer.track(frame.wire_seq, encoded, now)
        self._next_seq = seq_add(self._next_seq)
        self._raw_send(frame.wire_seq, encoded, attempt=0)

    def _raw_send(self, wire_seq: int, encoded: bytes, attempt: int) -> None:
        if self.loss_gate is not None and self.loss_gate(wire_seq, attempt):
            self.injected_drops += 1
            return
        try:
            self.sock.sendto(encoded, self.remote)
        except OSError as error:
            # A full socket buffer behaves like loss; the RTO recovers it.
            _LOG.debug("sendto failed for wire seq %d: %s", wire_seq, error)
            return
        self.datagrams_sent += 1

    # ------------------------------------------------------------ feedback

    def _handle_feedback(self, frame: FeedbackFrame, now: float) -> None:
        self.feedback_received += 1
        # Karn-safe RTT sample: only a seq that is still outstanding and
        # was never retransmitted gives an unambiguous echo.
        if frame.echo_timestamp > 0.0 and self.buffer.rtt_sample_ok(frame.echo_seq):
            rtt = now - frame.echo_timestamp - frame.echo_delay
            self.buffer.rto.sample(rtt)
        self.buffer.on_feedback(frame.ack_seq, frame.sack_bitmap, now)
        packet = make_feedback_packet(
            forecast_bytes=frame.forecast_bytes,
            forecast_time=frame.forecast_time,
            received_or_lost_bytes=frame.received_or_lost_bytes,
            flow_id="sprout-live-feedback",
        )
        self.protocol.on_packet(packet, now)

    def _retransmit_due(self, now: float) -> None:
        for wire_seq, encoded in self.buffer.due(now):
            frame = decode_frame(encoded)
            if not isinstance(frame, DataFrame):  # pragma: no cover - tracked frames are data
                continue
            frame.timestamp = now
            frame.retransmit = True
            refreshed = encode_data(frame)
            self.buffer.retransmitted(wire_seq, refreshed, now)
            self._raw_send(wire_seq, refreshed, attempt=self.buffer.attempts(wire_seq))

    # ----------------------------------------------------------------- run

    def run(self) -> bool:
        """Drive the transfer to completion; True iff everything was acked.

        Blocks until the payload is fully offered and every wire seq acked
        (then sends best-effort CLOSE frames and returns True), or until
        ``deadline`` seconds elapse (returns False with whatever state the
        endpoint reached).
        """
        start = self.clock()
        give_up = start + self.deadline
        self.protocol.start(self.ctx)
        self.ticker.start(start)
        try:
            while True:
                now = self.clock()
                if self.provider.exhausted and len(self.buffer) == 0:
                    self.completed = True
                    self._send_close()
                    break
                if now >= give_up:
                    break
                timeout = self._select_timeout(now)
                readable, _, _ = select.select([self.sock], [], [], timeout)
                now = self.clock()
                if readable:
                    for data, _addr in _drain_datagrams(self.sock):
                        try:
                            frame = decode_frame(data)
                        except WireFormatError:
                            self.malformed_received += 1
                            continue
                        if isinstance(frame, FeedbackFrame):
                            self._handle_feedback(frame, now)
                # In drain mode (payload fully offered) the protocol has
                # nothing left to say: ticking it would only emit fresh
                # heartbeats that push completion further out.
                if not self.provider.exhausted:
                    for _ in range(self.ticker.due_ticks(now)):
                        self.protocol.on_tick(now)
                self._retransmit_due(now)
        finally:
            self.elapsed = self.clock() - start
            self.sock.close()
        return self.completed

    def _select_timeout(self, now: float) -> float:
        deadlines = [now + MAX_SELECT_WAIT]
        tick = self.ticker.next_deadline()
        if tick is not None and not self.provider.exhausted:
            deadlines.append(tick)
        rto = self.buffer.next_deadline(now)
        if rto is not None:
            deadlines.append(rto)
        return max(0.0, min(deadlines) - now)

    def _send_close(self) -> None:
        # Best-effort and exempt from injected loss: CLOSE only shortcuts
        # the receiver's deadline wait, it carries no reliability burden.
        encoded = encode_close(CloseFrame(wire_seq=self._next_seq))
        for _ in range(CLOSE_REPEATS):
            try:
                self.sock.sendto(encoded, self.remote)
            except OSError:
                return

    @property
    def lost_forever(self) -> int:
        """Wire seqs never acknowledged — 0 after a completed transfer."""
        return len(self.buffer)


class ReceiverEndpoint:
    """Live Sprout receiver: reorder window + protocol + feedback frames.

    Binds a loopback UDP socket (ephemeral port by default; read
    :attr:`port` after construction), feeds every *unique* data frame to
    the unmodified :class:`~repro.core.receiver.SproutReceiver`, and wraps
    the protocol's feedback packets with the transport's ack/SACK state and
    RTT echo on their way out.  Per-packet one-way delays come straight
    from the real timestamps: receive time minus the frame's send stamp,
    both on the harness's shared monotonic timebase.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        deadline: float = 30.0,
        ewma: bool = False,
    ) -> None:
        self.clock = clock
        self.deadline = float(deadline)
        forecaster = EWMAForecaster() if ewma else None
        self.protocol = SproutReceiver(forecaster=forecaster, flow_id="sprout-live")
        self.ctx = WallClockContext(clock, self._transmit_feedback, "live-receiver")
        self.window = ReorderWindow(first_seq=0)
        self.ticker = TickFromWallClock(self.protocol.tick_interval)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(bind)
        self.sock.setblocking(False)
        self.port = self.sock.getsockname()[1]
        self._peer: Optional[Tuple] = None
        self._feedback_seq = 0
        self._echo: Optional[Tuple[int, float, float]] = None  # seq, stamp, arrival
        self.delays: List[float] = []
        self.unique_data_bytes = 0
        self.data_frames = 0
        self.heartbeat_frames = 0
        self.malformed_received = 0
        self.feedback_frames_sent = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None
        self.saw_fin = False
        self.closed = False

    # ------------------------------------------------------------ feedback

    def _transmit_feedback(self, packet: Packet) -> None:
        """ctx.send callback: wrap a protocol feedback packet in a frame."""
        feedback = parse_feedback(packet)
        if feedback is None or self._peer is None:
            return
        now = self.ctx.now()
        echo_seq, echo_timestamp, echo_delay = 0, 0.0, 0.0
        if self._echo is not None:
            echo_seq, echo_timestamp, arrival = self._echo
            echo_delay = max(0.0, now - arrival)
        frame = FeedbackFrame(
            wire_seq=self._feedback_seq,
            forecast_bytes=list(feedback.forecast_bytes)[:MAX_FORECAST_TICKS],
            forecast_time=feedback.forecast_time,
            received_or_lost_bytes=feedback.received_or_lost_bytes,
            ack_seq=self.window.ack_seq,
            sack_bitmap=self.window.sack_bitmap(),
            echo_seq=echo_seq,
            echo_timestamp=echo_timestamp,
            echo_delay=echo_delay,
        )
        self._feedback_seq = seq_add(self._feedback_seq)
        try:
            self.sock.sendto(encode_feedback(frame), self._peer)
        except OSError:
            return  # the feedback channel is unreliable by design
        self.feedback_frames_sent += 1

    # ------------------------------------------------------------- receive

    def _handle_data(self, frame: DataFrame, addr: Tuple, now: float) -> None:
        self._peer = addr
        # Echo the newest arrival whatever its novelty; the sender's Karn
        # check discards ambiguous (retransmitted) samples.
        self._echo = (frame.wire_seq, frame.timestamp, now)
        if not self.window.accept(frame.wire_seq):
            return
        self.delays.append(now - frame.timestamp)
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        if frame.heartbeat:
            self.heartbeat_frames += 1
        else:
            self.data_frames += 1
            self.unique_data_bytes += frame.size
        if frame.fin:
            self.saw_fin = True
        packet = make_data_packet(
            size=max(frame.size, CONTROL_PACKET_BYTES),
            seq_bytes=frame.seq_bytes,
            throwaway_bytes=frame.throwaway_bytes,
            time_to_next=frame.time_to_next,
            flow_id="sprout-live",
            is_heartbeat=frame.heartbeat,
        )
        packet.sent_at = frame.timestamp
        packet.delivered_at = now
        self.protocol.on_packet(packet, now)

    # ----------------------------------------------------------------- run

    def run(self) -> bool:
        """Receive until a CLOSE frame or the deadline; True iff closed."""
        start = self.clock()
        give_up = start + self.deadline
        self.protocol.start(self.ctx)
        self.ticker.start(start)
        try:
            while True:
                now = self.clock()
                if self.closed or now >= give_up:
                    break
                timeout = self._select_timeout(now)
                readable, _, _ = select.select([self.sock], [], [], timeout)
                now = self.clock()
                if readable:
                    for data, addr in _drain_datagrams(self.sock):
                        try:
                            frame = decode_frame(data)
                        except WireFormatError:
                            self.malformed_received += 1
                            continue
                        if isinstance(frame, DataFrame):
                            self._handle_data(frame, addr, now)
                        elif isinstance(frame, CloseFrame):
                            self.closed = True
                for _ in range(self.ticker.due_ticks(now)):
                    self.protocol.on_tick(now)
        finally:
            self.sock.close()
        return self.closed

    def _select_timeout(self, now: float) -> float:
        deadlines = [now + MAX_SELECT_WAIT]
        tick = self.ticker.next_deadline()
        if tick is not None:
            deadlines.append(tick)
        return max(0.0, min(deadlines) - now)


def shared_monotonic_clock() -> Callable[[], float]:
    """A zero-based monotonic clock both endpoints of a transfer share."""
    base = time.monotonic()
    return lambda: time.monotonic() - base
