"""Real-socket Sprout transport (the paper's artifact ran over real UDP).

The rest of the repository measures Sprout inside the deterministic
trace-driven emulator.  This package runs the *same* protocol objects —
:class:`~repro.core.sender.SproutSender` and
:class:`~repro.core.receiver.SproutReceiver`, unmodified — over actual UDP
datagrams, opening the emulation-vs-reality scenario axis
(``docs/transport.md``):

* :mod:`repro.transport.wire` — the struct-packed, versioned wire format
  for data/feedback/close frames, including the mod-2\\ :sup:`16` sequence
  arithmetic helpers;
* :mod:`repro.transport.reliable` — socket-free selective-repeat machinery:
  the sender-side retransmit buffer with SACK-driven loss detection, the
  receiver-side reorder/dedup window, and the RFC 6298-style adaptive RTO
  (SRTT/RTTVAR) that paces retransmissions when the feedback channel goes
  quiet;
* :mod:`repro.transport.endpoint` — UDP endpoints: a wall-clock
  :class:`~repro.transport.endpoint.WallClockContext` stands in for the
  simulator's ``HostContext``, and a
  :class:`~repro.core.forecaster.TickFromWallClock` adapter maps real time
  onto the forecaster's 20 ms tick lattice;
* :mod:`repro.transport.impair` — the seed-deterministic adversarial
  impairment pipeline (``--impair``): Gilbert–Elliott bursty loss,
  reordering, duplication, byte corruption, rate throttling, and blackout
  windows composed per direction at the socket boundary, plus the
  :class:`~repro.transport.impair.EventRing` /
  :class:`~repro.transport.impair.PeerQuarantine` lifecycle helpers;
* :mod:`repro.transport.harness` — the live measurement harness behind
  ``repro live``: sized transfers over loopback with configurable repeats,
  deterministic datagram-loss/impairment injection, a watchdog that turns
  hangs into structured :class:`~repro.transport.endpoint.TransferAborted`
  diagnoses, and throughput / per-packet delay percentile reporting in the
  same :class:`~repro.metrics.summary.SchemeResult` shape the sweep/export
  stack consumes.

Everything here is stdlib ``socket``/``select`` plus the repo's own code —
no new dependencies.
"""

from repro.transport.endpoint import (  # noqa: F401
    TransferAborted,
    TransferDiagnosis,
    default_watchdog,
)
from repro.transport.harness import (  # noqa: F401
    LiveConfig,
    LiveTransferResult,
    run_live_suite,
    run_live_transfer,
    sockets_available,
)
from repro.transport.impair import (  # noqa: F401
    EventRing,
    ImpairSpecError,
    ImpairmentPipeline,
    PeerQuarantine,
    build_pipelines,
    parse_impair_spec,
)
from repro.transport.reliable import AdaptiveRTO, ReorderWindow, RetransmitBuffer  # noqa: F401
from repro.transport.wire import (  # noqa: F401
    DataFrame,
    FeedbackFrame,
    WIRE_VERSION,
    WireFormatError,
    decode_frame,
)
