"""Socket-free selective-repeat machinery for the UDP transport.

Sprout itself never retransmits — the paper's protocol tolerates loss and
folds it into ``received_or_lost_bytes``.  The *transport* acceptance bar
is stricter: a sized transfer over a lossy loopback must deliver every
datagram eventually.  Reliability therefore lives one layer below the
protocol, keyed on per-datagram 16-bit wire sequence numbers that
:class:`~repro.core.sender.SproutSender` never sees:

* :class:`AdaptiveRTO` — RFC 6298-idiom retransmission timer (SRTT/RTTVAR,
  ``K = 4``, ``alpha = 1/8``, ``beta = 1/4``) fed by timestamp echoes on
  the feedback channel, with Karn's rule applied by the caller (no samples
  from retransmitted sequence numbers);
* :class:`RetransmitBuffer` — sender side: holds encoded frames until
  acked, declares loss on SACK evidence (dupthresh 3, fast-retransmit
  idiom) or RTO expiry with exponential backoff, reports which frames to
  re-send, and bounds its own memory (datagram count *and* bytes) with a
  backpressure watermark the sender honours by deferring protocol ticks;
* :class:`ReorderWindow` — receiver side: dedups duplicates, tolerates
  reordering, tracks the cumulative ack point plus a 64-bit SACK bitmap
  for the feedback frame, and counts duplicate/reordered datagrams for the
  harness report.

Everything here is pure state-machine code over ``(seq, now)`` inputs so
the Hypothesis suites can drive wraparound and reordering without a socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.transport.wire import (
    SEQ_HALF,
    seq_add,
    seq_distance,
    seq_in_window,
    seq_lt,
)

#: SACK evidence threshold before a hole is declared lost (TCP's dupthresh)
DUPTHRESH = 3

#: span of the feedback frame's SACK bitmap: seqs ``ack+1 .. ack+SACK_SPAN``
SACK_SPAN = 64

#: outstanding-window cap; far below SEQ_HALF so ring comparisons stay valid
MAX_OUTSTANDING = 1024

#: retransmit-buffer byte budget: MAX_OUTSTANDING MTU-ish datagrams would be
#: ~1.4 MB; the cap below that bounds memory even with the count un-hit
MAX_BUFFERED_BYTES = 2 * 1024 * 1024

#: fraction of either bound at which the buffer asks the sender to stop
#: offering new data (backpressure) rather than waiting to drop at the brim
BACKPRESSURE_WATERMARK = 0.75


class AdaptiveRTO:
    """RFC 6298-style retransmission timeout from RTT samples.

    First sample sets ``SRTT = R`` and ``RTTVAR = R/2``; later samples blend
    with ``alpha = 1/8`` / ``beta = 1/4``; the timeout is
    ``SRTT + K * RTTVAR`` clamped to ``[min_rto, max_rto]``.  The loopback
    floor (default 50 ms) is far above real loopback RTT, which keeps
    spurious retransmits rare even when the receiver batches feedback.
    """

    K = 4.0
    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0

    def __init__(
        self,
        initial_rto: float = 0.2,
        min_rto: float = 0.05,
        max_rto: float = 2.0,
    ) -> None:
        if not 0.0 < min_rto <= max_rto:
            raise ValueError(f"invalid RTO bounds: [{min_rto}, {max_rto}]")
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rto = float(min_rto)
        self.max_rto = float(max_rto)
        self._rto = min(max(float(initial_rto), self.min_rto), self.max_rto)
        self.samples = 0

    def sample(self, rtt: float) -> None:
        """Fold one RTT measurement in; non-finite/negative samples ignored."""
        if not rtt >= 0.0:  # also rejects NaN
            return
        if self.srtt is None or self.rttvar is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1.0 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1.0 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.samples += 1
        self._rto = min(max(self.srtt + self.K * self.rttvar, self.min_rto), self.max_rto)

    def timeout(self, backoff: int = 0) -> float:
        """Current RTO, doubled ``backoff`` times (capped at ``max_rto``)."""
        return min(self._rto * (2.0 ** max(0, backoff)), self.max_rto)


@dataclass
class _Outstanding:
    """One unacked datagram held for possible retransmission."""

    encoded: bytes
    sent_at: float
    first_sent_at: float
    retransmits: int = 0
    sack_hits: int = 0  # times a *later* seq was SACKed while this was missing


class RetransmitBuffer:
    """Sender-side selective repeat over encoded datagrams.

    The caller registers every transmitted datagram with :meth:`track`,
    feeds each feedback frame's ``(ack_seq, sack_bitmap)`` to
    :meth:`on_feedback`, and periodically asks :meth:`due` which sequence
    numbers need re-sending (SACK dupthresh evidence or RTO expiry).  The
    buffer stores the encoded bytes so a retransmit needs no protocol
    involvement — the caller re-stamps timestamp/flags before re-sending
    via :meth:`retransmitted`.
    """

    def __init__(
        self,
        rto: Optional[AdaptiveRTO] = None,
        max_outstanding: int = MAX_OUTSTANDING,
        max_bytes: int = MAX_BUFFERED_BYTES,
    ) -> None:
        self.rto = rto if rto is not None else AdaptiveRTO()
        self.max_outstanding = int(max_outstanding)
        self.max_bytes = int(max_bytes)
        self._outstanding: Dict[int, _Outstanding] = {}
        self._bytes_held = 0
        #: cumulative stats for the harness report
        self.total_retransmits = 0
        self.fast_retransmits = 0
        self.timeout_retransmits = 0

    def __len__(self) -> int:
        return len(self._outstanding)

    @property
    def in_flight(self) -> int:
        return len(self._outstanding)

    @property
    def bytes_held(self) -> int:
        """Encoded bytes currently pinned for possible retransmission."""
        return self._bytes_held

    def has_room(self) -> bool:
        return (
            len(self._outstanding) < self.max_outstanding
            and self._bytes_held < self.max_bytes
        )

    @property
    def under_backpressure(self) -> bool:
        """True when the buffer is filling and the sender should stop ticking.

        Trips at ``BACKPRESSURE_WATERMARK`` of either the datagram-count or
        the byte bound, well before :meth:`has_room` starts refusing, so
        the sender defers *offering* new data (no fresh protocol ticks)
        instead of dropping at the brim — bounded memory by construction.
        """
        return (
            len(self._outstanding) >= BACKPRESSURE_WATERMARK * self.max_outstanding
            or self._bytes_held >= BACKPRESSURE_WATERMARK * self.max_bytes
        )

    def track(self, seq: int, encoded: bytes, now: float) -> None:
        """Register a freshly transmitted datagram."""
        if seq in self._outstanding:
            raise ValueError(f"wire seq {seq} already outstanding")
        if not self.has_room():
            raise ValueError("retransmit buffer full; caller must respect has_room()")
        self._outstanding[seq] = _Outstanding(encoded=encoded, sent_at=now, first_sent_at=now)
        self._bytes_held += len(encoded)

    def on_feedback(self, ack_seq: int, sack_bitmap: int, now: float) -> List[int]:
        """Apply one feedback frame's ack state; return the seqs newly acked.

        ``ack_seq`` is cumulative (the next seq the receiver has *not* yet
        seen in order): everything strictly before it is delivered.  Bit
        ``i`` of ``sack_bitmap`` acknowledges ``ack_seq + 1 + i``.  Every
        hole below a SACKed seq collects one dupthresh hit per feedback
        frame that shows the gap.
        """
        acked: List[int] = []
        for seq in list(self._outstanding):
            if seq_lt(seq, ack_seq):
                acked.append(seq)
        sacked: List[int] = []
        for bit in range(SACK_SPAN):
            if sack_bitmap >> bit & 1:
                seq = seq_add(ack_seq, 1 + bit)
                if seq in self._outstanding:
                    acked.append(seq)
                sacked.append(seq)
        for seq in acked:
            entry = self._outstanding.pop(seq, None)
            if entry is not None:
                self._bytes_held -= len(entry.encoded)
        if sacked:
            highest_sacked = sacked[-1]
            for seq, entry in self._outstanding.items():
                if seq_lt(seq, highest_sacked):
                    entry.sack_hits += 1
        return acked

    def rtt_sample_ok(self, seq: int) -> bool:
        """Karn's rule: only never-retransmitted seqs give clean RTT samples."""
        entry = self._outstanding.get(seq)
        return entry is not None and entry.retransmits == 0

    def due(self, now: float) -> List[Tuple[int, bytes]]:
        """Sequence numbers (with stored bytes) that should be re-sent now.

        A datagram is due when it has ``DUPTHRESH`` SACK hits (fast
        retransmit) or its per-packet RTO — backed off exponentially per
        prior retransmit — has expired.  Ordered oldest-first so the
        left edge of the window recovers first.
        """
        due: List[Tuple[int, bytes]] = []
        for seq, entry in self._outstanding.items():
            if entry.sack_hits >= DUPTHRESH:
                due.append((seq, entry.encoded))
            elif now - entry.sent_at >= self.rto.timeout(entry.retransmits):
                due.append((seq, entry.encoded))
        due.sort(key=lambda item: self._outstanding[item[0]].first_sent_at)
        return due

    def retransmitted(self, seq: int, encoded: bytes, now: float) -> None:
        """Record that ``seq`` was just re-sent as ``encoded``."""
        entry = self._outstanding.get(seq)
        if entry is None:
            return
        was_fast = entry.sack_hits >= DUPTHRESH
        self._bytes_held += len(encoded) - len(entry.encoded)
        entry.encoded = encoded
        entry.sent_at = now
        entry.retransmits += 1
        entry.sack_hits = 0
        self.total_retransmits += 1
        if was_fast:
            self.fast_retransmits += 1
        else:
            self.timeout_retransmits += 1

    def attempts(self, seq: int) -> int:
        """Times ``seq`` has been (re)transmitted beyond the original send."""
        entry = self._outstanding.get(seq)
        return entry.retransmits if entry is not None else 0

    def fast_due(self, seq: int) -> bool:
        """True iff ``seq`` is due on SACK evidence (vs. RTO expiry).

        Lets the endpoint classify a retransmission for its event ring
        before :meth:`retransmitted` resets the SACK-hit counter.
        """
        entry = self._outstanding.get(seq)
        return entry is not None and entry.sack_hits >= DUPTHRESH

    def next_deadline(self, now: float) -> Optional[float]:
        """Earliest RTO expiry among outstanding datagrams (for select())."""
        deadlines = [
            entry.sent_at + self.rto.timeout(entry.retransmits)
            for entry in self._outstanding.values()
        ]
        return min(deadlines) if deadlines else None


class ReorderWindow:
    """Receiver-side dedup/reorder tracking over wire sequence numbers.

    Feeds two consumers: the feedback frame (``ack_seq`` + 64-bit SACK
    bitmap) and the harness report (duplicate / reordered counters).  The
    window keeps every out-of-order seq in a set bounded by ``SEQ_HALF``
    ring distance from the ack point, so arbitrary loss patterns cannot
    grow it past the valid comparison horizon.
    """

    def __init__(self, first_seq: int = 0) -> None:
        self._ack = first_seq & 0xFFFF  # next seq expected in order
        self._out_of_order: set = set()
        self._highest: Optional[int] = None
        self.unique_accepted = 0
        self.duplicates = 0
        self.reordered = 0

    @property
    def ack_seq(self) -> int:
        return self._ack

    def accept(self, seq: int) -> bool:
        """Process one arriving seq; True iff it is new (not a duplicate).

        Seqs at or behind the cumulative ack point, or already held out of
        order, count as duplicates.  A new seq that arrives behind the
        highest seq seen so far counts as reordered.
        """
        if not seq_in_window(seq, self._ack, SEQ_HALF):
            # at/behind the ack point (or absurdly far ahead): duplicate
            self.duplicates += 1
            return False
        if seq in self._out_of_order:
            self.duplicates += 1
            return False
        if self._highest is not None and seq_lt(seq, self._highest):
            self.reordered += 1
        if self._highest is None or seq_lt(self._highest, seq):
            self._highest = seq
        self.unique_accepted += 1
        if seq == self._ack:
            self._ack = seq_add(self._ack)
            while self._ack in self._out_of_order:
                self._out_of_order.discard(self._ack)
                self._ack = seq_add(self._ack)
        else:
            self._out_of_order.add(seq)
        return True

    def sack_bitmap(self) -> int:
        """64-bit bitmap over ``ack+1 .. ack+64``; bit i set iff held."""
        bitmap = 0
        for bit in range(SACK_SPAN):
            if seq_add(self._ack, 1 + bit) in self._out_of_order:
                bitmap |= 1 << bit
        return bitmap

    @property
    def missing(self) -> int:
        """Holes between the ack point and the highest seq seen."""
        if self._highest is None or not seq_lt(self._ack, seq_add(self._highest)):
            return 0
        span = seq_distance(self._ack, seq_add(self._highest))
        return span - len(self._out_of_order)

    def all_delivered_through(self, last_seq: int) -> bool:
        """True iff every seq up to and including ``last_seq`` has arrived."""
        return seq_lt(last_seq, self._ack) or self._ack == seq_add(last_seq)
