"""Adversarial-network impairment pipeline for the real-socket transport.

The paper's claim is that Sprout stays responsive *under wildly varying,
bursty cellular links*; a loopback transfer under uniform Bernoulli loss
(PR 9) exercises almost none of that.  This module brings the emulator's
netem-style adversarial discipline to the socket boundary: a composable,
seed-deterministic pipeline of impairment stages applied to every outgoing
datagram of a direction, built from a compact spec string::

    repro live --impair "ge:p=0.05,burst=8;reorder:p=0.02;blackout:at=2s,len=1.5s"

Stages (semicolon-separated, applied in order; each takes ``key=value``
parameters after a colon and an optional ``dir=up|down|both``):

``ge``
    Gilbert–Elliott bursty loss.  ``p`` is the *stationary* loss rate,
    ``burst`` the mean bad-run length in datagrams; the two-state Markov
    chain drops everything while in the bad state.
``loss``
    Uniform Bernoulli loss with probability ``p`` (the netem baseline).
``reorder``
    Seeded hold-back jitter: with probability ``p`` a datagram is held and
    released after ``gap`` later datagrams have passed it (or after
    ``hold`` seconds, whichever comes first).
``dup``
    Duplication with probability ``p``.
``corrupt``
    Byte corruption with probability ``p``: one seeded byte of the copy is
    XOR-flipped.  The wire format's CRC32 (:mod:`repro.transport.wire`)
    turns this into a clean decode error at the far end.
``rate``
    Token-queue throttle to ``bps`` bits per second with a bounded queue
    (``queue`` bytes, default 256 KiB); overflow drops.
``blackout``
    Timed total outage: every datagram submitted in
    ``[at, at + len)`` (relative to :meth:`ImpairmentPipeline.start`) is
    dropped, in both bursts and sustained windows.

Every random decision hashes ``(seed, direction, stage index, stage kind,
datagram index)`` through sha256 — the idiom of
:func:`repro.testing.faults._coin` — so the *fate* of the n-th datagram
through a stage is a pure function of the seed and the spec.  The pipeline
records a bounded fate log and cumulative counters; replaying the recorded
``(size, time)`` submission sequence through a fresh pipeline with the
same seed reproduces both bit-identically (the chaos suite's determinism
gate).

This module also hosts two lifecycle-observability helpers used by the
endpoints: the timestamped :class:`EventRing` (retransmits, RTO backoffs,
stalls, blackouts, corrupt frames — exported through the live
``SchemeResult`` extras for postmortems) and the :class:`PeerQuarantine`
that silences sources which have only ever produced malformed datagrams.
"""

from __future__ import annotations

import hashlib
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DIRECTIONS",
    "STAGE_KINDS",
    "EventRing",
    "ImpairSpecError",
    "ImpairmentPipeline",
    "PeerQuarantine",
    "StageSpec",
    "TransportEvent",
    "build_pipelines",
    "parse_impair_spec",
    "parse_quantity",
]

#: datagram directions a stage can apply to
DIRECTIONS = ("up", "down", "both")

#: maximum fate-log entries kept for determinism checks (the counters are
#: cumulative and never truncate)
FATE_LOG_LIMIT = 65536

#: default bounded length of an event ring
EVENT_RING_LIMIT = 512

#: malformed datagrams from a never-valid source before it is quarantined
QUARANTINE_THRESHOLD = 12


# --------------------------------------------------------------- event ring


@dataclass(frozen=True)
class TransportEvent:
    """One timestamped lifecycle event (ring entry)."""

    t: float
    kind: str
    detail: str = ""


class EventRing:
    """Bounded, timestamped transport event log with unbounded counts.

    The ring itself keeps the most recent :data:`EVENT_RING_LIMIT` events
    for postmortems; per-kind counters and first/last timestamps survive
    wraparound so the ``SchemeResult`` extras stay complete however long
    the transfer ran.
    """

    def __init__(self, limit: int = EVENT_RING_LIMIT) -> None:
        self._events: Deque[TransportEvent] = deque(maxlen=limit)
        self.counts: Counter = Counter()
        self.first_seen: Dict[str, float] = {}
        self.last_seen: Dict[str, float] = {}

    def record(self, t: float, kind: str, detail: str = "") -> None:
        self._events.append(TransportEvent(t=t, kind=kind, detail=detail))
        self.counts[kind] += 1
        self.first_seen.setdefault(kind, t)
        self.last_seen[kind] = t

    def events(self) -> List[TransportEvent]:
        return list(self._events)

    def tail(self, n: int = 8) -> List[TransportEvent]:
        return list(self._events)[-n:]

    def __len__(self) -> int:
        return len(self._events)


# ----------------------------------------------------------- peer quarantine


class PeerQuarantine:
    """Silence sources that have only ever produced malformed datagrams.

    A live socket can receive anything; decoding hostile garbage costs CPU
    and pollutes the counters.  A peer is quarantined once it accumulates
    ``threshold`` malformed datagrams *without a single valid frame* — a
    legitimate peer whose traffic is being corrupted in flight still
    delivers valid frames between corruptions and is never quarantined,
    while a pure-garbage source goes silent after a bounded spend.
    """

    def __init__(self, threshold: int = QUARANTINE_THRESHOLD) -> None:
        self.threshold = int(threshold)
        self._malformed: Counter = Counter()
        self._valid: Counter = Counter()
        self._quarantined: set = set()
        self.drops = 0

    def is_quarantined(self, addr: Tuple) -> bool:
        """Check (and count) an arriving datagram's source before decoding."""
        if addr in self._quarantined:
            self.drops += 1
            return True
        return False

    def note_valid(self, addr: Tuple) -> None:
        self._valid[addr] += 1

    def note_malformed(self, addr: Tuple) -> bool:
        """Record a decode failure; True iff this crossed into quarantine."""
        self._malformed[addr] += 1
        if (
            addr not in self._quarantined
            and self._valid[addr] == 0
            and self._malformed[addr] >= self.threshold
        ):
            self._quarantined.add(addr)
            return True
        return False

    @property
    def quarantined_peers(self) -> int:
        return len(self._quarantined)


# ------------------------------------------------------------- spec parsing


class ImpairSpecError(ValueError):
    """An ``--impair`` spec string that does not parse or validate."""


def parse_quantity(text: str) -> float:
    """Parse a scalar with optional units: ``1.5s``, ``40ms``, ``3mbit``.

    Durations come back in seconds, rates in bits per second, bare numbers
    as-is.  Raises :class:`ImpairSpecError` on anything else.
    """
    token = text.strip().lower()
    scale = 1.0
    for suffix, factor in (
        ("ms", 1e-3),
        ("gbit", 1e9),
        ("mbit", 1e6),
        ("kbit", 1e3),
        ("bps", 1.0),  # must precede the bare-seconds suffix
        ("s", 1.0),
    ):
        if token.endswith(suffix):
            token = token[: -len(suffix)]
            scale = factor
            break
    try:
        value = float(token)
    except ValueError:
        raise ImpairSpecError(f"cannot parse quantity {text!r}")
    return value * scale


@dataclass(frozen=True)
class StageSpec:
    """One parsed stage of an impairment spec."""

    kind: str
    params: Tuple[Tuple[str, float], ...] = ()
    direction: str = "both"

    def param(self, key: str, default: Optional[float] = None) -> Optional[float]:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def applies_to(self, direction: str) -> bool:
        return self.direction == "both" or self.direction == direction


#: stage kind -> (allowed params, required params)
STAGE_KINDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "ge": (("p", "burst"), ()),
    "loss": (("p",), ()),
    "reorder": (("p", "gap", "hold"), ()),
    "dup": (("p",), ()),
    "corrupt": (("p",), ()),
    "rate": (("bps", "queue"), ("bps",)),
    "blackout": (("at", "len"), ("at", "len")),
}

_PROBABILITY_PARAMS = {"p"}


def parse_impair_spec(text: str) -> Tuple[StageSpec, ...]:
    """Parse ``"ge:p=0.05,burst=8;reorder:p=0.02"`` into stage specs.

    Validates stage names, parameter names, probability ranges, and
    positivity so a typo surfaces as one :class:`ImpairSpecError` naming
    the offending token — the CLI turns that into exit 2 with usage.
    """
    stages: List[StageSpec] = []
    for raw_stage in text.split(";"):
        stage_text = raw_stage.strip()
        if not stage_text:
            continue
        kind, _, param_text = stage_text.partition(":")
        kind = kind.strip().lower()
        if kind not in STAGE_KINDS:
            raise ImpairSpecError(
                f"unknown impairment stage {kind!r} "
                f"(known: {', '.join(sorted(STAGE_KINDS))})"
            )
        allowed, required = STAGE_KINDS[kind]
        params: List[Tuple[str, float]] = []
        direction = "both"
        for raw_param in param_text.split(","):
            param = raw_param.strip()
            if not param:
                continue
            key, sep, value_text = param.partition("=")
            key = key.strip().lower()
            if not sep:
                raise ImpairSpecError(
                    f"stage {kind!r}: parameter {param!r} is not key=value"
                )
            if key == "dir":
                direction = value_text.strip().lower()
                if direction not in DIRECTIONS:
                    raise ImpairSpecError(
                        f"stage {kind!r}: dir must be one of {'/'.join(DIRECTIONS)}, "
                        f"got {value_text.strip()!r}"
                    )
                continue
            if key not in allowed:
                raise ImpairSpecError(
                    f"stage {kind!r}: unknown parameter {key!r} "
                    f"(allowed: {', '.join(allowed)} and dir)"
                )
            value = parse_quantity(value_text)
            if key in _PROBABILITY_PARAMS and not 0.0 <= value < 1.0:
                raise ImpairSpecError(
                    f"stage {kind!r}: {key} must be in [0, 1), got {value}"
                )
            if key not in _PROBABILITY_PARAMS and value <= 0.0:
                raise ImpairSpecError(
                    f"stage {kind!r}: {key} must be positive, got {value}"
                )
            params.append((key, value))
        present = {name for name, _ in params}
        missing = [key for key in required if key not in present]
        if missing:
            raise ImpairSpecError(
                f"stage {kind!r}: missing required parameter(s) {', '.join(missing)}"
            )
        if kind == "ge" and StageSpec(kind, tuple(params)).param("burst", 4.0) < 1.0:
            raise ImpairSpecError("stage 'ge': burst must be >= 1 datagram")
        stages.append(StageSpec(kind=kind, params=tuple(params), direction=direction))
    return tuple(stages)


# ------------------------------------------------------------------- stages


def _coin(tag: str, index: int, salt: str = "") -> float:
    """Uniform [0, 1) draw, pure in ``(tag, index, salt)`` (faults idiom)."""
    digest = hashlib.sha256(f"{tag}|{index}|{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class _Held:
    """A datagram a stage is holding back (reorder jitter / rate queue)."""

    datagram: bytes
    release_at: float
    gap_remaining: int = 0


class _Stage:
    """Base impairment stage: a deterministic datagram-fate function.

    ``process`` handles one datagram at submission time and returns the
    datagrams to pass downstream *now*; anything held back surfaces later
    through ``pump``.  Fate decisions key on the stage's own submission
    counter, never on wall-clock time, so they replay bit-identically.
    """

    kind = "stage"

    def __init__(self, pipeline: "ImpairmentPipeline", tag: str) -> None:
        self.pipeline = pipeline
        self.tag = tag
        self.index = 0

    def start(self, now: float) -> None:
        pass

    def coin(self, salt: str = "") -> float:
        return _coin(self.tag, self.index, salt)

    def note(self, action: str) -> None:
        self.pipeline.note(self.index, f"{action}:{self.kind}")

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        raise NotImplementedError

    def pump(self, now: float) -> List[bytes]:
        return []

    def next_deadline(self) -> Optional[float]:
        return None

    @property
    def pending(self) -> int:
        return 0


class _BernoulliLossStage(_Stage):
    kind = "loss"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.p = spec.param("p", 0.1)

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        if self.coin() < self.p:
            self.note("drop")
            return []
        return [datagram]


class _GilbertElliottStage(_Stage):
    """Two-state bursty loss: drop everything while in the bad state.

    ``p`` is the stationary loss rate and ``burst`` the mean bad-run
    length, so the transition probabilities are ``p_bg = 1/burst`` and
    ``p_gb = p / (burst * (1 - p))`` — the classic netem ``gemodel``
    parametrisation with ``h = 0`` (no delivery inside a burst).
    """

    kind = "ge"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.p = spec.param("p", 0.1)
        self.burst = max(1.0, spec.param("burst", 4.0))
        self.p_bg = 1.0 / self.burst
        self.p_gb = self.p * self.p_bg / (1.0 - self.p) if self.p > 0.0 else 0.0
        self.bad = False

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        flip = self.coin("state")
        if self.bad:
            if flip < self.p_bg:
                self.bad = False
        elif flip < self.p_gb:
            self.bad = True
            self.pipeline.event(now, "loss_burst", f"{self.tag} entered bad state")
        if self.bad:
            self.note("drop")
            return []
        return [datagram]


class _ReorderStage(_Stage):
    """Seeded hold-back jitter: a held datagram re-enters the stream later.

    With probability ``p`` a datagram is parked and released only after
    ``gap`` subsequent datagrams have passed it (or ``hold`` seconds as a
    wall-clock backstop so a traffic lull cannot strand it forever).
    """

    kind = "reorder"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.p = spec.param("p", 0.05)
        self.gap = int(spec.param("gap", 3.0))
        self.hold = spec.param("hold", 0.08)
        self._held: List[_Held] = []

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        for held in self._held:
            held.gap_remaining -= 1
        if self.coin() < self.p:
            self.note("hold")
            self._held.append(
                _Held(datagram=datagram, release_at=now + self.hold, gap_remaining=self.gap)
            )
            return []
        return [datagram]

    def pump(self, now: float) -> List[bytes]:
        released: List[bytes] = []
        remaining: List[_Held] = []
        for held in self._held:
            if held.gap_remaining <= 0 or held.release_at <= now:
                released.append(held.datagram)
            else:
                remaining.append(held)
        self._held = remaining
        return released

    def next_deadline(self) -> Optional[float]:
        return min((held.release_at for held in self._held), default=None)

    @property
    def pending(self) -> int:
        return len(self._held)


class _DuplicateStage(_Stage):
    kind = "dup"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.p = spec.param("p", 0.05)

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        if self.coin() < self.p:
            self.note("dup")
            return [datagram, datagram]
        return [datagram]


class _CorruptStage(_Stage):
    """Flip one seeded byte of the datagram copy (never a no-op XOR)."""

    kind = "corrupt"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.p = spec.param("p", 0.05)

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        if self.coin() < self.p and datagram:
            self.note("corrupt")
            self.pipeline.event(now, "corrupt_injected", f"datagram {self.index}")
            mutated = bytearray(datagram)
            position = int(self.coin("pos") * len(mutated)) % len(mutated)
            mutated[position] ^= 1 + int(self.coin("bits") * 254)
            return [bytes(mutated)]
        return [datagram]


class _RateStage(_Stage):
    """Leaky-bucket throttle with a bounded byte queue (overflow drops)."""

    kind = "rate"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.bps = spec.param("bps")
        self.queue_limit = int(spec.param("queue", 256.0 * 1024))
        self._next_free = 0.0
        self._queue: Deque[_Held] = deque()
        self._queued_bytes = 0

    def start(self, now: float) -> None:
        self._next_free = now

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        # Drain everything already due *first*, so the fate decision below
        # depends only on the submission (size, time) sequence — never on
        # when the endpoint last happened to call pump().  That keeps the
        # recorded fates bit-identically replayable.
        released = self.pump(now)
        cost = 8.0 * len(datagram) / self.bps
        release_at = max(now, self._next_free)
        if release_at <= now and not self._queue:
            self._next_free = now + cost
            released.append(datagram)
            return released
        if self._queued_bytes + len(datagram) > self.queue_limit:
            self.note("drop")
            return released
        self.note("hold")
        self._next_free = release_at + cost
        self._queue.append(_Held(datagram=datagram, release_at=release_at))
        self._queued_bytes += len(datagram)
        return released

    def pump(self, now: float) -> List[bytes]:
        released: List[bytes] = []
        while self._queue and self._queue[0].release_at <= now:
            held = self._queue.popleft()
            self._queued_bytes -= len(held.datagram)
            released.append(held.datagram)
        return released

    def next_deadline(self) -> Optional[float]:
        return self._queue[0].release_at if self._queue else None

    @property
    def pending(self) -> int:
        return len(self._queue)


class _BlackoutStage(_Stage):
    """Timed total outage relative to the pipeline's start anchor."""

    kind = "blackout"

    def __init__(self, pipeline, tag, spec: StageSpec) -> None:
        super().__init__(pipeline, tag)
        self.at = spec.param("at")
        self.length = spec.param("len")
        self._t0: Optional[float] = None
        self._announced = False
        self._ended = False

    def start(self, now: float) -> None:
        self._t0 = now

    def process(self, datagram: bytes, now: float) -> List[bytes]:
        self.index += 1
        if self._t0 is None:
            self._t0 = now
        offset = now - self._t0
        if self.at <= offset < self.at + self.length:
            if not self._announced:
                self._announced = True
                self.pipeline.event(now, "blackout_enter", f"until t+{self.at + self.length:g}s")
            self.note("drop")
            return []
        if self._announced and not self._ended and offset >= self.at + self.length:
            self._ended = True
            self.pipeline.event(now, "blackout_exit", "")
        return [datagram]


_STAGE_CLASSES = {
    "ge": _GilbertElliottStage,
    "loss": _BernoulliLossStage,
    "reorder": _ReorderStage,
    "dup": _DuplicateStage,
    "corrupt": _CorruptStage,
    "rate": _RateStage,
    "blackout": _BlackoutStage,
}


# ----------------------------------------------------------------- pipeline


class ImpairmentPipeline:
    """An ordered chain of impairment stages over one datagram direction.

    The endpoint calls :meth:`submit` for each datagram it would have
    handed to ``sendto`` and transmits whatever comes back, then calls
    :meth:`pump` every loop iteration (and folds :meth:`next_deadline`
    into its ``select`` timeout) so held-back datagrams re-enter the wire
    on time.  All fate decisions are pure functions of ``(seed, direction,
    stage index, datagram index)``; :attr:`fates` and :attr:`counters`
    therefore replay bit-identically for a fixed submission sequence —
    :meth:`replay_determinism_check` is the chaos suite's standing gate.
    """

    def __init__(
        self,
        stages: Sequence[StageSpec],
        direction: str,
        seed: int = 0,
        ring: Optional[EventRing] = None,
    ) -> None:
        if direction not in ("up", "down"):
            raise ValueError(f"pipeline direction must be up or down, got {direction!r}")
        self.direction = direction
        self.seed = int(seed)
        self.ring = ring
        self.spec = tuple(spec for spec in stages if spec.applies_to(direction))
        self._stages: List[_Stage] = []
        for position, spec in enumerate(self.spec):
            tag = f"{self.seed}|{direction}|{position}|{spec.kind}"
            self._stages.append(_STAGE_CLASSES[spec.kind](self, tag, spec))
        self.submitted = 0
        self.delivered = 0
        self.counters: Counter = Counter()
        self.fates: List[str] = []
        #: (size, now) of every submission, for determinism replays
        self.submission_log: Deque[Tuple[int, float]] = deque(maxlen=FATE_LOG_LIMIT)
        self._started = False
        #: the start() anchor, recorded so replays reproduce time-relative
        #: stages (blackout windows, rate buckets) exactly
        self.started_at: Optional[float] = None

    def __bool__(self) -> bool:
        return bool(self._stages)

    # ------------------------------------------------------------- plumbing

    def note(self, index: int, action: str) -> None:
        self.counters[action] += 1
        if len(self.fates) < FATE_LOG_LIMIT:
            self.fates.append(f"{index}:{action}")

    def event(self, now: float, kind: str, detail: str) -> None:
        if self.ring is not None:
            self.ring.record(now, kind, detail)

    # ------------------------------------------------------------ data path

    def start(self, now: float) -> None:
        """Anchor time-relative stages (blackout windows, rate buckets)."""
        self._started = True
        self.started_at = now
        for stage in self._stages:
            stage.start(now)

    def submit(self, datagram: bytes, now: float) -> List[bytes]:
        """Run one datagram through the chain; returns what to send *now*."""
        if not self._started:
            self.start(now)
        self.submitted += 1
        self.submission_log.append((len(datagram), now))
        items = self._cascade([datagram], 0, now)
        self.delivered += len(items)
        return items

    def pump(self, now: float) -> List[bytes]:
        """Release every held datagram that has come due, chain-correctly."""
        released: List[bytes] = []
        for position, stage in enumerate(self._stages):
            for datagram in stage.pump(now):
                released.extend(self._cascade([datagram], position + 1, now))
        self.delivered += len(released)
        return released

    def _cascade(self, items: List[bytes], from_stage: int, now: float) -> List[bytes]:
        for stage in self._stages[from_stage:]:
            next_items: List[bytes] = []
            for item in items:
                next_items.extend(stage.process(item, now))
            next_items.extend(stage.pump(now))
            items = next_items
            if not items:
                # nothing in flight at this link of the chain; later stages
                # still pump on the endpoint's next loop iteration
                break
        return items

    def next_deadline(self) -> Optional[float]:
        """Earliest wall-clock moment a held datagram becomes releasable."""
        deadlines = [d for d in (s.next_deadline() for s in self._stages) if d is not None]
        return min(deadlines) if deadlines else None

    @property
    def pending(self) -> int:
        """Datagrams currently held back inside any stage."""
        return sum(stage.pending for stage in self._stages)

    # ---------------------------------------------------------- determinism

    def counters_snapshot(self) -> Dict[str, int]:
        snapshot = dict(self.counters)
        snapshot["submitted"] = self.submitted
        snapshot["delivered"] = self.delivered
        return snapshot

    def replay_determinism_check(self) -> bool:
        """Re-run the recorded submissions through a fresh twin pipeline.

        Returns True iff the twin reproduces this pipeline's fate log and
        counters bit-identically — the enforceable core of "identical
        seeds reproduce identical transport counters" for live runs whose
        wall-clock submission *times* can never repeat exactly.
        """
        twin = ImpairmentPipeline(self.spec, self.direction, seed=self.seed)
        log = list(self.submission_log)
        if self.started_at is not None:
            twin.start(self.started_at)
        elif log:
            twin.start(log[0][1])
        for size, now in log:
            twin.submit(b"\x00" * size, now)
        final = log[-1][1] if log else 0.0
        twin.pump(final + 3600.0)
        return twin.fates == self.fates and dict(twin.counters) == dict(self.counters)


def build_pipelines(
    spec_text: str,
    seed: int = 0,
    up_ring: Optional[EventRing] = None,
    down_ring: Optional[EventRing] = None,
) -> Tuple[Optional[ImpairmentPipeline], Optional[ImpairmentPipeline]]:
    """Parse a spec and build the (up, down) pipelines it asks for.

    Either side comes back ``None`` when no stage applies to it, so the
    endpoints skip the per-datagram pipeline hop entirely on a clean
    direction.
    """
    stages = parse_impair_spec(spec_text)
    up = ImpairmentPipeline(stages, "up", seed=seed, ring=up_ring)
    down = ImpairmentPipeline(stages, "down", seed=seed, ring=down_ring)
    return (up if up else None, down if down else None)
