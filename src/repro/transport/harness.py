"""Loopback live-measurement harness behind ``repro live``.

Shape follows the speed-test idiom (SNIPPETS.md Snippet 1): a sized
transfer, repeated a configurable number of times, reporting throughput and
per-packet delay percentiles.  Each repeat runs a
:class:`~repro.transport.endpoint.ReceiverEndpoint` in a thread and a
:class:`~repro.transport.endpoint.SenderEndpoint` in the caller's thread,
both over 127.0.0.1 on a shared monotonic timebase, optionally under the
deterministic datagram-loss gate.

Results flow into the existing analysis stack unmodified: every repeat
becomes a :class:`~repro.metrics.summary.SchemeResult` (scheme
``"Sprout (live)"``, link ``"loopback"``, transport counters in ``extra``)
and :func:`run_live_suite` wraps the repeats in a
:class:`~repro.experiments.sweeps.GridData` over the inert ``repeat`` axis,
so ``repro live --export`` writes the same schema-v4 CSV/JSON any sweep
does and the exports parse back through ``parse_csv`` / ``parse_json``.

Loopback caveats (docs/transport.md): no propagation delay, no bottleneck
queue, throughput bounded by the forecaster's rate model rather than any
physical link — the numbers characterise the *transport implementation*,
not a network.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.sweeps import GridData, GridPoint, GridSpec
from repro.metrics.delay import delay_percentiles, longest_arrival_gap
from repro.metrics.summary import SchemeResult
from repro.transport.endpoint import (
    ReceiverEndpoint,
    SenderEndpoint,
    TransferAborted,
    TransferDiagnosis,
    bernoulli_loss_gate,
    default_watchdog,
    shared_monotonic_clock,
)
from repro.transport.impair import EventRing, TransportEvent, build_pipelines, parse_impair_spec

#: identity under which live results enter the analysis stack
LIVE_SCHEME = "Sprout (live)"
LIVE_LINK = "loopback"


def sockets_available() -> bool:
    """Whether loopback UDP sockets can be created and bound here.

    Sandboxed CI runners sometimes forbid even 127.0.0.1 sockets; every
    live test and the ``repro live`` command gate on this instead of
    failing with an obscure ``OSError`` mid-transfer.
    """
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    except OSError:
        return False
    try:
        probe.bind(("127.0.0.1", 0))
        probe.getsockname()
    except OSError:
        return False
    finally:
        probe.close()
    return True


@dataclass(frozen=True)
class LiveConfig:
    """One live measurement: transfer size, repeats, loss/impairment injection.

    ``impair`` is an :func:`~repro.transport.impair.parse_impair_spec`
    string applied at the socket boundary in both directions (empty means
    clean); ``impair_seed`` keys its deterministic fate draws (offset per
    repeat).  ``watchdog`` is the peer-inactivity abort interval in
    seconds — ``None`` picks :func:`default_watchdog` from the deadline,
    ``0`` disables the watchdog entirely (legacy wait-out-the-deadline
    behaviour).
    """

    transfer_bytes: int = 256 * 1024
    repeats: int = 3
    loss_rate: float = 0.0
    loss_seed: int = 0
    deadline: float = 30.0
    ewma: bool = False
    impair: str = ""
    impair_seed: int = 0
    watchdog: Optional[float] = None

    def __post_init__(self) -> None:
        if self.transfer_bytes <= 0:
            raise ValueError(f"transfer_bytes must be positive, got {self.transfer_bytes}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be at least 1, got {self.repeats}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.watchdog is not None and self.watchdog < 0:
            raise ValueError(f"watchdog must be >= 0, got {self.watchdog}")
        # Surfaces a typo'd spec as ValueError at config time (CLI exit 2)
        # instead of mid-transfer; ImpairSpecError subclasses ValueError.
        parse_impair_spec(self.impair)

    def resolved_watchdog(self) -> Optional[float]:
        """The watchdog interval the endpoints actually run with."""
        if self.watchdog is None:
            return default_watchdog(self.deadline)
        return self.watchdog if self.watchdog > 0 else None


@dataclass
class LiveTransferResult:
    """Everything one repeat measured, transport counters included."""

    repeat: int
    transfer_bytes: int
    completed: bool
    closed: bool
    duration_s: float
    payload_bytes: int
    throughput_bps: float
    delay_percentiles_s: Dict[str, float] = field(default_factory=dict)
    min_delay_s: float = float("nan")
    datagrams_sent: int = 0
    total_retransmits: int = 0
    fast_retransmits: int = 0
    timeout_retransmits: int = 0
    injected_drops: int = 0
    duplicates: int = 0
    reordered: int = 0
    lost_forever: int = 0
    malformed: int = 0
    srtt_s: Optional[float] = None
    ticks_skipped: int = 0
    decode_errors: int = 0
    close_acked: bool = False
    close_retransmits: int = 0
    quarantine_drops: int = 0
    longest_stall_s: float = 0.0
    failure: str = ""
    diagnosis: Optional[TransferDiagnosis] = None
    event_counts: Dict[str, int] = field(default_factory=dict)
    events: List[TransportEvent] = field(default_factory=list)
    impair_counters: Dict[str, int] = field(default_factory=dict)
    impair_replay_ok: Optional[bool] = None

    def to_scheme_result(self) -> SchemeResult:
        """This repeat as a sweep-stack row (``extra`` holds the counters).

        ``delay_95_s`` is the 95th percentile of the real per-packet
        one-way delays; loopback has no queue to be omniscient about, so
        the minimum observed delay stands in for the omniscient baseline
        and the self-inflicted delay is the tail's excess over it.
        """
        p95 = self.delay_percentiles_s.get("p95", float("nan"))
        floor = self.min_delay_s
        if p95 == p95 and floor == floor:
            self_inflicted = max(0.0, p95 - floor)
        else:
            self_inflicted = float("nan")
        extra: Dict[str, float] = {
            "live_repeat": float(self.repeat),
            "live_completed": float(self.completed),
            "live_transfer_bytes": float(self.transfer_bytes),
            "live_payload_bytes": float(self.payload_bytes),
            "live_duration_s": float(self.duration_s),
            "live_datagrams_sent": float(self.datagrams_sent),
            "live_retransmits": float(self.total_retransmits),
            "live_fast_retransmits": float(self.fast_retransmits),
            "live_timeout_retransmits": float(self.timeout_retransmits),
            "live_injected_drops": float(self.injected_drops),
            "live_duplicates": float(self.duplicates),
            "live_reordered": float(self.reordered),
            "live_lost_forever": float(self.lost_forever),
            "live_malformed": float(self.malformed),
            "live_ticks_skipped": float(self.ticks_skipped),
            "live_decode_errors": float(self.decode_errors),
            "live_close_acked": float(self.close_acked),
            "live_close_retransmits": float(self.close_retransmits),
            "live_quarantine_drops": float(self.quarantine_drops),
            "live_longest_stall_s": float(self.longest_stall_s),
            "live_failed": float(bool(self.failure)),
        }
        for key, value in self.delay_percentiles_s.items():
            extra[f"live_delay_{key}_s"] = float(value)
        if self.srtt_s is not None:
            extra["live_srtt_s"] = float(self.srtt_s)
        # Event-ring postmortem surface: per-kind counts survive ring
        # wraparound, so the extras stay complete however long the run.
        for kind, count in sorted(self.event_counts.items()):
            extra[f"live_ev_{kind}"] = float(count)
        for action, count in sorted(self.impair_counters.items()):
            extra[f"live_impair_{action.replace(':', '_')}"] = float(count)
        if self.impair_replay_ok is not None:
            extra["live_impair_replay_ok"] = float(self.impair_replay_ok)
        return SchemeResult(
            scheme=LIVE_SCHEME,
            link=LIVE_LINK,
            throughput_bps=self.throughput_bps,
            delay_95_s=p95,
            self_inflicted_delay_s=self_inflicted,
            utilization=0.0,
            capacity_bps=0.0,
            omniscient_delay_95_s=floor,
            extra=extra,
        )


def run_live_transfer(config: LiveConfig, repeat: int = 1) -> LiveTransferResult:
    """Run one sized loopback transfer and measure it.

    The receiver binds an ephemeral loopback port and runs in a daemon
    thread; the sender drives the transfer in the calling thread.  The
    loss gate (when ``loss_rate > 0``) and the impairment pipelines (when
    ``impair`` is set) are seeded per repeat so repeats see different —
    but individually reproducible — adversarial patterns.

    Failure handling is structured, never a hang: a receiver-thread crash
    lands in an exception slot the sender's ``abort_check`` polls every
    loop, so the sender aborts within one select interval instead of
    waiting out its deadline; a watchdog abort is caught here and reported
    through ``failure``/``diagnosis`` on the result.
    """
    clock = shared_monotonic_clock()
    watchdog = config.resolved_watchdog()
    sender_ring = EventRing()
    receiver_ring = EventRing()
    up = down = None
    if config.impair:
        up, down = build_pipelines(
            config.impair,
            seed=config.impair_seed + repeat,
            up_ring=sender_ring,
            down_ring=receiver_ring,
        )
    stop = threading.Event()
    crash: Dict[str, BaseException] = {}
    receiver = ReceiverEndpoint(
        clock,
        deadline=config.deadline,
        ewma=config.ewma,
        impairment=down,
        stop_check=stop.is_set,
        ring=receiver_ring,
    )

    def _receiver_main() -> None:
        try:
            receiver.run()
        except BaseException as error:  # propagated via the sender's abort_check
            crash["error"] = error

    thread = threading.Thread(
        target=_receiver_main, name=f"sprout-live-receiver-{repeat}", daemon=True
    )
    thread.start()
    gate = None
    if config.loss_rate > 0.0:
        gate = bernoulli_loss_gate(config.loss_rate, seed=config.loss_seed + repeat)
    sender = SenderEndpoint(
        ("127.0.0.1", receiver.port),
        config.transfer_bytes,
        clock,
        loss_gate=gate,
        deadline=config.deadline,
        ewma=config.ewma,
        impairment=up,
        watchdog=watchdog,
        abort_check=lambda: crash.get("error"),
        ring=sender_ring,
    )
    failure = ""
    diagnosis: Optional[TransferDiagnosis] = None
    try:
        completed = sender.run()
    except TransferAborted as aborted:
        completed = False
        failure = aborted.diagnosis.reason
        diagnosis = aborted.diagnosis
    finally:
        stop.set()
    thread.join(5.0)
    if not failure and "error" in crash:
        failure = "receiver-failure"

    replay_ok: Optional[bool] = None
    impair_counters: Dict[str, int] = {}
    for direction, pipe in (("up", up), ("down", down)):
        if pipe is None:
            continue
        ok = pipe.replay_determinism_check()
        replay_ok = ok if replay_ok is None else (replay_ok and ok)
        for action, count in pipe.counters_snapshot().items():
            impair_counters[f"{direction}_{action}"] = count

    merged_events = sorted(
        sender_ring.events() + receiver_ring.events(), key=lambda event: event.t
    )
    event_counts: Dict[str, int] = dict(sender_ring.counts + receiver_ring.counts)

    duration = max(sender.elapsed, 1e-9)
    delays = list(receiver.delays)
    return LiveTransferResult(
        repeat=repeat,
        transfer_bytes=config.transfer_bytes,
        completed=completed,
        closed=receiver.closed,
        duration_s=duration,
        payload_bytes=receiver.unique_data_bytes,
        throughput_bps=8.0 * receiver.unique_data_bytes / duration,
        delay_percentiles_s=delay_percentiles(delays),
        min_delay_s=min(delays) if delays else float("nan"),
        datagrams_sent=sender.datagrams_sent,
        total_retransmits=sender.buffer.total_retransmits,
        fast_retransmits=sender.buffer.fast_retransmits,
        timeout_retransmits=sender.buffer.timeout_retransmits,
        injected_drops=sender.injected_drops,
        duplicates=receiver.window.duplicates,
        reordered=receiver.window.reordered,
        lost_forever=sender.lost_forever,
        malformed=sender.malformed_received + receiver.malformed_received,
        srtt_s=sender.buffer.rto.srtt,
        ticks_skipped=sender.ticker.ticks_skipped + receiver.ticker.ticks_skipped,
        decode_errors=sender.decode_errors + receiver.decode_errors,
        close_acked=sender.close_acked,
        close_retransmits=sender.close_retransmits,
        quarantine_drops=sender.quarantine.drops + receiver.quarantine.drops,
        longest_stall_s=longest_arrival_gap(receiver.arrival_times),
        failure=failure,
        diagnosis=diagnosis,
        event_counts=event_counts,
        events=merged_events,
        impair_counters=impair_counters,
        impair_replay_ok=replay_ok,
    )


def live_grid_data(results: List[LiveTransferResult]) -> GridData:
    """Package live repeats as a one-axis grid over the ``repeat`` axis.

    The resulting :class:`GridData` is indistinguishable in shape from a
    simulated sweep's, so ``render_grid``, ``export_csv``/``export_json``
    and the schema-v4 parsers all apply as-is.
    """
    if not results:
        raise ValueError("no live transfer results to package")
    spec = GridSpec(
        parameters=("repeat",),
        values=(tuple(float(result.repeat) for result in results),),
        schemes=(LIVE_SCHEME,),
        links=(LIVE_LINK,),
    )
    points = [
        GridPoint(
            parameters=("repeat",),
            coordinates=(float(result.repeat),),
            results=[result.to_scheme_result()],
        )
        for result in results
    ]
    return GridData(spec=spec, points=points)


def render_live_results(results: List[LiveTransferResult]) -> str:
    """Per-repeat transport summary for the ``repro live`` output."""
    if not results:
        return "no live transfers ran"
    first = results[0]
    lines = [
        f"Live loopback — {first.transfer_bytes} bytes × {len(results)} repeat(s), "
        "Sprout over real UDP (docs/transport.md)",
        "",
        f"  {'repeat':>6s} {'tput (kbps)':>12s} {'p50 (ms)':>9s} {'p95 (ms)':>9s} "
        f"{'p99 (ms)':>9s} {'sent':>6s} {'rtx':>5s} {'drops':>6s} "
        f"{'lost':>5s} {'skip':>5s} {'dec':>5s} {'done':>6s}",
    ]
    for result in results:
        p = result.delay_percentiles_s
        if result.failure:
            done = "ABORT"
        elif result.completed:
            done = "yes"
        else:
            done = "NO"
        lines.append(
            f"  {result.repeat:6d} {result.throughput_bps / 1000:12.0f} "
            f"{1000 * p.get('p50', float('nan')):9.2f} "
            f"{1000 * p.get('p95', float('nan')):9.2f} "
            f"{1000 * p.get('p99', float('nan')):9.2f} "
            f"{result.datagrams_sent:6d} {result.total_retransmits:5d} "
            f"{result.injected_drops:6d} {result.lost_forever:5d} "
            f"{result.ticks_skipped:5d} {result.decode_errors:5d} "
            f"{done:>6s}"
        )
    for result in results:
        if not result.failure:
            continue
        lines.append("")
        lines.append(f"  repeat {result.repeat} failed: {result.failure}")
        if result.diagnosis is not None:
            lines.append(f"    {result.diagnosis.describe()}")
        for event in result.events[-8:]:
            detail = f" {event.detail}" if event.detail else ""
            lines.append(f"    [{event.t:8.3f}s] {event.kind}{detail}")
    lines.append("")
    return "\n".join(lines)


def run_live_suite(config: LiveConfig) -> Tuple[GridData, List[LiveTransferResult]]:
    """Run every repeat and return (sweep-shaped grid, raw transfer results)."""
    results = [
        run_live_transfer(config, repeat=index)
        for index in range(1, config.repeats + 1)
    ]
    return live_grid_data(results), results
