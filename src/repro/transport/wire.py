"""Sprout-over-UDP wire format: struct-packed, versioned frames.

Inside the emulator, Sprout control fields travel in a packet's ``headers``
dict (:mod:`repro.core.packets`).  On a real socket they must be bytes;
this module is the codec.  Four frame types share a fixed 10-byte preamble
``(magic, version, type, wire_seq, crc32)`` so a receiver can reject
foreign, stale-format, or *corrupted* datagrams before trusting a single
field — the CRC32 (computed over the whole frame with the checksum field
zeroed) exists because the adversarial impairment pipeline
(:mod:`repro.transport.impair`) flips bytes in flight, and a flipped byte
in a float field would otherwise feed silent garbage (negative delays,
absurd forecasts) straight into the protocol:

* **data** (sender → receiver): the transport-level 16-bit wire sequence
  number (one per datagram, mod 2\\ :sup:`16` — wraparound arithmetic in
  :func:`seq_lt` and friends), the Sprout control fields (cumulative byte
  sequence, throwaway number, time-to-next, heartbeat flag), a send
  timestamp for delay measurement and RTT echo, the total size of the
  sized transfer, and padding up to the advertised payload length so the
  datagram really occupies its nominal bytes on the wire;
* **feedback** (receiver → sender): the Sprout forecast (cumulative bytes
  per tick) and received-or-lost counter, plus the selective-repeat state —
  cumulative ack (next wire seq not yet received in order) and a 64-bit
  SACK bitmap for seqs ``ack+1 .. ack+64`` — and the RTT echo (echoed wire
  seq, its send timestamp, and the receiver's hold time);
* **close** (sender → receiver): ends a transfer; the sender retransmits
  it with backoff until the receiver's **close-ack** (receiver → sender,
  preamble-only) confirms the handshake, so a lossy or blacked-out tail
  cannot leave the receiver waiting out its idle timeout.

Integers are network byte order; timestamps and the Sprout fields that are
floats in the simulator are IEEE-754 doubles, so a frame round-trips every
value bit-exactly (``tests/test_transport_wire.py``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Union

#: first bytes of every frame; rejects non-Sprout datagrams cheaply
MAGIC = b"Sw"
#: bump on any incompatible layout change; decoders reject other versions
#: (v2 added the preamble CRC32 and the CLOSE-ACK frame type)
WIRE_VERSION = 2

TYPE_DATA = 1
TYPE_FEEDBACK = 2
TYPE_CLOSE = 3
TYPE_CLOSE_ACK = 4

#: data-frame flag bits
FLAG_HEARTBEAT = 0x01
FLAG_RETRANSMIT = 0x02
FLAG_FIN = 0x04

# ------------------------------------------------------- mod-2^16 arithmetic

SEQ_MOD = 1 << 16
SEQ_MASK = SEQ_MOD - 1
#: half the sequence space; the comparison horizon for wraparound ordering
SEQ_HALF = SEQ_MOD // 2


def seq_add(seq: int, increment: int = 1) -> int:
    """``seq + increment`` on the mod-2^16 ring."""
    return (seq + increment) & SEQ_MASK


def seq_distance(start: int, end: int) -> int:
    """Unsigned hops from ``start`` forward to ``end`` on the ring."""
    return (end - start) & SEQ_MASK


def seq_lt(a: int, b: int) -> bool:
    """Wraparound-correct ``a < b``: b is ahead of a by less than half the ring.

    The relation is only meaningful while outstanding sequence numbers span
    less than half the ring (the selective-repeat window guarantees that);
    exactly half apart is treated as *not* less-than, matching the serial
    number arithmetic convention (RFC 1982).
    """
    return a != b and seq_distance(a, b) < SEQ_HALF


def seq_in_window(seq: int, start: int, size: int) -> bool:
    """True iff ``seq`` lies in ``[start, start + size)`` on the ring."""
    return seq_distance(start, seq) < size


# ----------------------------------------------------------------- the frames


@dataclass
class DataFrame:
    """One sender → receiver datagram (Sprout data or heartbeat)."""

    wire_seq: int
    seq_bytes: int
    throwaway_bytes: int
    time_to_next: float
    timestamp: float
    transfer_total: int = 0
    size: int = 0
    heartbeat: bool = False
    retransmit: bool = False
    fin: bool = False


@dataclass
class FeedbackFrame:
    """One receiver → sender datagram: forecast + selective-repeat state."""

    wire_seq: int
    forecast_bytes: List[float] = field(default_factory=list)
    forecast_time: float = 0.0
    received_or_lost_bytes: int = 0
    ack_seq: int = 0
    sack_bitmap: int = 0
    echo_seq: int = 0
    echo_timestamp: float = 0.0
    echo_delay: float = 0.0


@dataclass
class CloseFrame:
    """End-of-transfer marker; retransmitted until a CLOSE-ACK answers it."""

    wire_seq: int


@dataclass
class CloseAckFrame:
    """Receiver's confirmation of a CLOSE — completes the close handshake."""

    wire_seq: int


Frame = Union[DataFrame, FeedbackFrame, CloseFrame, CloseAckFrame]


class WireFormatError(ValueError):
    """A datagram that is not a valid Sprout frame (foreign, torn, stale)."""


_PREAMBLE = struct.Struct("!2sBBHI")  # magic, version, type, wire_seq, crc32
#: byte span of the checksum inside the preamble (zeroed while computing it)
_CRC_SLICE = slice(6, 10)
_CRC = struct.Struct("!I")
_DATA_BODY = struct.Struct("!HQQQQdd")
# flags, seq_bytes, throwaway_bytes, transfer_total, size, time_to_next, timestamp
_FEEDBACK_BODY = struct.Struct("!HQQHddd B")
# ack_seq, sack_bitmap, received_or_lost, echo_seq, forecast_time,
# echo_timestamp, echo_delay, forecast length (ticks)

#: sanity bound on the forecast length a decoder will allocate for
MAX_FORECAST_TICKS = 64


def _check_seq(seq: int) -> int:
    if not 0 <= seq < SEQ_MOD:
        raise WireFormatError(f"wire sequence number out of range: {seq}")
    return seq


def _seal(frame_bytes: bytes) -> bytes:
    """Write the CRC32 of ``frame_bytes`` (checksum field zeroed) in place.

    Encoders pack the preamble with a zero checksum, append body and
    padding, then seal — so the CRC covers every byte of the datagram,
    padding included, and any single flipped byte fails verification.
    """
    crc = zlib.crc32(frame_bytes) & 0xFFFFFFFF
    return frame_bytes[: _CRC_SLICE.start] + _CRC.pack(crc) + frame_bytes[_CRC_SLICE.stop:]


def _verify_crc(datagram: bytes, stored: int) -> None:
    zeroed = datagram[: _CRC_SLICE.start] + b"\x00\x00\x00\x00" + datagram[_CRC_SLICE.stop:]
    if zlib.crc32(zeroed) & 0xFFFFFFFF != stored:
        raise WireFormatError("checksum mismatch (corrupted datagram)")


def encode_data(frame: DataFrame) -> bytes:
    """Serialise a data frame, padded out to ``frame.size`` bytes.

    The padding makes the datagram physically occupy its nominal size, so
    loopback throughput measures real bytes moved, not bookkeeping.  A
    ``size`` smaller than the header (or zero) sends the bare header.
    """
    flags = (
        (FLAG_HEARTBEAT if frame.heartbeat else 0)
        | (FLAG_RETRANSMIT if frame.retransmit else 0)
        | (FLAG_FIN if frame.fin else 0)
    )
    head = _PREAMBLE.pack(MAGIC, WIRE_VERSION, TYPE_DATA, _check_seq(frame.wire_seq), 0)
    body = _DATA_BODY.pack(
        flags,
        frame.seq_bytes,
        frame.throwaway_bytes,
        frame.transfer_total,
        frame.size,
        frame.time_to_next,
        frame.timestamp,
    )
    encoded = head + body
    if frame.size > len(encoded):
        encoded += b"\x00" * (frame.size - len(encoded))
    return _seal(encoded)


def encode_feedback(frame: FeedbackFrame) -> bytes:
    """Serialise a feedback frame (forecast entries as doubles)."""
    forecast = [float(v) for v in frame.forecast_bytes]
    if len(forecast) > MAX_FORECAST_TICKS:
        raise WireFormatError(
            f"forecast too long for the wire: {len(forecast)} ticks "
            f"(limit {MAX_FORECAST_TICKS})"
        )
    head = _PREAMBLE.pack(MAGIC, WIRE_VERSION, TYPE_FEEDBACK, _check_seq(frame.wire_seq), 0)
    body = _FEEDBACK_BODY.pack(
        _check_seq(frame.ack_seq),
        frame.sack_bitmap & ((1 << 64) - 1),
        frame.received_or_lost_bytes,
        _check_seq(frame.echo_seq),
        frame.forecast_time,
        frame.echo_timestamp,
        frame.echo_delay,
        len(forecast),
    )
    tail = struct.pack(f"!{len(forecast)}d", *forecast)
    return _seal(head + body + tail)


def encode_close(frame: CloseFrame) -> bytes:
    """Serialise a close frame (preamble only)."""
    return _seal(_PREAMBLE.pack(MAGIC, WIRE_VERSION, TYPE_CLOSE, _check_seq(frame.wire_seq), 0))


def encode_close_ack(frame: CloseAckFrame) -> bytes:
    """Serialise a close-ack frame (preamble only)."""
    return _seal(
        _PREAMBLE.pack(MAGIC, WIRE_VERSION, TYPE_CLOSE_ACK, _check_seq(frame.wire_seq), 0)
    )


def decode_frame(datagram: bytes) -> Frame:
    """Parse one datagram into its frame, or raise :class:`WireFormatError`.

    Foreign magic, unknown version or type, and truncation all raise — a
    live socket can receive anything, so nothing here may crash the
    endpoint loop with an unhandled struct error.
    """
    if len(datagram) < _PREAMBLE.size:
        raise WireFormatError(f"datagram shorter than the preamble: {len(datagram)} bytes")
    magic, version, frame_type, wire_seq, crc = _PREAMBLE.unpack_from(datagram)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}; not a Sprout frame")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this code speaks {WIRE_VERSION})"
        )
    _verify_crc(datagram, crc)
    body = datagram[_PREAMBLE.size:]
    if frame_type == TYPE_DATA:
        if len(body) < _DATA_BODY.size:
            raise WireFormatError("truncated data frame")
        (
            flags,
            seq_bytes,
            throwaway_bytes,
            transfer_total,
            size,
            time_to_next,
            timestamp,
        ) = _DATA_BODY.unpack_from(body)
        return DataFrame(
            wire_seq=wire_seq,
            seq_bytes=seq_bytes,
            throwaway_bytes=throwaway_bytes,
            time_to_next=time_to_next,
            timestamp=timestamp,
            transfer_total=transfer_total,
            size=size,
            heartbeat=bool(flags & FLAG_HEARTBEAT),
            retransmit=bool(flags & FLAG_RETRANSMIT),
            fin=bool(flags & FLAG_FIN),
        )
    if frame_type == TYPE_FEEDBACK:
        if len(body) < _FEEDBACK_BODY.size:
            raise WireFormatError("truncated feedback frame")
        (
            ack_seq,
            sack_bitmap,
            received_or_lost,
            echo_seq,
            forecast_time,
            echo_timestamp,
            echo_delay,
            ticks,
        ) = _FEEDBACK_BODY.unpack_from(body)
        if ticks > MAX_FORECAST_TICKS:
            raise WireFormatError(f"forecast length {ticks} exceeds the wire limit")
        tail = body[_FEEDBACK_BODY.size:]
        if len(tail) < ticks * 8:
            raise WireFormatError("truncated feedback forecast")
        forecast = list(struct.unpack_from(f"!{ticks}d", tail))
        return FeedbackFrame(
            wire_seq=wire_seq,
            forecast_bytes=forecast,
            forecast_time=forecast_time,
            received_or_lost_bytes=received_or_lost,
            ack_seq=ack_seq,
            sack_bitmap=sack_bitmap,
            echo_seq=echo_seq,
            echo_timestamp=echo_timestamp,
            echo_delay=echo_delay,
        )
    if frame_type == TYPE_CLOSE:
        return CloseFrame(wire_seq=wire_seq)
    if frame_type == TYPE_CLOSE_ACK:
        return CloseAckFrame(wire_seq=wire_seq)
    raise WireFormatError(f"unknown frame type {frame_type}")
