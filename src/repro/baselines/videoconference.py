"""Reactive videoconference application models (Skype, Hangout, Facetime).

The paper measures the real applications through Cellsim; what matters for
the evaluation is their *rate-control behaviour*: they send at a chosen
encoder rate, react to congestion only after it has persisted for seconds,
and are equally slow to claim newly-available capacity (Sections 2.2 and
5.2: "they are slow to decrease their transmission rate when the link has
deteriorated, and as a result they often create a large backlog of queued
packets").  This module models that behaviour:

* the sender emits a frame every ``frame_interval`` seconds at the current
  encoder rate, chosen from a discrete rate ladder;
* the receiver returns a report every ``report_interval`` seconds carrying
  the observed queueing delay and goodput;
* the sender steps the encoder down only after the reported delay has stayed
  above a threshold for ``down_react_time`` seconds, and steps it up only
  after conditions have looked good for ``up_react_time`` seconds.

Three profiles parameterise the model to the qualitative differences the
paper reports between Skype, Google Hangout, and Apple Facetime (maximum
bitrate and sluggishness of adaptation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.packet import MTU_BYTES, Packet

HEADER_FRAME_SEQ = "vc_frame_seq"
HEADER_REPORT = "vc_report"
HEADER_REPORT_DELAY = "vc_report_delay"
HEADER_REPORT_GOODPUT = "vc_report_goodput"

REPORT_PACKET_BYTES = 80


@dataclass
class VideoconferenceProfile:
    """Behavioural parameters of one videoconferencing application."""

    name: str
    max_rate_bps: float
    min_rate_bps: float
    start_rate_bps: float
    #: seconds the reported delay must exceed the threshold before a downgrade
    down_react_time: float
    #: seconds conditions must look good before an upgrade
    up_react_time: float
    #: reported one-way queueing delay (s) considered congested
    congestion_delay_threshold: float = 0.35
    #: reported one-way queueing delay (s) considered comfortable
    comfort_delay_threshold: float = 0.10
    frame_interval: float = 1.0 / 30.0
    report_interval: float = 0.20
    ladder_steps: int = 16

    def rate_ladder(self) -> List[float]:
        """Geometric encoder ladder from the minimum to the maximum bitrate."""
        return list(
            np.geomspace(self.min_rate_bps, self.max_rate_bps, self.ladder_steps)
        )


#: Qualitative profiles for the three applications in the paper's evaluation.
#: Skype ramps to the highest rates ("uses up to 5 Mbps even when the image
#: is static"), Facetime is somewhat more conservative, and Hangout both
#: caps its rate lower and adapts the most sluggishly (it shows the largest
#: throughput deficit in the paper's table).
SKYPE_PROFILE = VideoconferenceProfile(
    name="Skype",
    max_rate_bps=5_000_000.0,
    min_rate_bps=120_000.0,
    start_rate_bps=500_000.0,
    down_react_time=2.5,
    up_react_time=3.0,
)
FACETIME_PROFILE = VideoconferenceProfile(
    name="Facetime",
    max_rate_bps=2_500_000.0,
    min_rate_bps=100_000.0,
    start_rate_bps=400_000.0,
    down_react_time=3.0,
    up_react_time=4.0,
)
HANGOUT_PROFILE = VideoconferenceProfile(
    name="Google Hangout",
    max_rate_bps=1_800_000.0,
    min_rate_bps=80_000.0,
    start_rate_bps=300_000.0,
    down_react_time=4.0,
    up_react_time=6.0,
)


class VideoconferenceSender(Protocol):
    """Frame-paced sender with a sluggish, report-driven rate controller."""

    def __init__(self, profile: VideoconferenceProfile, flow_id: Optional[str] = None) -> None:
        self.profile = profile
        self.flow_id = flow_id if flow_id is not None else profile.name.lower().replace(" ", "-")
        self.tick_interval = profile.frame_interval
        self.ladder = profile.rate_ladder()
        # Start at the ladder step closest to the profile's starting rate.
        self.rate_index = int(
            np.argmin([abs(r - profile.start_rate_bps) for r in self.ladder])
        )
        self.frame_seq = 0
        self.bytes_sent = 0
        self._congested_since: Optional[float] = None
        self._comfortable_since: Optional[float] = None
        self._last_rate_change = 0.0
        #: history of (time, encoder_rate_bps), for plots and tests
        self.rate_history: List[tuple] = []

    # ------------------------------------------------------------ properties

    @property
    def current_rate_bps(self) -> float:
        return self.ladder[self.rate_index]

    # ------------------------------------------------------------- reception

    def on_packet(self, packet: Packet, now: float) -> None:
        if not packet.headers.get(HEADER_REPORT):
            return
        delay = float(packet.headers.get(HEADER_REPORT_DELAY, 0.0))
        profile = self.profile

        if delay >= profile.congestion_delay_threshold:
            self._comfortable_since = None
            if self._congested_since is None:
                self._congested_since = now
            elif now - self._congested_since >= profile.down_react_time:
                self._step_down(now)
                self._congested_since = now
        elif delay <= profile.comfort_delay_threshold:
            self._congested_since = None
            if self._comfortable_since is None:
                self._comfortable_since = now
            elif now - self._comfortable_since >= profile.up_react_time:
                self._step_up(now)
                self._comfortable_since = now
        else:
            # Neither clearly congested nor clearly comfortable: hold.
            self._congested_since = None
            self._comfortable_since = None

    def _step_down(self, now: float) -> None:
        if self.rate_index > 0:
            self.rate_index -= 1
            self._last_rate_change = now
            self.rate_history.append((now, self.current_rate_bps))

    def _step_up(self, now: float) -> None:
        if self.rate_index < len(self.ladder) - 1:
            self.rate_index += 1
            self._last_rate_change = now
            self.rate_history.append((now, self.current_rate_bps))

    # ----------------------------------------------------------------- tick

    def on_tick(self, now: float) -> None:
        frame_bytes = int(self.current_rate_bps * self.profile.frame_interval / 8.0)
        if frame_bytes <= 0:
            return
        self.frame_seq += 1
        remaining = frame_bytes
        while remaining > 0:
            size = min(MTU_BYTES, remaining)
            remaining -= size
            packet = Packet(
                size=size,
                flow_id=self.flow_id,
                headers={HEADER_FRAME_SEQ: self.frame_seq},
            )
            self.bytes_sent += size
            self.ctx.send(packet)


class VideoconferenceReceiver(Protocol):
    """Returns periodic receiver reports with observed delay and goodput."""

    def __init__(
        self,
        report_interval: float = 0.20,
        flow_id: str = "videoconference",
    ) -> None:
        if report_interval <= 0:
            raise ValueError("report_interval must be positive")
        self.tick_interval = report_interval
        self.flow_id = flow_id
        self.bytes_since_report = 0
        self.total_bytes = 0
        self._min_one_way_delay: Optional[float] = None
        self._latest_one_way_delay: Optional[float] = None
        self.reports_sent = 0

    def on_packet(self, packet: Packet, now: float) -> None:
        if HEADER_FRAME_SEQ not in packet.headers:
            return
        self.bytes_since_report += packet.size
        self.total_bytes += packet.size
        if packet.sent_at is not None:
            owd = now - packet.sent_at
            self._latest_one_way_delay = owd
            if self._min_one_way_delay is None or owd < self._min_one_way_delay:
                self._min_one_way_delay = owd

    def on_tick(self, now: float) -> None:
        queueing_delay = 0.0
        if self._latest_one_way_delay is not None and self._min_one_way_delay is not None:
            queueing_delay = max(0.0, self._latest_one_way_delay - self._min_one_way_delay)
        goodput = self.bytes_since_report * 8.0 / self.tick_interval
        self.bytes_since_report = 0
        report = Packet(
            size=REPORT_PACKET_BYTES,
            flow_id=f"{self.flow_id}-report",
            headers={
                HEADER_REPORT: True,
                HEADER_REPORT_DELAY: queueing_delay,
                HEADER_REPORT_GOODPUT: goodput,
            },
        )
        self.reports_sent += 1
        self.ctx.send(report)


def make_skype() -> tuple:
    """Skype sender/receiver pair."""
    return VideoconferenceSender(SKYPE_PROFILE), VideoconferenceReceiver(flow_id="skype")


def make_facetime() -> tuple:
    """Facetime sender/receiver pair."""
    return VideoconferenceSender(FACETIME_PROFILE), VideoconferenceReceiver(flow_id="facetime")


def make_hangout() -> tuple:
    """Google Hangout sender/receiver pair."""
    return VideoconferenceSender(HANGOUT_PROFILE), VideoconferenceReceiver(flow_id="hangout")
