"""Baseline schemes from the paper's evaluation (Sections 5-6).

Window-based congestion control: TCP Reno, TCP Cubic (the Linux default),
TCP Vegas, Compound TCP, and LEDBAT, all built on the shared transport in
:mod:`repro.baselines.base`.  Rate-based videoconference application models
stand in for Skype, Google Hangout, and Apple Facetime.  The omniscient
reference protocol defines the zero point of self-inflicted delay.
"""

from repro.baselines.base import AckingReceiver, RttEstimator, WindowedSender
from repro.baselines.compound import CompoundSender
from repro.baselines.cubic import CubicSender
from repro.baselines.ledbat import LedbatSender
from repro.baselines.omniscient import (
    OmniscientResult,
    omniscient_delay,
    omniscient_result,
    omniscient_schedule,
)
from repro.baselines.reno import RenoSender
from repro.baselines.vegas import VegasSender
from repro.baselines.videoconference import (
    FACETIME_PROFILE,
    HANGOUT_PROFILE,
    SKYPE_PROFILE,
    VideoconferenceProfile,
    VideoconferenceReceiver,
    VideoconferenceSender,
    make_facetime,
    make_hangout,
    make_skype,
)

__all__ = [
    "AckingReceiver",
    "RttEstimator",
    "WindowedSender",
    "CompoundSender",
    "CubicSender",
    "LedbatSender",
    "RenoSender",
    "VegasSender",
    "OmniscientResult",
    "omniscient_delay",
    "omniscient_result",
    "omniscient_schedule",
    "VideoconferenceProfile",
    "VideoconferenceReceiver",
    "VideoconferenceSender",
    "SKYPE_PROFILE",
    "HANGOUT_PROFILE",
    "FACETIME_PROFILE",
    "make_skype",
    "make_hangout",
    "make_facetime",
]
