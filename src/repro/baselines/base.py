"""Shared machinery for the window-based (TCP-style) baseline protocols.

The paper compares Sprout against TCP Cubic, TCP Vegas, Compound TCP, and
LEDBAT (plus Skype/Hangout/Facetime, which are rate-based and live in
:mod:`repro.baselines.videoconference`).  All the window-based schemes share
the same packet-level transport: a bulk sender that keeps ``cwnd`` segments
in flight, a receiver that acknowledges every segment, duplicate-ACK fast
retransmit, and an RFC 6298 retransmission timer.  Congestion-control
algorithms are plugged in by subclassing :class:`WindowedSender` and
overriding the three reaction hooks (:meth:`on_ack`, :meth:`on_loss`,
:meth:`on_timeout`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.packet import MTU_BYTES, Packet

#: size of a pure acknowledgment packet (bytes)
ACK_BYTES = 60

#: data segments covered per acknowledgment: :class:`AckingReceiver` acks
#: every segment (no delayed ACKs), which is the ``b = 1`` the analytic
#: tier's PFTK/CSA formulas assume (:mod:`repro.experiments.analytic`)
SEGMENTS_PER_ACK = 1

HEADER_SEQ = "tcp_seq"
HEADER_IS_RETRANSMIT = "tcp_retx"
HEADER_ACK = "tcp_ack"
HEADER_ECHO_TS = "tcp_echo_ts"
HEADER_ECHO_OWD = "tcp_echo_owd"


class RttEstimator:
    """Smoothed RTT / RTO estimation per RFC 6298."""

    K = 4.0
    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    MIN_RTO = 0.2
    MAX_RTO = 60.0

    def __init__(self, initial_rto: float = 1.0) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = initial_rto
        self.min_rtt: Optional[float] = None
        self.latest_rtt: Optional[float] = None

    def update(self, rtt: float) -> None:
        """Fold a new RTT sample into the smoothed estimate."""
        if rtt <= 0:
            return
        self.latest_rtt = rtt
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.rto = min(
            self.MAX_RTO, max(self.MIN_RTO, self.srtt + self.K * (self.rttvar or 0.0))
        )

    def backoff(self) -> None:
        """Exponential RTO backoff after a timeout."""
        self.rto = min(self.MAX_RTO, self.rto * 2.0)


class WindowedSender(Protocol):
    """Bulk-transfer sender driven by a congestion window in segments.

    Subclasses implement the congestion-control reaction hooks; the base
    class handles segment numbering, the in-flight ledger, duplicate-ACK
    fast retransmit, the retransmission timer, and transmission pacing via
    ACK clocking (plus a coarse tick used only to fire the RTO).
    """

    #: coarse timer used for RTO checks
    tick_interval = 0.010
    #: duplicate-ACK threshold for fast retransmit
    DUPACK_THRESHOLD = 3

    def __init__(
        self,
        initial_cwnd: float = 3.0,
        mss: int = MTU_BYTES,
        flow_id: str = "tcp",
    ) -> None:
        if initial_cwnd < 1.0:
            raise ValueError("initial_cwnd must be at least 1 segment")
        self.mss = mss
        self.flow_id = flow_id
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")
        self.rtt = RttEstimator()

        self.next_seq = 0
        self.highest_acked = -1  # cumulative: all segments <= this are acked
        self.dupacks = 0
        self.in_fast_recovery = False
        self._recovery_point = -1
        #: seq -> send time of segments currently considered in flight
        self.sent_times: Dict[int, float] = {}
        self._last_ack_time = 0.0
        self._last_send_time = 0.0

        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0

    # ------------------------------------------------------------- lifecycle

    def start(self, ctx: HostContext) -> None:
        super().start(ctx)
        self._last_ack_time = ctx.now()
        self._fill_window(ctx.now())

    # ------------------------------------------------------ CC reaction hooks

    def on_ack(self, newly_acked: int, rtt_sample: Optional[float], now: float) -> None:
        """Called for every ACK that advances the cumulative ACK point."""
        raise NotImplementedError

    def on_loss(self, now: float) -> None:
        """Called on entry to fast recovery (triple duplicate ACK)."""
        raise NotImplementedError

    def on_timeout(self, now: float) -> None:
        """Called when the retransmission timer fires."""
        raise NotImplementedError

    def on_delay_sample(self, one_way_delay: float, now: float) -> None:
        """Optional hook for delay-based schemes (LEDBAT); default ignores it."""

    # ------------------------------------------------------------ inspection

    @property
    def flight_size(self) -> int:
        """Segments currently outstanding."""
        return self.next_seq - (self.highest_acked + 1)

    def effective_window(self) -> float:
        """Congestion window in segments; subclasses may combine components."""
        return self.cwnd

    # ----------------------------------------------------------- transmission

    def _send_segment(self, seq: int, now: float, retransmit: bool = False) -> None:
        packet = Packet(
            size=self.mss,
            flow_id=self.flow_id,
            headers={
                HEADER_SEQ: seq,
                HEADER_IS_RETRANSMIT: retransmit,
                HEADER_ECHO_TS: now,
            },
        )
        self.sent_times[seq] = now
        self.segments_sent += 1
        if retransmit:
            self.retransmissions += 1
        self._last_send_time = now
        self.ctx.send(packet)

    def _fill_window(self, now: float) -> None:
        window = max(1.0, self.effective_window())
        while self.flight_size < int(window):
            self._send_segment(self.next_seq, now)
            self.next_seq += 1

    # ----------------------------------------------------------------- ACKs

    def on_packet(self, packet: Packet, now: float) -> None:
        ack = packet.headers.get(HEADER_ACK)
        if ack is None:
            return
        self._last_ack_time = now

        echo_ts = packet.headers.get(HEADER_ECHO_TS)
        rtt_sample: Optional[float] = None
        if echo_ts is not None:
            rtt_sample = now - float(echo_ts)
            self.rtt.update(rtt_sample)
        owd = packet.headers.get(HEADER_ECHO_OWD)
        if owd is not None:
            self.on_delay_sample(float(owd), now)

        if ack > self.highest_acked:
            newly_acked = ack - self.highest_acked
            for seq in range(self.highest_acked + 1, ack + 1):
                self.sent_times.pop(seq, None)
            self.highest_acked = ack
            self.dupacks = 0
            if self.in_fast_recovery and ack >= self._recovery_point:
                self.in_fast_recovery = False
            self.on_ack(newly_acked, rtt_sample, now)
        else:
            self.dupacks += 1
            if self.dupacks == self.DUPACK_THRESHOLD and not self.in_fast_recovery:
                self.in_fast_recovery = True
                self._recovery_point = self.next_seq - 1
                # Retransmit the presumed-lost segment.
                self._send_segment(self.highest_acked + 1, now, retransmit=True)
                self.on_loss(now)

        self._fill_window(now)

    # ------------------------------------------------------------------ RTO

    def on_tick(self, now: float) -> None:
        if self.flight_size == 0:
            self._fill_window(now)
            return
        oldest_seq = self.highest_acked + 1
        sent_at = self.sent_times.get(oldest_seq)
        if sent_at is None:
            # The oldest unacked segment has no record (it was fast
            # retransmitted); fall back to the time of the last ACK.
            sent_at = self._last_ack_time
        if now - sent_at >= self.rtt.rto:
            self.timeouts += 1
            self.rtt.backoff()
            self.dupacks = 0
            self.in_fast_recovery = False
            self._send_segment(oldest_seq, now, retransmit=True)
            self.on_timeout(now)
            self._fill_window(now)


class AckingReceiver(Protocol):
    """Receives data segments and acknowledges every one of them.

    The cumulative ACK carries the highest in-order sequence number, the echo
    of the newest segment's timestamp (for RTT estimation), and the measured
    one-way delay (for LEDBAT).  Out-of-order segments generate duplicate
    ACKs, which is what drives the senders' fast retransmit.
    """

    def __init__(self, flow_id: str = "tcp", ack_size: int = ACK_BYTES) -> None:
        self.flow_id = flow_id
        self.ack_size = ack_size
        self.received_seqs: set = set()
        self.cumulative_ack = -1
        self.acks_sent = 0
        self.bytes_received = 0

    def on_packet(self, packet: Packet, now: float) -> None:
        seq = packet.headers.get(HEADER_SEQ)
        if seq is None:
            return
        self.bytes_received += packet.size
        self.received_seqs.add(seq)
        while (self.cumulative_ack + 1) in self.received_seqs:
            self.received_seqs.discard(self.cumulative_ack + 1)
            self.cumulative_ack += 1

        one_way_delay = None
        if packet.sent_at is not None:
            one_way_delay = now - packet.sent_at
        ack = Packet(
            size=self.ack_size,
            flow_id=f"{self.flow_id}-ack",
            headers={
                HEADER_ACK: self.cumulative_ack,
                HEADER_ECHO_TS: packet.headers.get(HEADER_ECHO_TS),
                HEADER_ECHO_OWD: one_way_delay,
            },
        )
        self.acks_sent += 1
        self.ctx.send(ack)
