"""TCP Cubic congestion control (the Linux default the paper evaluates).

Follows Ha, Rhee & Xu, "CUBIC: a new TCP-friendly high-speed TCP variant"
(2008) and the Linux implementation's constants: window growth is a cubic
function of the time since the last congestion event, anchored at the window
size where that event occurred (``w_max``), with a multiplicative decrease
factor of 0.7 and a TCP-friendly lower bound.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import WindowedSender


class CubicSender(WindowedSender):
    """CUBIC window growth with fast convergence and the TCP-friendly region."""

    C = 0.4
    BETA = 0.7

    def __init__(self, initial_cwnd: float = 3.0, **kwargs) -> None:
        super().__init__(initial_cwnd=initial_cwnd, **kwargs)
        self.w_max = 0.0
        self.epoch_start: Optional[float] = None
        self.k = 0.0
        self.origin_point = 0.0
        self.tcp_cwnd = 0.0
        self.fast_convergence = True

    # ----------------------------------------------------------- internals

    def _reset_epoch(self, now: float) -> None:
        self.epoch_start = now
        if self.cwnd < self.w_max:
            self.k = ((self.w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
            self.origin_point = self.w_max
        else:
            self.k = 0.0
            self.origin_point = self.cwnd
        self.tcp_cwnd = self.cwnd

    def _cubic_target(self, now: float) -> float:
        assert self.epoch_start is not None
        t = now - self.epoch_start + (self.rtt.min_rtt or 0.0)
        return self.origin_point + self.C * (t - self.k) ** 3

    # --------------------------------------------------------------- hooks

    def on_ack(self, newly_acked: int, rtt_sample: Optional[float], now: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += float(newly_acked)
            return
        if self.epoch_start is None:
            self._reset_epoch(now)
        target = self._cubic_target(now)
        rtt = self.rtt.srtt or 0.1
        if target > self.cwnd:
            # Close the gap to the cubic target within one RTT.
            increment = (target - self.cwnd) / self.cwnd
        else:
            increment = 0.01 / self.cwnd  # minimal growth in the plateau
        # TCP-friendly region: estimate what standard AIMD would have reached.
        self.tcp_cwnd += newly_acked * (3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)) / self.cwnd
        if self.tcp_cwnd > self.cwnd + increment * newly_acked:
            increment = max(increment, (self.tcp_cwnd - self.cwnd) / self.cwnd)
        self.cwnd += increment * newly_acked
        del rtt

    def on_loss(self, now: float) -> None:
        self.epoch_start = None
        if self.cwnd < self.w_max and self.fast_convergence:
            self.w_max = self.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = self.cwnd
        self.cwnd = max(2.0, self.cwnd * self.BETA)
        self.ssthresh = self.cwnd

    def on_timeout(self, now: float) -> None:
        self.epoch_start = None
        self.w_max = self.cwnd
        self.ssthresh = max(2.0, self.cwnd * self.BETA)
        self.cwnd = 1.0
