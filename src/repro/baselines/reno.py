"""TCP Reno / NewReno congestion control.

Not evaluated by name in the paper's headline table, but included because it
is the classical AIMD baseline the other algorithms are defined against, and
because Section 6 discusses Tahoe/Reno as the starting point of the design
space.  Slow start, congestion avoidance, fast retransmit / fast recovery.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import WindowedSender


class RenoSender(WindowedSender):
    """Classic AIMD: slow start to ``ssthresh``, then +1 MSS per RTT.

    The AIMD constants are class attributes so the analytic tier
    (:mod:`repro.experiments.analytic`) can assert its closed-form PFTK
    model matches the implementation: ``ALPHA`` is the additive increase
    per round trip in segments, ``BETA`` the multiplicative decrease on a
    congestion event — the ``1/2`` baked into PFTK's ``sqrt(2bp/3)`` term.
    """

    #: additive increase per RTT, in segments
    ALPHA = 1.0
    #: multiplicative decrease factor on loss
    BETA = 0.5

    def __init__(self, initial_cwnd: float = 3.0, **kwargs) -> None:
        super().__init__(initial_cwnd=initial_cwnd, **kwargs)

    def on_ack(self, newly_acked: int, rtt_sample: Optional[float], now: float) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start: one segment per ACKed segment
            else:
                self.cwnd += self.ALPHA / self.cwnd  # congestion avoidance

    def on_loss(self, now: float) -> None:
        self.ssthresh = max(2.0, self.cwnd * self.BETA)
        self.cwnd = self.ssthresh

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(2.0, self.cwnd * self.BETA)
        self.cwnd = 1.0
