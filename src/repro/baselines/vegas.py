"""TCP Vegas congestion control (Brakmo & Peterson, SIGCOMM 1994).

Vegas is the delay-triggered baseline in the paper's comparison: it keeps an
estimate of the minimum ("base") RTT and adjusts the window so that the
number of packets buffered in the network stays between ``alpha`` and
``beta`` segments.  Because it reacts to delay rather than loss it keeps
queues much shorter than Cubic, at some cost in throughput — exactly the
trade-off visible in Figure 7.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import WindowedSender


class VegasSender(WindowedSender):
    """Vegas: keep between ``alpha`` and ``beta`` segments queued in the path."""

    ALPHA = 2.0
    BETA = 4.0
    GAMMA = 1.0  # slow-start exit threshold

    def __init__(self, initial_cwnd: float = 3.0, **kwargs) -> None:
        super().__init__(initial_cwnd=initial_cwnd, **kwargs)
        self.in_slow_start = True

    def on_ack(self, newly_acked: int, rtt_sample: Optional[float], now: float) -> None:
        base_rtt = self.rtt.min_rtt
        rtt = rtt_sample if rtt_sample is not None else self.rtt.srtt
        if base_rtt is None or rtt is None or rtt <= 0:
            self.cwnd += float(newly_acked)
            return

        expected = self.cwnd / base_rtt       # segments/s if no queueing
        actual = self.cwnd / rtt              # achieved segments/s
        diff = (expected - actual) * base_rtt  # segments sitting in queues

        if self.in_slow_start:
            if diff > self.GAMMA:
                self.in_slow_start = False
                self.cwnd = max(2.0, self.cwnd - 1.0)
            else:
                # Vegas doubles every *other* RTT; halve the per-ACK growth.
                self.cwnd += 0.5 * newly_acked
            return

        if diff < self.ALPHA:
            self.cwnd += 1.0 / self.cwnd * newly_acked
        elif diff > self.BETA:
            self.cwnd -= 1.0 / self.cwnd * newly_acked
            self.cwnd = max(2.0, self.cwnd)
        # between alpha and beta: hold

    def on_loss(self, now: float) -> None:
        self.in_slow_start = False
        self.cwnd = max(2.0, self.cwnd * 0.75)
        self.ssthresh = self.cwnd

    def on_timeout(self, now: float) -> None:
        self.in_slow_start = False
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 2.0
