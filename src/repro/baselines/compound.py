"""Compound TCP (Tan, Song, Zhang & Sridharan, INFOCOM 2006).

Compound TCP, the default in the Windows versions the paper tests, combines
a loss-based AIMD component (``cwnd``) with a delay-based component
(``dwnd``).  The delay component grows aggressively (binomially, exponent
``k = 0.75``) while the path's queues are short and backs off once the
estimated backlog exceeds ``gamma`` segments, so the scheme ramps up faster
than Reno on long-fat paths but stops inflating the queue once delay builds.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import WindowedSender


class CompoundSender(WindowedSender):
    """Compound TCP: window = cwnd (loss-based) + dwnd (delay-based)."""

    ALPHA = 0.125
    BETA = 0.5
    ETA = 1.0
    K = 0.75
    GAMMA = 30.0  # backlog threshold, segments

    def __init__(self, initial_cwnd: float = 3.0, **kwargs) -> None:
        super().__init__(initial_cwnd=initial_cwnd, **kwargs)
        self.dwnd = 0.0

    def effective_window(self) -> float:
        return self.cwnd + self.dwnd

    def on_ack(self, newly_acked: int, rtt_sample: Optional[float], now: float) -> None:
        window = self.effective_window()
        if window < self.ssthresh:
            # Standard slow start applies to the loss-based component.
            self.cwnd += float(newly_acked)
            return

        # Loss-based component: one segment per RTT across the whole window.
        self.cwnd += newly_acked / max(window, 1.0)

        base_rtt = self.rtt.min_rtt
        rtt = rtt_sample if rtt_sample is not None else self.rtt.srtt
        if base_rtt is None or rtt is None or rtt <= 0:
            return
        expected = window / base_rtt
        actual = window / rtt
        diff = (expected - actual) * base_rtt  # estimated queued segments

        if diff < self.GAMMA:
            # Binomial increase of the delay window while queues are short.
            increment = self.ALPHA * (window ** self.K) - 1.0
            self.dwnd += max(0.0, increment) * newly_acked / max(window, 1.0)
        else:
            # Queues building: retreat the delay window.
            self.dwnd = max(0.0, self.dwnd - self.ETA * diff)

    def on_loss(self, now: float) -> None:
        window = self.effective_window()
        self.cwnd = max(2.0, self.cwnd * 0.5)
        self.dwnd = max(0.0, window * (1.0 - self.BETA) - self.cwnd)
        self.ssthresh = max(2.0, self.effective_window())

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(2.0, self.effective_window() / 2.0)
        self.cwnd = 1.0
        self.dwnd = 0.0
