"""The omniscient reference protocol (Section 5.1).

The omniscient protocol knows the future of the link: it times every packet
to arrive at the bottleneck exactly when the link is ready to transmit it.
It therefore uses 100% of the link's capacity and its packets never queue.
Its 95% end-to-end delay is still nonzero, because the link itself has
delivery gaps and outages: if nothing can be delivered for five seconds, at
least five seconds of end-to-end delay must exist to avoid a playback gap.

The paper defines a scheme's *self-inflicted delay* as its 95% end-to-end
delay minus the omniscient protocol's.  This module computes the omniscient
schedule and its delay distribution directly from a delivery trace — no
simulation is needed because the omniscient behaviour is fully determined by
the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.metrics.delay import percentile_of_delay_signal
from repro.simulation.delay_box import DEFAULT_PROPAGATION_DELAY


@dataclass
class OmniscientResult:
    """Summary of the omniscient protocol's behaviour on one trace."""

    throughput_bps: float
    delay_95th: float
    arrivals: List[float]

    @property
    def delay_95th_ms(self) -> float:
        return self.delay_95th * 1000.0


def omniscient_schedule(
    delivery_times: Sequence[float],
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
) -> List[tuple]:
    """(send_time, arrival_time) pairs for the omniscient protocol.

    Each delivery opportunity carries one MTU packet that was sent exactly
    one propagation delay before it crossed the link and arrives at the
    receiver the moment it crosses (measurement is at the Cellsim, as in
    Section 5.1).
    """
    schedule = []
    for t in sorted(delivery_times):
        send_time = t - propagation_delay
        schedule.append((send_time, t))
    return schedule


def omniscient_delay(
    delivery_times: Sequence[float],
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    percentile: float = 95.0,
    start_time: float = 0.0,
    end_time: float = None,
) -> float:
    """The omniscient protocol's 95% end-to-end delay on a trace."""
    schedule = omniscient_schedule(delivery_times, propagation_delay)
    arrivals = [(arrival, send) for send, arrival in schedule]
    if end_time is None:
        end_time = max(a for a, _ in arrivals) if arrivals else start_time
    return percentile_of_delay_signal(
        arrivals, start_time=start_time, end_time=end_time, percentile=percentile
    )


def omniscient_result(
    delivery_times: Sequence[float],
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    mtu_bytes: int = 1500,
    start_time: float = 0.0,
    end_time: float = None,
) -> OmniscientResult:
    """Throughput and 95% delay of the omniscient protocol on a trace."""
    times = np.asarray(sorted(delivery_times), dtype=float)
    if end_time is None:
        end_time = float(times[-1]) if times.size else start_time
    in_window = times[(times >= start_time) & (times <= end_time)]
    duration = max(end_time - start_time, 1e-9)
    throughput = in_window.size * mtu_bytes * 8.0 / duration
    delay = omniscient_delay(
        delivery_times,
        propagation_delay=propagation_delay,
        start_time=start_time,
        end_time=end_time,
    )
    return OmniscientResult(
        throughput_bps=float(throughput),
        delay_95th=float(delay),
        arrivals=list(times),
    )
