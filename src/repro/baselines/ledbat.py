"""LEDBAT congestion control (RFC 6817), as used by uTP/BitTorrent.

LEDBAT shares Sprout's goal — high throughput without building long queues —
but pursues it reactively: it measures the *one-way* queueing delay against
a 100 ms target and applies a proportional controller to the window.  The
paper (Section 6) attributes LEDBAT's weaker results to the choice of signal
(one-way delay, a trailing indicator) and the absence of forecasting.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import WindowedSender


class LedbatSender(WindowedSender):
    """LEDBAT: proportional control towards a 100 ms one-way queueing delay."""

    TARGET = 0.100     # seconds of queueing delay (RFC 6817 MUST be <= 100 ms)
    GAIN = 1.0         # window gain per RTT per unit of off-target error
    BASE_HISTORY = 10.0  # seconds over which the base delay is remembered

    def __init__(self, initial_cwnd: float = 3.0, **kwargs) -> None:
        super().__init__(initial_cwnd=initial_cwnd, **kwargs)
        self._base_delay: Optional[float] = None
        self._base_delay_time = 0.0
        self._latest_queueing_delay = 0.0

    # --------------------------------------------------------- delay signal

    def on_delay_sample(self, one_way_delay: float, now: float) -> None:
        if one_way_delay < 0:
            return
        if (
            self._base_delay is None
            or one_way_delay < self._base_delay
            or now - self._base_delay_time > self.BASE_HISTORY
        ):
            self._base_delay = one_way_delay
            self._base_delay_time = now
        self._latest_queueing_delay = max(0.0, one_way_delay - self._base_delay)

    # --------------------------------------------------------------- hooks

    def on_ack(self, newly_acked: int, rtt_sample: Optional[float], now: float) -> None:
        off_target = (self.TARGET - self._latest_queueing_delay) / self.TARGET
        # RFC 6817: cwnd += GAIN * off_target * bytes_newly_acked * MSS / cwnd,
        # expressed here in segments.
        self.cwnd += self.GAIN * off_target * newly_acked / max(self.cwnd, 1.0)
        self.cwnd = max(2.0, self.cwnd)

    def on_loss(self, now: float) -> None:
        self.cwnd = max(2.0, self.cwnd / 2.0)
        self.ssthresh = self.cwnd

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 2.0
