"""Virtual clock for the discrete-event simulator."""

from __future__ import annotations


class Clock:
    """A monotonically non-decreasing virtual clock measured in seconds.

    The clock is advanced only by the event loop; components read it through
    :meth:`now`.  Keeping the clock in its own object (rather than passing
    bare floats everywhere) lets components hold a reference to the single
    source of simulated time.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises:
            ValueError: if ``t`` is earlier than the current time.  The
                simulator never travels backwards; a violation indicates an
                event scheduled in the past.
        """
        if t < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now:.9f}, requested={t:.9f}"
            )
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
