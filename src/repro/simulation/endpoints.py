"""Protocol endpoints and the host wrapper that connects them to a path.

The experiment harness runs one *sender* protocol on one side of a duplex
path and one *receiver* protocol on the other.  Protocols never talk to the
event loop directly; they receive a :class:`HostContext` exposing exactly the
operations they need (send a packet, read the clock, set timers), which keeps
them easy to unit-test in isolation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Tuple

from repro.simulation.event_loop import EventLoop
from repro.simulation.events import Event
from repro.simulation.packet import Packet


class HostContext:
    """The facilities a :class:`Host` grants to its protocol."""

    def __init__(
        self,
        loop: EventLoop,
        transmit: Callable[[Packet], None],
        name: str,
    ) -> None:
        self._loop = loop
        self._transmit = transmit
        self.name = name
        self.bytes_sent = 0
        self.packets_sent = 0

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._loop.now()

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` towards the peer endpoint."""
        packet.sent_at = self._loop.now()
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self._transmit(packet)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        return self._loop.schedule_after(delay, callback)


class Protocol(ABC):
    """Base class for every transport endpoint in the reproduction.

    Subclasses set :attr:`tick_interval` (seconds) if they want a periodic
    :meth:`on_tick` callback; Sprout uses the paper's 20 ms tick, the TCPs
    use a coarser timer tick for RTO handling.
    """

    #: period of the on_tick callback; None disables ticking
    tick_interval: Optional[float] = None

    def start(self, ctx: HostContext) -> None:
        """Called once when the host comes up; protocols store ``ctx`` here."""
        self.ctx = ctx

    @abstractmethod
    def on_packet(self, packet: Packet, now: float) -> None:
        """Called for every packet delivered to this endpoint."""

    def on_tick(self, now: float) -> None:
        """Periodic callback (only if :attr:`tick_interval` is set)."""

    def stop(self, now: float) -> None:
        """Called when the experiment ends; optional cleanup/statistics."""


class Host:
    """Runs a protocol endpoint attached to one side of a duplex path.

    The host records every packet the protocol receives (with its delivery
    time) so that the metrics layer can compute throughput and delay without
    protocols having to cooperate.
    """

    def __init__(
        self,
        loop: EventLoop,
        protocol: Protocol,
        transmit: Callable[[Packet], None],
        name: str = "host",
    ) -> None:
        self._loop = loop
        self.protocol = protocol
        self.name = name
        self.ctx = HostContext(loop, transmit, name)
        #: (delivery_time, packet) for every packet delivered to this host
        self.received_log: List[Tuple[float, Packet]] = []
        self.bytes_received = 0
        self._tick_event: Optional[Event] = None
        self._running = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the protocol and (if requested) its periodic tick."""
        if self._running:
            raise RuntimeError(f"host {self.name!r} already started")
        self._running = True
        self.protocol.start(self.ctx)
        if self.protocol.tick_interval is not None:
            self._schedule_tick()

    def stop(self) -> None:
        """Stop ticking and notify the protocol."""
        if not self._running:
            return
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self.protocol.stop(self._loop.now())

    def _schedule_tick(self) -> None:
        assert self.protocol.tick_interval is not None
        self._tick_event = self._loop.schedule_after(self.protocol.tick_interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.protocol.on_tick(self._loop.now())
        self._schedule_tick()

    # ------------------------------------------------------------- delivery

    def deliver(self, packet: Packet, now: float) -> None:
        """Entry point the path calls when a packet reaches this host."""
        packet.delivered_at = now
        self.received_log.append((now, packet))
        self.bytes_received += packet.size
        if self._running:
            self.protocol.on_packet(packet, now)
