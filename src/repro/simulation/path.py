"""Assembly of a full duplex emulated path (the reproduction's Cellsim).

A :class:`OneWayPipe` models one direction of the cellular link exactly as
Section 4.2 describes Cellsim: propagation delay, then an optional Bernoulli
loss process at the queue tail, then the queue, released by the trace-driven
link.  A :class:`DuplexPath` pairs two pipes (uplink and downlink) between
two hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.simulation.delay_box import DEFAULT_PROPAGATION_DELAY, DelayBox
from repro.simulation.event_loop import EventLoop
from repro.simulation.link import TraceDrivenLink
from repro.simulation.packet import MTU_BYTES, Packet
from repro.simulation.queues import Queue, QueueConfig
from repro.simulation.random import make_rng


@dataclass
class DuplexLinkConfig:
    """Configuration of an emulated duplex cellular link.

    Attributes:
        forward_trace: delivery-opportunity times for the data direction.
        reverse_trace: delivery-opportunity times for the feedback direction.
        propagation_delay: one-way delay in seconds (20 ms in the paper).
        loss_rate: Bernoulli drop probability applied independently in each
            direction at the queue tail (Section 5.6); 0 disables loss.
        use_codel: apply the CoDel AQM to both queues (Section 5.4).
        queue_byte_limit: optional finite buffer size; None = deep buffer.
        queue: explicit queue configuration for both directions; fields left
            to inherit (``aqm=None`` / ``byte_limit=None``) fall back to
            ``use_codel`` / ``queue_byte_limit``, so an ``aqm``/``qlimit``
            grid axis can override the discipline without losing a scheme's
            own queue requirements (see :meth:`effective_queue`).
        seed: seed for the loss process.
        name: label used in reports.
    """

    forward_trace: Sequence[float]
    reverse_trace: Sequence[float]
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY
    loss_rate: float = 0.0
    use_codel: bool = False
    queue_byte_limit: Optional[int] = None
    queue: Optional[QueueConfig] = None
    seed: Optional[int] = 0
    name: str = "emulated-link"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")

    def effective_queue(self) -> QueueConfig:
        """The fully resolved queue configuration both pipes will build."""
        base = self.queue if self.queue is not None else QueueConfig()
        return base.resolve(use_codel=self.use_codel, byte_limit=self.queue_byte_limit)


class OneWayPipe:
    """propagation delay -> [Bernoulli tail loss] -> queue -> trace link."""

    def __init__(
        self,
        loop: EventLoop,
        trace: Sequence[float],
        deliver: Callable[[Packet, float], None],
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
        loss_rate: float = 0.0,
        use_codel: bool = False,
        queue_byte_limit: Optional[int] = None,
        queue_config: Optional[QueueConfig] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "pipe",
    ) -> None:
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng if rng is not None else make_rng(0, name)
        self.packets_lost = 0
        self.packets_offered = 0

        if queue_config is None:
            queue_config = QueueConfig().resolve(
                use_codel=use_codel, byte_limit=queue_byte_limit
            )
        self.queue_config = queue_config
        queue: Queue = queue_config.build()
        self.queue = queue

        self.link = TraceDrivenLink(loop, trace, deliver, queue=queue)
        self.delay_box = DelayBox(loop, propagation_delay, self._after_propagation)

    # ---------------------------------------------------------------- entry

    def send(self, packet: Packet, now: float) -> None:
        """Inject a packet into this direction of the link."""
        self.packets_offered += 1
        self.delay_box.receive(packet, now)

    def _after_propagation(self, packet: Packet, now: float) -> None:
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            packet.dropped = True
            self.packets_lost += 1
            return
        self.link.receive(packet, now)

    # ------------------------------------------------------------ telemetry

    @property
    def bytes_delivered(self) -> int:
        return self.link.bytes_delivered

    @property
    def capacity_bytes(self) -> int:
        """Bytes the link could have carried so far (every opportunity used)."""
        return self.link.opportunities * self.link.bytes_per_opportunity


class DuplexPath:
    """Two hosts joined by an emulated duplex cellular link.

    ``attach_a`` / ``attach_b`` register the delivery callbacks of the two
    endpoints (normally :meth:`repro.simulation.endpoints.Host.deliver`).
    Data sent with :meth:`send_from_a` traverses the *forward* pipe; data
    sent with :meth:`send_from_b` traverses the *reverse* pipe.
    """

    def __init__(self, loop: EventLoop, config: DuplexLinkConfig) -> None:
        self.loop = loop
        self.config = config
        self._deliver_to_b: Optional[Callable[[Packet, float], None]] = None
        self._deliver_to_a: Optional[Callable[[Packet, float], None]] = None

        rng_fwd = make_rng(config.seed, f"{config.name}-forward-loss")
        rng_rev = make_rng(config.seed, f"{config.name}-reverse-loss")
        queue_config = config.effective_queue()

        self.forward = OneWayPipe(
            loop,
            config.forward_trace,
            self._on_forward_delivery,
            propagation_delay=config.propagation_delay,
            loss_rate=config.loss_rate,
            queue_config=queue_config,
            rng=rng_fwd,
            name=f"{config.name}-forward",
        )
        self.reverse = OneWayPipe(
            loop,
            config.reverse_trace,
            self._on_reverse_delivery,
            propagation_delay=config.propagation_delay,
            loss_rate=config.loss_rate,
            queue_config=queue_config,
            rng=rng_rev,
            name=f"{config.name}-reverse",
        )

    # ------------------------------------------------------------- wiring

    def attach_a(self, deliver: Callable[[Packet, float], None]) -> None:
        """Register the callback receiving packets addressed to endpoint A."""
        self._deliver_to_a = deliver

    def attach_b(self, deliver: Callable[[Packet, float], None]) -> None:
        """Register the callback receiving packets addressed to endpoint B."""
        self._deliver_to_b = deliver

    def send_from_a(self, packet: Packet) -> None:
        """Endpoint A transmits a packet towards endpoint B."""
        self.forward.send(packet, self.loop.now())

    def send_from_b(self, packet: Packet) -> None:
        """Endpoint B transmits a packet towards endpoint A."""
        self.reverse.send(packet, self.loop.now())

    # ------------------------------------------------------------ delivery

    def _on_forward_delivery(self, packet: Packet, now: float) -> None:
        if self._deliver_to_b is not None:
            self._deliver_to_b(packet, now)

    def _on_reverse_delivery(self, packet: Packet, now: float) -> None:
        if self._deliver_to_a is not None:
            self._deliver_to_a(packet, now)
