"""The discrete-event loop that drives every experiment."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.simulation.clock import Clock
from repro.simulation.events import Event


class EventLoop:
    """A priority-queue based discrete-event scheduler.

    Components schedule callbacks at absolute times (:meth:`schedule_at`) or
    relative delays (:meth:`schedule_after`); :meth:`run_until` advances the
    virtual clock, firing events in time order.  Ties are broken by insertion
    order, which makes runs deterministic for a fixed set of inputs.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self._heap: list[Event] = []
        self._sequence = 0
        self._processed = 0

    # ------------------------------------------------------------------ time

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now()

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------ scheduling

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``.

        Scheduling in the past raises ``ValueError`` — a component asking for
        that has a logic error that would otherwise silently corrupt timing.
        """
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now():.9f}, "
                f"requested={time:.9f}"
            )
        event = Event(time=float(time), sequence=self._sequence, callback=callback, args=args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now() + delay, callback, *args)

    # --------------------------------------------------------------- running

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time`` and advance the clock.

        The clock finishes exactly at ``end_time`` even if the last event
        fires earlier, so periodic observers see a consistent end of run.
        """
        if end_time < self.clock.now():
            raise ValueError(
                f"end_time {end_time:.9f} is before current time {self.clock.now():.9f}"
            )
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.fire()
            self._processed += 1
        self.clock.advance_to(end_time)

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or ``max_events`` events have fired)."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.fire()
            self._processed += 1
            fired += 1
