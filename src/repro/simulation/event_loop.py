"""The discrete-event loop that drives every experiment.

Scheduling is *batched*: events that land on the same instant are coalesced
into one heap entry (a FIFO bucket), so a dense delivery trace that releases
many packets per tick — each scheduling its propagation-delayed arrival at
the identical time — costs O(ticks) heap operations instead of O(packets).
The observable semantics are unchanged from a plain per-event heap: events
fire in time order, ties break by scheduling order, and
``events_processed`` / ``pending_events`` count individual events, never
buckets.  ``tests/test_event_loop_batching.py`` holds this loop to
bit-identical behaviour against an unbatched reference implementation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.simulation.clock import Clock
from repro.simulation.events import Event


class _Batch:
    """All events scheduled for one instant, in FIFO order.

    Ordered by ``(time, order)`` where ``order`` is the creation index of the
    batch; a batch created later (e.g. by an event rescheduling at its own
    fire time) sorts after an earlier batch at the same instant, which is
    exactly the unbatched heap's sequence-number tiebreak.
    """

    __slots__ = ("time", "order", "events")

    def __init__(self, time: float, order: int, events: List[Event]) -> None:
        self.time = time
        self.order = order
        self.events = events

    def __lt__(self, other: "_Batch") -> bool:
        # Equivalent to comparing (time, order) tuples, without building
        # them: this comparison runs once per heap sift on the hot path.
        if self.time != other.time:
            return self.time < other.time
        return self.order < other.order


class EventLoop:
    """A priority-queue based discrete-event scheduler.

    Components schedule callbacks at absolute times (:meth:`schedule_at`) or
    relative delays (:meth:`schedule_after`); :meth:`run_until` advances the
    virtual clock, firing events in time order.  Ties are broken by insertion
    order, which makes runs deterministic for a fixed set of inputs.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self._heap: List[_Batch] = []
        #: batches still accepting same-time appends, keyed by exact time
        self._open: Dict[float, _Batch] = {}
        self._sequence = 0
        self._batch_order = 0
        self._pending = 0
        self._processed = 0

    # ------------------------------------------------------------------ time

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now()

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones).

        Counts individual events, not coalesced batches: five events
        scheduled for the same instant report as five pending events.
        """
        return self._pending

    # ------------------------------------------------------------ scheduling

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``.

        Scheduling in the past raises ``ValueError`` — a component asking for
        that has a logic error that would otherwise silently corrupt timing.
        Scheduling at exactly the current instant is allowed and the event
        always fires: if the bucket for this instant is mid-drain (or was
        already drained), the event lands in a fresh batch that the loop has
        not popped yet, never in a dead one (``_close`` evicts a bucket from
        ``_open`` the moment it is popped).
        """
        time = float(time)
        if time < self.clock._now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now():.9f}, "
                f"requested={time:.9f}"
            )
        event = Event(time, self._sequence, callback, args)
        self._sequence += 1
        open_batches = self._open
        batch = open_batches.get(time)
        if batch is None:
            batch = _Batch(time, self._batch_order, [event])
            self._batch_order += 1
            open_batches[time] = batch
            heapq.heappush(self._heap, batch)
        else:
            batch.events.append(event)
        self._pending += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock._now + delay, callback, *args)

    # --------------------------------------------------------------- running

    def _close(self, batch: _Batch) -> None:
        """Stop routing same-time appends to a popped batch.

        Events scheduled at this instant from inside the batch's own
        callbacks open a fresh batch, which sorts after this one — the same
        ordering the unbatched heap gives later sequence numbers.
        """
        if self._open.get(batch.time) is batch:
            del self._open[batch.time]

    def _requeue_tail(self, batch: _Batch, index: int) -> None:
        """Put ``batch.events[index:]`` back at the front of its time slot.

        Keeps the batch's original order so the tail still precedes any
        batch opened at the same instant meanwhile; the unbatched loop gets
        this for free because unfired events simply stay in its heap.
        """
        if index >= len(batch.events):
            return
        rest = _Batch(batch.time, batch.order, batch.events[index:])
        heapq.heappush(self._heap, rest)
        if batch.time not in self._open:
            self._open[batch.time] = rest

    def _fire_batch(
        self,
        batch: _Batch,
        limit: Optional[int] = None,
        stop_before: Optional[Event] = None,
    ) -> tuple:
        """Fire a popped batch's events in FIFO order.

        Returns ``(fired, stopped)``.  Stops after ``limit`` fired events, or
        immediately *before* firing ``stop_before`` (identity comparison; a
        cancelled target is skipped like any cancelled event), re-queueing the
        rest either way.  A callback that raises also leaves the unfired tail
        queued (and ``pending_events`` exact), matching the unbatched loop
        where those events were never popped — the caller may catch the error
        and keep running.
        """
        events = batch.events
        count = len(events)
        fired = 0
        index = 0
        stopped = False
        advanced = False
        try:
            while index < count:
                if limit is not None and fired >= limit:
                    break
                event = events[index]
                # `event is stop_before` is never true for a None target,
                # so the explicit None check is folded into the identity
                # comparison on this per-event path.
                if event is stop_before and not event.cancelled:
                    stopped = True
                    break
                index += 1
                if event.cancelled:
                    continue
                if not advanced:
                    # One clock move covers the whole batch: every event in
                    # it shares batch.time, and callbacks never move the
                    # clock themselves.
                    self.clock.advance_to(batch.time)
                    advanced = True
                event.callback(*event.args)
                fired += 1
        finally:
            # Bookkeeping settles once per batch; on a raising callback the
            # counts cover exactly the events popped so far, matching the
            # unbatched loop where the tail was never popped.
            self._pending -= index
            self._processed += fired
            if index < count:
                self._requeue_tail(batch, index)
        return fired, stopped

    def run_until(self, end_time: float, stop_before: Optional[Event] = None) -> bool:
        """Run all events with ``time <= end_time`` and advance the clock.

        The clock finishes exactly at ``end_time`` even if the last event
        fires earlier, so periodic observers see a consistent end of run.

        With ``stop_before`` set, the loop pauses exactly before firing that
        event (leaving it and everything after it queued, the clock untouched)
        and returns ``True``; every event ordered ahead of it has fired, so a
        caller can inspect — or pre-compute work for — the paused instant and
        resume with another ``run_until`` call.  Returns ``False`` when the
        run reached ``end_time`` (the target was absent, cancelled, already
        fired, or scheduled later than ``end_time``).
        """
        if end_time < self.clock._now:
            raise ValueError(
                f"end_time {end_time:.9f} is before current time {self.clock.now():.9f}"
            )
        heap = self._heap
        open_batches = self._open
        pop = heapq.heappop
        fire = self._fire_batch
        while heap and heap[0].time <= end_time:
            batch = pop(heap)
            # _close(), inlined on the hot path.
            if open_batches.get(batch.time) is batch:
                del open_batches[batch.time]
            _, stopped = fire(batch, stop_before=stop_before)
            if stopped:
                return True
        self.clock.advance_to(end_time)
        return False

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or ``max_events`` events have fired)."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            batch = heapq.heappop(self._heap)
            self._close(batch)
            remaining = None if max_events is None else max_events - fired
            count, _ = self._fire_batch(batch, limit=remaining)
            fired += count
