"""Seeded random-number helpers.

Every stochastic component in the reproduction (channel models, Bernoulli
loss, videoconference jitter) takes an explicit ``numpy.random.Generator``.
Centralising construction here keeps seeding conventions in one place and
guarantees that two components given different stream names never share a
stream even when the experiment uses a single master seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None, stream: Optional[str] = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed and stream name.

    Args:
        seed: an integer master seed, an existing ``SeedSequence``, an
            existing ``Generator`` (returned unchanged when no stream name is
            given), or ``None`` for OS entropy.
        stream: optional label (e.g. ``"downlink-channel"``).  Different
            labels derived from the same master seed produce independent
            streams, so adding a new consumer never perturbs existing ones.
    """
    if isinstance(seed, np.random.Generator):
        if stream is None:
            return seed
        # Derive a child deterministic on (state, stream) without consuming
        # the parent stream's randomness irreproducibly.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return make_rng(child_seed, stream)

    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)

    if stream is not None:
        # Convert the stream label into spawn-key material so that streams
        # with different names are statistically independent.
        stream_key = [b for b in stream.encode("utf-8")]
        seq = np.random.SeedSequence(entropy=seq.entropy, spawn_key=tuple(stream_key))
    return np.random.default_rng(seq)
