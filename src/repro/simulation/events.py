"""Event records used by the event loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, sequence)``.  The sequence number is a
    monotonically increasing tiebreaker assigned by the event loop so that
    events scheduled for the same instant fire in FIFO order, which keeps the
    simulation deterministic.
    """

    time: float
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when it comes due."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)
