"""Fixed propagation-delay element.

Cellsim "takes in packets on two Ethernet interfaces, delays them for a
configurable amount of time (the propagation delay), and adds them to the
tail of a queue" (Section 4.2).  The paper measures about 20 ms of one-way
propagation delay on its cellular links and runs all experiments with that
value (40 ms minimum RTT); :data:`DEFAULT_PROPAGATION_DELAY` records it.
"""

from __future__ import annotations

from typing import Callable

from repro.simulation.event_loop import EventLoop
from repro.simulation.packet import Packet

#: one-way propagation delay used throughout the paper's evaluation (20 ms)
DEFAULT_PROPAGATION_DELAY = 0.020


class DelayBox:
    """Delays every packet by a fixed amount, preserving order.

    Args:
        loop: the event loop that provides time and scheduling.
        delay: fixed one-way delay in seconds (non-negative).
        deliver: callback receiving ``(packet, now)`` after the delay.
    """

    def __init__(
        self,
        loop: EventLoop,
        delay: float,
        deliver: Callable[[Packet, float], None],
    ) -> None:
        if delay < 0:
            raise ValueError(f"propagation delay must be non-negative, got {delay}")
        self._loop = loop
        self.delay = delay
        self._deliver = deliver
        self.packets_in_flight = 0

    def receive(self, packet: Packet, now: float) -> None:
        """Accept a packet and schedule its delivery ``delay`` seconds later."""
        self.packets_in_flight += 1
        self._loop.schedule_after(self.delay, self._emit, packet)

    def _emit(self, packet: Packet) -> None:
        self.packets_in_flight -= 1
        self._deliver(packet, self._loop.now())
