"""Multiplexing several protocol endpoints onto one side of a path.

The competing-traffic experiments (Section 5.7) run two client flows — a TCP
Cubic bulk download and a Skype call — over the *same* emulated cellular
link.  :class:`MultiplexProtocol` makes that possible with the existing
single-protocol hosts: it hosts several sub-protocols, forwards received
packets to the owner of the packet's flow, and lets every sub-protocol send
through the shared host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.packet import Packet

HEADER_MUX_FLOW = "mux_flow"


class _SubContext(HostContext):
    """Per-sub-protocol view of the shared host context."""

    def __init__(self, parent: HostContext, flow: str) -> None:
        super().__init__(parent._loop, parent._transmit, f"{parent.name}:{flow}")
        self._parent = parent
        self._flow = flow

    def send(self, packet: Packet) -> None:
        packet.headers[HEADER_MUX_FLOW] = self._flow
        packet.flow_id = self._flow
        self._parent.send(packet)


class MultiplexProtocol(Protocol):
    """Hosts several sub-protocols behind a single path endpoint.

    Received packets are dispatched by their ``mux_flow`` header (falling
    back to ``flow_id``); packets with an unknown flow are counted and
    dropped rather than raising, because cross-traffic experiments routinely
    carry flows that one endpoint does not terminate.
    """

    def __init__(self, flows: Dict[str, Protocol]) -> None:
        if not flows:
            raise ValueError("MultiplexProtocol needs at least one sub-protocol")
        self.flows = dict(flows)
        self.unclaimed_packets = 0
        # The mux ticks at the finest granularity any sub-protocol needs.
        intervals = [p.tick_interval for p in self.flows.values() if p.tick_interval]
        self.tick_interval = min(intervals) if intervals else None
        self._next_tick_due: Dict[str, float] = {}
        #: per-flow received packet log: flow -> list of (time, packet)
        self.received_by_flow: Dict[str, List[Tuple[float, Packet]]] = {
            name: [] for name in self.flows
        }

    def start(self, ctx: HostContext) -> None:
        super().start(ctx)
        now = ctx.now()
        for name, protocol in self.flows.items():
            protocol.start(_SubContext(ctx, name))
            if protocol.tick_interval is not None:
                self._next_tick_due[name] = now + protocol.tick_interval

    def on_packet(self, packet: Packet, now: float) -> None:
        flow = packet.headers.get(HEADER_MUX_FLOW, packet.flow_id)
        protocol = self._find_owner(flow)
        if protocol is None:
            self.unclaimed_packets += 1
            return
        owner_name = flow if flow in self.flows else self._owner_name(flow)
        self.received_by_flow.setdefault(owner_name, []).append((now, packet))
        protocol.on_packet(packet, now)

    def _owner_name(self, flow: str) -> Optional[str]:
        for name in self.flows:
            if flow.startswith(name):
                return name
        return None

    def _find_owner(self, flow: str) -> Optional[Protocol]:
        if flow in self.flows:
            return self.flows[flow]
        name = self._owner_name(flow)
        return self.flows[name] if name is not None else None

    def on_tick(self, now: float) -> None:
        for name, protocol in self.flows.items():
            if protocol.tick_interval is None:
                continue
            due = self._next_tick_due.get(name, now)
            while due <= now + 1e-12:
                protocol.on_tick(now)
                due += protocol.tick_interval
            self._next_tick_due[name] = due

    def stop(self, now: float) -> None:
        for protocol in self.flows.values():
            protocol.stop(now)
