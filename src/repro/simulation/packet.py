"""Packet representation shared by every protocol in the reproduction."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: MTU-sized packet, the unit the paper uses throughout (Section 3.1: rates
#: are expressed in MTU-sized packets per second; the Saturator sends
#: MTU-sized packets).
MTU_BYTES = 1500

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A simulated packet.

    Protocol-specific headers (Sprout forecasts, TCP sequence/ack numbers,
    videoconference frame ids, ...) travel in :attr:`headers`, a plain dict.
    Timing fields are filled in by the components the packet traverses so
    that metrics can be computed afterwards without any extra bookkeeping by
    the protocols themselves.
    """

    size: int = MTU_BYTES
    flow_id: str = "flow-0"
    headers: Dict[str, Any] = field(default_factory=dict)

    #: unique id, assigned automatically; used for tie-breaking and debugging
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    #: time the sending protocol handed the packet to the network
    sent_at: Optional[float] = None
    #: time the packet entered the bottleneck queue (after propagation delay)
    enqueued_at: Optional[float] = None
    #: time the packet left the bottleneck queue (dequeued by the link)
    dequeued_at: Optional[float] = None
    #: time the packet reached the receiving protocol
    delivered_at: Optional[float] = None
    #: set to True if a queue or loss process dropped the packet
    dropped: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent in the bottleneck queue, if the packet has left it."""
        if self.enqueued_at is None or self.dequeued_at is None:
            return None
        return self.dequeued_at - self.enqueued_at

    @property
    def one_way_delay(self) -> Optional[float]:
        """End-to-end delay from send to delivery, if delivered."""
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def copy_headers(self) -> Dict[str, Any]:
        """Return a shallow copy of the protocol headers."""
        return dict(self.headers)
