"""Deterministic discrete-event simulation substrate.

This package provides the building blocks every experiment in the
reproduction runs on: an event loop with a virtual clock, packets, queues,
propagation-delay boxes, and trace-driven links.  The design mirrors the
paper's Cellsim testbed (Section 4.2): packets entering a direction are
delayed by the propagation delay, appended to a queue, and released from the
head of the queue according to a recorded trace of delivery opportunities.

All timing is in seconds (floats) on a virtual clock; nothing here touches
wall-clock time, so every run is exactly reproducible.
"""

from repro.simulation.clock import Clock
from repro.simulation.event_loop import EventLoop
from repro.simulation.events import Event
from repro.simulation.packet import MTU_BYTES, Packet
from repro.simulation.queues import CoDelQueue, DropTailQueue, Queue
from repro.simulation.delay_box import DEFAULT_PROPAGATION_DELAY, DelayBox
from repro.simulation.link import TraceDrivenLink
from repro.simulation.random import make_rng
from repro.simulation.endpoints import Host, HostContext, Protocol
from repro.simulation.path import DuplexLinkConfig, DuplexPath, OneWayPipe

__all__ = [
    "DEFAULT_PROPAGATION_DELAY",
    "Host",
    "HostContext",
    "Protocol",
    "Clock",
    "Event",
    "EventLoop",
    "Packet",
    "MTU_BYTES",
    "Queue",
    "DropTailQueue",
    "CoDelQueue",
    "DelayBox",
    "TraceDrivenLink",
    "DuplexLinkConfig",
    "DuplexPath",
    "OneWayPipe",
    "make_rng",
]
