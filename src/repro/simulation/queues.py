"""Queue disciplines for the bottleneck link.

Two disciplines are provided:

* :class:`DropTailQueue` — the default behaviour of the paper's Cellsim: an
  (optionally bounded) FIFO that drops arriving packets when full.  Cellular
  networks are modelled with a very deep (effectively unbounded) buffer,
  which is what produces the "bufferbloat" delays the paper studies.
* :class:`CoDelQueue` — the CoDel active-queue-management algorithm
  (Nichols & Jacobson, ACM Queue 2012), following the published pseudocode.
  The paper adds CoDel to Cellsim's uplink and downlink queues to compare
  Sprout's end-to-end approach with an in-network deployment (Section 5.4).
  The dequeue-side state machine is held bit-for-bit against a direct
  transliteration of the published pseudocode by the differential suite in
  ``tests/test_codel_differential.py``.

:class:`QueueConfig` packages the choice of discipline and its parameters
into one picklable value, so the experiment layer (the ``aqm`` and
``qlimit`` grid axes, ``docs/scenarios.md``) can select the queue per cell
instead of it being fixed at link-build time.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.simulation.packet import Packet


class Queue:
    """Interface shared by all queue disciplines.

    A queue holds packets between their arrival at the bottleneck (after the
    propagation delay) and their release by the trace-driven link.  The link
    calls :meth:`dequeue` once per packet it is able to deliver.
    """

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Add ``packet`` to the queue.  Returns False if it was dropped."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet, or None if empty."""
        raise NotImplementedError

    def peek(self) -> Optional[Packet]:
        """Return the head-of-line packet without removing it."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def byte_length(self) -> int:
        """Total bytes currently queued."""
        raise NotImplementedError

    def drop_from_head_of_longest(self) -> None:  # pragma: no cover - tunnel only
        raise NotImplementedError


class DropTailQueue(Queue):
    """FIFO queue that drops arriving packets once a byte limit is reached.

    Args:
        byte_limit: maximum number of queued bytes; ``None`` means unbounded,
            matching the deep buffers of the cellular networks in the paper.
        on_drop: optional callback invoked with each dropped packet, used by
            experiments that count losses.
    """

    def __init__(
        self,
        byte_limit: Optional[int] = None,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        if byte_limit is not None and byte_limit <= 0:
            raise ValueError(f"byte_limit must be positive or None, got {byte_limit}")
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.byte_limit = byte_limit
        self.on_drop = on_drop
        self.drops = 0
        self.enqueues = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.byte_limit is not None and self._bytes + packet.size > self.byte_limit:
            packet.dropped = True
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueues += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        packet.dequeued_at = now
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def byte_length(self) -> int:
        return self._bytes


class CoDelQueue(Queue):
    """CoDel ("controlled delay") active queue management.

    Implementation of the dequeue-side algorithm from the CoDel pseudocode:
    the sojourn time of each departing packet is compared with ``target``
    (5 ms by default); once the sojourn time has stayed above the target for
    an ``interval`` (100 ms by default) the queue enters the dropping state
    and drops packets at increasing frequency (interval / sqrt(count)) until
    the sojourn time falls below the target.
    """

    TARGET = 0.005
    INTERVAL = 0.100
    MAX_PACKET = 1500

    def __init__(
        self,
        target: float = TARGET,
        interval: float = INTERVAL,
        byte_limit: Optional[int] = None,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        if target <= 0 or interval <= 0:
            raise ValueError("CoDel target and interval must be positive")
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.target = target
        self.interval = interval
        self.byte_limit = byte_limit
        self.on_drop = on_drop

        # CoDel state machine
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0
        self._dropping = False

        self.drops = 0
        self.enqueues = 0

    # -------------------------------------------------------------- enqueue

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.byte_limit is not None and self._bytes + packet.size > self.byte_limit:
            packet.dropped = True
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueues += 1
        return True

    # -------------------------------------------------------------- dequeue

    def _do_dequeue(self, now: float) -> tuple[Optional[Packet], bool]:
        """Pop a packet and report whether its sojourn time is acceptable.

        Returns ``(packet, ok_to_drop)`` following the pseudocode's
        ``dodeque`` helper.  ``ok_to_drop`` is True when the sojourn time has
        exceeded the target continuously for at least one interval.
        """
        if not self._queue:
            self._first_above_time = 0.0
            return None, False
        packet = self._queue.popleft()
        self._bytes -= packet.size
        sojourn = now - (packet.enqueued_at if packet.enqueued_at is not None else now)
        ok_to_drop = False
        if sojourn < self.target or self._bytes <= self.MAX_PACKET:
            # Went below target: leave the dropping-eligible state.
            self._first_above_time = 0.0
        else:
            if self._first_above_time == 0.0:
                self._first_above_time = now + self.interval
            elif now >= self._first_above_time:
                ok_to_drop = True
        return packet, ok_to_drop

    def _drop(self, packet: Packet) -> None:
        packet.dropped = True
        self.drops += 1
        if self.on_drop is not None:
            self.on_drop(packet)

    def dequeue(self, now: float) -> Optional[Packet]:
        packet, ok_to_drop = self._do_dequeue(now)
        if packet is None:
            self._dropping = False
            return None

        if self._dropping:
            if not ok_to_drop:
                # Sojourn time went below target: leave the dropping state.
                self._dropping = False
            elif now >= self._drop_next:
                while now >= self._drop_next and self._dropping:
                    self._drop(packet)
                    self._count += 1
                    packet, ok_to_drop = self._do_dequeue(now)
                    if not ok_to_drop:
                        self._dropping = False
                    else:
                        self._drop_next = self._control_law(self._drop_next)
                if packet is None:
                    return None
        elif ok_to_drop and (
            now - self._drop_next < self.interval
            or now - self._first_above_time >= self.interval
        ):
            self._drop(packet)
            packet, ok_to_drop = self._do_dequeue(now)
            self._dropping = True
            # Re-entering the dropping state soon after leaving it resumes
            # from (almost) the previous drop rate rather than restarting the
            # sqrt control law from count = 1.
            if now - self._drop_next < self.interval:
                self._count = self._count - 2 if self._count > 2 else 1
            else:
                self._count = 1
            self._drop_next = self._control_law(now)
            if packet is None:
                return None

        packet.dequeued_at = now
        return packet

    def _control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(self._count)

    # ------------------------------------------------------------ inspection

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def byte_length(self) -> int:
        return self._bytes


#: queue-discipline selectors for :class:`QueueConfig` (the ``aqm`` axis)
AQM_DROP_TAIL = 0
AQM_CODEL = 1


@dataclass(frozen=True)
class QueueConfig:
    """Picklable description of a bottleneck queue, buildable per cell.

    This is what the experiment layer sweeps: the ``aqm`` axis toggles the
    discipline, the ``qlimit`` axis sets the byte limit, and the resolved
    config travels (through :class:`~repro.traces.networks.LinkSpec` and the
    duplex-path config) into the link's queue construction.

    Attributes:
        aqm: :data:`AQM_DROP_TAIL` (0) or :data:`AQM_CODEL` (1); ``None``
            inherits the context's default (a scheme such as Cubic-CoDel may
            require CoDel even when only ``qlimit`` is swept).
        byte_limit: maximum queued bytes; ``None`` means the deep
            (effectively unbounded) buffer of the paper's cellular links,
            or an inherited context default where one exists.
        codel_target: CoDel's target sojourn time in seconds.
        codel_interval: CoDel's estimation interval in seconds.
    """

    aqm: Optional[int] = None
    byte_limit: Optional[int] = None
    codel_target: float = CoDelQueue.TARGET
    codel_interval: float = CoDelQueue.INTERVAL

    def __post_init__(self) -> None:
        if self.aqm not in (None, AQM_DROP_TAIL, AQM_CODEL):
            raise ValueError(
                f"aqm must be {AQM_DROP_TAIL} (drop-tail), {AQM_CODEL} (CoDel), "
                f"or None (inherit), got {self.aqm!r}"
            )
        if self.byte_limit is not None and self.byte_limit <= 0:
            raise ValueError(
                f"byte_limit must be positive or None, got {self.byte_limit}"
            )
        if self.codel_target <= 0 or self.codel_interval <= 0:
            raise ValueError("CoDel target and interval must be positive")

    def resolve(
        self, use_codel: bool = False, byte_limit: Optional[int] = None
    ) -> "QueueConfig":
        """This config with inherited fields filled from context defaults."""
        aqm = self.aqm
        if aqm is None:
            aqm = AQM_CODEL if use_codel else AQM_DROP_TAIL
        limit = self.byte_limit if self.byte_limit is not None else byte_limit
        return QueueConfig(
            aqm=aqm,
            byte_limit=limit,
            codel_target=self.codel_target,
            codel_interval=self.codel_interval,
        )

    def build(self, on_drop: Optional[Callable[[Packet], None]] = None) -> Queue:
        """Construct the described queue (``aqm=None`` builds drop-tail)."""
        if self.aqm == AQM_CODEL:
            return CoDelQueue(
                target=self.codel_target,
                interval=self.codel_interval,
                byte_limit=self.byte_limit,
                on_drop=on_drop,
            )
        return DropTailQueue(byte_limit=self.byte_limit, on_drop=on_drop)


def drain(queue: Queue, now: float) -> List[Packet]:
    """Remove and return every packet currently in ``queue``.

    Utility used by tests and by the tunnel when tearing down flows.
    """
    packets: List[Packet] = []
    while True:
        packet = queue.dequeue(now)
        if packet is None:
            return packets
        packets.append(packet)
