"""Trace-driven bottleneck link.

This is the heart of the Cellsim emulator (Section 4.2): packets are released
from the head of the queue according to a trace of delivery opportunities
previously recorded by the Saturator (or generated synthetically).  Each
opportunity is worth one MTU of bytes; if the queue is empty when an
opportunity occurs, the opportunity is wasted.  Accounting is done per byte
(footnote 6): a single 1500-byte opportunity can drain fifteen 100-byte
packets, and any unused credit is discarded once the queue is empty.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.simulation.event_loop import EventLoop
from repro.simulation.packet import MTU_BYTES, Packet
from repro.simulation.queues import DropTailQueue, Queue


class TraceDrivenLink:
    """Releases queued packets at the times recorded in a delivery trace.

    Args:
        loop: event loop providing the virtual clock.
        delivery_times: sorted sequence of times (seconds) at which the link
            is able to deliver ``bytes_per_opportunity`` bytes.
        deliver: callback receiving ``(packet, now)`` for each released packet.
        queue: queue discipline feeding the link; a fresh unbounded
            :class:`DropTailQueue` by default.
        bytes_per_opportunity: bytes deliverable per trace entry (one MTU).
        loop_trace: if True, the trace is replayed cyclically so experiments
            may run longer than the recorded duration, as Cellsim does.
    """

    def __init__(
        self,
        loop: EventLoop,
        delivery_times: Sequence[float],
        deliver: Callable[[Packet, float], None],
        queue: Optional[Queue] = None,
        bytes_per_opportunity: int = MTU_BYTES,
        loop_trace: bool = True,
    ) -> None:
        if bytes_per_opportunity <= 0:
            raise ValueError("bytes_per_opportunity must be positive")
        if len(delivery_times) == 0:
            raise ValueError("delivery trace must contain at least one opportunity")
        self._loop = loop
        self._deliver = deliver
        self.queue = queue if queue is not None else DropTailQueue()
        self.bytes_per_opportunity = bytes_per_opportunity
        self.loop_trace = loop_trace

        self._times: List[float] = sorted(float(t) for t in delivery_times)
        if self._times[0] < 0:
            raise ValueError("delivery times must be non-negative")
        self._trace_duration = max(self._times[-1], 1e-9)
        self._next_index = 0
        self._cycle_offset = 0.0
        self._credit = 0

        # Statistics used by the metrics layer.
        self.opportunities = 0
        self.wasted_opportunities = 0
        self.bytes_delivered = 0
        self.packets_delivered = 0

        self._schedule_next_opportunity()

    # ----------------------------------------------------------- ingestion

    def receive(self, packet: Packet, now: float) -> None:
        """Packet arrives at the bottleneck: append to the queue."""
        self.queue.enqueue(packet, now)

    # -------------------------------------------------------- trace replay

    def _next_opportunity_time(self) -> Optional[float]:
        if self._next_index < len(self._times):
            return self._cycle_offset + self._times[self._next_index]
        if not self.loop_trace:
            return None
        # Wrap around: restart the trace after its full duration.
        self._cycle_offset += self._trace_duration
        self._next_index = 0
        return self._cycle_offset + self._times[self._next_index]

    def _schedule_next_opportunity(self) -> None:
        t = self._next_opportunity_time()
        if t is None:
            return
        # Guard against opportunities at t < now (possible on the first cycle
        # if the trace starts at 0 and the loop has already advanced).
        t = max(t, self._loop.now())
        self._loop.schedule_at(t, self._on_opportunity)

    def _on_opportunity(self) -> None:
        now = self._loop.now()
        self._next_index += 1
        self.opportunities += 1
        self._credit += self.bytes_per_opportunity

        delivered_any = False
        while True:
            head = self.queue.peek()
            if head is None:
                break
            if head.size > self._credit:
                break
            packet = self.queue.dequeue(now)
            if packet is None:
                # The discipline (e.g. CoDel) dropped everything it popped.
                break
            self._credit -= packet.size
            self.bytes_delivered += packet.size
            self.packets_delivered += 1
            delivered_any = True
            self._deliver(packet, now)

        if len(self.queue) == 0:
            # Unused credit is wasted when there is nothing left to send
            # (footnote 6: an opportunity that finds an empty queue is lost).
            if not delivered_any:
                self.wasted_opportunities += 1
            self._credit = 0

        self._schedule_next_opportunity()
