"""CoDel active queue management for Cellsim (Section 5.4).

The queue discipline itself lives with the other disciplines in
:mod:`repro.simulation.queues`; this module re-exports it under the name the
paper uses ("Cellsim also includes an optional implementation of CoDel,
based on the pseudocode in [17]") and records the published defaults.
"""

from __future__ import annotations

from repro.simulation.queues import CoDelQueue

#: CoDel's target sojourn time (5 ms) from Nichols & Jacobson.
CODEL_TARGET = CoDelQueue.TARGET
#: CoDel's estimation interval (100 ms).
CODEL_INTERVAL = CoDelQueue.INTERVAL

__all__ = ["CoDelQueue", "CODEL_TARGET", "CODEL_INTERVAL"]
