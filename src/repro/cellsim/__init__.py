"""Cellsim: trace-driven emulation of cellular links (Section 4.2)."""

from repro.cellsim.cellsim import Cellsim, build_cellsim, cellsim_for_link, traces_for_link
from repro.cellsim.codel import CODEL_INTERVAL, CODEL_TARGET, CoDelQueue
from repro.cellsim.loss import BernoulliLossProcess

__all__ = [
    "Cellsim",
    "build_cellsim",
    "cellsim_for_link",
    "traces_for_link",
    "CoDelQueue",
    "CODEL_TARGET",
    "CODEL_INTERVAL",
    "BernoulliLossProcess",
]
