"""Stochastic packet-loss injection (Section 5.6).

The paper studies Sprout's loss resilience by making Cellsim drop packets
"from the tail of the queue according to a specified random drop rate" —
independent Bernoulli drops in each direction.  The loss decision is applied
by :class:`repro.simulation.path.OneWayPipe`; this module holds the reusable
loss process so that other components (e.g. the tunnel) can share the same
behaviour and so it can be tested in isolation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.simulation.random import SeedLike, make_rng


class BernoulliLossProcess:
    """Drops each packet independently with a fixed probability."""

    def __init__(self, loss_rate: float, seed: SeedLike = 0, stream: str = "loss") -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = loss_rate
        self._rng: np.random.Generator = make_rng(seed, stream)
        self.offered = 0
        self.dropped = 0

    def should_drop(self) -> bool:
        """Decide the fate of one packet; updates the loss statistics."""
        self.offered += 1
        if self.loss_rate <= 0.0:
            return False
        drop = bool(self._rng.random() < self.loss_rate)
        if drop:
            self.dropped += 1
        return drop

    @property
    def observed_loss_rate(self) -> float:
        """Empirical drop fraction so far (0 before any packet was offered)."""
        if self.offered == 0:
            return 0.0
        return self.dropped / self.offered

    def reset_statistics(self) -> None:
        self.offered = 0
        self.dropped = 0
