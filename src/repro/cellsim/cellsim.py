"""Cellsim: the trace-driven cellular-link emulator (Section 4.2).

``Cellsim`` bundles an event loop with a duplex emulated link and the two
hosts under test, mirroring the paper's block diagram (Figure 5): the
application endpoints talk through Cellsim, which delays packets by the
propagation delay, queues them, and releases them according to the recorded
trace — optionally after Bernoulli loss or under CoDel queue management.

The experiment harness uses :func:`build_cellsim` (from explicit traces) or
:func:`cellsim_for_link` (from one of the modelled networks, using the
network's other direction for feedback, as the paper's testbed does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.simulation.delay_box import DEFAULT_PROPAGATION_DELAY
from repro.simulation.endpoints import Host, Protocol
from repro.simulation.event_loop import EventLoop
from repro.simulation.path import DuplexLinkConfig, DuplexPath
from repro.simulation.queues import QueueConfig
from repro.traces.networks import (
    DEFAULT_TRACE_DURATION,
    LinkSpec,
    get_network,
    link_trace,
)


@dataclass
class Cellsim:
    """An assembled emulation: event loop, duplex path, and the two hosts."""

    loop: EventLoop
    path: DuplexPath
    sender_host: Host
    receiver_host: Host
    forward_trace: Sequence[float]
    reverse_trace: Sequence[float]

    def run(self, duration: float) -> None:
        """Start both hosts, run the emulation, and stop them."""
        self.sender_host.start()
        self.receiver_host.start()
        self.loop.run_until(duration)
        self.sender_host.stop()
        self.receiver_host.stop()

    @property
    def link_name(self) -> str:
        return self.path.config.name


def build_cellsim(
    sender: Protocol,
    receiver: Protocol,
    forward_trace: Sequence[float],
    reverse_trace: Sequence[float],
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    loss_rate: float = 0.0,
    use_codel: bool = False,
    queue_byte_limit: Optional[int] = None,
    queue: Optional[QueueConfig] = None,
    name: str = "cellsim",
    seed: int = 0,
) -> Cellsim:
    """Wire a sender and receiver protocol through an emulated duplex link.

    ``queue`` selects the bottleneck discipline explicitly (the ``aqm`` /
    ``qlimit`` grid axes); its inherit-marked fields fall back to
    ``use_codel`` / ``queue_byte_limit``.
    """
    loop = EventLoop()
    config = DuplexLinkConfig(
        forward_trace=forward_trace,
        reverse_trace=reverse_trace,
        propagation_delay=propagation_delay,
        loss_rate=loss_rate,
        use_codel=use_codel,
        queue_byte_limit=queue_byte_limit,
        queue=queue,
        seed=seed,
        name=name,
    )
    path = DuplexPath(loop, config)
    sender_host = Host(loop, sender, path.send_from_a, name=f"{name}-sender")
    receiver_host = Host(loop, receiver, path.send_from_b, name=f"{name}-receiver")
    path.attach_a(sender_host.deliver)
    path.attach_b(receiver_host.deliver)
    return Cellsim(
        loop=loop,
        path=path,
        sender_host=sender_host,
        receiver_host=receiver_host,
        forward_trace=forward_trace,
        reverse_trace=reverse_trace,
    )


def traces_for_link(
    link: LinkSpec, duration: float = DEFAULT_TRACE_DURATION
) -> tuple:
    """(data_trace, feedback_trace) for an experiment on ``link``.

    The data direction uses the link under test; feedback travels over the
    same network's other direction, as in the paper's testbed where both
    directions of the device under test run through Cellsim.  A custom link
    whose network is not in the registry (e.g. the analytic oracle's steady
    test channel) uses an independent realisation of its own channel for
    feedback instead.
    """
    data_trace = link_trace(link, duration)
    try:
        network = get_network(link.network)
    except KeyError:
        feedback_trace = link_trace(link, duration, seed_offset=1)
    else:
        other = network.uplink if link.direction == "downlink" else network.downlink
        feedback_trace = link_trace(other, duration)
    return data_trace, feedback_trace


def cellsim_for_link(
    sender: Protocol,
    receiver: Protocol,
    link: LinkSpec,
    duration: float = DEFAULT_TRACE_DURATION,
    loss_rate: float = 0.0,
    use_codel: bool = False,
    queue_byte_limit: Optional[int] = None,
    queue: Optional[QueueConfig] = None,
) -> Cellsim:
    """Cellsim configured for one of the modelled cellular links.

    When the link spec itself carries a queue configuration (a sweep-built
    variant from the ``aqm``/``qlimit`` axes), it is used unless ``queue``
    overrides it explicitly; a link-spec propagation delay (the ``rtt``
    sweep axis) likewise replaces the emulator default.
    """
    data_trace, feedback_trace = traces_for_link(link, duration)
    if queue is None:
        queue = link.queue
    propagation = (
        link.propagation_delay
        if link.propagation_delay is not None
        else DEFAULT_PROPAGATION_DELAY
    )
    return build_cellsim(
        sender=sender,
        receiver=receiver,
        forward_trace=data_trace,
        reverse_trace=feedback_trace,
        propagation_delay=propagation,
        loss_rate=loss_rate,
        use_codel=use_codel,
        queue_byte_limit=queue_byte_limit,
        queue=queue,
        name=link.name,
        seed=link.seed,
    )
