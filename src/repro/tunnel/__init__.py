"""SproutTunnel: per-flow queues over a Sprout connection (Section 4.3)."""

from repro.tunnel.flow_queue import FlowQueue, FlowQueueSet
from repro.tunnel.scheduler import RoundRobinScheduler
from repro.tunnel.tunnel import (
    HEADER_TUNNEL_FLOW,
    HEADER_TUNNEL_PAYLOAD,
    SproutTunnel,
    TunnelEgress,
    TunnelIngress,
    make_tunnel,
)

__all__ = [
    "FlowQueue",
    "FlowQueueSet",
    "RoundRobinScheduler",
    "SproutTunnel",
    "TunnelEgress",
    "TunnelIngress",
    "make_tunnel",
    "HEADER_TUNNEL_FLOW",
    "HEADER_TUNNEL_PAYLOAD",
]
