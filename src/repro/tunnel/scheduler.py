"""Round-robin window filling for SproutTunnel (Section 4.3)."""

from __future__ import annotations

from typing import List

from repro.simulation.packet import Packet
from repro.tunnel.flow_queue import FlowQueueSet


class RoundRobinScheduler:
    """Fills a byte budget from the per-flow queues, one packet per turn.

    The scheduler remembers where the previous round stopped so that no flow
    is systematically favoured, which is what gives interactive flows their
    fair share of the Sprout window alongside a bulk transfer.
    """

    def __init__(self, queues: FlowQueueSet) -> None:
        self.queues = queues
        self._next_index = 0

    def take(self, budget_bytes: int) -> List[Packet]:
        """Remove packets from the queues, round-robin, up to ``budget_bytes``.

        A flow whose head-of-line packet does not fit in the remaining
        budget is skipped this round (its packet stays queued); the round
        ends when no pending flow can contribute another packet.
        """
        if budget_bytes <= 0:
            return []
        taken: List[Packet] = []
        remaining = budget_bytes

        while remaining > 0:
            pending = self.queues.pending_flows()
            if not pending:
                break
            progressed = False
            # Start each sweep from the rotation point.
            start = self._next_index % len(pending)
            order = pending[start:] + pending[:start]
            for flow_id in order:
                queue = self.queues.queue_for(flow_id)
                head = queue.peek()
                if head is None or head.size > remaining:
                    continue
                packet = queue.pop()
                assert packet is not None
                taken.append(packet)
                remaining -= packet.size
                progressed = True
                self._next_index += 1
                if remaining <= 0:
                    break
            if not progressed:
                break
        return taken
