"""SproutTunnel: carrying arbitrary client traffic over Sprout (Section 4.3).

The tunnel gives each client flow "the abstraction of a low-delay
connection, without modifying carrier equipment": client packets entering
the tunnel are placed in per-flow queues at the ingress, the Sprout window
is filled from those queues in round-robin order, and the total amount of
queued data is capped at the receiver's most recent forecast of how much the
link can deliver over the forecast horizon — excess is dropped from the head
of the longest queue, which acts as a dynamic traffic shaper.

The tunnel here carries client traffic in the data direction (the direction
under test); client feedback (TCP ACKs, videoconference receiver reports)
returns over the same emulated link's reverse direction alongside Sprout's
own forecast feedback.  This matches the paper's downlink experiment, where
the uplink is lightly loaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.connection import SproutConfig
from repro.core.forecaster import BayesianForecaster, EWMAForecaster
from repro.core.packets import parse_data_header
from repro.core.receiver import SproutReceiver
from repro.core.sender import SproutSender
from repro.simulation.endpoints import HostContext, Protocol
from repro.simulation.packet import Packet
from repro.tunnel.flow_queue import FlowQueueSet
from repro.tunnel.scheduler import RoundRobinScheduler

HEADER_TUNNEL_PAYLOAD = "tunnel_payload"
HEADER_TUNNEL_FLOW = "tunnel_flow"


class TunnelIngress:
    """Sender-side tunnel endpoint: per-flow queues feeding the Sprout window."""

    def __init__(self, config: Optional[SproutConfig] = None) -> None:
        self.config = config if config is not None else SproutConfig()
        self.queues = FlowQueueSet()
        self.scheduler = RoundRobinScheduler(self.queues)
        if self.config.use_ewma:
            forecaster = EWMAForecaster(alpha=self.config.ewma_alpha)
        else:
            forecaster = BayesianForecaster(confidence=self.config.confidence)
        self.receiver_forecaster = forecaster
        self.sprout_sender = SproutSender(
            lookahead_ticks=self.config.lookahead_ticks,
            tick_interval=self.config.tick_interval,
            heartbeat_interval=self.config.heartbeat_interval,
            bootstrap_packets_per_tick=self.config.bootstrap_packets_per_tick,
            packet_source=self._fill_window,
            flow_id="sprout-tunnel",
        )
        self.accepted = 0

    # ------------------------------------------------------- client ingress

    def accept(self, flow_id: str, packet: Packet) -> None:
        """A client packet enters the tunnel."""
        self.accepted += 1
        packet.headers[HEADER_TUNNEL_FLOW] = flow_id
        self.queues.enqueue(flow_id, packet)
        self._update_queue_limit()

    #: lower bound on the shared queue limit (bytes).  A forecast of zero
    #: (e.g. right after an outage) must not strangle the tunnel completely,
    #: or Sprout would have nothing to send and no way to relearn the rate.
    MIN_QUEUE_LIMIT_BYTES = 2 * 1500

    def _update_queue_limit(self) -> None:
        forecast = self.sprout_sender._forecast
        if forecast is None:
            return
        # "The total queue length of all flows is limited to the receiver's
        # most recent estimate of the number of packets that can be
        # delivered over the life of the forecast."
        limit = int(float(np.max(forecast)))
        self.queues.set_limit(max(limit, self.MIN_QUEUE_LIMIT_BYTES))

    # ----------------------------------------------------- window provider

    def _fill_window(self, now: float, budget_bytes: int) -> List[Packet]:
        self._update_queue_limit()
        return self.scheduler.take(budget_bytes)


class TunnelEgress(SproutReceiver):
    """Receiver-side tunnel endpoint: unwraps client packets and delivers them.

    It behaves exactly like a Sprout receiver (inference, forecasts,
    feedback) and additionally hands each tunnelled client packet to the
    callback registered for its flow.
    """

    def __init__(self, config: Optional[SproutConfig] = None) -> None:
        cfg = config if config is not None else SproutConfig()
        if cfg.use_ewma:
            forecaster = EWMAForecaster(alpha=cfg.ewma_alpha)
        else:
            forecaster = BayesianForecaster(confidence=cfg.confidence)
        super().__init__(
            forecaster=forecaster,
            feedback_interval_ticks=cfg.feedback_interval_ticks,
            flow_id="sprout-tunnel",
        )
        self._flow_handlers: Dict[str, Callable[[Packet, float], None]] = {}
        #: (time, flow, packet) for every delivered client packet
        self.delivered_log: List[Tuple[float, str, Packet]] = []

    def register_flow(self, flow_id: str, handler: Callable[[Packet, float], None]) -> None:
        """Register the local delivery callback for one client flow."""
        self._flow_handlers[flow_id] = handler

    def on_packet(self, packet: Packet, now: float) -> None:
        super().on_packet(packet, now)
        if parse_data_header(packet) is None:
            return
        flow = packet.headers.get(HEADER_TUNNEL_FLOW)
        if flow is None:
            return  # a bootstrap filler or heartbeat, nothing to unwrap
        self.delivered_log.append((now, flow, packet))
        handler = self._flow_handlers.get(flow)
        if handler is not None:
            handler(packet, now)


@dataclass
class SproutTunnel:
    """The full tunnel: ingress (with its Sprout sender) and egress."""

    ingress: TunnelIngress
    egress: TunnelEgress
    config: SproutConfig = field(default_factory=SproutConfig)

    @property
    def sender_protocol(self) -> SproutSender:
        """The protocol to attach to the sending side of the emulated link."""
        return self.ingress.sprout_sender

    @property
    def receiver_protocol(self) -> TunnelEgress:
        """The protocol to attach to the receiving side of the emulated link."""
        return self.egress

    @property
    def dropped_for_limit(self) -> int:
        """Client packets dropped by the tunnel's dynamic queue management."""
        return self.ingress.queues.dropped_for_limit


def make_tunnel(config: Optional[SproutConfig] = None) -> SproutTunnel:
    """Build a SproutTunnel with the given Sprout configuration."""
    cfg = config if config is not None else SproutConfig()
    return SproutTunnel(ingress=TunnelIngress(cfg), egress=TunnelEgress(cfg), config=cfg)
