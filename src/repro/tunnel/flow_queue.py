"""Per-flow queues for SproutTunnel (Section 4.3).

SproutTunnel "separates each flow into its own queue, and fill[s] up the
Sprout window in round-robin fashion among the flows that have pending
data.  The total queue length of all flows is limited to the receiver's most
recent estimate of the number of packets that can be delivered over the life
of the forecast.  When the queue lengths exceed this value, the tunnel
endpoints drop packets from the head of the longest queue."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.simulation.packet import Packet


class FlowQueue:
    """A FIFO of client packets belonging to one tunnelled flow."""

    def __init__(self, flow_id: str) -> None:
        self.flow_id = flow_id
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0

    def push(self, packet: Packet) -> None:
        self._packets.append(packet)
        self._bytes += packet.size
        self.enqueued += 1

    def pop(self) -> Optional[Packet]:
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        return packet

    def drop_head(self) -> Optional[Packet]:
        """Remove the head-of-line packet as a deliberate drop."""
        packet = self.pop()
        if packet is not None:
            packet.dropped = True
            self.dropped += 1
        return packet

    def peek(self) -> Optional[Packet]:
        return self._packets[0] if self._packets else None

    @property
    def byte_length(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._packets)


class FlowQueueSet:
    """All of a tunnel endpoint's per-flow queues plus the shared byte limit."""

    def __init__(self) -> None:
        self._queues: Dict[str, FlowQueue] = {}
        self.total_limit_bytes: Optional[int] = None
        self.dropped_for_limit = 0

    # --------------------------------------------------------------- queues

    def queue_for(self, flow_id: str) -> FlowQueue:
        """Get (or lazily create) the queue of ``flow_id``."""
        if flow_id not in self._queues:
            self._queues[flow_id] = FlowQueue(flow_id)
        return self._queues[flow_id]

    def flows(self) -> List[str]:
        return list(self._queues.keys())

    @property
    def total_bytes(self) -> int:
        return sum(q.byte_length for q in self._queues.values())

    @property
    def total_packets(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending_flows(self) -> List[str]:
        """Flows that currently have queued packets, in insertion order."""
        return [name for name, q in self._queues.items() if len(q) > 0]

    # ------------------------------------------------------------ admission

    def set_limit(self, limit_bytes: Optional[int]) -> None:
        """Update the shared queue limit (the forecast's deliverable bytes)."""
        if limit_bytes is not None and limit_bytes < 0:
            raise ValueError("queue limit must be non-negative")
        self.total_limit_bytes = limit_bytes

    def enqueue(self, flow_id: str, packet: Packet) -> None:
        """Add a client packet, enforcing the shared limit by head drops.

        The paper's tunnel drops from the *head of the longest queue* when
        the total exceeds the forecast-derived limit, which keeps newly
        arriving interactive packets and penalises the flow responsible for
        the backlog (the bulk transfer).
        """
        self.queue_for(flow_id).push(packet)
        if self.total_limit_bytes is None:
            return
        while self.total_bytes > self.total_limit_bytes and self.total_packets > 1:
            longest = max(self._queues.values(), key=lambda q: q.byte_length)
            if longest.drop_head() is None:  # pragma: no cover - defensive
                break
            self.dropped_for_limit += 1
