"""Setup shim.

The canonical project metadata lives in pyproject.toml; this file exists so
that ``pip install -e .`` works in offline environments that lack the
``wheel`` package required by PEP 517 editable builds.

Pytest configuration (including the ``perf`` marker used by the benchmark
harness) is registered in pytest.ini.
"""

from setuptools import setup

setup()
