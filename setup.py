"""Setup shim.

The canonical project metadata lives in pyproject.toml; this file exists so
that ``pip install -e .`` works in offline environments that lack the
``wheel`` package required by PEP 517 editable builds.
"""

from setuptools import setup

setup()
