"""Setup shim.

This file exists so that ``pip install -e .`` works in offline environments
that lack the ``wheel`` package required by PEP 517 editable builds.

Pytest configuration (including the ``perf`` marker used by the benchmark
harness and the fast ``-m "not perf"`` smoke job) is registered in
pytest.ini; the coverage gate lives in scripts/coverage_gate.py and needs
the ``cov`` extra below.
"""

from setuptools import setup

setup(
    extras_require={
        # the fast suite and the property-based event-loop tests
        "test": ["pytest", "hypothesis"],
        # scripts/coverage_gate.py: pytest --cov=repro with a floor
        "cov": ["pytest", "pytest-cov", "coverage"],
    },
)
