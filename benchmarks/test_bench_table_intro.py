"""Benchmark: regenerate the introduction's first table (every scheme
relative to Sprout, averaged over all links).

Paper reference points (averages over the paper's eight links): Sprout
carries ~2.2x Skype's bit rate with ~7.9x less self-inflicted delay, beats
Hangout and Facetime by similar margins, achieves multi-fold delay
reductions against the delay-based TCPs, and trades some throughput against
Cubic for a ~79x delay reduction.
"""

from __future__ import annotations

from repro.experiments.tables import intro_table, render_intro_table


def test_bench_table_intro(benchmark, measurement_matrix):
    comparisons = benchmark.pedantic(
        lambda: intro_table(results=measurement_matrix.results), rounds=1, iterations=1
    )
    print()
    print(render_intro_table(comparisons))

    by_scheme = {c.scheme: c for c in comparisons}
    assert by_scheme["Sprout"].speedup == 1.0

    # Qualitative shape of the paper's table: Sprout's delay advantage over
    # the videoconference applications is many-fold, while its throughput is
    # at least competitive.  (The paper reports 1.9-4.4x throughput gains;
    # our synthetic slow 3G links make the cautious forecast give some of
    # that back — see EXPERIMENTS.md for the per-link discussion.)
    for app in ("Skype", "Google Hangout", "Facetime"):
        assert by_scheme[app].speedup > 0.8
        assert by_scheme[app].delay_reduction > 3.0

    # Cubic out-throughputs Sprout (speedup below 1) but pays an enormous
    # delay penalty.
    assert by_scheme["Cubic"].speedup < 1.0
    assert by_scheme["Cubic"].delay_reduction > 5.0

    # The delay-triggered schemes sit in between.
    assert by_scheme["Vegas"].delay_reduction >= 1.0
    assert by_scheme["LEDBAT"].delay_reduction >= 1.0
