"""Benchmark: regenerate the Section 5.7 table (a Cubic bulk download and a
Skype call over the Verizon LTE downlink, run directly vs through
SproutTunnel).

Paper reference points: running both flows through SproutTunnel cuts
Skype's 95% delay by an order of magnitude (6.0 s -> 0.17 s, -97%) and
raises its throughput, while Cubic loses roughly half of its throughput
(-55%) because the tunnel's forecast-bounded queue stops it from filling
the carrier buffer.
"""

from __future__ import annotations

import os

from repro.experiments.competing import render_competing
from repro.experiments.tables import tunnel_table

BENCH_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "60"))


def test_bench_table_tunnel(benchmark):
    comparison = benchmark.pedantic(
        lambda: tunnel_table(duration=BENCH_DURATION, warmup=min(10.0, BENCH_DURATION / 4)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_competing(comparison))

    direct = comparison.direct.flows
    tunnelled = comparison.tunnelled.flows

    # Skype's delay collapses once tunnelled.
    assert tunnelled["skype"].delay_95_s < 0.5 * direct["skype"].delay_95_s
    # Cubic pays a substantial throughput penalty.
    assert tunnelled["cubic"].throughput_bps < direct["cubic"].throughput_bps
    # The tunnel's dynamic queue management was exercised.
    assert comparison.tunnelled.tunnel_drops > 0
