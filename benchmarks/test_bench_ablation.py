"""Ablation benchmark: the design choices behind Sprout's forecaster.

The paper freezes two model constants (sigma = 200 packets/s/sqrt(s) and
lambda_z = 1/s) and one control constant (the 100 ms / 5-tick look-ahead)
before collecting its traces, and Section 7 asks how much better a protocol
could do with different stochastic models.  This benchmark varies those
choices on one link to show the trade-off each one embodies:

* a smaller sigma makes the forecast less cautious (higher throughput, more
  delay risk); a larger sigma the opposite;
* a longer look-ahead window tolerates more queueing before throttling.
"""

from __future__ import annotations

import os

from repro.core.connection import SproutConfig, make_connection
from repro.core.rate_model import RateModelParams
from repro.experiments.registry import SchemeSpec
from repro.experiments.runner import RunConfig, run_scheme_on_link

BENCH_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "60"))
ABLATION_LINK = "Verizon LTE downlink"


def _sprout_variant(name: str, sigma: float = 200.0, lookahead_ticks: int = 5) -> SchemeSpec:
    def factory():
        config = SproutConfig(
            lookahead_ticks=lookahead_ticks,
            model_params=RateModelParams(sigma=sigma),
        )
        connection = make_connection(config)
        return connection.sender, connection.receiver

    return SchemeSpec(name=name, factory=factory, category="sprout")


def test_bench_ablation_sigma_and_lookahead(benchmark):
    config = RunConfig(duration=BENCH_DURATION, warmup=min(10.0, BENCH_DURATION / 4))
    variants = [
        _sprout_variant("Sprout (paper: sigma=200, 100ms)", sigma=200.0, lookahead_ticks=5),
        _sprout_variant("Sprout (sigma=50)", sigma=50.0, lookahead_ticks=5),
        _sprout_variant("Sprout (sigma=500)", sigma=500.0, lookahead_ticks=5),
        _sprout_variant("Sprout (lookahead=8 ticks)", sigma=200.0, lookahead_ticks=8),
    ]

    def run_all():
        return {v.name: run_scheme_on_link(v, ABLATION_LINK, config) for v in variants}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"Ablation — Sprout model constants on {ABLATION_LINK}")
    print(f"{'variant':36s} {'tput (kbps)':>12s} {'delay (ms)':>12s} {'util %':>8s}")
    for name, result in results.items():
        print(
            f"{name:36s} {result.throughput_kbps:12.0f} "
            f"{result.self_inflicted_delay_ms:12.0f} {100 * result.utilization:8.1f}"
        )

    paper = results["Sprout (paper: sigma=200, 100ms)"]
    trusting = results["Sprout (sigma=50)"]
    paranoid = results["Sprout (sigma=500)"]
    patient = results["Sprout (lookahead=8 ticks)"]

    # Assuming a calmer link (small sigma) makes the forecast bolder:
    # throughput should not drop relative to the paper's constants.
    assert trusting.throughput_bps >= 0.9 * paper.throughput_bps
    # Assuming a wilder link (large sigma) costs throughput.
    assert paranoid.throughput_bps <= 1.1 * paper.throughput_bps
    # A longer delay tolerance buys throughput.
    assert patient.throughput_bps >= 0.9 * paper.throughput_bps
    # All variants remain interactive-grade on this link (well under Cubic's
    # multi-second queues).
    for result in results.values():
        assert result.self_inflicted_delay_s < 1.0
