"""Performance benchmark: inference fast path and parallel matrix runner.

Two measurements, both recorded to ``BENCH_PERF.json`` at the repository
root so the performance trajectory is trackable across PRs:

* ``forecaster``: sustained ticks/second of the paper-parameter Bayesian
  forecaster running the receiver's per-20 ms loop (one belief update plus
  one cautious forecast per tick, saturator-like observations);
* ``matrix``: wall-clock of a small scheme x link measurement matrix run
  serially and through the process-pool runner, with a bit-identity check
  between the two result sets;
* ``sweep``: wall-clock of a small parameter sweep through the full fast
  path (flattened batch, shared pool, shared trace cache) against the same
  cells run one by one with the trace cache disabled, again bit-identical;
* ``grid``: the same comparison for a 2-D grid (Cartesian product of two
  axes through ``repro.experiments.sweeps.run_grid``), so the N-dimensional
  expansion's overhead and cache behaviour stay on the record;
* ``aqm``: wall-clock of the queue-management grid (drop-tail vs CoDel ×
  deep vs bounded buffer, per-flow metrics on) against the same cells run
  one by one with the trace cache off — the discipline swap and per-flow
  collection must stay collection-cost-only, bit-identical physics;
* ``fault_recovery``: the fault-tolerant scheduler's price (docs/robustness.md)
  — a clean grid under the ``collect`` error policy vs the fail-fast fast
  path (bit-identical, overhead bounded), plus a crashing grid's recovery
  wall-clock;
* ``batched``: the batched cross-cell engine (docs/performance.md Layer 4)
  on a 256-cell single-scheme grid — cells/sec against the pooled serial
  engine on the same cells, bit-identical results required;
* ``live_loopback``: the real-socket transport (docs/transport.md) — one
  ``repro live`` harness transfer over clean loopback UDP, recording
  throughput and per-packet delay percentiles with deliberately loose
  gates (loopback timing wobbles on loaded runners);
* ``model_build``: the model-artifact cache (docs/performance.md Layer 3)
  — cold RateModel build vs warm disk load vs warm memory hit, with a
  bit-identity check between cold and warm arrays, plus a 4-value sigma
  grid run twice (cold caches, then disk-warm) to show the grid's
  wall-clock no longer scales with the number of distinct swept model
  parameter sets after the first run.

The matrix speedup is hardware dependent (worker warm-up dominates on a
single core); the JSON record carries ``cpu_count`` so readers can judge
the numbers in context.  See docs/performance.md for methodology.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.forecaster import BayesianForecaster
from repro.core.rate_model import (
    RateModel,
    RateModelParams,
    clear_shared_models,
    model_cache,
    shared_rate_model,
)
from repro.experiments.parallel import run_matrix
from repro.experiments.policy import ErrorPolicy
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.runner import run_matrix as run_matrix_serial
from repro.experiments.sweeps import (
    GridSpec,
    SweepSpec,
    expand_grid,
    expand_sweep,
    run_grid,
    run_sweep,
)
from repro.traces.cache import global_cache

pytestmark = pytest.mark.perf

#: where the perf record lands (repository root)
PERF_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_PERF.json"

#: ticks measured by the forecaster microbenchmark
FORECASTER_TICKS = int(os.environ.get("REPRO_BENCH_FORECASTER_TICKS", "4000"))

#: the small matrix measured by the wall-clock benchmark
MATRIX_SCHEMES = ("Vegas", "Skype")
MATRIX_LINKS = ("AT&T LTE uplink", "Verizon LTE uplink")
MATRIX_CONFIG = RunConfig(duration=15.0, warmup=3.0)
MATRIX_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(os.cpu_count() or 1)))


def _record(section: str, payload: dict) -> None:
    """Merge ``payload`` into the ``section`` key of BENCH_PERF.json."""
    record = {}
    if PERF_RECORD_PATH.exists():
        try:
            record = json.loads(PERF_RECORD_PATH.read_text())
        except (ValueError, OSError):
            record = {}
    record.setdefault("environment", {}).update(
        {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        }
    )
    record[section] = payload
    PERF_RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def test_bench_forecaster_ticks_per_sec():
    model = shared_rate_model()
    forecaster = BayesianForecaster(model=model)
    rng = np.random.default_rng(20130419)
    # Saturator-like traffic: an integer number of MTU-sized packets per
    # tick around 400 packets/s, the regime of the paper's cellular traces.
    observations = (rng.poisson(8.0, size=FORECASTER_TICKS + 200) * 1500.0).astype(float)
    for observed in observations[:200]:  # warm caches and converge the belief
        forecaster.tick(observed)
        forecaster.forecast()
    start = time.perf_counter()
    for observed in observations[200:]:
        forecaster.tick(observed)
        forecaster.forecast()
    elapsed = time.perf_counter() - start
    ticks_per_sec = FORECASTER_TICKS / elapsed

    _record(
        "forecaster",
        {
            "ticks": FORECASTER_TICKS,
            "elapsed_s": round(elapsed, 4),
            "ticks_per_sec": round(ticks_per_sec, 1),
            "realtime_factor": round(ticks_per_sec * model.params.tick, 1),
        },
    )
    print(f"\nforecaster: {ticks_per_sec:,.0f} ticks/s "
          f"({ticks_per_sec * model.params.tick:,.0f}x realtime)")
    # Loose floor to catch catastrophic regressions without being flaky:
    # the seed implementation already managed ~3k ticks/s on one core.
    assert ticks_per_sec > 1500


def test_bench_matrix_wallclock():
    start = time.perf_counter()
    serial = run_matrix_serial(MATRIX_SCHEMES, MATRIX_LINKS, config=MATRIX_CONFIG)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_matrix(
        MATRIX_SCHEMES, MATRIX_LINKS, config=MATRIX_CONFIG, jobs=MATRIX_JOBS
    )
    parallel_s = time.perf_counter() - start

    # The whole point of the parallel runner: identical output.
    assert [r.as_dict() for r in parallel] == [r.as_dict() for r in serial]

    _record(
        "matrix",
        {
            "schemes": list(MATRIX_SCHEMES),
            "links": list(MATRIX_LINKS),
            "duration_s": MATRIX_CONFIG.duration,
            "jobs": MATRIX_JOBS,
            "serial_wallclock_s": round(serial_s, 3),
            "parallel_wallclock_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        },
    )
    print(f"\nmatrix: serial {serial_s:.2f}s, parallel (jobs={MATRIX_JOBS}) "
          f"{parallel_s:.2f}s")


#: the small sweep measured by the sweep wall-clock benchmark
SWEEP_SPEC = SweepSpec(
    parameter="loss",
    values=(0.0, 0.01, 0.02),
    schemes=("Vegas",),
    links=("AT&T LTE uplink",),
)


def test_bench_sweep_wallclock():
    cache = global_cache()
    cache.clear()
    hits_before = cache.stats.memory_hits + cache.stats.disk_hits

    start = time.perf_counter()
    fast = run_sweep(SWEEP_SPEC, config=MATRIX_CONFIG, jobs=MATRIX_JOBS)
    fast_s = time.perf_counter() - start
    hits = (cache.stats.memory_hits + cache.stats.disk_hits) - hits_before

    # Reference: the same expanded cells, one by one, trace cache off.
    cells = expand_sweep(SWEEP_SPEC, MATRIX_CONFIG)
    was_enabled = cache.enabled
    cache.enabled = False
    try:
        start = time.perf_counter()
        reference = [run_scheme_on_link(s, l, c) for s, l, c in cells]
        reference_s = time.perf_counter() - start
    finally:
        cache.enabled = was_enabled

    # The whole point of the sweep engine: identical physics, faster.
    fast_rows = [r.as_dict() for p in fast.points for r in p.results]
    assert fast_rows == [r.as_dict() for r in reference]

    _record(
        "sweep",
        {
            "parameter": SWEEP_SPEC.parameter,
            "values": list(SWEEP_SPEC.values),
            "schemes": list(SWEEP_SPEC.schemes),
            "links": list(SWEEP_SPEC.links),
            "cells": len(cells),
            "duration_s": MATRIX_CONFIG.duration,
            "jobs": MATRIX_JOBS,
            "sweep_wallclock_s": round(fast_s, 3),
            "uncached_serial_wallclock_s": round(reference_s, 3),
            "speedup": round(reference_s / fast_s, 3) if fast_s > 0 else None,
            # With jobs > 1 the hits land in the worker processes' caches,
            # which the parent cannot observe — record null, not a lie.
            "trace_cache_hits": hits if MATRIX_JOBS == 1 else None,
        },
    )
    print(f"\nsweep: fast path {fast_s:.2f}s, uncached serial {reference_s:.2f}s "
          f"({len(cells)} cells, jobs={MATRIX_JOBS})")


#: the small 2-D grid measured by the grid wall-clock benchmark
GRID_SPEC = GridSpec(
    parameters=("loss", "scale"),
    values=((0.0, 0.02), (1.0, 0.5)),
    schemes=("Vegas",),
    links=("AT&T LTE uplink",),
)


def test_bench_grid_wallclock():
    cache = global_cache()
    cache.clear()

    start = time.perf_counter()
    fast = run_grid(GRID_SPEC, config=MATRIX_CONFIG, jobs=MATRIX_JOBS)
    fast_s = time.perf_counter() - start

    # Reference: the same expanded cells, one by one, trace cache off.
    cells = expand_grid(GRID_SPEC, MATRIX_CONFIG)
    was_enabled = cache.enabled
    cache.enabled = False
    try:
        start = time.perf_counter()
        reference = [run_scheme_on_link(s, l, c) for s, l, c in cells]
        reference_s = time.perf_counter() - start
    finally:
        cache.enabled = was_enabled

    # The acceptance bar: every grid cell bit-identical to its serial twin.
    fast_rows = [r.as_dict() for p in fast.points for r in p.results]
    assert fast_rows == [r.as_dict() for r in reference]

    _record(
        "grid",
        {
            "parameters": list(GRID_SPEC.parameters),
            "axis_values": [list(axis) for axis in GRID_SPEC.values],
            "shape": list(GRID_SPEC.shape),
            "schemes": list(GRID_SPEC.schemes),
            "links": list(GRID_SPEC.links),
            "cells": len(cells),
            "duration_s": MATRIX_CONFIG.duration,
            "jobs": MATRIX_JOBS,
            "grid_wallclock_s": round(fast_s, 3),
            "uncached_serial_wallclock_s": round(reference_s, 3),
            "speedup": round(reference_s / fast_s, 3) if fast_s > 0 else None,
        },
    )
    print(f"\ngrid: fast path {fast_s:.2f}s, uncached serial {reference_s:.2f}s "
          f"({len(cells)} cells, jobs={MATRIX_JOBS})")


#: the queue-management grid measured by the aqm wall-clock benchmark; the
#: flows axis makes the cells multiplexed scenarios (so per_flow=True
#: genuinely exercises the per-flow collection path) and tunnelled=0 shares
#: the carrier queue directly, where the discipline visibly matters
AQM_GRID_SPEC = GridSpec(
    parameters=("aqm", "qlimit", "flows", "tunnelled"),
    values=((0.0, 1.0), (0.0, 30000.0), (2.0,), (0.0,)),
    schemes=("Sprout",),
    links=("AT&T LTE uplink",),
)
AQM_CONFIG = RunConfig(duration=15.0, warmup=3.0, per_flow=True)


def test_bench_aqm_wallclock():
    cache = global_cache()
    cache.clear()

    start = time.perf_counter()
    fast = run_grid(AQM_GRID_SPEC, config=AQM_CONFIG, jobs=MATRIX_JOBS)
    fast_s = time.perf_counter() - start

    # Reference: the same expanded cells, one by one, trace cache off.
    cells = expand_grid(AQM_GRID_SPEC, AQM_CONFIG)
    was_enabled = cache.enabled
    cache.enabled = False
    try:
        start = time.perf_counter()
        reference = [run_scheme_on_link(s, l, c) for s, l, c in cells]
        reference_s = time.perf_counter() - start
    finally:
        cache.enabled = was_enabled

    # The acceptance bar: every queue-management cell bit-identical to its
    # serial twin, the disciplines genuinely differ, and per-flow metrics
    # were actually collected (otherwise this wall-clock measures nothing).
    fast_rows = [r.as_dict() for p in fast.points for r in p.results]
    assert fast_rows == [r.as_dict() for r in reference]
    drop_tail = [r.as_dict() for p in fast.slice("aqm", 0.0) for r in p.results]
    codel = [r.as_dict() for p in fast.slice("aqm", 1.0) for r in p.results]
    assert drop_tail != codel
    assert all(r.flows for p in fast.points for r in p.results)

    _record(
        "aqm",
        {
            "parameters": list(AQM_GRID_SPEC.parameters),
            "axis_values": [list(axis) for axis in AQM_GRID_SPEC.values],
            "schemes": list(AQM_GRID_SPEC.schemes),
            "links": list(AQM_GRID_SPEC.links),
            "cells": len(cells),
            "duration_s": AQM_CONFIG.duration,
            "per_flow": AQM_CONFIG.per_flow,
            "jobs": MATRIX_JOBS,
            "grid_wallclock_s": round(fast_s, 3),
            "uncached_serial_wallclock_s": round(reference_s, 3),
            "speedup": round(reference_s / fast_s, 3) if fast_s > 0 else None,
        },
    )
    print(f"\naqm: fast path {fast_s:.2f}s, uncached serial {reference_s:.2f}s "
          f"({len(cells)} cells, jobs={MATRIX_JOBS})")


#: the clean grid used to price the fault-tolerant scheduler against the
#: historical fail-fast fast path (docs/robustness.md)
FAULT_GRID_SPEC = GridSpec(
    parameters=("loss",),
    values=((0.0, 0.005, 0.01, 0.015, 0.02, 0.025),),
    schemes=("Vegas", "Skype"),
    links=("AT&T LTE uplink",),
)
#: two workers, so the schedulers genuinely queue (12 cells over 2 slots)
#: and the wall-clock is emulation-dominated rather than pool-spin-up noise
FAULT_JOBS = min(MATRIX_JOBS, 2) or 2


def test_bench_fault_recovery():
    """The robustness layer's price tag, on the record.

    Two measurements: a clean grid under ``collect`` vs the fail-fast fast
    path (bit-identical results, and the resilient scheduler's overhead
    must stay under 5% — best-of-two, interleaved so drift hits both), and
    a crashing grid under ``collect`` (one poison cell, the rest finish).
    """
    fail_fast = ErrorPolicy()
    collect = ErrorPolicy(on_error="collect")
    timings = {"fail_fast": [], "collect": []}
    outputs = {}
    for _ in range(2):
        for name, policy in (("fail_fast", fail_fast), ("collect", collect)):
            start = time.perf_counter()
            data = run_grid(
                FAULT_GRID_SPEC, config=MATRIX_CONFIG, policy=policy, jobs=FAULT_JOBS
            )
            timings[name].append(time.perf_counter() - start)
            outputs[name] = [r.as_dict() for p in data.points for r in p.results]

    # Same cells, same numbers — the policies differ only on failure.
    assert outputs["collect"] == outputs["fail_fast"]
    fail_fast_s = min(timings["fail_fast"])
    collect_s = min(timings["collect"])
    # The acceptance bar: the resilient scheduler's clean-grid overhead is
    # bounded in *absolute value* — the measured overhead came out -2.16%
    # on the 1-CPU runner, so a signed gate would flap on timer noise in
    # either direction (small absolute slack so a sub-second grid cannot
    # flake it either).
    assert abs(collect_s - fail_fast_s) <= 0.10 * fail_fast_s + 0.2

    # Recovery run: one always-crashing cell must not sink the grid.
    spec_env = os.environ.get("REPRO_FAULT_SPEC")
    os.environ["REPRO_FAULT_SPEC"] = json.dumps([{"kind": "crash", "index": 1}])
    try:
        start = time.perf_counter()
        crashed = run_grid(
            FAULT_GRID_SPEC, config=MATRIX_CONFIG, policy=collect, jobs=FAULT_JOBS
        )
        recovery_s = time.perf_counter() - start
    finally:
        if spec_env is None:
            del os.environ["REPRO_FAULT_SPEC"]
        else:
            os.environ["REPRO_FAULT_SPEC"] = spec_env
    errors = crashed.errors
    assert len(errors) == 1 and errors[0].error_type == "InjectedFault"
    survivors = [r.as_dict() for p in crashed.points for r in p.ok_results]
    assert survivors == [r for i, r in enumerate(outputs["fail_fast"]) if i != 1]

    _record(
        "fault_recovery",
        {
            "parameters": list(FAULT_GRID_SPEC.parameters),
            "axis_values": [list(axis) for axis in FAULT_GRID_SPEC.values],
            "cells": len(expand_grid(FAULT_GRID_SPEC, MATRIX_CONFIG)),
            "duration_s": MATRIX_CONFIG.duration,
            "jobs": MATRIX_JOBS,
            "fail_fast_wallclock_s": round(fail_fast_s, 3),
            "collect_wallclock_s": round(collect_s, 3),
            "collect_overhead_pct": round(100 * (collect_s / fail_fast_s - 1), 2)
            if fail_fast_s > 0
            else None,
            "crash_recovery_wallclock_s": round(recovery_s, 3),
            "crash_recovery_failed_cells": len(errors),
        },
    )
    print(
        f"\nfault_recovery: fail_fast {fail_fast_s:.2f}s, collect {collect_s:.2f}s "
        f"({100 * (collect_s / fail_fast_s - 1):+.1f}%), "
        f"crash recovery {recovery_s:.2f}s ({len(errors)} failed cell)"
    )


#: the ≥256-cell single-scheme grid measured by the batched-engine
#: benchmark: 16 loss rates × 16 trace scales of plain Sprout on one slow
#: cellular uplink, the regime where the forecaster math dominates each
#: cell and every cell shares one model artifact
BATCHED_GRID_SPEC = GridSpec(
    parameters=("loss", "scale"),
    values=(
        tuple(round(0.0025 * i, 4) for i in range(16)),
        tuple(round(0.35 + 0.02 * i, 2) for i in range(16)),
    ),
    schemes=("Sprout",),
    links=("Verizon 3G (1xEV-DO) uplink",),
)
BATCHED_CONFIG = RunConfig(duration=6.0, warmup=1.5)
#: the pooled serial reference runs on two workers, like the fault bench
BATCHED_JOBS = min(MATRIX_JOBS, 2) or 2


def test_bench_batched_cells_per_sec():
    """The batched cross-cell engine's price of admission, on the record.

    One 256-cell Sprout grid through the pooled serial engine and through
    ``backend="batched"``; results must be bit-identical, and the batched
    engine must be decisively faster.  Traces are prewarmed in the parent
    (sub-second) so neither engine is charged for trace generation — the
    pooled path builds traces in its workers, which the parent-side batched
    engine cannot reuse.
    """
    from repro.cellsim.cellsim import traces_for_link
    from repro.experiments.parallel import shared_pool

    cells = expand_grid(BATCHED_GRID_SPEC, BATCHED_CONFIG)
    assert len(cells) >= 256
    for _, link, config in cells:
        traces_for_link(link, config.duration)

    start = time.perf_counter()
    with shared_pool(BATCHED_JOBS):
        pooled = run_grid(BATCHED_GRID_SPEC, config=BATCHED_CONFIG, jobs=BATCHED_JOBS)
    pooled_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_grid(BATCHED_GRID_SPEC, config=BATCHED_CONFIG, backend="batched")
    batched_s = time.perf_counter() - start

    # The acceptance bar: every cell bit-identical to its pooled twin.
    assert [r.as_dict() for p in batched.points for r in p.results] == [
        r.as_dict() for p in pooled.points for r in p.results
    ]

    cells_n = len(cells)
    ratio = pooled_s / batched_s if batched_s > 0 else None
    # Conservative floor: the measured ratio on the 1-CPU runner sits
    # around 2× (see docs/performance.md for the Amdahl decomposition);
    # the gate only catches the engine falling back to per-cell stepping,
    # not timer noise on a loaded box.
    assert batched_s < pooled_s

    _record(
        "batched",
        {
            "parameters": list(BATCHED_GRID_SPEC.parameters),
            "schemes": list(BATCHED_GRID_SPEC.schemes),
            "links": list(BATCHED_GRID_SPEC.links),
            "cells": cells_n,
            "duration_s": BATCHED_CONFIG.duration,
            "pooled_jobs": BATCHED_JOBS,
            "pooled_wallclock_s": round(pooled_s, 3),
            "pooled_cells_per_sec": round(cells_n / pooled_s, 2),
            "batched_wallclock_s": round(batched_s, 3),
            "batched_cells_per_sec": round(cells_n / batched_s, 2),
            "speedup": round(ratio, 3) if ratio is not None else None,
        },
    )
    print(
        f"\nbatched: pooled (jobs={BATCHED_JOBS}) {pooled_s:.1f}s "
        f"({cells_n / pooled_s:.2f} cells/s), batched {batched_s:.1f}s "
        f"({cells_n / batched_s:.2f} cells/s), {ratio:.2f}x"
    )


#: a non-default parameter set no other benchmark touches, so the cold
#: measurement is genuinely cold even inside a shared benchmark session
MODEL_BUILD_PARAMS = RateModelParams(sigma=170.0)

#: the sigma grid used to show wall-clock no longer scales with the number
#: of distinct swept model parameter sets once the artifact cache is warm
SIGMA_GRID_SPEC = GridSpec(
    parameters=("sigma",),
    values=((150.0, 175.0, 225.0, 250.0),),
    schemes=("Sprout",),
    links=("AT&T LTE uplink",),
)
SIGMA_GRID_CONFIG = RunConfig(duration=10.0, warmup=2.0)


def test_bench_model_build(tmp_path):
    """Cold vs warm model construction, and the sigma-grid rerun contrast."""
    cache = model_cache()
    saved = (cache.directory, cache.use_disk, cache.enabled)
    try:
        cache.directory = str(tmp_path)  # private dir: genuinely cold disk
        cache.use_disk = True

        cache.enabled = False
        start = time.perf_counter()
        cold_model = RateModel(MODEL_BUILD_PARAMS)
        cold_s = time.perf_counter() - start

        cache.enabled = True
        cache.clear()
        RateModel(MODEL_BUILD_PARAMS)  # miss: builds once, publishes the .npz
        cache.clear()  # drop the memory tier so the next build must hit disk
        start = time.perf_counter()
        warm_disk_model = RateModel(MODEL_BUILD_PARAMS)
        warm_disk_s = time.perf_counter() - start

        start = time.perf_counter()
        warm_memory_model = RateModel(MODEL_BUILD_PARAMS)
        warm_memory_s = time.perf_counter() - start

        # The whole point of the cache: identical arrays, just faster.
        for warm in (warm_disk_model, warm_memory_model):
            assert np.array_equal(cold_model.transition, warm.transition)
            assert np.array_equal(cold_model.cumulative_cdfs, warm.cumulative_cdfs)
        # Acceptance bar: a disk-cached load beats a cold build >= 10x.
        assert cold_s / warm_disk_s >= 10

        # A 4-value sigma grid, serially: the first run pays four cold
        # builds, the rerun (cold process state simulated by clearing the
        # in-memory tiers) only four disk loads plus the emulation.
        clear_shared_models()
        cache.clear()
        start = time.perf_counter()
        first = run_grid(SIGMA_GRID_SPEC, config=SIGMA_GRID_CONFIG, jobs=1)
        first_s = time.perf_counter() - start
        clear_shared_models()
        cache.clear()
        start = time.perf_counter()
        second = run_grid(SIGMA_GRID_SPEC, config=SIGMA_GRID_CONFIG, jobs=1)
        second_s = time.perf_counter() - start
        assert [r.as_dict() for p in first.points for r in p.results] == [
            r.as_dict() for p in second.points for r in p.results
        ]
        assert second_s < first_s
    finally:
        cache.directory, cache.use_disk, cache.enabled = saved
        cache.clear()
        clear_shared_models()

    _record(
        "model_build",
        {
            "params": {"sigma": MODEL_BUILD_PARAMS.sigma},
            "cold_build_s": round(cold_s, 4),
            "warm_disk_load_s": round(warm_disk_s, 4),
            "warm_memory_hit_s": round(warm_memory_s, 4),
            "disk_speedup": round(cold_s / warm_disk_s, 1),
            "sigma_grid_values": list(SIGMA_GRID_SPEC.values[0]),
            "sigma_grid_duration_s": SIGMA_GRID_CONFIG.duration,
            "sigma_grid_first_run_s": round(first_s, 3),
            "sigma_grid_warm_rerun_s": round(second_s, 3),
            "sigma_grid_rerun_speedup": round(first_s / second_s, 3),
        },
    )
    print(
        f"\nmodel_build: cold {cold_s:.2f}s, warm disk {warm_disk_s * 1000:.1f}ms "
        f"({cold_s / warm_disk_s:.0f}x), warm memory {warm_memory_s * 1000:.2f}ms; "
        f"sigma grid first {first_s:.2f}s, warm rerun {second_s:.2f}s"
    )


#: the 1024-cell grid measured by the analytic-screening benchmark: the
#: acceptance grid of tests/test_screening_acceptance.py (32 log-spaced
#: loss rates × 32 log-spaced trace scales of Reno on a noise-free link)
def _analytic_grid_spec():
    from repro.traces.channel import ChannelConfig
    from repro.traces.networks import LinkSpec

    link = LinkSpec(
        network="Steady 9.6 Mbit/s",
        direction="downlink",
        config=ChannelConfig(
            mean_rate=800.0,
            volatility=0.0,
            outage_rate=0.0,
            fade_depth=0.0,
            max_rate=4000.0,
        ),
        seed=77,
    )
    return GridSpec(
        parameters=("loss", "scale"),
        values=(
            tuple(0.001 * (100.0 ** (i / 31.0)) for i in range(32)),
            tuple(0.25 * (16.0 ** (i / 31.0)) for i in range(32)),
        ),
        schemes=("Reno",),
        links=(link,),
    )


ANALYTIC_CONFIG = RunConfig(duration=5.0, warmup=1.0)
#: cells actually emulated to measure the simulated rate (rate-based, so a
#: sample suffices; emulating all 1024 would add minutes for no precision)
ANALYTIC_SAMPLE_CELLS = 16


def test_bench_analytic_screening_rate():
    """The analytic tier's reason to exist, on the record (docs/analytic.md).

    Predicting a cell must be orders of magnitude cheaper than emulating
    it: the closed-form predictor sweeps the whole 1024-cell acceptance
    grid while the emulator is still on its first handful of cells.  The
    gate requires >= 100x cells/sec — far under the measured ratio, so it
    only catches the predictor accidentally growing an emulation-sized
    dependency, not timer noise.
    """
    from repro.experiments.analytic import ScreenConfig, plan_screen, predict_cell

    spec = _analytic_grid_spec()
    cells = expand_grid(spec, ANALYTIC_CONFIG)
    assert len(cells) == 1024

    for cell in cells[:4]:  # warm import/model caches off the clock
        predict_cell(*cell)
    start = time.perf_counter()
    plan = plan_screen(cells, ScreenConfig())
    predict_s = time.perf_counter() - start
    predicted_rate = len(cells) / predict_s
    assert len(plan.predictions) == len(cells)

    sample = GridSpec(
        parameters=spec.parameters,
        values=(spec.values[0][:4], spec.values[1][:4]),
        schemes=spec.schemes,
        links=spec.links,
    )
    sample_cells = expand_grid(sample, ANALYTIC_CONFIG)
    assert len(sample_cells) == ANALYTIC_SAMPLE_CELLS
    run_grid(sample, config=ANALYTIC_CONFIG, backend="batched")  # warm traces
    start = time.perf_counter()
    run_grid(sample, config=ANALYTIC_CONFIG, backend="batched")
    simulate_s = time.perf_counter() - start
    simulated_rate = len(sample_cells) / simulate_s

    ratio = predicted_rate / simulated_rate
    assert ratio >= 100, (
        f"screening only {ratio:.0f}x faster than emulation "
        f"({predicted_rate:.0f} vs {simulated_rate:.2f} cells/s)"
    )

    _record(
        "analytic",
        {
            "parameters": list(spec.parameters),
            "schemes": list(spec.schemes),
            "links": [link.name for link in spec.links],
            "grid_cells": len(cells),
            "duration_s": ANALYTIC_CONFIG.duration,
            "screened_cells_per_sec": round(predicted_rate, 1),
            "simulated_sample_cells": len(sample_cells),
            "simulated_cells_per_sec": round(simulated_rate, 2),
            "speedup": round(ratio, 1),
            "screened_fraction": round(
                plan.n_screened / len(cells), 4
            ),
        },
    )
    print(
        f"\nanalytic: predicted {predicted_rate:,.0f} cells/s, emulated "
        f"{simulated_rate:.2f} cells/s ({ratio:,.0f}x), "
        f"{plan.n_screened}/{len(cells)} cells screened out"
    )


def test_bench_live_loopback():
    """Real-socket transport throughput/latency (docs/transport.md).

    One sized transfer of the ``repro live`` harness over loopback UDP —
    clean channel, so the number tracks the transport implementation's
    overhead (codec, selective repeat, wall-clock ticking), not loss
    recovery.  The gates are deliberately loose: loopback timing on a
    loaded CI runner wobbles, and the record, not the gate, carries the
    trajectory.  Skips where the environment forbids 127.0.0.1 sockets.
    """
    from repro.transport import LiveConfig, run_live_transfer, sockets_available

    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")

    result = run_live_transfer(LiveConfig(transfer_bytes=128 * 1024, repeats=1))
    assert result.completed and result.lost_forever == 0
    p95_ms = 1000 * result.delay_percentiles_s.get("p95", float("nan"))
    # Loose gates: an order of magnitude under/over any measured value.
    assert result.throughput_bps > 100_000, "loopback transport under 100 kbps"
    assert p95_ms < 1000, f"loopback p95 delay {p95_ms:.1f} ms"

    _record(
        "live_loopback",
        {
            "transfer_bytes": result.transfer_bytes,
            "throughput_bps": round(result.throughput_bps),
            "delay_p50_ms": round(
                1000 * result.delay_percentiles_s.get("p50", float("nan")), 3
            ),
            "delay_p95_ms": round(p95_ms, 3),
            "datagrams_sent": result.datagrams_sent,
            "retransmits": result.total_retransmits,
            "duration_s": round(result.duration_s, 4),
        },
    )
    print(
        f"\nlive_loopback: {result.throughput_bps / 1e6:.2f} Mbit/s, "
        f"p95 delay {p95_ms:.2f} ms over {result.datagrams_sent} datagrams"
    )


def test_bench_live_impaired():
    """Throughput under the Gilbert–Elliott profile (docs/robustness.md).

    The same sized transfer as ``live_loopback``, but through the
    adversarial impairment pipeline's bursty-loss stage — the record
    tracks how much throughput the selective-repeat machinery preserves
    when ~5% of datagrams die in bursts of ~8.  Loose gates for the same
    CI-wobble reasons as the clean benchmark; the determinism replay gate
    is exact, because it must be.
    """
    from repro.transport import LiveConfig, run_live_transfer, sockets_available

    if not sockets_available():
        pytest.skip("loopback UDP sockets unavailable")

    result = run_live_transfer(
        LiveConfig(
            transfer_bytes=128 * 1024,
            repeats=1,
            impair="ge:p=0.05,burst=8",
            impair_seed=42,
        )
    )
    assert result.completed and result.lost_forever == 0
    assert result.failure == ""
    assert result.impair_replay_ok is True  # exact, not a loose gate
    assert result.throughput_bps > 50_000, "impaired transport under 50 kbps"
    assert result.duration_s < 30.0

    dropped = sum(
        count for key, count in result.impair_counters.items() if "drop" in key
    )
    _record(
        "live_impaired",
        {
            "impair_spec": "ge:p=0.05,burst=8",
            "transfer_bytes": result.transfer_bytes,
            "throughput_bps": round(result.throughput_bps),
            "delay_p95_ms": round(
                1000 * result.delay_percentiles_s.get("p95", float("nan")), 3
            ),
            "datagrams_sent": result.datagrams_sent,
            "datagrams_dropped": dropped,
            "retransmits": result.total_retransmits,
            "longest_stall_s": round(result.longest_stall_s, 4),
            "duration_s": round(result.duration_s, 4),
        },
    )
    print(
        f"\nlive_impaired: {result.throughput_bps / 1e6:.2f} Mbit/s with "
        f"{dropped} injected drops and {result.total_retransmits} retransmits"
    )
