"""Benchmark: regenerate Figure 8 (average utilization vs average
self-inflicted delay for Sprout, Sprout-EWMA, Cubic, Cubic-CoDel).

Paper reference points: CoDel cuts Cubic's delay dramatically at modest
throughput cost; Sprout's delay is lower still despite being end-to-end;
Sprout-EWMA approaches Cubic-CoDel's delay with more throughput than Sprout.
"""

from __future__ import annotations

from repro.experiments.figure8 import FIGURE8_SCHEMES, render_figure8, run_figure8


def test_bench_figure8(benchmark, measurement_matrix):
    data = benchmark.pedantic(
        lambda: run_figure8(results=measurement_matrix.results), rounds=1, iterations=1
    )
    print()
    print(render_figure8(data))

    assert set(data.averages) == set(FIGURE8_SCHEMES)
    # CoDel cuts Cubic's delay.
    assert data.mean_delay_ms("Cubic-CoDel") < data.mean_delay_ms("Cubic")
    # Sprout's delay is the lowest of the four, despite being end-to-end.
    assert data.mean_delay_ms("Sprout") <= data.mean_delay_ms("Cubic-CoDel")
    # The throughput ordering: Cubic-family utilization above Sprout's
    # cautious forecasts, Sprout-EWMA between.
    assert data.utilization_percent("Cubic") > data.utilization_percent("Sprout")
    assert data.utilization_percent("Sprout-EWMA") > data.utilization_percent("Sprout")
