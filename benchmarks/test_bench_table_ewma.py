"""Benchmark: regenerate the introduction's second table (Sprout, Cubic and
Cubic-CoDel relative to Sprout-EWMA).

Paper reference points: Sprout-EWMA carries about 2x Sprout's bit rate at
higher delay; it beats plain Cubic on both throughput and delay, and gets
within a few percent of Cubic-CoDel's delay with roughly 30% more
throughput.
"""

from __future__ import annotations

from repro.experiments.tables import ewma_table, render_ewma_table


def test_bench_table_ewma(benchmark, measurement_matrix):
    comparisons = benchmark.pedantic(
        lambda: ewma_table(results=measurement_matrix.results), rounds=1, iterations=1
    )
    print()
    print(render_ewma_table(comparisons))

    by_scheme = {c.scheme: c for c in comparisons}
    assert by_scheme["Sprout-EWMA"].speedup == 1.0

    # Sprout-EWMA out-throughputs cautious Sprout (speedup > 1 means the
    # reference, Sprout-EWMA, carried more).
    assert by_scheme["Sprout"].speedup > 1.0
    # ...while Sprout keeps the lower delay (ratio below 1).
    assert by_scheme["Sprout"].delay_reduction <= 1.0

    # Sprout-EWMA's delay is far below plain Cubic's.
    assert by_scheme["Cubic"].delay_reduction > 2.0
    # And its delay is in the same league as Cubic-over-CoDel's.
    assert by_scheme["Cubic-CoDel"].delay_reduction < 3.0
