"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Several
of them (Figure 7, Figure 8, both introduction tables) are different views
of the same measurement matrix — every scheme over every link — so that
matrix is run once per benchmark session and shared.

The benchmark durations are deliberately shorter than the paper's
~17-minute traces (60 s per run by default) so the whole harness finishes in
a few minutes; the qualitative comparisons are stable at this length.  Set
``REPRO_BENCH_DURATION`` to use longer traces.
"""

from __future__ import annotations

import os

import pytest

from repro.core.rate_model import model_cache_directory
from repro.experiments.figure7 import Figure7Data, run_figure7
from repro.experiments.registry import INTRO_TABLE_SCHEMES
from repro.experiments.runner import RunConfig


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Model-artifact cache in a per-session temp dir (as in tests/).

    Keeps benchmark runs honest: the ``model_build`` cold measurement is
    genuinely cold, and no benchmark shares artifacts with earlier suite
    runs on the same machine.
    """
    with model_cache_directory(str(tmp_path_factory.mktemp("model-cache"))):
        yield

#: trace length (seconds) used by every benchmark run
BENCH_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "60"))
#: warm-up excluded from metrics
BENCH_WARMUP = min(10.0, BENCH_DURATION / 4.0)
#: worker processes for the shared measurement matrix (1 = serial; the
#: results are identical either way, so parallelism is purely a time saver)
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(os.cpu_count() or 1)))


def pytest_collection_modifyitems(items) -> None:
    """Mark every benchmark as ``perf`` so ``-m "not perf"`` skips them."""
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.perf)


@pytest.fixture(scope="session")
def bench_config() -> RunConfig:
    """Run configuration shared by all benchmarks."""
    return RunConfig(duration=BENCH_DURATION, warmup=BENCH_WARMUP)


@pytest.fixture(scope="session")
def measurement_matrix(bench_config) -> Figure7Data:
    """Every intro-table scheme over every modelled link, measured once."""
    return run_figure7(schemes=INTRO_TABLE_SCHEMES, config=bench_config, jobs=BENCH_JOBS)
