"""Benchmark: regenerate Figure 9 (confidence-parameter sweep on the
T-Mobile 3G UMTS uplink).

Paper reference points: lowering the forecast's confidence from 95% towards
5% trades delay for throughput, tracing a frontier; even so, Sprout does not
beat Sprout-EWMA on both metrics simultaneously.
"""

from __future__ import annotations

from repro.experiments.figure9 import render_figure9, run_figure9


def test_bench_figure9(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: run_figure9(config=bench_config), rounds=1, iterations=1
    )
    print()
    print(render_figure9(data))

    frontier = data.frontier()
    most_cautious = frontier[0]
    least_cautious = frontier[-1]
    # Relaxing the confidence parameter buys throughput...
    assert least_cautious.throughput_bps >= most_cautious.throughput_bps
    # ...at the cost of (not less) delay.
    assert (
        least_cautious.self_inflicted_delay_s
        >= 0.8 * most_cautious.self_inflicted_delay_s
    )
    # Sprout-EWMA context point is present for comparison.
    assert any(r.scheme == "Sprout-EWMA" for r in data.context)
