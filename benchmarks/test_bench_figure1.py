"""Benchmark: regenerate Figure 1 (Skype vs Sprout time series, Verizon LTE downlink).

Paper reference points: Skype overshoots the varying capacity and builds
standing queues of several seconds; Sprout tracks capacity while holding
per-packet delay near its 100 ms target.
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.figure1 import render_figure1, run_figure1

BENCH_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "60"))


def test_bench_figure1(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure1(duration=BENCH_DURATION), rounds=1, iterations=1
    )
    print()
    print(render_figure1(data))

    summary = data.summary()
    sprout = summary["Sprout"]
    skype = summary["Skype"]
    # The qualitative shape of Figure 1: Sprout's delay stays far below
    # Skype's, and Sprout is not starved of throughput.
    assert sprout["p95_delay_ms"] < skype["p95_delay_ms"]
    assert sprout["mean_throughput_kbps"] > 0.5 * skype["mean_throughput_kbps"]
    assert np.mean(data.capacity_kbps) > 0
