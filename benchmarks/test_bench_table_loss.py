"""Benchmark: regenerate the Section 5.6 loss-resilience table (Sprout over
the Verizon LTE links with 0%, 5% and 10% Bernoulli loss in each direction).

Paper reference points: throughput diminishes with loss (4741 -> 3971 ->
2768 kbps on the downlink; 3703 -> 2598 -> 1163 kbps on the uplink) but
Sprout keeps working, and its delay does not blow up (73/60/58 ms downlink,
332/378/314 ms uplink).
"""

from __future__ import annotations

from repro.experiments.tables import LOSS_RATES, loss_table, render_loss_table


def test_bench_table_loss(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: loss_table(config=bench_config), rounds=1, iterations=1
    )
    print()
    print(render_loss_table(data))

    for link, by_rate in data.rows.items():
        clean = by_rate[0.0]
        heavy = by_rate[0.10]
        # Loss costs throughput...
        assert heavy.throughput_bps < clean.throughput_bps
        # ...but Sprout keeps delivering useful throughput even at 10% loss
        # (TCP would collapse here, as the paper notes).
        assert heavy.throughput_bps > 0.15 * clean.throughput_bps
        # And the delay stays bounded (no multi-second queue build-up).
        assert heavy.self_inflicted_delay_s < 1.0
    assert set(LOSS_RATES) == {0.0, 0.05, 0.10}
