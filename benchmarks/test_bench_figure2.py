"""Benchmark: regenerate Figure 2 (interarrival distribution of a saturated
Verizon LTE downlink).

Paper reference points: the vast majority of interarrivals are short
(99.99% within 20 ms in the paper's measurement) and the tail beyond 20 ms
is heavy, fit by a power law (density ~ t^-3.27).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure2 import render_figure2, run_figure2


def test_bench_figure2(benchmark):
    data = benchmark.pedantic(lambda: run_figure2(duration=300.0), rounds=1, iterations=1)
    print()
    print(render_figure2(data))

    # Bulk of the distribution is short interarrivals.
    idx_20ms = int(np.searchsorted(data.thresholds, 0.020))
    assert data.survival_percent[idx_20ms] < 5.0
    # The tail is heavy: some interarrivals an order of magnitude longer exist.
    assert data.stats.max > 0.1
    # A power-law fit of the tail is obtained (exponent in a plausible range).
    assert np.isnan(data.tail_exponent) or 1.5 < data.tail_exponent < 8.0
