"""Benchmark: regenerate Figure 7 (throughput vs self-inflicted delay,
one chart per measured link).

Paper reference points: Sprout has the lowest (or close to the lowest)
self-inflicted delay on every link; the videoconference applications sit at
low throughput and high delay; Cubic reaches the highest throughput at the
cost of multi-second delays.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure7 import render_figure7
from repro.traces.networks import link_names


def test_bench_figure7(benchmark, measurement_matrix):
    data = benchmark.pedantic(lambda: measurement_matrix, rounds=1, iterations=1)
    print()
    print(render_figure7(data))

    grouped = data.by_link()
    assert set(grouped) == set(link_names())

    sprout_delay_rank = []
    for link, rows in grouped.items():
        by_delay = sorted(rows, key=lambda r: r.self_inflicted_delay_s)
        names = [r.scheme for r in by_delay]
        sprout_delay_rank.append(names.index("Sprout"))
        # Every scheme produced a meaningful measurement on every link.
        assert all(r.throughput_bps > 0 for r in rows)
    # "Sprout had the lowest, or close to the lowest, delay across each of
    # the eight links": on average it ranks in the best two.
    assert np.mean(sprout_delay_rank) <= 1.5
