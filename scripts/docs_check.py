#!/usr/bin/env python
"""Docs gate: validate markdown cross-links and smoke-run every example.

Two checks, both zero-dependency (``make docs-check``):

1. **Cross-links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file that exists (anchors are stripped;
   ``http(s)``/``mailto`` links are skipped).  A renamed doc or a typo'd
   path fails the build instead of 404ing for readers.
2. **Examples** — every ``examples/*.py`` runs to completion with
   ``REPRO_SMOKE=1``, the documented smoke-mode contract that shrinks each
   example to a seconds-long configuration on the same code path.

Exit status is non-zero on the first category of failure, with every
individual problem listed.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown files whose relative links are validated
DOC_GLOBS = ["README.md", "docs/*.md"]

#: matches [text](target) links, ignoring images' leading "!"
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: per-example wall-clock ceiling (smoke runs finish in seconds)
EXAMPLE_TIMEOUT_S = 300


def check_links() -> list:
    problems = []
    for pattern in DOC_GLOBS:
        for doc in sorted(REPO_ROOT.glob(pattern)):
            text = doc.read_text(encoding="utf-8")
            for match in _LINK.finditer(text):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                    )
    return problems


def run_examples() -> list:
    problems = []
    env = dict(os.environ)
    env["REPRO_SMOKE"] = "1"
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    for example in sorted((REPO_ROOT / "examples").glob("*.py")):
        rel = example.relative_to(REPO_ROOT)
        print(f"docs-check: running {rel} (smoke mode)...", flush=True)
        try:
            proc = subprocess.run(
                [sys.executable, str(example)],
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                text=True,
                timeout=EXAMPLE_TIMEOUT_S,
            )
        except subprocess.TimeoutExpired:
            problems.append(f"{rel}: timed out after {EXAMPLE_TIMEOUT_S}s in smoke mode")
            continue
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.strip().splitlines()[-5:])
            problems.append(f"{rel}: exited {proc.returncode}\n{tail}")
    return problems


def main() -> int:
    link_problems = check_links()
    for problem in link_problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if link_problems:
        return 1
    print(f"docs-check: cross-links ok ({', '.join(DOC_GLOBS)})")

    example_problems = run_examples()
    for problem in example_problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if example_problems:
        return 1
    print("docs-check: all examples ran clean in smoke mode")
    return 0


if __name__ == "__main__":
    sys.exit(main())
