#!/usr/bin/env python
"""Coverage gate: run the fast test suite under ``pytest --cov=repro``.

Fails (non-zero exit) if line coverage drops below the floor, so a PR
cannot silently shed tests.  The floor defaults to 85% and can be
recalibrated with ``REPRO_COV_FLOOR`` once measured on your environment —
pin it to whatever ``python scripts/coverage_gate.py`` last reported green.

``pytest-cov`` is an optional extra (``pip install -e '.[cov]'``); in
environments without it the gate reports a skip and exits zero rather than
failing the build on a missing tool.  The perf-marked benchmarks are
excluded — this is the fast "smoke + coverage" job, not the benchmark run.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_FLOOR = 85.0


def main() -> int:
    floor = float(os.environ.get("REPRO_COV_FLOOR", str(DEFAULT_FLOOR)))
    if importlib.util.find_spec("pytest_cov") is None:
        print(
            "coverage gate skipped: pytest-cov is not installed "
            "(pip install -e '.[cov]' to enable the gate)"
        )
        return 0
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-m",
        "not perf",
        "--cov=repro",
        f"--cov-fail-under={floor:g}",
        "tests",
    ]
    print("coverage gate:", " ".join(command[1:]), f"(floor {floor:g}%)")
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    sys.exit(main())
