#!/usr/bin/env python
"""Coverage gate: line coverage of ``src/repro`` under the fast test suite.

Fails (non-zero exit) if line coverage drops below the floor, so a PR
cannot silently shed tests.  Two measurement backends:

* **pytest-cov**, when installed (``pip install -e '.[cov]'``): the suite
  runs under ``pytest --cov=repro --cov-fail-under=<floor>``.
* **stdlib fallback**, otherwise: the suite runs in-process under a
  ``sys.settrace`` line tracer restricted to ``src/repro`` frames, and the
  executable-line universe comes from compiling each module and walking its
  code objects (``co_lines``).  Zero dependencies, so the gate is live even
  in environments where nothing can be installed.

The two backends count slightly differently (docstrings, worker
subprocesses), so the floor is calibrated *per backend*: ``REPRO_COV_FLOOR``
overrides both; the defaults below are pinned to what each backend last
reported green on the reference environment.  The perf-marked benchmarks
are excluded — this is the fast "smoke + coverage" job, not the benchmark
run.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: modules the gate refuses to run without — a rename or an accidental
#: deletion must fail loudly instead of silently shrinking the universe
REQUIRED_MODULES = (
    os.path.join("metrics", "flows.py"),
    os.path.join("simulation", "queues.py"),
    os.path.join("experiments", "policy.py"),
    os.path.join("experiments", "batched.py"),
    os.path.join("experiments", "analytic.py"),
    os.path.join("testing", "faults.py"),
    os.path.join("transport", "wire.py"),
    os.path.join("transport", "reliable.py"),
    os.path.join("transport", "endpoint.py"),
    os.path.join("transport", "harness.py"),
    os.path.join("transport", "impair.py"),
    "cache.py",
)

#: pinned floor for the pytest-cov backend (line coverage, percent)
DEFAULT_FLOOR = 85.0
#: pinned floor for the stdlib fallback backend.  Calibrated 2026-07-31 on
#: the reference container (measured 94.7%); pinned a few points under so
#: an environment-sized wobble does not fail the gate, while a real shed
#: of tests still does.
DEFAULT_FALLBACK_FLOOR = 90.0


def _pytest_cov_gate(floor: float) -> int:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{SRC_ROOT}{os.pathsep}{existing}" if existing else SRC_ROOT
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-m",
        "not perf",
        "--cov=repro",
        f"--cov-fail-under={floor:g}",
        "tests",
    ]
    print("coverage gate:", " ".join(command[1:]), f"(floor {floor:g}%)")
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


# ------------------------------------------------------- stdlib fallback


def _executable_lines(path: str) -> set:
    """Line numbers the compiler marks executable in one source file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines: set = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(line for _, _, line in code.co_lines() if line is not None)
        stack.extend(const for const in code.co_consts if hasattr(const, "co_lines"))
    return lines


def _stdlib_gate(floor: float) -> int:
    import threading

    import pytest

    if SRC_ROOT not in sys.path:
        sys.path.insert(0, SRC_ROOT)
    prefix = os.path.join(SRC_ROOT, "repro") + os.sep
    executed: dict = {}

    def line_tracer(frame, event, arg):
        if event == "line":
            lines = executed.get(frame.f_code.co_filename)
            if lines is None:
                lines = executed[frame.f_code.co_filename] = set()
            lines.add(frame.f_lineno)
        return line_tracer

    def call_tracer(frame, event, arg):
        if frame.f_code.co_filename.startswith(prefix):
            return line_tracer
        return None  # don't trace frames outside src/repro

    print(
        f"coverage gate: stdlib fallback (pytest-cov not installed), "
        f"floor {floor:g}%"
    )
    os.chdir(REPO_ROOT)
    threading.settrace(call_tracer)
    sys.settrace(call_tracer)
    try:
        code = pytest.main(["-q", "-m", "not perf", "tests"])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if code != 0:
        return int(code)

    total = hit = 0
    for directory, _, names in os.walk(os.path.join(SRC_ROOT, "repro")):
        for name in sorted(names):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            lines = _executable_lines(path)
            total += len(lines)
            hit += len(lines & executed.get(path, set()))
    percent = 100.0 * hit / total if total else 0.0
    print(
        f"coverage gate: {hit}/{total} executable lines hit "
        f"({percent:.1f}%, floor {floor:g}%)"
    )
    if percent < floor:
        print(f"coverage gate FAILED: {percent:.1f}% < {floor:g}%", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    for module in REQUIRED_MODULES:
        path = os.path.join(SRC_ROOT, "repro", module)
        if not os.path.exists(path):
            print(f"coverage gate: required module missing: {path}", file=sys.stderr)
            return 1
    override = os.environ.get("REPRO_COV_FLOOR")
    if importlib.util.find_spec("pytest_cov") is not None:
        floor = float(override) if override else DEFAULT_FLOOR
        return _pytest_cov_gate(floor)
    floor = float(override) if override else DEFAULT_FALLBACK_FLOOR
    return _stdlib_gate(floor)


if __name__ == "__main__":
    sys.exit(main())
