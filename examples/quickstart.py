#!/usr/bin/env python3
"""Quickstart: run Sprout over an emulated Verizon LTE downlink.

This example shows the three moving parts of the library:

1. pick a modelled cellular link (``repro.traces``),
2. build a Sprout connection (``repro.core``) and wire it through the
   Cellsim emulator (``repro.cellsim``),
3. compute the paper's metrics (``repro.metrics``) from the run.

Run it with::

    python examples/quickstart.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse
import os

from repro.baselines.omniscient import omniscient_delay
from repro.cellsim import cellsim_for_link
from repro.core import make_sprout
from repro.metrics import (
    arrivals_from_log,
    average_throughput_bps,
    end_to_end_delay_95,
    link_capacity_bps,
    self_inflicted_delay,
    utilization,
)
from repro.traces import get_link


# make docs-check runs every example with REPRO_SMOKE=1: same code path,
# seconds-long defaults
SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=8.0 if SMOKE else 60.0,
                        help="seconds to emulate")
    parser.add_argument("--warmup", type=float, default=2.0 if SMOKE else 10.0,
                        help="seconds excluded from metrics")
    parser.add_argument("--link", default="Verizon LTE downlink", help="modelled link to use")
    args = parser.parse_args()

    link = get_link(args.link)
    print(f"Emulating {args.duration:.0f} s of {link.name} "
          f"(~{link.config.mean_rate * 12:.0f} kbit/s average capacity)")

    # A Sprout connection is a sender/receiver pair.  The sender is greedy
    # (always has data), which is how the paper's evaluation runs it.
    connection = make_sprout(confidence=0.95)

    # Cellsim wires the two endpoints through the emulated duplex link:
    # data over the link under test, forecasts back over the paired uplink.
    sim = cellsim_for_link(connection.sender, connection.receiver, link,
                           duration=args.duration)
    sim.run(args.duration)

    # Metrics, exactly as defined in Section 5.1 of the paper.
    start, end = args.warmup, args.duration
    throughput = average_throughput_bps(sim.receiver_host.received_log, start, end)
    capacity = link_capacity_bps(sim.forward_trace, start, end)
    delay95 = end_to_end_delay_95(arrivals_from_log(sim.receiver_host.received_log), start, end)
    base = omniscient_delay(sim.forward_trace, start_time=start, end_time=end)
    inflicted = self_inflicted_delay(delay95, base)

    print(f"  throughput:            {throughput / 1000:8.0f} kbit/s")
    print(f"  link capacity:         {capacity / 1000:8.0f} kbit/s "
          f"(utilization {100 * utilization(throughput, capacity):.0f}%)")
    print(f"  95% end-to-end delay:  {delay95 * 1000:8.0f} ms")
    print(f"  self-inflicted delay:  {inflicted * 1000:8.0f} ms "
          f"(omniscient baseline {base * 1000:.0f} ms)")
    print(f"  forecasts received:    {connection.sender.forecasts_received}")
    print(f"  data packets:          {connection.receiver.data_packets_received}")


if __name__ == "__main__":
    main()
