#!/usr/bin/env python3
"""Compare Sprout against Skype/Hangout/Facetime models and TCP variants.

This reproduces the spirit of Figure 7 for a single link: every scheme runs
over the same emulated cellular link and the script prints the resulting
throughput / self-inflicted-delay frontier (up and to the right is better
for an interactive application).

Run it with::

    python examples/videoconference_comparison.py --link "AT&T LTE downlink"
"""

from __future__ import annotations

import argparse
import os

from repro.experiments import RunConfig, run_scheme_on_link

DEFAULT_SCHEMES = (
    "Sprout",
    "Sprout-EWMA",
    "Skype",
    "Google Hangout",
    "Facetime",
    "Cubic",
    "Cubic-CoDel",
    "Vegas",
    "LEDBAT",
)


# make docs-check runs every example with REPRO_SMOKE=1: same code path,
# seconds-long defaults over a reduced scheme set
SMOKE = os.environ.get("REPRO_SMOKE") == "1"
SMOKE_SCHEMES = ("Sprout", "Skype", "Cubic")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--link", default="Verizon LTE downlink")
    parser.add_argument("--duration", type=float, default=8.0 if SMOKE else 60.0)
    parser.add_argument("--warmup", type=float, default=2.0 if SMOKE else 10.0)
    parser.add_argument(
        "--schemes", nargs="*",
        default=list(SMOKE_SCHEMES if SMOKE else DEFAULT_SCHEMES),
        help="schemes to compare (default: the Figure 7 set)",
    )
    args = parser.parse_args()

    config = RunConfig(duration=args.duration, warmup=args.warmup)
    print(f"{args.link}: {args.duration:.0f} s emulation per scheme\n")
    print(f"{'scheme':16s} {'throughput kbps':>16s} {'self-inflicted delay ms':>24s} "
          f"{'utilization %':>14s}")

    results = []
    for scheme in args.schemes:
        result = run_scheme_on_link(scheme, args.link, config)
        results.append(result)
        print(f"{result.scheme:16s} {result.throughput_kbps:16.0f} "
              f"{result.self_inflicted_delay_ms:24.0f} {100 * result.utilization:14.1f}")

    best_delay = min(results, key=lambda r: r.self_inflicted_delay_s)
    best_throughput = max(results, key=lambda r: r.throughput_bps)
    print(f"\nlowest delay:      {best_delay.scheme} "
          f"({best_delay.self_inflicted_delay_ms:.0f} ms)")
    print(f"highest throughput: {best_throughput.scheme} "
          f"({best_throughput.throughput_kbps:.0f} kbps)")


if __name__ == "__main__":
    main()
