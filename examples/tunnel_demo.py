#!/usr/bin/env python3
"""SproutTunnel demo: isolate a Skype call from a competing bulk download.

Reproduces the Section 5.7 experiment: a TCP Cubic bulk transfer and a
Skype call share a Verizon LTE downlink, first directly (both flows pile
into the same deep carrier queue) and then through SproutTunnel (per-flow
queues at the tunnel ingress, total queue bounded by Sprout's forecast).

Run it with::

    python examples/tunnel_demo.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.competing import render_competing, run_competing_comparison

# make docs-check runs every example with REPRO_SMOKE=1: same code path,
# seconds-long defaults
SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--link", default="Verizon LTE downlink")
    parser.add_argument("--duration", type=float, default=10.0 if SMOKE else 60.0)
    parser.add_argument("--warmup", type=float, default=2.0 if SMOKE else 10.0)
    args = parser.parse_args()

    print(f"Running Cubic + Skype over {args.link}, directly and through "
          f"SproutTunnel ({args.duration:.0f} s each)...\n")
    comparison = run_competing_comparison(
        args.link, duration=args.duration, warmup=args.warmup
    )
    print(render_competing(comparison))
    print()
    print(f"tunnel queue-management drops: {comparison.tunnelled.tunnel_drops} packets")
    skype_change = comparison.change_percent("skype", "delay_95_s")
    print(f"Skype 95% delay change through the tunnel: {skype_change:+.0f}% "
          "(the paper reports -97%)")


if __name__ == "__main__":
    main()
