#!/usr/bin/env python3
"""Grid sweep: a sigma × loss grid over one link, exported as tidy CSV,
followed by a per-flow queue-management grid (aqm × tunnelled).

This example shows the moving parts of the scenario-grid layer
(docs/scenarios.md):

1. declare an N-dimensional ``GridSpec`` (here: forecaster noise power
   sigma × Bernoulli loss rate, the Cartesian product of both axes),
2. run it through ``run_grid`` — one flattened batch of matrix cells,
   bit-identical to running every cell serially by hand,
3. export the result as tidy long-format CSV (``repro.experiments.exports``)
   and print the per-link throughput/delay frontier,
4. run a second grid over the queue-management axes (``aqm``: drop-tail
   vs CoDel, §5.4; ``tunnelled``: direct vs SproutTunnel, §5.7) with
   ``RunConfig(per_flow=True)``, so every cell also reports Skype's delay
   tail and Cubic's throughput per flow — the paper's headline three-way
   comparison in one frontier print-out.

Run it with::

    python examples/grid_sweep.py [--duration SECONDS] [--out grid.csv]

Set ``REPRO_SMOKE=1`` (as ``make docs-check`` does) to shrink both grids to
a seconds-long smoke configuration that skips the per-sigma model rebuild.
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.exports import export_csv, write_export
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import GridSpec, render_grid_frontiers, run_grid

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration", type=float, default=6.0 if SMOKE else 30.0,
        help="trace seconds to emulate per cell",
    )
    parser.add_argument(
        "--warmup", type=float, default=1.0 if SMOKE else 6.0,
        help="seconds excluded from metrics",
    )
    parser.add_argument("--link", default="Verizon LTE downlink")
    parser.add_argument("--out", help="also write the CSV export to this file")
    args = parser.parse_args()

    # Non-default sigmas rebuild the forecaster's Monte-Carlo rate model
    # (a few seconds each); the smoke grid stays at the paper's sigma=200,
    # which reuses the shared model.
    sigmas = (200.0,) if SMOKE else (140.0, 200.0, 280.0)
    losses = (0.0, 0.03)

    spec = GridSpec(
        parameters=("sigma", "loss"),
        values=(sigmas, losses),
        schemes=("Sprout",),
        links=(args.link,),
    )
    shape = " × ".join(str(n) for n in spec.shape)
    print(f"running a sigma × loss grid ({shape} points, "
          f"{args.duration:.0f} s per cell) on {args.link}...\n")

    data = run_grid(spec, config=RunConfig(duration=args.duration, warmup=args.warmup))

    print(render_grid_frontiers(data))
    if args.out:
        write_export(data, "csv", args.out)
        print(f"CSV export written to {args.out}")
    else:
        print("CSV export (tidy long format, docs/scenarios.md):\n")
        print(export_csv(data), end="")

    # ---- per-flow worked example: the queue-management grid (sec. 5.4/5.7)
    # aqm 0/1 toggles drop-tail vs CoDel at the carrier queue; tunnelled 0/1
    # shares the queue directly vs rides SproutTunnel.  per_flow=True adds
    # Skype's delay tail and Cubic's throughput to every cell, and the
    # frontier print-out gains a per-flow section per link.
    aqm_values = (0.0,) if SMOKE else (0.0, 1.0)
    aqm_spec = GridSpec(
        parameters=("aqm", "tunnelled"),
        values=(aqm_values, (0.0, 1.0)),
        schemes=("Sprout",),
        links=(args.link,),
    )
    shape = " × ".join(str(n) for n in aqm_spec.shape)
    print(f"\nrunning an aqm × tunnelled grid ({shape} points, per-flow) "
          f"on {args.link}...\n")
    aqm_data = run_grid(
        aqm_spec,
        config=RunConfig(
            duration=args.duration, warmup=args.warmup, per_flow=True
        ),
    )
    print(render_grid_frontiers(aqm_data))


if __name__ == "__main__":
    main()
