#!/usr/bin/env python3
"""Peek inside Sprout's forecaster: belief evolution and cautious forecasts.

This example drives the Bayesian forecaster directly (no network, no
emulator) with a synthetic pattern of packet arrivals — a steady period, a
rate increase, and an outage — and prints how the inferred rate
distribution and the 95%-confidence cumulative forecast respond.  It is the
easiest way to understand what the Sprout receiver actually computes every
20 ms tick.

Run it with::

    python examples/forecast_visualization.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BayesianForecaster

MTU = 1500


def describe(forecaster: BayesianForecaster, label: str) -> None:
    """Print the belief summary and the cautious forecast."""
    belief = forecaster.rate_distribution()
    rates = forecaster.model.rates
    mean_rate = float(np.dot(belief, rates))
    cdf = np.cumsum(belief)
    p5 = float(rates[int(np.searchsorted(cdf, 0.05))])
    p95 = float(rates[int(np.searchsorted(cdf, 0.95))])
    forecast_packets = forecaster.forecast() / MTU
    print(f"{label}")
    print(f"  inferred rate: mean {mean_rate:6.0f} pkt/s, 90% interval "
          f"[{p5:.0f}, {p95:.0f}] pkt/s")
    print(f"  cautious forecast (packets deliverable, cumulative per 20 ms tick): "
          f"{np.array2string(forecast_packets, precision=0, floatmode='fixed')}")
    print()


def feed(forecaster: BayesianForecaster, rate_pps: float, seconds: float,
         rng: np.random.Generator) -> None:
    """Feed ``seconds`` of Poisson arrivals at ``rate_pps`` to the forecaster."""
    ticks = int(seconds / forecaster.tick_duration)
    for _ in range(ticks):
        packets = rng.poisson(rate_pps * forecaster.tick_duration)
        forecaster.tick(packets * MTU)


def main() -> None:
    rng = np.random.default_rng(2013)
    forecaster = BayesianForecaster(confidence=0.95)

    print("Sprout's stochastic forecaster (paper defaults: 256 rate bins, "
          "sigma = 200 pkt/s/sqrt(s), lambda_z = 1/s, 20 ms ticks)\n")

    describe(forecaster, "at start-up (uniform prior: every rate equally likely)")

    feed(forecaster, 300.0, 4.0, rng)
    describe(forecaster, "after 4 s of a steady 300 packet/s link")

    feed(forecaster, 700.0, 1.0, rng)
    describe(forecaster, "1 s after the link speeds up to 700 packet/s")

    for _ in range(10):  # 200 ms of silence: the start of an outage
        forecaster.tick(0.0)
    describe(forecaster, "200 ms into an outage (zero deliveries observed)")

    for _ in range(50):  # a further second of outage
        forecaster.tick(0.0)
    describe(forecaster, "1.2 s into the outage (belief pinned near zero)")

    feed(forecaster, 300.0, 1.0, rng)
    describe(forecaster, "1 s after the link recovers to 300 packet/s")


if __name__ == "__main__":
    main()
