# Developer entry points.  PYTHONPATH is prepended so the src/ layout works
# without an editable install.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test test-fast smoke test-fault test-oracle test-live test-chaos cov bench bench-batched bench-analytic docs-check

## full suite, including perf benchmarks (the tier-1 gate)
test:
	$(PYTHON) -m pytest -x -q

## fastest inner-loop pass: no perf benchmarks, no golden-grid re-runs
test-fast:
	$(PYTHON) -m pytest -q -m "not perf and not golden"

## fast smoke job: correctness tests only, no perf benchmarks
smoke:
	$(PYTHON) -m pytest -q -m "not perf"

## fault-injection recovery suite only (docs/robustness.md)
test-fault:
	$(PYTHON) -m pytest -q -m fault

## standing differential-validation oracle only (docs/analytic.md)
test-oracle:
	$(PYTHON) -m pytest -q -m oracle

## live loopback-socket transfers only (docs/transport.md; skips cleanly
## where the environment forbids even 127.0.0.1 UDP sockets)
test-live:
	$(PYTHON) -m pytest -q -m transport

## chaos acceptance matrix: live transfers under adversarial impairment
## profiles (docs/robustness.md; skips cleanly without sockets)
test-chaos:
	$(PYTHON) -m pytest -q -m chaos

## coverage gate (requires the [cov] extra; skips cleanly without it)
cov:
	$(PYTHON) scripts/coverage_gate.py

## performance benchmarks, refreshing BENCH_PERF.json
bench:
	$(PYTHON) -m pytest benchmarks/test_bench_perf.py -q -s

## batched cross-cell engine benchmark only (the BENCH_PERF.json `batched` section)
bench-batched:
	$(PYTHON) -m pytest benchmarks/test_bench_perf.py::test_bench_batched_cells_per_sec -q -s

## analytic screening benchmark only (the BENCH_PERF.json `analytic` section)
bench-analytic:
	$(PYTHON) -m pytest benchmarks/test_bench_perf.py::test_bench_analytic_screening_rate -q -s

## docs gate: validate markdown cross-links, smoke-run examples/*.py
docs-check:
	$(PYTHON) scripts/docs_check.py
