"""Tests for the queue disciplines (drop-tail and CoDel)."""

import pytest

from repro.simulation.packet import Packet
from repro.simulation.queues import CoDelQueue, DropTailQueue, drain


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue()
        packets = [Packet(headers={"i": i}) for i in range(5)]
        for i, packet in enumerate(packets):
            assert queue.enqueue(packet, now=float(i))
        out = drain(queue, now=10.0)
        assert [p.headers["i"] for p in out] == [0, 1, 2, 3, 4]

    def test_byte_accounting(self):
        queue = DropTailQueue()
        queue.enqueue(Packet(size=100), 0.0)
        queue.enqueue(Packet(size=200), 0.0)
        assert queue.byte_length() == 300
        assert len(queue) == 2
        queue.dequeue(1.0)
        assert queue.byte_length() == 200

    def test_unbounded_by_default(self):
        queue = DropTailQueue()
        for _ in range(1000):
            assert queue.enqueue(Packet(), 0.0)
        assert len(queue) == 1000
        assert queue.drops == 0

    def test_byte_limit_drops_arrivals(self):
        queue = DropTailQueue(byte_limit=3000)
        assert queue.enqueue(Packet(), 0.0)
        assert queue.enqueue(Packet(), 0.0)
        third = Packet()
        assert not queue.enqueue(third, 0.0)
        assert third.dropped
        assert queue.drops == 1

    def test_drop_callback_invoked(self):
        dropped = []
        queue = DropTailQueue(byte_limit=1500, on_drop=dropped.append)
        queue.enqueue(Packet(), 0.0)
        queue.enqueue(Packet(), 0.0)
        assert len(dropped) == 1

    def test_invalid_byte_limit_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(byte_limit=0)

    def test_timestamps_recorded(self):
        queue = DropTailQueue()
        packet = Packet()
        queue.enqueue(packet, 1.0)
        queue.dequeue(2.5)
        assert packet.enqueued_at == 1.0
        assert packet.dequeued_at == 2.5
        assert packet.queueing_delay == pytest.approx(1.5)

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue(0.0) is None

    def test_peek_does_not_remove(self):
        queue = DropTailQueue()
        queue.enqueue(Packet(headers={"i": 1}), 0.0)
        assert queue.peek().headers["i"] == 1
        assert len(queue) == 1


class TestCoDel:
    def test_behaves_as_fifo_when_delay_is_low(self):
        queue = CoDelQueue()
        for i in range(10):
            queue.enqueue(Packet(headers={"i": i}), now=i * 0.001)
        out = []
        now = 0.012
        while True:
            packet = queue.dequeue(now)
            if packet is None:
                break
            out.append(packet.headers["i"])
            now += 0.001
        assert out == list(range(10))
        assert queue.drops == 0

    def test_drops_when_sojourn_time_stays_high(self):
        queue = CoDelQueue()
        # Build a standing queue: 200 packets enqueued at t=0, drained slowly
        # starting 400 ms later, so every sojourn time far exceeds the target.
        for _ in range(200):
            queue.enqueue(Packet(), 0.0)
        now = 0.4
        delivered = 0
        while len(queue) > 0:
            packet = queue.dequeue(now)
            if packet is None:
                break
            delivered += 1
            now += 0.01
        assert queue.drops > 0
        assert delivered + queue.drops == 200

    def test_no_drops_for_short_bursts(self):
        queue = CoDelQueue()
        # A burst that drains within one interval should never be dropped.
        for _ in range(5):
            queue.enqueue(Packet(), 0.0)
        now = 0.002
        while queue.dequeue(now) is not None:
            now += 0.002
        assert queue.drops == 0

    def test_byte_limit_still_applies(self):
        queue = CoDelQueue(byte_limit=1500)
        assert queue.enqueue(Packet(), 0.0)
        assert not queue.enqueue(Packet(), 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CoDelQueue(target=0.0)
        with pytest.raises(ValueError):
            CoDelQueue(interval=-1.0)

    def test_recovers_after_queue_drains(self):
        queue = CoDelQueue()
        for _ in range(100):
            queue.enqueue(Packet(), 0.0)
        now = 0.5
        while queue.dequeue(now) is not None:
            now += 0.01
        # After fully draining, fresh low-delay traffic passes untouched.
        drops_before = queue.drops
        queue.enqueue(Packet(), now)
        assert queue.dequeue(now + 0.001) is not None
        assert queue.drops == drops_before
