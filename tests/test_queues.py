"""Tests for the queue disciplines (drop-tail and CoDel) and QueueConfig."""

import pytest

from repro.simulation.packet import Packet
from repro.simulation.queues import (
    AQM_CODEL,
    AQM_DROP_TAIL,
    CoDelQueue,
    DropTailQueue,
    QueueConfig,
    drain,
)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue()
        packets = [Packet(headers={"i": i}) for i in range(5)]
        for i, packet in enumerate(packets):
            assert queue.enqueue(packet, now=float(i))
        out = drain(queue, now=10.0)
        assert [p.headers["i"] for p in out] == [0, 1, 2, 3, 4]

    def test_byte_accounting(self):
        queue = DropTailQueue()
        queue.enqueue(Packet(size=100), 0.0)
        queue.enqueue(Packet(size=200), 0.0)
        assert queue.byte_length() == 300
        assert len(queue) == 2
        queue.dequeue(1.0)
        assert queue.byte_length() == 200

    def test_unbounded_by_default(self):
        queue = DropTailQueue()
        for _ in range(1000):
            assert queue.enqueue(Packet(), 0.0)
        assert len(queue) == 1000
        assert queue.drops == 0

    def test_byte_limit_drops_arrivals(self):
        queue = DropTailQueue(byte_limit=3000)
        assert queue.enqueue(Packet(), 0.0)
        assert queue.enqueue(Packet(), 0.0)
        third = Packet()
        assert not queue.enqueue(third, 0.0)
        assert third.dropped
        assert queue.drops == 1

    def test_drop_callback_invoked(self):
        dropped = []
        queue = DropTailQueue(byte_limit=1500, on_drop=dropped.append)
        queue.enqueue(Packet(), 0.0)
        queue.enqueue(Packet(), 0.0)
        assert len(dropped) == 1

    def test_invalid_byte_limit_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(byte_limit=0)

    def test_timestamps_recorded(self):
        queue = DropTailQueue()
        packet = Packet()
        queue.enqueue(packet, 1.0)
        queue.dequeue(2.5)
        assert packet.enqueued_at == 1.0
        assert packet.dequeued_at == 2.5
        assert packet.queueing_delay == pytest.approx(1.5)

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue(0.0) is None

    def test_peek_does_not_remove(self):
        queue = DropTailQueue()
        queue.enqueue(Packet(headers={"i": 1}), 0.0)
        assert queue.peek().headers["i"] == 1
        assert len(queue) == 1

    # Regression suite: the byte limit must be charged against queued
    # *bytes*, never against the packet count — many small packets fit
    # where few large ones would, and vice versa.

    def test_byte_limit_admits_many_small_packets(self):
        queue = DropTailQueue(byte_limit=1500)
        for _ in range(15):
            assert queue.enqueue(Packet(size=100), 0.0)
        assert queue.drops == 0
        assert len(queue) == 15
        assert queue.byte_length() == 1500
        # The 16th small packet would exceed the byte budget.
        assert not queue.enqueue(Packet(size=100), 0.0)
        assert queue.drops == 1

    def test_byte_limit_rejects_large_packet_but_admits_smaller_one(self):
        queue = DropTailQueue(byte_limit=2000)
        assert queue.enqueue(Packet(size=1500), 0.0)
        # A full-MTU packet would overflow the byte budget...
        assert not queue.enqueue(Packet(size=1500), 0.0)
        # ...but a packet that fits the remaining 500 bytes is admitted
        # even though a drop happened in between (no tail lock).
        assert queue.enqueue(Packet(size=500), 0.0)
        assert queue.byte_length() == 2000
        assert queue.drops == 1

    def test_dequeue_frees_byte_budget_for_new_arrivals(self):
        queue = DropTailQueue(byte_limit=3000)
        assert queue.enqueue(Packet(size=1500), 0.0)
        assert queue.enqueue(Packet(size=1500), 0.0)
        assert not queue.enqueue(Packet(size=100), 0.0)
        queue.dequeue(1.0)
        assert queue.byte_length() == 1500
        assert queue.enqueue(Packet(size=1400), 1.0)
        assert queue.byte_length() == 2900

    def test_codel_byte_limit_is_byte_accounted_too(self):
        queue = CoDelQueue(byte_limit=1000)
        for _ in range(10):
            assert queue.enqueue(Packet(size=100), 0.0)
        assert not queue.enqueue(Packet(size=100), 0.0)
        assert queue.drops == 1


class TestQueueConfig:
    def test_default_builds_unbounded_drop_tail(self):
        queue = QueueConfig().build()
        assert isinstance(queue, DropTailQueue)
        assert queue.byte_limit is None

    def test_codel_build_carries_parameters(self):
        config = QueueConfig(
            aqm=AQM_CODEL, byte_limit=5000, codel_target=0.01, codel_interval=0.2
        )
        queue = config.build()
        assert isinstance(queue, CoDelQueue)
        assert queue.byte_limit == 5000
        assert queue.target == 0.01
        assert queue.interval == 0.2

    def test_resolve_inherits_context_defaults(self):
        inherit_all = QueueConfig()
        resolved = inherit_all.resolve(use_codel=True, byte_limit=7000)
        assert resolved.aqm == AQM_CODEL
        assert resolved.byte_limit == 7000
        # Explicit fields win over the context.
        explicit = QueueConfig(aqm=AQM_DROP_TAIL, byte_limit=100)
        resolved = explicit.resolve(use_codel=True, byte_limit=7000)
        assert resolved.aqm == AQM_DROP_TAIL
        assert resolved.byte_limit == 100

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            QueueConfig(aqm=7)
        with pytest.raises(ValueError):
            QueueConfig(byte_limit=0)
        with pytest.raises(ValueError):
            QueueConfig(codel_target=0.0)

    def test_config_is_picklable(self):
        import pickle

        config = QueueConfig(aqm=AQM_CODEL, byte_limit=30000)
        assert pickle.loads(pickle.dumps(config)) == config


class TestCoDel:
    def test_behaves_as_fifo_when_delay_is_low(self):
        queue = CoDelQueue()
        for i in range(10):
            queue.enqueue(Packet(headers={"i": i}), now=i * 0.001)
        out = []
        now = 0.012
        while True:
            packet = queue.dequeue(now)
            if packet is None:
                break
            out.append(packet.headers["i"])
            now += 0.001
        assert out == list(range(10))
        assert queue.drops == 0

    def test_drops_when_sojourn_time_stays_high(self):
        queue = CoDelQueue()
        # Build a standing queue: 200 packets enqueued at t=0, drained slowly
        # starting 400 ms later, so every sojourn time far exceeds the target.
        for _ in range(200):
            queue.enqueue(Packet(), 0.0)
        now = 0.4
        delivered = 0
        while len(queue) > 0:
            packet = queue.dequeue(now)
            if packet is None:
                break
            delivered += 1
            now += 0.01
        assert queue.drops > 0
        assert delivered + queue.drops == 200

    def test_no_drops_for_short_bursts(self):
        queue = CoDelQueue()
        # A burst that drains within one interval should never be dropped.
        for _ in range(5):
            queue.enqueue(Packet(), 0.0)
        now = 0.002
        while queue.dequeue(now) is not None:
            now += 0.002
        assert queue.drops == 0

    def test_byte_limit_still_applies(self):
        queue = CoDelQueue(byte_limit=1500)
        assert queue.enqueue(Packet(), 0.0)
        assert not queue.enqueue(Packet(), 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CoDelQueue(target=0.0)
        with pytest.raises(ValueError):
            CoDelQueue(interval=-1.0)

    def test_recovers_after_queue_drains(self):
        queue = CoDelQueue()
        for _ in range(100):
            queue.enqueue(Packet(), 0.0)
        now = 0.5
        while queue.dequeue(now) is not None:
            now += 0.01
        # After fully draining, fresh low-delay traffic passes untouched.
        drops_before = queue.drops
        queue.enqueue(Packet(), now)
        assert queue.dequeue(now + 0.001) is not None
        assert queue.drops == drops_before
