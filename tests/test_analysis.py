"""Tests for trace analysis (interarrivals, capacity, tail fit)."""

import numpy as np
import pytest

from repro.traces.analysis import (
    capacity_timeseries,
    fit_powerlaw_tail,
    interarrival_stats,
    interarrival_survival,
    interarrival_times,
)


def test_interarrival_times_simple():
    gaps = interarrival_times([0.0, 0.1, 0.3, 0.6])
    assert np.allclose(gaps, [0.1, 0.2, 0.3])


def test_interarrival_times_unsorted_input():
    gaps = interarrival_times([0.6, 0.0, 0.3, 0.1])
    assert np.allclose(gaps, [0.1, 0.2, 0.3])


def test_interarrival_times_too_few_points():
    assert interarrival_times([1.0]).size == 0
    assert interarrival_times([]).size == 0


def test_survival_fractions():
    gaps = [0.001, 0.002, 0.010, 0.100]
    survival = interarrival_survival(gaps, [0.0015, 0.005, 0.05, 1.0])
    assert np.allclose(survival, [0.75, 0.5, 0.25, 0.0])


def test_survival_of_empty_gaps_is_zero():
    assert np.all(interarrival_survival([], [0.1, 0.2]) == 0.0)


def test_powerlaw_fit_recovers_known_exponent():
    rng = np.random.default_rng(0)
    # Pareto tail with density exponent alpha = 3.0 above x_min = 0.02.
    alpha = 3.0
    samples = 0.02 * (1.0 + rng.pareto(alpha - 1.0, size=200_000))
    exponent, fraction = fit_powerlaw_tail(samples, tail_start=0.02)
    assert exponent == pytest.approx(alpha, rel=0.05)
    assert fraction == pytest.approx(1.0)


def test_powerlaw_fit_with_tiny_tail_returns_nan():
    exponent, fraction = fit_powerlaw_tail([0.001] * 100, tail_start=0.02)
    assert np.isnan(exponent)
    assert fraction == 0.0


def test_interarrival_stats_fields():
    rng = np.random.default_rng(1)
    times = np.cumsum(rng.exponential(0.002, size=20_000))
    stats = interarrival_stats(times)
    assert stats.count == 20_000 - 1
    assert stats.mean == pytest.approx(0.002, rel=0.05)
    assert stats.p99 > stats.median


def test_capacity_timeseries_constant_rate():
    # 100 opportunities per second for 10 seconds.
    times = [i / 100 for i in range(1, 1001)]
    centers, kbps = capacity_timeseries(times, bin_width=1.0)
    assert len(centers) == len(kbps) == 10
    assert np.allclose(kbps, 100 * 1500 * 8 / 1000, rtol=0.02)


def test_capacity_timeseries_empty():
    centers, kbps = capacity_timeseries([])
    assert centers.size == 0 and kbps.size == 0


def test_capacity_timeseries_rejects_bad_bin():
    with pytest.raises(ValueError):
        capacity_timeseries([1.0], bin_width=0.0)
