"""Tests for the structured export layer (repro.experiments.exports).

Three lines of defence, per docs/scenarios.md:

* golden fixtures — the exact CSV and JSON bytes of a tiny 2-D grid are
  checked in (``tests/fixtures/golden_grid_export.*``); any simulation or
  schema drift shows up as an exact-compare failure;
* round-trips — export → parse → compare recovers bit-identical values in
  both formats, and the JSON path rebuilds a full ``GridData``;
* grid equivalence — a 2-D grid cell is pinned against the same cell run
  serially by hand through ``run_scheme_on_link``, the PR's acceptance bar.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.experiments.exports import (
    ERROR_COLUMN,
    EXPORT_SCHEMA_VERSION,
    FLOW_COLUMNS,
    METRIC_COLUMNS,
    SCREEN_COLUMNS,
    as_grid_data,
    csv_columns,
    export_csv,
    export_json,
    export_rows,
    export_text,
    grid_data_from_json,
    parse_csv,
    parse_json,
    write_export,
)
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.experiments.sweeps import (
    SWEEP_PARAMETERS,
    GridData,
    GridPoint,
    GridSpec,
    SweepSpec,
    run_grid,
    run_sweep,
)
from repro.metrics.flows import FlowMetrics
from repro.metrics.summary import SchemeResult

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_CSV = FIXTURES / "golden_grid_export.csv"
GOLDEN_JSON = FIXTURES / "golden_grid_export.json"
#: schema-v1 exports written before the per-flow columns existed
GOLDEN_CSV_V1 = FIXTURES / "golden_grid_export_v1.csv"
GOLDEN_JSON_V1 = FIXTURES / "golden_grid_export_v1.json"
#: schema-v2 exports written before the error channel existed
GOLDEN_CSV_V2 = FIXTURES / "golden_grid_export_v2.csv"
GOLDEN_JSON_V2 = FIXTURES / "golden_grid_export_v2.json"
#: schema-v3 exports written before the screening columns existed
GOLDEN_CSV_V3 = FIXTURES / "golden_grid_export_v3.csv"
GOLDEN_JSON_V3 = FIXTURES / "golden_grid_export_v3.json"

#: the tiny grid frozen in the golden fixtures
GOLDEN_SPEC = GridSpec(
    parameters=("loss", "scale"),
    values=((0.0, 0.02), (1.0, 0.5)),
    schemes=("Vegas",),
    links=("AT&T LTE uplink",),
)
GOLDEN_CONFIG = RunConfig(duration=6.0, warmup=1.0)


@pytest.fixture(scope="module")
def grid_data():
    return run_grid(GOLDEN_SPEC, config=GOLDEN_CONFIG, jobs=1)


# ------------------------------------------------------------------ golden


def test_csv_export_matches_golden_fixture(grid_data):
    assert export_csv(grid_data) == GOLDEN_CSV.read_text()


def test_json_export_matches_golden_fixture(grid_data):
    assert export_json(grid_data) == GOLDEN_JSON.read_text()


def test_grid_cells_bit_identical_to_serial_single_cells(grid_data):
    """Acceptance bar: every 2-D grid cell == the same cell run serially."""
    loss_expand = SWEEP_PARAMETERS["loss"].expand
    scale_expand = SWEEP_PARAMETERS["scale"].expand
    for point in grid_data.points:
        loss, scale = point.coordinates
        scheme, link, config = ("Vegas", "AT&T LTE uplink", GOLDEN_CONFIG)
        scheme, link, config = loss_expand(scheme, link, config, loss)
        scheme, link, config = scale_expand(scheme, link, config, scale)
        reference = run_scheme_on_link(scheme, link, config)
        (row,) = point.results
        assert row.as_dict() == reference.as_dict()


# -------------------------------------------------------------- round-trip


def test_csv_round_trip_is_exact(grid_data):
    rows = parse_csv(export_csv(grid_data))
    assert rows == export_rows(grid_data)
    for row in rows:
        assert row["schema_version"] == EXPORT_SCHEMA_VERSION


def test_json_round_trip_rebuilds_grid_data(grid_data):
    rebuilt = grid_data_from_json(export_json(grid_data))
    assert rebuilt.spec == grid_data.spec
    assert len(rebuilt.points) == len(grid_data.points)
    for mine, theirs in zip(grid_data.points, rebuilt.points):
        assert mine.coordinates == theirs.coordinates
        assert [r.as_dict() for r in mine.results] == [
            r.as_dict() for r in theirs.results
        ]


def test_json_payload_structure(grid_data):
    payload = parse_json(export_json(grid_data))
    assert payload["schema_version"] == EXPORT_SCHEMA_VERSION
    assert payload["kind"] == "grid"
    assert payload["parameters"] == ["loss", "scale"]
    assert payload["axis_values"] == [[0.0, 0.02], [1.0, 0.5]]
    assert payload["schemes"] == ["Vegas"]
    assert len(payload["points"]) == 4
    first = payload["points"][0]
    assert first["coordinates"] == {"loss": 0.0, "scale": 1.0}
    assert first["results"][0]["scheme"] == "Vegas"
    assert "throughput_bps" in first["results"][0]


def test_csv_column_order_is_documented_shape(grid_data):
    header = export_csv(grid_data).splitlines()[0].split(",")
    assert header == csv_columns(GOLDEN_SPEC)
    assert header[0] == "schema_version"
    assert header[1:3] == ["loss", "scale"]
    assert header[3:5] == ["scheme", "link"]
    assert header[5 : 5 + len(METRIC_COLUMNS)] == METRIC_COLUMNS
    assert header[5 + len(METRIC_COLUMNS) :] == [
        *SCREEN_COLUMNS,
        *FLOW_COLUMNS,
        ERROR_COLUMN,
    ]


def test_aggregate_rows_leave_flow_columns_empty(grid_data):
    for row in parse_csv(export_csv(grid_data)):
        assert row["flow_id"] is None
        assert row["flow_throughput_bps"] is None
        assert row["flow_delay_95_s"] is None
        assert row["throughput_bps"] is not None


def test_success_rows_leave_error_column_empty(grid_data):
    for row in parse_csv(export_csv(grid_data)):
        assert row[ERROR_COLUMN] is None
    payload = parse_json(export_json(grid_data))
    for point in payload["points"]:
        assert "errors" not in point  # all-green exports carry no error key


# ------------------------------------------------- v1 backward compatibility


def test_v1_csv_fixture_still_parses():
    rows = parse_csv(GOLDEN_CSV_V1.read_text())
    assert rows, "v1 fixture parsed to no rows"
    for row in rows:
        assert row["schema_version"] == 1
        assert "flow_id" not in row  # v1 had no per-flow columns
        assert isinstance(row["throughput_bps"], float)


def test_v1_json_fixture_still_rebuilds_grid_data():
    payload = parse_json(GOLDEN_JSON_V1.read_text())
    assert payload["schema_version"] == 1
    rebuilt = grid_data_from_json(GOLDEN_JSON_V1.read_text())
    assert rebuilt.spec.parameters == ("loss", "scale")
    for point in rebuilt.points:
        for result in point.results:
            assert result.flows is None
            assert "flows" not in result.as_dict()


def test_v2_csv_fixture_still_parses():
    rows = parse_csv(GOLDEN_CSV_V2.read_text())
    assert rows, "v2 fixture parsed to no rows"
    for row in rows:
        assert row["schema_version"] == 2
        assert ERROR_COLUMN not in row  # v2 had no error column
        assert row["flow_id"] is None  # the golden grid has no per-flow rows


def test_v2_json_fixture_still_rebuilds_grid_data():
    payload = parse_json(GOLDEN_JSON_V2.read_text())
    assert payload["schema_version"] == 2
    rebuilt = grid_data_from_json(GOLDEN_JSON_V2.read_text())
    assert rebuilt.spec.parameters == ("loss", "scale")
    for point in rebuilt.points:
        assert point.errors == []  # v2 exports carry no failures


def test_v3_csv_fixture_still_parses():
    rows = parse_csv(GOLDEN_CSV_V3.read_text())
    assert rows, "v3 fixture parsed to no rows"
    for row in rows:
        assert row["schema_version"] == 3
        assert "screened" not in row  # v3 had no screening columns
        assert isinstance(row["throughput_bps"], float)


def test_v3_json_fixture_still_rebuilds_grid_data():
    payload = parse_json(GOLDEN_JSON_V3.read_text())
    assert payload["schema_version"] == 3
    rebuilt = grid_data_from_json(GOLDEN_JSON_V3.read_text())
    assert rebuilt.spec.parameters == ("loss", "scale")
    for point in rebuilt.points:
        assert point.errors == []
        assert point.screened_results == []  # v3 exports carry no screened cells


def test_v4_csv_rejects_screened_row_with_flow_section():
    """A screened cell was never emulated: measured flows are contradictory."""
    lines = GOLDEN_CSV.read_text().splitlines()
    header = lines[0].split(",")
    row = lines[1].split(",")
    row[header.index("screened")] = "1"
    row[header.index("predicted_throughput_bps")] = "500000.0"
    row[header.index("predicted_delay_s")] = "0.05"
    row[header.index("prediction_uncertainty")] = "0.25"
    row[header.index("flow_id")] = "0"
    row[header.index("flow_throughput_bps")] = "250000.0"
    row[header.index("flow_delay_95_s")] = "0.1"
    malformed = "\n".join([lines[0], ",".join(row)]) + "\n"
    with pytest.raises(ValueError, match="screened"):
        parse_csv(malformed)


def test_v4_json_rejects_screened_record_with_flow_section():
    payload = json.loads(GOLDEN_JSON.read_text())
    payload["points"][0]["screened"] = [
        {
            "scheme": "Vegas",
            "link": "AT&T LTE uplink",
            "index": 0,
            "screened": True,
            "flows": [{"flow_id": 0, "throughput_bps": 1.0}],
        }
    ]
    with pytest.raises(ValueError, match="screened"):
        parse_json(json.dumps(payload))


def test_v4_json_rejects_result_marked_screened_with_flow_section():
    payload = json.loads(GOLDEN_JSON.read_text())
    result = payload["points"][0]["results"][0]
    result["screened"] = True
    result["flows"] = [{"flow_id": 0, "throughput_bps": 1.0}]
    with pytest.raises(ValueError, match="screened"):
        parse_json(json.dumps(payload))


def test_v1_v2_v3_v4_goldens_carry_identical_metrics():
    """The schema bumps are additive: the measured numbers did not move."""
    v1 = parse_csv(GOLDEN_CSV_V1.read_text())
    v2 = [
        row for row in parse_csv(GOLDEN_CSV_V2.read_text()) if row["flow_id"] is None
    ]
    v3 = [
        row for row in parse_csv(GOLDEN_CSV_V3.read_text()) if row["flow_id"] is None
    ]
    v4 = [row for row in parse_csv(GOLDEN_CSV.read_text()) if row["flow_id"] is None]
    assert len(v1) == len(v2) == len(v3) == len(v4)
    ignored = {"schema_version", *SCREEN_COLUMNS, *FLOW_COLUMNS, ERROR_COLUMN}
    for rows in zip(v1, v2, v3, v4):
        stripped = [
            {k: v for k, v in row.items() if k not in ignored} for row in rows
        ]
        assert all(row == stripped[0] for row in stripped[1:])


def test_sweep_data_exports_as_one_axis_grid():
    spec = SweepSpec(
        parameter="loss", values=(0.0,), schemes=("Vegas",), links=("AT&T LTE uplink",)
    )
    data = run_sweep(spec, config=GOLDEN_CONFIG)
    grid = as_grid_data(data)
    assert grid.spec.parameters == ("loss",)
    rows = parse_csv(export_csv(data))
    assert len(rows) == 1
    assert rows[0]["loss"] == 0.0
    assert rows[0]["scheme"] == "Vegas"
    # the sweep and its grid form serialise identically
    assert export_json(data) == export_json(grid)


# ------------------------------------------------------- non-finite floats


def _nonfinite_grid() -> GridData:
    """A one-cell grid whose metrics are all three non-finite floats.

    nan is reachable in practice (a flow with no delay-signal segments in
    the window); the infinities appear in failed-cell-adjacent ratio
    metrics.  Either way the export layer must carry them losslessly.
    """
    spec = GridSpec(
        parameters=("loss",),
        values=((0.0,),),
        schemes=("Sprout",),
        links=("AT&T LTE uplink",),
    )
    result = SchemeResult(
        scheme="Sprout",
        link="AT&T LTE uplink",
        throughput_bps=float("inf"),
        delay_95_s=float("nan"),
        self_inflicted_delay_s=float("-inf"),
        utilization=0.5,
        capacity_bps=1e6,
        omniscient_delay_95_s=0.1,
        flows=[
            FlowMetrics(
                throughput_bps=float("inf"),
                delay_95_s=float("nan"),
                flow="client",
                packets=3,
                bytes=4200,
            )
        ],
    )
    point = GridPoint(parameters=("loss",), coordinates=(0.0,), results=[result])
    return GridData(spec=spec, points=[point])


def test_csv_round_trip_preserves_nonfinite_metrics():
    text = export_csv(_nonfinite_grid())
    aggregate, flow_row = parse_csv(text)
    assert aggregate["throughput_bps"] == float("inf")
    assert aggregate["throughput_kbps"] == float("inf")
    assert math.isnan(aggregate["delay_95_s"])
    assert aggregate["self_inflicted_delay_s"] == float("-inf")
    assert aggregate["self_inflicted_delay_ms"] == float("-inf")
    assert aggregate["utilization"] == 0.5
    assert flow_row["flow_id"] == "client"
    assert flow_row["flow_throughput_bps"] == float("inf")
    assert math.isnan(flow_row["flow_delay_95_s"])


def test_json_export_of_nonfinite_values_stays_strict_rfc8259():
    """No bare NaN/Infinity tokens: jq / JavaScript must accept the file."""
    text = export_json(_nonfinite_grid())

    def reject(token):  # json only calls this on non-RFC tokens
        raise AssertionError(f"export emitted bare token {token!r}")

    payload = json.loads(text, parse_constant=reject)
    exported = payload["points"][0]["results"][0]
    assert exported["delay_95_s"] is None  # nan -> null, the v3 convention
    assert exported["throughput_bps"] == "Infinity"
    assert exported["self_inflicted_delay_s"] == "-Infinity"


def test_json_round_trip_restores_nonfinite_metrics():
    rebuilt = grid_data_from_json(export_json(_nonfinite_grid()))
    (result,) = rebuilt.points[0].results
    assert result.throughput_bps == float("inf")
    assert math.isnan(result.delay_95_s)
    assert result.self_inflicted_delay_s == float("-inf")
    assert result.utilization == 0.5
    (flow,) = result.flows
    assert flow.flow == "client"
    assert flow.packets == 3 and flow.bytes == 4200
    assert flow.throughput_bps == float("inf")
    assert math.isnan(flow.delay_95_s)


# -------------------------------------------------------------- validation


def test_unknown_export_format_rejected(grid_data):
    with pytest.raises(ValueError, match="csv, json"):
        export_text(grid_data, "yaml")


def test_parse_rejects_wrong_schema_version(grid_data):
    bumped = export_json(grid_data).replace(
        f'"schema_version": {EXPORT_SCHEMA_VERSION}', '"schema_version": 999'
    )
    with pytest.raises(ValueError, match="schema version"):
        parse_json(bumped)
    csv_text = export_csv(grid_data)
    header, first, rest = csv_text.split("\n", 2)
    assert first.startswith(f"{EXPORT_SCHEMA_VERSION},")
    mutated = "999" + first[len(str(EXPORT_SCHEMA_VERSION)) :]
    with pytest.raises(ValueError, match="schema version"):
        parse_csv("\n".join([header, mutated, rest]))


def test_parse_csv_rejects_non_export_text():
    with pytest.raises(ValueError, match="schema_version"):
        parse_csv("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError, match="empty"):
        parse_csv("")


def test_write_export_creates_parseable_files(grid_data, tmp_path):
    csv_path = tmp_path / "grid.csv"
    json_path = tmp_path / "grid.json"
    write_export(grid_data, "csv", str(csv_path))
    write_export(grid_data, "json", str(json_path))
    assert parse_csv(csv_path.read_text()) == export_rows(grid_data)
    rebuilt = grid_data_from_json(json_path.read_text())
    assert rebuilt.spec == grid_data.spec


def test_parse_csv_rejects_truncated_rows(grid_data):
    text = export_csv(grid_data)
    lines = text.splitlines()
    truncated = "\n".join(lines[:-1] + [lines[-1].rsplit(",", 2)[0]]) + "\n"
    with pytest.raises(ValueError, match="truncated"):
        parse_csv(truncated)


def _screened_csv_row(**overrides):
    """The golden export's first row rewritten as a screened prediction."""
    lines = GOLDEN_CSV.read_text().splitlines()
    header = lines[0].split(",")
    row = lines[1].split(",")
    values = {
        "screened": "1",
        "predicted_throughput_bps": "500000.0",
        "predicted_delay_s": "0.05",
        "prediction_uncertainty": "0.25",
        **overrides,
    }
    for column, value in values.items():
        row[header.index(column)] = value
    return "\n".join([lines[0], ",".join(row)]) + "\n"


def test_v4_csv_accepts_in_range_predictions():
    rows = parse_csv(_screened_csv_row())
    assert rows[0]["prediction_uncertainty"] == 0.25


@pytest.mark.parametrize("bad", ["1.5", "-0.25"])
def test_v4_csv_rejects_out_of_range_prediction_uncertainty(bad):
    with pytest.raises(ValueError, match="outside"):
        parse_csv(_screened_csv_row(prediction_uncertainty=bad))


def test_v4_csv_rejects_negative_predicted_throughput():
    with pytest.raises(ValueError, match="negative predicted throughput"):
        parse_csv(_screened_csv_row(predicted_throughput_bps="-500000.0"))


def _screened_json_payload(**overrides):
    payload = json.loads(GOLDEN_JSON.read_text())
    record = {
        "scheme": "Vegas",
        "link": "AT&T LTE uplink",
        "index": 0,
        "screened": True,
        "throughput_bps": 500000.0,
        "prediction_uncertainty": 0.25,
        **overrides,
    }
    payload["points"][0]["screened"] = [record]
    return json.dumps(payload)


def test_v4_json_accepts_in_range_predictions():
    parse_json(_screened_json_payload())


@pytest.mark.parametrize("bad", [1.5, -0.25])
def test_v4_json_rejects_out_of_range_prediction_uncertainty(bad):
    with pytest.raises(ValueError, match="outside"):
        parse_json(_screened_json_payload(prediction_uncertainty=bad))


def test_v4_json_rejects_negative_predicted_throughput():
    with pytest.raises(ValueError, match="negative predicted throughput"):
        parse_json(_screened_json_payload(throughput_bps=-1.0))
