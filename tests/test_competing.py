"""Tests for the competing-traffic (SproutTunnel) experiment of Section 5.7."""

import pytest

from repro.experiments.competing import (
    render_competing,
    run_competing_comparison,
    run_direct,
    run_tunnelled,
)


@pytest.fixture(scope="module")
def comparison():
    return run_competing_comparison(duration=30.0, warmup=8.0)


def test_direct_run_reports_both_flows():
    result = run_direct(duration=20.0, warmup=5.0)
    assert set(result.flows) == {"cubic", "skype"}
    assert result.flows["cubic"].throughput_bps > 0
    assert result.flows["skype"].throughput_bps > 0


def test_tunnelled_run_reports_both_flows():
    result = run_tunnelled(duration=20.0, warmup=5.0)
    assert set(result.flows) == {"cubic", "skype"}
    assert result.flows["cubic"].throughput_bps > 0
    assert result.flows["skype"].throughput_bps > 0
    assert result.mode == "sprout-tunnel"


def test_tunnel_isolates_skype_from_cubic(comparison):
    """The paper's headline: Skype's delay collapses once tunnelled."""
    direct_delay = comparison.direct.flows["skype"].delay_95_s
    tunnel_delay = comparison.tunnelled.flows["skype"].delay_95_s
    assert tunnel_delay < direct_delay
    # The reduction is dramatic (-97% in the paper); require at least 2x.
    assert tunnel_delay < 0.5 * direct_delay


def test_tunnel_costs_cubic_some_throughput(comparison):
    direct = comparison.direct.flows["cubic"].throughput_bps
    tunnelled = comparison.tunnelled.flows["cubic"].throughput_bps
    assert tunnelled < direct


def test_tunnel_drop_policy_engaged(comparison):
    # Cubic overruns the forecast-derived limit, so the tunnel's dynamic
    # queue management must have dropped bulk packets.
    assert comparison.tunnelled.tunnel_drops > 0


def test_change_percent_and_render(comparison):
    change = comparison.change_percent("skype", "delay_95_s")
    assert change < 0
    text = render_competing(comparison)
    assert "Cubic throughput" in text
    assert "Skype 95% delay" in text
