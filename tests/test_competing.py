"""Tests for the competing-traffic (SproutTunnel) experiment of Section 5.7."""

import pytest

from repro.experiments.competing import (
    render_competing,
    run_competing_comparison,
    run_direct,
    run_tunnelled,
)


@pytest.fixture(scope="module")
def comparison():
    return run_competing_comparison(duration=30.0, warmup=8.0)


def test_direct_run_reports_both_flows():
    result = run_direct(duration=20.0, warmup=5.0)
    assert set(result.flows) == {"cubic", "skype"}
    assert result.flows["cubic"].throughput_bps > 0
    assert result.flows["skype"].throughput_bps > 0


def test_tunnelled_run_reports_both_flows():
    result = run_tunnelled(duration=20.0, warmup=5.0)
    assert set(result.flows) == {"cubic", "skype"}
    assert result.flows["cubic"].throughput_bps > 0
    assert result.flows["skype"].throughput_bps > 0
    assert result.mode == "sprout-tunnel"


def test_tunnel_isolates_skype_from_cubic(comparison):
    """The paper's headline: Skype's delay collapses once tunnelled."""
    direct_delay = comparison.direct.flows["skype"].delay_95_s
    tunnel_delay = comparison.tunnelled.flows["skype"].delay_95_s
    assert tunnel_delay < direct_delay
    # The reduction is dramatic (-97% in the paper); require at least 2x.
    assert tunnel_delay < 0.5 * direct_delay


def test_tunnel_costs_cubic_some_throughput(comparison):
    direct = comparison.direct.flows["cubic"].throughput_bps
    tunnelled = comparison.tunnelled.flows["cubic"].throughput_bps
    assert tunnelled < direct


def test_tunnel_drop_policy_engaged(comparison):
    # Cubic overruns the forecast-derived limit, so the tunnel's dynamic
    # queue management must have dropped bulk packets.
    assert comparison.tunnelled.tunnel_drops > 0


def test_change_percent_and_render(comparison):
    change = comparison.change_percent("skype", "delay_95_s")
    assert change < 0
    text = render_competing(comparison)
    assert "Cubic throughput" in text
    assert "Skype 95% delay" in text


# ----------------------------------------------------- scenario scheme specs


def test_competing_flow_names_mix():
    from repro.experiments.competing import competing_flow_names

    assert competing_flow_names(1) == ["skype"]
    assert competing_flow_names(2) == ["skype", "cubic-1"]
    assert competing_flow_names(4) == ["skype", "cubic-1", "cubic-2", "cubic-3"]
    with pytest.raises(ValueError):
        competing_flow_names(0)


def test_competing_scheme_parts_round_trip():
    import pickle

    from repro.core.connection import SproutConfig
    from repro.experiments.competing import competing_scheme, competing_scheme_parts
    from repro.experiments.registry import get_scheme

    direct = competing_scheme(3, tunnelled=False)
    assert direct.name == "Competing x3 [direct]"
    assert competing_scheme_parts(direct) == (3, False, None)

    config = SproutConfig(confidence=0.25)
    tunnelled = competing_scheme(2, tunnelled=True, sprout_config=config)
    assert tunnelled.name == "Competing x2 [tunnel]"
    flows, is_tunnelled, recovered = competing_scheme_parts(tunnelled)
    assert (flows, is_tunnelled) == (2, True)
    assert recovered.confidence == 0.25

    # ordinary schemes are not scenarios
    assert competing_scheme_parts(get_scheme("Sprout")) is None
    # scenario specs must ship to matrix worker processes
    pickle.loads(pickle.dumps(direct))
    pickle.loads(pickle.dumps(tunnelled))


def test_competing_scenarios_run_as_matrix_cells():
    """The scenario specs run through the ordinary scheme-on-link runner."""
    from repro.experiments.competing import competing_scheme
    from repro.experiments.runner import RunConfig, run_scheme_on_link

    config = RunConfig(duration=10.0, warmup=2.0)
    direct = run_scheme_on_link(
        competing_scheme(2, tunnelled=False), "Verizon LTE downlink", config
    )
    tunnelled = run_scheme_on_link(
        competing_scheme(2, tunnelled=True), "Verizon LTE downlink", config
    )
    assert direct.scheme == "Competing x2 [direct]"
    assert tunnelled.scheme == "Competing x2 [tunnel]"
    assert direct.throughput_bps > 0
    assert tunnelled.throughput_bps > 0
    # the §5.7 story at cell granularity: the tunnel contains the bulk
    # flow's queue, so the over-the-link delay drops
    assert tunnelled.self_inflicted_delay_s < direct.self_inflicted_delay_s


def test_competing_cells_are_deterministic():
    from repro.experiments.competing import competing_scheme
    from repro.experiments.runner import RunConfig, run_scheme_on_link

    config = RunConfig(duration=8.0, warmup=2.0)
    spec = competing_scheme(2, tunnelled=True)
    first = run_scheme_on_link(spec, "Verizon LTE downlink", config)
    second = run_scheme_on_link(spec, "Verizon LTE downlink", config)
    assert first.as_dict() == second.as_dict()


def test_competing_scheme_parts_ignores_foreign_partials():
    """Only specs with competing_scheme's exact factory shape are scenarios."""
    from functools import partial

    from repro.experiments.competing import (
        competing_scheme_parts,
        competing_tunnel_pair,
    )
    from repro.experiments.registry import SchemeSpec

    keyworded = SchemeSpec(
        name="kw", factory=partial(competing_tunnel_pair, flows=3), category="scenario"
    )
    assert competing_scheme_parts(keyworded) is None
