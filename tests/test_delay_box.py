"""Tests for the propagation-delay element."""

import pytest

from repro.simulation.delay_box import DEFAULT_PROPAGATION_DELAY, DelayBox
from repro.simulation.event_loop import EventLoop
from repro.simulation.packet import Packet


def test_default_delay_matches_paper():
    assert DEFAULT_PROPAGATION_DELAY == pytest.approx(0.020)


def test_packets_delayed_by_fixed_amount():
    loop = EventLoop()
    received = []
    box = DelayBox(loop, 0.05, lambda p, t: received.append(t))
    loop.schedule_at(1.0, box.receive, Packet(), 1.0)
    loop.run_until(2.0)
    assert received == [pytest.approx(1.05)]


def test_order_preserved():
    loop = EventLoop()
    received = []
    box = DelayBox(loop, 0.02, lambda p, t: received.append(p.headers["i"]))
    for i in range(5):
        loop.schedule_at(0.001 * i, box.receive, Packet(headers={"i": i}), 0.0)
    loop.run_until(1.0)
    assert received == [0, 1, 2, 3, 4]


def test_zero_delay_allowed():
    loop = EventLoop()
    received = []
    box = DelayBox(loop, 0.0, lambda p, t: received.append(t))
    loop.schedule_at(0.5, box.receive, Packet(), 0.5)
    loop.run_until(1.0)
    assert received == [pytest.approx(0.5)]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        DelayBox(EventLoop(), -0.01, lambda p, t: None)


def test_packets_in_flight_counter():
    loop = EventLoop()
    box = DelayBox(loop, 0.1, lambda p, t: None)
    box.receive(Packet(), 0.0)
    box.receive(Packet(), 0.0)
    assert box.packets_in_flight == 2
    loop.run_until(0.2)
    assert box.packets_in_flight == 0
