"""End-to-end integration tests reproducing the paper's qualitative claims.

These are the assertions that make the reproduction meaningful: not exact
numbers (our substrate is a simulator and the traces are synthetic), but the
ordering relationships the paper reports — who wins on delay, who wins on
throughput, and where the trade-offs lie.
"""

import pytest

from repro.experiments.runner import run_scheme_on_link


class TestSproutVersusSkype:
    """Headline claim: Sprout has several-fold lower delay than Skype."""

    def test_sprout_delay_far_below_skype(self, sprout_lte_result, skype_lte_result):
        assert (
            sprout_lte_result.self_inflicted_delay_s
            < 0.5 * skype_lte_result.self_inflicted_delay_s
        )

    def test_sprout_throughput_at_least_comparable_to_skype(
        self, sprout_lte_result, skype_lte_result
    ):
        assert sprout_lte_result.throughput_bps > 0.8 * skype_lte_result.throughput_bps

    def test_skype_builds_standing_queues(self, skype_lte_result):
        # Section 2.2: Skype's overshoot produces multi-hundred-ms (often
        # multi-second) standing queues.
        assert skype_lte_result.self_inflicted_delay_s > 0.5


class TestSproutVersusCubic:
    """Sprout trades some throughput for dramatically lower delay."""

    def test_sprout_delay_far_below_cubic(self, sprout_lte_result, cubic_lte_result):
        assert (
            sprout_lte_result.self_inflicted_delay_s
            < 0.5 * cubic_lte_result.self_inflicted_delay_s
        )

    def test_cubic_achieves_high_utilization(self, cubic_lte_result):
        assert cubic_lte_result.utilization > 0.7

    def test_sprout_keeps_delay_near_interactivity_target(self, sprout_lte_result):
        # The design target is 95% of packets within 100 ms of queueing; the
        # end-to-end self-inflicted delay should be of that order, far from
        # the multi-second queues of the reactive schemes.
        assert sprout_lte_result.self_inflicted_delay_s < 0.4


class TestSproutEwmaTradeoff:
    """Section 5.3: Sprout-EWMA gets more throughput but more delay."""

    @pytest.fixture(scope="class")
    def ewma_result(self, short_run_config):
        return run_scheme_on_link("Sprout-EWMA", "Verizon LTE downlink", short_run_config)

    def test_ewma_throughput_higher(self, ewma_result, sprout_lte_result):
        assert ewma_result.throughput_bps > sprout_lte_result.throughput_bps

    def test_sprout_delay_lower(self, ewma_result, sprout_lte_result):
        assert sprout_lte_result.self_inflicted_delay_s <= ewma_result.self_inflicted_delay_s

    def test_ewma_beats_cubic_on_delay(self, ewma_result, cubic_lte_result):
        assert ewma_result.self_inflicted_delay_s < cubic_lte_result.self_inflicted_delay_s


class TestCoDelComparison:
    """Section 5.4: CoDel sharply reduces Cubic's delay at some throughput cost."""

    @pytest.fixture(scope="class")
    def codel_result(self, short_run_config):
        return run_scheme_on_link("Cubic-CoDel", "Verizon LTE downlink", short_run_config)

    def test_codel_cuts_cubic_delay(self, codel_result, cubic_lte_result):
        assert codel_result.self_inflicted_delay_s < cubic_lte_result.self_inflicted_delay_s

    def test_sprout_delay_competitive_with_codel(self, sprout_lte_result, codel_result):
        # The paper's architectural claim: the end-to-end scheme matches or
        # beats the in-network deployment on delay.
        assert sprout_lte_result.self_inflicted_delay_s <= 1.2 * codel_result.self_inflicted_delay_s


class TestAcrossLinks:
    def test_sprout_keeps_low_delay_on_a_slow_3g_link(self, short_run_config):
        result = run_scheme_on_link(
            "Sprout", "Verizon 3G (1xEV-DO) downlink", short_run_config
        )
        assert result.self_inflicted_delay_s < 0.5
        assert result.throughput_bps > 0

    def test_vegas_sits_between_sprout_and_cubic_on_delay(
        self, short_run_config, sprout_lte_result, cubic_lte_result
    ):
        vegas = run_scheme_on_link("Vegas", "Verizon LTE downlink", short_run_config)
        assert vegas.self_inflicted_delay_s < cubic_lte_result.self_inflicted_delay_s
