"""Tests for the per-network presets."""

import pytest

from repro.traces.format import trace_mean_rate
from repro.traces.networks import (
    NETWORKS,
    get_link,
    get_network,
    link_names,
    link_trace,
    network_names,
)


def test_four_networks_eight_links():
    assert len(network_names()) == 4
    assert len(link_names()) == 8


def test_paper_networks_present():
    for name in ("Verizon LTE", "Verizon 3G (1xEV-DO)", "AT&T LTE", "T-Mobile 3G (UMTS)"):
        assert name in NETWORKS


def test_each_network_has_both_directions():
    for spec in NETWORKS.values():
        assert spec.downlink.direction == "downlink"
        assert spec.uplink.direction == "uplink"
        assert spec.downlink.name.endswith("downlink")


def test_get_network_unknown_raises_with_choices():
    with pytest.raises(KeyError, match="Verizon LTE"):
        get_network("Sprint 4G")


def test_get_link_by_name_and_key():
    by_name = get_link("Verizon LTE downlink")
    by_key = get_link("verizon-lte-downlink")
    assert by_name == by_key


def test_get_link_unknown_raises():
    with pytest.raises(KeyError):
        get_link("nonexistent link")


def test_lte_faster_than_3g():
    lte = link_trace(get_link("Verizon LTE downlink"), 60.0)
    evdo = link_trace(get_link("Verizon 3G (1xEV-DO) downlink"), 60.0)
    assert trace_mean_rate(lte) > 3 * trace_mean_rate(evdo)


def test_downlink_not_slower_than_uplink_for_lte():
    down = link_trace(get_link("Verizon LTE downlink"), 60.0)
    up = link_trace(get_link("Verizon LTE uplink"), 60.0)
    assert trace_mean_rate(down) > trace_mean_rate(up) * 0.8


def test_link_trace_is_memoised():
    first = link_trace(get_link("AT&T LTE uplink"), 20.0)
    second = link_trace(get_link("AT&T LTE uplink"), 20.0)
    assert first == second


def test_seed_offset_gives_different_realisation():
    link = get_link("AT&T LTE uplink")
    base = link_trace(link, 20.0, seed_offset=0)
    other = link_trace(link, 20.0, seed_offset=1)
    assert base != other


def test_link_keys_are_filesystem_friendly():
    for name in link_names():
        key = get_link(name).key
        assert " " not in key
        assert "(" not in key and ")" not in key
