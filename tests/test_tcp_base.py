"""Tests for the shared TCP machinery (RTT estimation, ACKing, recovery)."""

import pytest

from repro.baselines.base import (
    ACK_BYTES,
    HEADER_ACK,
    HEADER_ECHO_OWD,
    HEADER_ECHO_TS,
    HEADER_SEQ,
    AckingReceiver,
    RttEstimator,
    WindowedSender,
)
from repro.simulation.packet import Packet


class FixedWindowSender(WindowedSender):
    """A minimal CC that never changes its window (for base-class tests)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.acks = 0
        self.losses = 0
        self.rto_fires = 0

    def on_ack(self, newly_acked, rtt_sample, now):
        self.acks += newly_acked

    def on_loss(self, now):
        self.losses += 1

    def on_timeout(self, now):
        self.rto_fires += 1


class FakeCtx:
    def __init__(self):
        self.sent = []
        self.time = 0.0
        self.name = "fake"

    def now(self):
        return self.time

    def send(self, packet):
        packet.sent_at = self.time
        self.sent.append(packet)


def _ack(number, echo_ts=None, owd=None):
    return Packet(
        size=ACK_BYTES,
        headers={HEADER_ACK: number, HEADER_ECHO_TS: echo_ts, HEADER_ECHO_OWD: owd},
    )


class TestRttEstimator:
    def test_first_sample_initialises(self):
        est = RttEstimator()
        est.update(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.min_rtt == pytest.approx(0.1)

    def test_smoothing_follows_samples(self):
        est = RttEstimator()
        for _ in range(100):
            est.update(0.2)
        assert est.srtt == pytest.approx(0.2, rel=0.01)
        assert est.rto >= RttEstimator.MIN_RTO

    def test_min_rtt_tracks_smallest(self):
        est = RttEstimator()
        est.update(0.3)
        est.update(0.05)
        est.update(0.4)
        assert est.min_rtt == pytest.approx(0.05)

    def test_backoff_doubles_rto(self):
        est = RttEstimator()
        est.update(0.1)
        before = est.rto
        est.backoff()
        assert est.rto == pytest.approx(min(2 * before, est.MAX_RTO))

    def test_non_positive_samples_ignored(self):
        est = RttEstimator()
        est.update(0.0)
        assert est.srtt is None


class TestWindowedSender:
    def test_initial_window_sent_at_start(self):
        sender = FixedWindowSender(initial_cwnd=4)
        ctx = FakeCtx()
        sender.start(ctx)
        assert len(ctx.sent) == 4
        assert [p.headers[HEADER_SEQ] for p in ctx.sent] == [0, 1, 2, 3]

    def test_ack_advances_window_and_sends_more(self):
        sender = FixedWindowSender(initial_cwnd=4)
        ctx = FakeCtx()
        sender.start(ctx)
        ctx.time = 0.1
        sender.on_packet(_ack(0, echo_ts=0.0), ctx.time)
        assert sender.highest_acked == 0
        assert sender.acks == 1
        assert len(ctx.sent) == 5  # one new segment replaces the acked one
        assert sender.rtt.srtt == pytest.approx(0.1)

    def test_triple_dupack_triggers_fast_retransmit(self):
        sender = FixedWindowSender(initial_cwnd=10)
        ctx = FakeCtx()
        sender.start(ctx)
        ctx.time = 0.1
        sender.on_packet(_ack(0), ctx.time)
        for _ in range(3):
            sender.on_packet(_ack(0), ctx.time)
        assert sender.losses == 1
        retx = [p for p in ctx.sent if p.headers.get("tcp_retx")]
        assert len(retx) == 1
        assert retx[0].headers[HEADER_SEQ] == 1
        # Further duplicate ACKs within the same recovery do not re-trigger.
        sender.on_packet(_ack(0), ctx.time)
        assert sender.losses == 1

    def test_timeout_fires_after_rto(self):
        sender = FixedWindowSender(initial_cwnd=2)
        ctx = FakeCtx()
        sender.start(ctx)
        ctx.time = 5.0
        sender.on_tick(ctx.time)
        assert sender.rto_fires == 1
        assert sender.retransmissions >= 1

    def test_no_timeout_when_acks_flow(self):
        sender = FixedWindowSender(initial_cwnd=2)
        ctx = FakeCtx()
        sender.start(ctx)
        for i in range(5):
            ctx.time = 0.05 * (i + 1)
            sender.on_packet(_ack(i, echo_ts=ctx.time - 0.04), ctx.time)
            sender.on_tick(ctx.time)
        assert sender.rto_fires == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            FixedWindowSender(initial_cwnd=0.5)

    def test_delay_samples_forwarded(self):
        samples = []

        class DelaySender(FixedWindowSender):
            def on_delay_sample(self, owd, now):
                samples.append(owd)

        sender = DelaySender(initial_cwnd=2)
        ctx = FakeCtx()
        sender.start(ctx)
        sender.on_packet(_ack(0, owd=0.123), 0.1)
        assert samples == [pytest.approx(0.123)]


class TestAckingReceiver:
    def test_acks_every_segment_cumulatively(self):
        receiver = AckingReceiver()
        ctx = FakeCtx()
        receiver.start(ctx)
        for seq in range(3):
            packet = Packet(headers={HEADER_SEQ: seq, HEADER_ECHO_TS: 0.0})
            packet.sent_at = 0.0
            receiver.on_packet(packet, 0.1 * (seq + 1))
        assert receiver.acks_sent == 3
        assert [p.headers[HEADER_ACK] for p in ctx.sent] == [0, 1, 2]

    def test_gap_produces_duplicate_acks(self):
        receiver = AckingReceiver()
        ctx = FakeCtx()
        receiver.start(ctx)
        for seq in (0, 2, 3):  # segment 1 is missing
            receiver.on_packet(Packet(headers={HEADER_SEQ: seq}), 0.1)
        assert [p.headers[HEADER_ACK] for p in ctx.sent] == [0, 0, 0]

    def test_gap_filled_jumps_cumulative_ack(self):
        receiver = AckingReceiver()
        ctx = FakeCtx()
        receiver.start(ctx)
        for seq in (0, 2, 3, 1):
            receiver.on_packet(Packet(headers={HEADER_SEQ: seq}), 0.1)
        assert ctx.sent[-1].headers[HEADER_ACK] == 3

    def test_one_way_delay_echoed(self):
        receiver = AckingReceiver()
        ctx = FakeCtx()
        receiver.start(ctx)
        packet = Packet(headers={HEADER_SEQ: 0})
        packet.sent_at = 1.0
        receiver.on_packet(packet, 1.25)
        assert ctx.sent[0].headers[HEADER_ECHO_OWD] == pytest.approx(0.25)

    def test_non_data_packets_ignored(self):
        receiver = AckingReceiver()
        ctx = FakeCtx()
        receiver.start(ctx)
        receiver.on_packet(Packet(), 0.0)
        assert receiver.acks_sent == 0
