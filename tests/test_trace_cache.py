"""Correctness of the shared trace cache (repro.traces.cache).

The contract: cached and uncached callers get bit-identical traces; a cache
hit hands back a defensive copy (mutating a returned trace cannot poison
later callers); and no reader — thread or worker process — can ever observe
a partially built entry (memory entries are published whole under a lock,
disk entries via atomic ``os.replace``).
"""

from __future__ import annotations

import concurrent.futures
import os
import threading

import numpy as np
import pytest

from repro.traces.cache import (
    CACHE_FORMAT_VERSION,
    TraceCache,
    default_cache_dir,
    trace_key,
)
from repro.traces.channel import ChannelConfig
from repro.traces.networks import get_link, link_trace
from repro.traces.synthetic import generate_trace

CONFIG = ChannelConfig(mean_rate=50.0, volatility=20.0)
DURATION = 5.0
SEED = 42


@pytest.fixture
def disk_cache(tmp_path) -> TraceCache:
    return TraceCache(directory=str(tmp_path), use_disk=True)


def test_cached_trace_is_bit_identical_to_direct_generation(disk_cache):
    direct = generate_trace(CONFIG, DURATION, seed=SEED)
    cached = disk_cache.trace(CONFIG, DURATION, SEED)
    assert list(cached) == direct
    # And again through every layer: memory hit, then a cold disk hit.
    assert list(disk_cache.trace(CONFIG, DURATION, SEED)) == direct
    cold = TraceCache(directory=disk_cache.directory, use_disk=True)
    assert list(cold.trace(CONFIG, DURATION, SEED)) == direct
    assert cold.stats.disk_hits == 1
    assert cold.stats.misses == 0


def test_disabled_cache_still_returns_identical_traces(tmp_path):
    disabled = TraceCache(directory=str(tmp_path), enabled=False)
    assert list(disabled.trace(CONFIG, DURATION, SEED)) == generate_trace(
        CONFIG, DURATION, seed=SEED
    )
    assert list(tmp_path.iterdir()) == []  # nothing persisted


def test_cache_hit_layers_are_counted(disk_cache):
    disk_cache.trace(CONFIG, DURATION, SEED)
    disk_cache.trace(CONFIG, DURATION, SEED)
    assert disk_cache.stats.misses == 1
    assert disk_cache.stats.memory_hits == 1


def test_link_trace_returns_a_defensive_copy():
    link = get_link("AT&T LTE uplink")
    first = link_trace(link, duration=5.0)
    first_copy = list(first)
    first.clear()  # vandalise the returned list
    second = link_trace(link, duration=5.0)
    assert second == first_copy
    assert second is not first


def test_cache_trace_objects_are_immutable_tuples(disk_cache):
    trace = disk_cache.trace(CONFIG, DURATION, SEED)
    assert isinstance(trace, tuple)
    with pytest.raises((TypeError, AttributeError)):
        trace[0] = -1.0  # type: ignore[index]


def test_key_covers_every_channel_field_not_the_link_name():
    base = trace_key(CONFIG, DURATION, SEED)
    assert trace_key(CONFIG, DURATION, SEED) == base
    bumped = ChannelConfig(mean_rate=50.0, volatility=20.0, outage_rate=0.05)
    assert trace_key(bumped, DURATION, SEED) != base
    assert trace_key(CONFIG, DURATION + 1.0, SEED) != base
    assert trace_key(CONFIG, DURATION, SEED + 1) != base


def test_truncated_disk_entry_is_regenerated_not_trusted(disk_cache, tmp_path):
    reference = list(disk_cache.trace(CONFIG, DURATION, SEED))
    (path,) = [p for p in tmp_path.iterdir() if p.suffix == ".npy"]
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])  # a torn write, simulated
    cold = TraceCache(directory=str(tmp_path), use_disk=True)
    assert list(cold.trace(CONFIG, DURATION, SEED)) == reference
    assert cold.stats.misses == 1  # fell back to generation
    # The regeneration healed the disk entry for the next cold reader.
    healed = TraceCache(directory=str(tmp_path), use_disk=True)
    assert list(healed.trace(CONFIG, DURATION, SEED)) == reference
    assert healed.stats.disk_hits == 1


def test_concurrent_threads_never_observe_partial_entries(tmp_path):
    cache = TraceCache(directory=str(tmp_path), use_disk=True)
    reference = generate_trace(CONFIG, DURATION, seed=SEED)
    results = []
    errors = []
    gate = threading.Barrier(8)

    def hammer() -> None:
        try:
            gate.wait()
            for _ in range(5):
                results.append(cache.trace(CONFIG, DURATION, SEED))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(results) == 40
    for trace in results:
        assert list(trace) == reference


def _worker_roundtrip(args):
    directory, index = args
    cache = TraceCache(directory=directory, use_disk=True)
    trace = cache.trace(CONFIG, DURATION, SEED)
    return (index, len(trace), float(np.sum(trace)))


def test_concurrent_processes_share_disk_entries(tmp_path):
    """Racing worker processes all see the complete, identical trace."""
    reference = generate_trace(CONFIG, DURATION, seed=SEED)
    expected = (len(reference), float(np.sum(reference)))
    with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
        outcomes = list(
            pool.map(_worker_roundtrip, [(str(tmp_path), i) for i in range(4)])
        )
    assert [(length, total) for _, length, total in outcomes] == [expected] * 4
    # Exactly one published file, whatever the race's winner order was.
    names = [p.name for p in tmp_path.iterdir()]
    assert names == [f"{trace_key(CONFIG, DURATION, SEED)}.npy"]


def test_default_cache_dir_honours_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == str(tmp_path / "elsewhere")


def test_unwritable_directory_degrades_to_memory_only(tmp_path):
    target = tmp_path / "readonly"
    target.mkdir()
    os.chmod(target, 0o500)
    try:
        cache = TraceCache(directory=str(target), use_disk=True)
        reference = generate_trace(CONFIG, DURATION, seed=SEED)
        assert list(cache.trace(CONFIG, DURATION, SEED)) == reference
        assert cache.stats.memory_hits == 0
        assert list(cache.trace(CONFIG, DURATION, SEED)) == reference
        assert cache.stats.memory_hits == 1
    finally:
        os.chmod(target, 0o700)


def test_memory_layer_is_lru_bounded(tmp_path):
    cache = TraceCache(directory=str(tmp_path), use_disk=True, max_entries=2)
    configs = [
        ChannelConfig(mean_rate=30.0 + 10.0 * i, volatility=10.0) for i in range(3)
    ]
    for config in configs:
        cache.trace(config, 2.0, SEED)
    assert len(cache._memory) == 2  # oldest entry evicted
    # The evicted trace is still served correctly (disk hit, not a lie).
    assert list(cache.trace(configs[0], 2.0, SEED)) == generate_trace(
        configs[0], 2.0, seed=SEED
    )
    assert cache.stats.disk_hits == 1
    with pytest.raises(ValueError):
        TraceCache(max_entries=0)


def test_format_version_salts_the_key():
    # Guards against silently reusing stale entries across format bumps.
    assert isinstance(CACHE_FORMAT_VERSION, int)
    payload_key = trace_key(CONFIG, DURATION, SEED)
    assert len(payload_key) == 64  # sha256 hex
