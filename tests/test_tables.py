"""Tests for the table generators (intro, EWMA, loss, tunnel)."""

import pytest

from repro.experiments.runner import RunConfig
from repro.experiments.tables import (
    ewma_table,
    intro_table,
    loss_table,
    render_ewma_table,
    render_intro_table,
    render_loss_table,
)
from repro.metrics.summary import SchemeResult


def _fake_results():
    rows = []
    for link in ("link-a", "link-b"):
        rows += [
            SchemeResult("Sprout", link, 2e6, 0.15, 0.10, 0.55),
            SchemeResult("Sprout-EWMA", link, 4e6, 0.55, 0.50, 0.90),
            SchemeResult("Skype", link, 1e6, 2.6, 2.5, 0.35),
            SchemeResult("Cubic", link, 4.4e6, 25.1, 25.0, 0.95),
            SchemeResult("Cubic-CoDel", link, 3e6, 0.55, 0.50, 0.75),
        ]
    return rows


class TestIntroTable:
    def test_relative_numbers_from_precomputed_results(self):
        comparisons = {c.scheme: c for c in intro_table(results=_fake_results())}
        assert comparisons["Sprout"].speedup == pytest.approx(1.0)
        assert comparisons["Skype"].speedup == pytest.approx(2.0)
        assert comparisons["Skype"].delay_reduction == pytest.approx(25.0)
        assert comparisons["Cubic"].speedup == pytest.approx(2e6 / 4.4e6, rel=1e-3)

    def test_render_mentions_each_scheme(self):
        text = render_intro_table(intro_table(results=_fake_results()))
        for name in ("Sprout", "Skype", "Cubic-CoDel"):
            assert name in text


class TestEwmaTable:
    def test_reference_is_sprout_ewma(self):
        comparisons = {c.scheme: c for c in ewma_table(results=_fake_results())}
        assert comparisons["Sprout-EWMA"].speedup == pytest.approx(1.0)
        assert comparisons["Sprout"].speedup == pytest.approx(2.0)
        assert "Skype" not in comparisons  # not part of the second table

    def test_render(self):
        text = render_ewma_table(ewma_table(results=_fake_results()))
        assert "Sprout-EWMA" in text


class TestLossTable:
    @pytest.fixture(scope="class")
    def data(self):
        return loss_table(
            scheme="Sprout-EWMA",
            links=("Verizon LTE downlink",),
            loss_rates=(0.0, 0.10),
            config=RunConfig(duration=15.0, warmup=5.0),
        )

    def test_rows_per_link_and_rate(self, data):
        assert set(data.rows) == {"Verizon LTE downlink"}
        assert set(data.rows["Verizon LTE downlink"]) == {0.0, 0.10}

    def test_loss_lowers_throughput(self, data):
        by_rate = data.rows["Verizon LTE downlink"]
        assert by_rate[0.10].throughput_bps < by_rate[0.0].throughput_bps

    def test_render(self, data):
        text = render_loss_table(data)
        assert "loss" in text.lower()
        assert "Verizon LTE downlink" in text
