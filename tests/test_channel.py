"""Tests for the doubly-stochastic channel model."""

import numpy as np
import pytest

from repro.traces.channel import CellularChannel, ChannelConfig


def test_config_validation():
    with pytest.raises(ValueError):
        ChannelConfig(mean_rate=0.0, volatility=10.0)
    with pytest.raises(ValueError):
        ChannelConfig(mean_rate=100.0, volatility=-1.0)
    with pytest.raises(ValueError):
        ChannelConfig(mean_rate=100.0, volatility=10.0, fade_depth=1.5)
    with pytest.raises(ValueError):
        ChannelConfig(mean_rate=100.0, volatility=10.0, max_rate=50.0)


def test_rate_process_length_and_bounds():
    config = ChannelConfig(mean_rate=200.0, volatility=50.0)
    channel = CellularChannel(config, seed=1)
    rates = channel.rate_process(10.0)
    assert len(rates) == int(np.ceil(10.0 / config.time_step))
    assert np.all(rates >= 0.0)
    assert np.all(rates <= config.max_rate)


def test_mean_rate_roughly_matches_config():
    config = ChannelConfig(
        mean_rate=300.0, volatility=20.0, outage_rate=0.0, fade_depth=0.0
    )
    channel = CellularChannel(config, seed=2)
    rates = channel.rate_process(120.0)
    assert np.mean(rates) == pytest.approx(300.0, rel=0.15)


def test_higher_volatility_gives_more_variable_rates():
    calm = CellularChannel(
        ChannelConfig(mean_rate=300.0, volatility=10.0, outage_rate=0.0, fade_depth=0.0),
        seed=3,
    ).rate_process(60.0)
    wild = CellularChannel(
        ChannelConfig(mean_rate=300.0, volatility=200.0, outage_rate=0.0, fade_depth=0.0),
        seed=3,
    ).rate_process(60.0)
    assert np.std(wild) > np.std(calm)


def test_outages_produce_zero_rate_periods():
    config = ChannelConfig(
        mean_rate=300.0, volatility=10.0, outage_rate=0.5, outage_escape_rate=1.0,
        fade_depth=0.0,
    )
    rates = CellularChannel(config, seed=4).rate_process(60.0)
    assert np.sum(rates == 0.0) > 0


def test_no_outages_when_rate_is_zero():
    config = ChannelConfig(
        mean_rate=300.0, volatility=10.0, outage_rate=0.0, fade_depth=0.0
    )
    rates = CellularChannel(config, seed=5).rate_process(60.0)
    # The mean-reverting walk essentially never reaches exactly zero.
    assert np.sum(rates == 0.0) == 0


def test_delivery_times_sorted_and_within_duration():
    config = ChannelConfig(mean_rate=200.0, volatility=50.0)
    channel = CellularChannel(config, seed=6)
    times = channel.delivery_times(30.0)
    assert times == sorted(times)
    assert times[0] >= 0.0
    assert times[-1] <= 30.0 + config.time_step


def test_delivery_count_tracks_rate():
    config = ChannelConfig(
        mean_rate=100.0, volatility=5.0, outage_rate=0.0, fade_depth=0.0
    )
    times = CellularChannel(config, seed=7).delivery_times(60.0)
    assert len(times) == pytest.approx(100.0 * 60.0, rel=0.15)


def test_same_seed_reproducible():
    config = ChannelConfig(mean_rate=150.0, volatility=60.0)
    a = CellularChannel(config, seed=42).delivery_times(10.0)
    b = CellularChannel(config, seed=42).delivery_times(10.0)
    assert a == b


def test_different_seeds_differ():
    config = ChannelConfig(mean_rate=150.0, volatility=60.0)
    a = CellularChannel(config, seed=1).delivery_times(10.0)
    b = CellularChannel(config, seed=2).delivery_times(10.0)
    assert a != b


def test_rejects_non_positive_duration():
    channel = CellularChannel(ChannelConfig(mean_rate=100.0, volatility=10.0))
    with pytest.raises(ValueError):
        channel.rate_process(0.0)
