"""Tests for throughput and utilization metrics."""

import pytest

from repro.metrics.throughput import (
    average_throughput_bps,
    link_capacity_bps,
    received_bytes_in_window,
    utilization,
)
from repro.simulation.packet import Packet


def _log(entries):
    return [(t, Packet(size=size)) for t, size in entries]


def test_received_bytes_in_window():
    log = _log([(1.0, 100), (2.0, 200), (3.0, 400), (10.0, 800)])
    assert received_bytes_in_window(log, 1.5, 5.0) == 600
    assert received_bytes_in_window(log, 0.0, 20.0) == 1500
    assert received_bytes_in_window(log, 4.0, 9.0) == 0


def test_average_throughput():
    log = _log([(t, 1500) for t in range(1, 11)])
    assert average_throughput_bps(log, 0.0, 10.0) == pytest.approx(1500 * 10 * 8 / 10.0)


def test_average_throughput_rejects_empty_window():
    with pytest.raises(ValueError):
        average_throughput_bps([], 5.0, 5.0)


def test_link_capacity_counts_opportunities_in_window():
    trace = [0.5, 1.0, 1.5, 2.0, 9.0]
    capacity = link_capacity_bps(trace, 0.0, 2.0)
    assert capacity == pytest.approx(4 * 1500 * 8 / 2.0)


def test_link_capacity_rejects_empty_window():
    with pytest.raises(ValueError):
        link_capacity_bps([1.0], 2.0, 2.0)


def test_utilization_fraction_and_bounds():
    assert utilization(500.0, 1000.0) == pytest.approx(0.5)
    assert utilization(2000.0, 1000.0) == 1.0  # clamped
    assert utilization(100.0, 0.0) == 0.0
