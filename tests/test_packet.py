"""Tests for the packet record."""

import pytest

from repro.simulation.packet import MTU_BYTES, Packet


def test_default_packet_is_one_mtu():
    assert Packet().size == MTU_BYTES == 1500


def test_packet_ids_are_unique_and_increasing():
    first, second = Packet(), Packet()
    assert second.packet_id > first.packet_id


def test_packet_rejects_non_positive_size():
    with pytest.raises(ValueError):
        Packet(size=0)
    with pytest.raises(ValueError):
        Packet(size=-10)


def test_queueing_delay_requires_both_timestamps():
    packet = Packet()
    assert packet.queueing_delay is None
    packet.enqueued_at = 1.0
    assert packet.queueing_delay is None
    packet.dequeued_at = 1.5
    assert packet.queueing_delay == pytest.approx(0.5)


def test_one_way_delay():
    packet = Packet()
    packet.sent_at = 2.0
    packet.delivered_at = 2.3
    assert packet.one_way_delay == pytest.approx(0.3)


def test_copy_headers_is_a_copy():
    packet = Packet(headers={"a": 1})
    copy = packet.copy_headers()
    copy["a"] = 2
    assert packet.headers["a"] == 1
