"""Shared fixtures for the test suite.

Full experiment runs are comparatively expensive (a Sprout run over a 60 s
trace takes a few seconds), so integration-level fixtures use short traces
and are session-scoped: the same measured results are reused by every test
that inspects them.
"""

from __future__ import annotations

import pytest

from repro.core.rate_model import RateModel, model_cache_directory, shared_rate_model
from repro.experiments.runner import RunConfig, run_scheme_on_link
from repro.traces.channel import ChannelConfig
from repro.traces.networks import get_link, link_trace
from repro.traces.synthetic import generate_trace


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Point the model-artifact cache at a per-session temp directory.

    Suite runs must never share (or pollute) the per-user disk cache: a
    stale artifact from an older code revision could otherwise mask a
    regression, and parallel suite runs could race each other's entries.
    """
    with model_cache_directory(str(tmp_path_factory.mktemp("model-cache"))):
        yield


@pytest.fixture(scope="session")
def rate_model() -> RateModel:
    """The paper-default rate model (shared; construction costs ~1 s)."""
    return shared_rate_model()


@pytest.fixture(scope="session")
def short_run_config() -> RunConfig:
    """A short but meaningful experiment window used by integration tests."""
    return RunConfig(duration=20.0, warmup=5.0)


@pytest.fixture(scope="session")
def lte_downlink_trace():
    """A 20-second Verizon-LTE-downlink delivery trace."""
    return link_trace(get_link("Verizon LTE downlink"), 20.0)


@pytest.fixture(scope="session")
def steady_channel_config() -> ChannelConfig:
    """A low-variability channel used when tests need predictable capacity."""
    return ChannelConfig(
        mean_rate=200.0,
        volatility=5.0,
        outage_rate=0.0,
        fade_depth=0.0,
    )


@pytest.fixture(scope="session")
def steady_trace(steady_channel_config):
    """A 20-second trace of the steady channel (about 200 pkt/s)."""
    return generate_trace(steady_channel_config, 20.0, seed=7)


@pytest.fixture(scope="session")
def sprout_lte_result(short_run_config):
    """Sprout measured on the Verizon LTE downlink (shared across tests)."""
    return run_scheme_on_link("Sprout", "Verizon LTE downlink", short_run_config)


@pytest.fixture(scope="session")
def cubic_lte_result(short_run_config):
    """TCP Cubic measured on the Verizon LTE downlink (shared across tests)."""
    return run_scheme_on_link("Cubic", "Verizon LTE downlink", short_run_config)


@pytest.fixture(scope="session")
def skype_lte_result(short_run_config):
    """The Skype model measured on the Verizon LTE downlink (shared)."""
    return run_scheme_on_link("Skype", "Verizon LTE downlink", short_run_config)
