"""Tests for the duplex emulated path."""

import pytest

from repro.simulation.event_loop import EventLoop
from repro.simulation.packet import Packet
from repro.simulation.path import DuplexLinkConfig, DuplexPath, OneWayPipe
from repro.simulation.queues import CoDelQueue, DropTailQueue


def _dense_trace(rate_per_s: float, duration: float):
    step = 1.0 / rate_per_s
    return [i * step for i in range(1, int(duration * rate_per_s) + 1)]


def test_min_rtt_is_twice_propagation_delay():
    loop = EventLoop()
    config = DuplexLinkConfig(
        forward_trace=_dense_trace(1000, 2.0),
        reverse_trace=_dense_trace(1000, 2.0),
        propagation_delay=0.020,
    )
    path = DuplexPath(loop, config)
    deliveries = {"a": [], "b": []}
    path.attach_a(lambda p, t: deliveries["a"].append(t))
    path.attach_b(lambda p, t: deliveries["b"].append(t))

    # Endpoint B echoes every delivery straight back to A.
    path.attach_b(lambda p, t: (deliveries["b"].append(t), path.send_from_b(Packet())))

    sent_at = 0.5
    loop.schedule_at(sent_at, lambda: path.send_from_a(Packet()))
    loop.run_until(1.0)
    forward_delay = deliveries["b"][0] - sent_at
    assert forward_delay >= 0.020
    assert forward_delay < 0.030  # propagation + at most one opportunity gap

    rtt = deliveries["a"][0] - sent_at
    assert rtt >= 0.040
    assert rtt < 0.060


def test_loss_rate_zero_delivers_everything():
    loop = EventLoop()
    pipe = OneWayPipe(loop, _dense_trace(500, 5.0), lambda p, t: None, loss_rate=0.0)
    for _ in range(100):
        pipe.send(Packet(), 0.0)
    loop.run_until(5.0)
    assert pipe.packets_lost == 0
    assert pipe.link.packets_delivered == 100


def test_loss_rate_drops_roughly_expected_fraction():
    loop = EventLoop()
    delivered = []
    pipe = OneWayPipe(
        loop, _dense_trace(2000, 5.0), lambda p, t: delivered.append(p), loss_rate=0.3
    )
    for _ in range(2000):
        pipe.send(Packet(size=100), 0.0)
    loop.run_until(5.0)
    loss_fraction = pipe.packets_lost / 2000
    assert 0.2 < loss_fraction < 0.4


def test_codel_option_installs_codel_queue():
    loop = EventLoop()
    config = DuplexLinkConfig(
        forward_trace=[0.1], reverse_trace=[0.1], use_codel=True
    )
    path = DuplexPath(loop, config)
    assert isinstance(path.forward.queue, CoDelQueue)
    assert isinstance(path.reverse.queue, CoDelQueue)


def test_default_queue_is_droptail():
    loop = EventLoop()
    config = DuplexLinkConfig(forward_trace=[0.1], reverse_trace=[0.1])
    path = DuplexPath(loop, config)
    assert isinstance(path.forward.queue, DropTailQueue)


def test_invalid_loss_rate_rejected():
    with pytest.raises(ValueError):
        DuplexLinkConfig(forward_trace=[0.1], reverse_trace=[0.1], loss_rate=1.0)


def test_capacity_bytes_counts_opportunities():
    loop = EventLoop()
    pipe = OneWayPipe(loop, [0.1, 0.2, 0.3], lambda p, t: None)
    # Stop before the (looped) trace replays, so exactly 3 opportunities pass.
    loop.run_until(0.35)
    assert pipe.capacity_bytes == 3 * 1500


def test_directions_are_independent():
    loop = EventLoop()
    config = DuplexLinkConfig(
        forward_trace=_dense_trace(100, 2.0),
        reverse_trace=_dense_trace(100, 2.0),
    )
    path = DuplexPath(loop, config)
    got_a, got_b = [], []
    path.attach_a(lambda p, t: got_a.append(p))
    path.attach_b(lambda p, t: got_b.append(p))
    loop.schedule_at(0.1, lambda: path.send_from_a(Packet()))
    loop.run_until(1.0)
    assert len(got_b) == 1
    assert got_a == []
