"""Tests for the seeded RNG helpers."""

import numpy as np

from repro.simulation.random import make_rng


def test_same_seed_same_stream_is_reproducible():
    a = make_rng(42, "channel")
    b = make_rng(42, "channel")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_streams_differ():
    a = make_rng(42, "channel")
    b = make_rng(42, "loss")
    assert not np.array_equal(a.random(10), b.random(10))


def test_different_seeds_differ():
    a = make_rng(1, "channel")
    b = make_rng(2, "channel")
    assert not np.array_equal(a.random(10), b.random(10))


def test_existing_generator_passthrough_without_stream():
    rng = np.random.default_rng(0)
    assert make_rng(rng) is rng


def test_existing_generator_with_stream_derives_child():
    rng = np.random.default_rng(0)
    child = make_rng(rng, "sub")
    assert child is not rng


def test_seed_sequence_accepted():
    seq = np.random.SeedSequence(123)
    rng = make_rng(seq, "x")
    assert isinstance(rng, np.random.Generator)
