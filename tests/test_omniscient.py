"""Tests for the omniscient reference protocol."""

import pytest

from repro.baselines.omniscient import omniscient_delay, omniscient_result, omniscient_schedule


def test_schedule_sends_one_propagation_delay_before_each_opportunity():
    schedule = omniscient_schedule([0.1, 0.2, 0.5], propagation_delay=0.02)
    assert schedule == [
        (pytest.approx(0.08), 0.1),
        (pytest.approx(0.18), 0.2),
        (pytest.approx(0.48), 0.5),
    ]


def test_dense_trace_gives_delay_close_to_propagation():
    trace = [i * 0.002 for i in range(1, 5001)]  # 500 pkt/s for 10 s
    delay = omniscient_delay(trace, propagation_delay=0.02, start_time=0.0, end_time=10.0)
    assert delay == pytest.approx(0.022, abs=0.003)


def test_outage_raises_even_the_omniscient_delay():
    # 1 s of dense deliveries, a 5 s outage, then more deliveries.
    trace = [i * 0.01 for i in range(1, 101)]
    trace += [6.0 + i * 0.01 for i in range(1, 101)]
    delay = omniscient_delay(trace, start_time=0.0, end_time=7.0)
    assert delay > 2.0


def test_result_reports_full_capacity_throughput():
    trace = [i * 0.01 for i in range(1, 1001)]  # 100 pkt/s for 10 s
    result = omniscient_result(trace, start_time=0.0, end_time=10.0)
    assert result.throughput_bps == pytest.approx(100 * 1500 * 8, rel=0.01)
    assert result.delay_95th_ms == pytest.approx(result.delay_95th * 1000)


def test_omniscient_delay_is_a_lower_bound_for_schemes(sprout_lte_result):
    assert sprout_lte_result.omniscient_delay_95_s <= sprout_lte_result.delay_95_s
