"""Tests for the Cellsim emulator assembly and loss injection."""

import pytest

from repro.baselines.base import AckingReceiver
from repro.baselines.reno import RenoSender
from repro.cellsim.cellsim import build_cellsim, cellsim_for_link, traces_for_link
from repro.cellsim.codel import CODEL_INTERVAL, CODEL_TARGET, CoDelQueue
from repro.cellsim.loss import BernoulliLossProcess
from repro.simulation.queues import DropTailQueue
from repro.traces.networks import get_link


def test_codel_constants_match_published_defaults():
    assert CODEL_TARGET == pytest.approx(0.005)
    assert CODEL_INTERVAL == pytest.approx(0.100)


class TestBernoulliLoss:
    def test_zero_rate_never_drops(self):
        loss = BernoulliLossProcess(0.0)
        assert not any(loss.should_drop() for _ in range(1000))
        assert loss.observed_loss_rate == 0.0

    def test_rate_respected_statistically(self):
        loss = BernoulliLossProcess(0.25, seed=3)
        drops = sum(loss.should_drop() for _ in range(20000))
        assert drops / 20000 == pytest.approx(0.25, abs=0.02)
        assert loss.observed_loss_rate == pytest.approx(0.25, abs=0.02)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLossProcess(1.0)
        with pytest.raises(ValueError):
            BernoulliLossProcess(-0.1)

    def test_reset_statistics(self):
        loss = BernoulliLossProcess(0.5, seed=0)
        for _ in range(10):
            loss.should_drop()
        loss.reset_statistics()
        assert loss.offered == 0 and loss.dropped == 0


class TestCellsimAssembly:
    def test_traces_for_link_pairs_directions(self):
        link = get_link("Verizon LTE downlink")
        data, feedback = traces_for_link(link, 10.0)
        assert data and feedback
        assert data != feedback

    def test_build_cellsim_runs_a_transfer(self, steady_trace):
        sender, receiver = RenoSender(), AckingReceiver()
        feedback = [i * 0.005 for i in range(1, 3000)]
        sim = build_cellsim(sender, receiver, steady_trace, feedback, name="test")
        sim.run(10.0)
        assert sim.receiver_host.bytes_received > 0
        assert receiver.acks_sent > 0
        assert sim.link_name == "test"

    def test_codel_flag_installs_codel(self, steady_trace):
        sim = build_cellsim(
            RenoSender(), AckingReceiver(), steady_trace, steady_trace, use_codel=True
        )
        assert isinstance(sim.path.forward.queue, CoDelQueue)

    def test_default_queue_is_deep_droptail(self, steady_trace):
        sim = build_cellsim(RenoSender(), AckingReceiver(), steady_trace, steady_trace)
        assert isinstance(sim.path.forward.queue, DropTailQueue)
        assert sim.path.forward.queue.byte_limit is None

    def test_loss_rate_causes_drops(self, steady_trace):
        sender, receiver = RenoSender(), AckingReceiver()
        feedback = [i * 0.005 for i in range(1, 3000)]
        sim = build_cellsim(
            sender, receiver, steady_trace, feedback, loss_rate=0.3, name="lossy", seed=1
        )
        sim.run(10.0)
        assert sim.path.forward.packets_lost > 0

    def test_cellsim_for_link_uses_link_name(self):
        link = get_link("AT&T LTE uplink")
        sim = cellsim_for_link(RenoSender(), AckingReceiver(), link, duration=5.0)
        assert sim.link_name == "AT&T LTE uplink"
