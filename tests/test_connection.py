"""Tests for the Sprout connection constructors and end-to-end behaviour."""

import pytest

from repro.cellsim.cellsim import build_cellsim
from repro.core.connection import SproutConfig, make_connection, make_sprout, make_sprout_ewma
from repro.core.forecaster import BayesianForecaster, EWMAForecaster
from repro.traces.synthetic import generate_trace


def test_config_validation():
    with pytest.raises(ValueError):
        SproutConfig(confidence=0.0)
    with pytest.raises(ValueError):
        SproutConfig(confidence=1.0)


def test_make_sprout_uses_bayesian_forecaster():
    connection = make_sprout()
    assert isinstance(connection.receiver.forecaster, BayesianForecaster)
    assert connection.receiver.forecaster.confidence == 0.95


def test_make_sprout_custom_confidence():
    connection = make_sprout(confidence=0.5)
    assert connection.receiver.forecaster.confidence == 0.5


def test_make_sprout_ewma_uses_ewma_forecaster():
    connection = make_sprout_ewma()
    assert isinstance(connection.receiver.forecaster, EWMAForecaster)


def test_sender_and_receiver_share_tick_interval():
    connection = make_connection(SproutConfig(tick_interval=0.02))
    assert connection.sender.tick_interval == pytest.approx(0.02)
    assert connection.receiver.tick_interval == pytest.approx(0.02)


def test_sprout_transfers_data_over_steady_link(steady_trace):
    connection = make_sprout()
    feedback_trace = [i * 0.005 for i in range(1, 4000)]
    sim = build_cellsim(
        connection.sender, connection.receiver, steady_trace, feedback_trace,
        name="steady-test",
    )
    sim.run(15.0)
    # The steady channel offers ~200 packets/s (2.4 Mbit/s); Sprout should
    # achieve a substantial fraction of it while it ramps and tracks.
    achieved_bps = sim.receiver_host.bytes_received * 8.0 / 15.0
    assert achieved_bps > 0.3 * 200 * 1500 * 8
    assert connection.sender.forecasts_received > 100
    assert connection.receiver.data_packets_received > 100


def test_sprout_ewma_achieves_higher_throughput_than_sprout(steady_trace):
    def run(connection):
        feedback_trace = [i * 0.005 for i in range(1, 4000)]
        sim = build_cellsim(
            connection.sender, connection.receiver, steady_trace, feedback_trace,
            name="steady-test",
        )
        sim.run(15.0)
        return sim.receiver_host.bytes_received

    sprout_bytes = run(make_sprout())
    ewma_bytes = run(make_sprout_ewma())
    assert ewma_bytes > sprout_bytes


def test_sprout_keeps_queueing_delay_bounded_on_steady_link(steady_trace):
    connection = make_sprout()
    feedback_trace = [i * 0.005 for i in range(1, 4000)]
    sim = build_cellsim(
        connection.sender, connection.receiver, steady_trace, feedback_trace,
        name="steady-test",
    )
    sim.run(15.0)
    delays = [
        packet.queueing_delay
        for _, packet in sim.receiver_host.received_log
        if packet.queueing_delay is not None
    ]
    assert delays
    delays.sort()
    p95 = delays[int(0.95 * len(delays)) - 1]
    # The design target: 95% of packets clear the queue within ~100 ms.
    # Allow slack for the ramp-up phase of a short run.
    assert p95 < 0.25
