"""Tests for result records and cross-link aggregation."""

import pytest

from repro.metrics.summary import (
    SchemeResult,
    average_by_scheme,
    format_results_table,
    relative_to_reference,
)


def _result(scheme, link, tput_kbps, delay_ms, util=0.5):
    return SchemeResult(
        scheme=scheme,
        link=link,
        throughput_bps=tput_kbps * 1000.0,
        delay_95_s=delay_ms / 1000.0 + 0.05,
        self_inflicted_delay_s=delay_ms / 1000.0,
        utilization=util,
    )


def test_scheme_result_properties():
    result = _result("Sprout", "link", 4700, 73)
    assert result.throughput_kbps == pytest.approx(4700)
    assert result.self_inflicted_delay_ms == pytest.approx(73)
    data = result.as_dict()
    assert data["scheme"] == "Sprout"
    assert data["throughput_kbps"] == pytest.approx(4700)


def test_relative_to_reference_matches_hand_computation():
    results = [
        _result("Sprout", "a", 1000, 100),
        _result("Sprout", "b", 2000, 200),
        _result("Skype", "a", 500, 800),
        _result("Skype", "b", 500, 1800),
    ]
    comparisons = {c.scheme: c for c in relative_to_reference(results, "Sprout")}
    skype = comparisons["Skype"]
    # Speedup: mean of (1000/500, 2000/500) = 3.0
    assert skype.speedup == pytest.approx(3.0)
    # Delay ratio: mean of (0.8/0.1, 1.8/0.2) = 8.5
    assert skype.delay_reduction == pytest.approx(8.5)
    sprout = comparisons["Sprout"]
    assert sprout.speedup == pytest.approx(1.0)
    assert sprout.delay_reduction == pytest.approx(1.0)


def test_relative_to_reference_skips_links_without_reference():
    results = [
        _result("Sprout", "a", 1000, 100),
        _result("Cubic", "a", 900, 2500),
        _result("Cubic", "b", 900, 2500),  # no Sprout run on link b
    ]
    cubic = {c.scheme: c for c in relative_to_reference(results, "Sprout")}["Cubic"]
    assert cubic.speedup == pytest.approx(1000 / 900)


def test_relative_to_reference_unknown_reference_raises():
    with pytest.raises(KeyError):
        relative_to_reference([_result("Cubic", "a", 1, 1)], "Sprout")


def test_average_by_scheme():
    results = [
        _result("Sprout", "a", 1000, 100, util=0.6),
        _result("Sprout", "b", 3000, 300, util=0.4),
    ]
    averages = average_by_scheme(results)["Sprout"]
    assert averages["mean_utilization"] == pytest.approx(0.5)
    assert averages["mean_self_inflicted_delay_s"] == pytest.approx(0.2)
    assert averages["links"] == 2


def test_format_results_table_contains_all_rows():
    results = [_result("Sprout", "a", 1000, 100), _result("Cubic", "a", 2000, 5000)]
    table = format_results_table(results)
    assert "Sprout" in table and "Cubic" in table
    assert "tput" in table
