"""Tests for the multiplexing protocol wrapper."""

import pytest

from repro.simulation.endpoints import Host, Protocol
from repro.simulation.event_loop import EventLoop
from repro.simulation.mux import HEADER_MUX_FLOW, MultiplexProtocol
from repro.simulation.packet import Packet


class Recorder(Protocol):
    tick_interval = 0.05

    def __init__(self):
        self.packets = []
        self.ticks = 0
        self.sent = []

    def start(self, ctx):
        super().start(ctx)

    def on_packet(self, packet, now):
        self.packets.append(packet)

    def on_tick(self, now):
        self.ticks += 1


def _build(flows):
    loop = EventLoop()
    mux = MultiplexProtocol(flows)
    sent = []
    host = Host(loop, mux, transmit=sent.append)
    host.start()
    return loop, mux, host, sent


def test_requires_at_least_one_flow():
    with pytest.raises(ValueError):
        MultiplexProtocol({})


def test_dispatch_by_mux_flow_header():
    a, b = Recorder(), Recorder()
    loop, mux, host, _ = _build({"a": a, "b": b})
    host.deliver(Packet(headers={HEADER_MUX_FLOW: "b"}), 0.0)
    assert b.packets and not a.packets


def test_dispatch_falls_back_to_flow_id_prefix():
    a = Recorder()
    loop, mux, host, _ = _build({"alpha": a})
    host.deliver(Packet(flow_id="alpha-ack"), 0.0)
    assert len(a.packets) == 1


def test_unknown_flow_counted_not_raised():
    a = Recorder()
    loop, mux, host, _ = _build({"a": a})
    host.deliver(Packet(flow_id="zzz"), 0.0)
    assert mux.unclaimed_packets == 1
    assert a.packets == []


def test_sub_protocol_sends_are_tagged():
    a = Recorder()
    loop, mux, host, sent = _build({"a": a})
    packet = Packet()
    a.ctx.send(packet)
    assert sent == [packet]
    assert packet.headers[HEADER_MUX_FLOW] == "a"
    assert packet.flow_id == "a"


def test_sub_protocols_tick_at_their_own_rate():
    fast, slow = Recorder(), Recorder()
    fast.tick_interval = 0.05
    slow.tick_interval = 0.2
    loop, mux, host, _ = _build({"fast": fast, "slow": slow})
    loop.run_until(1.0)
    assert fast.ticks == pytest.approx(20, abs=2)
    assert slow.ticks == pytest.approx(5, abs=1)


def test_received_by_flow_log():
    a, b = Recorder(), Recorder()
    loop, mux, host, _ = _build({"a": a, "b": b})
    host.deliver(Packet(flow_id="a"), 0.0)
    host.deliver(Packet(flow_id="a"), 0.1)
    host.deliver(Packet(flow_id="b"), 0.2)
    assert len(mux.received_by_flow["a"]) == 2
    assert len(mux.received_by_flow["b"]) == 1
