"""Selective-repeat machinery under loss, reordering, and seq wraparound.

Everything in :mod:`repro.transport.reliable` is a pure state machine over
``(seq, now)`` inputs, so Hypothesis can drive the cases a socket test
cannot reach deterministically: transfers that straddle the mod-2^16
wraparound, arbitrary duplicate/reordered delivery, and SACK evidence
arriving in any interleaving.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.reliable import (
    DUPTHRESH,
    MAX_OUTSTANDING,
    SACK_SPAN,
    AdaptiveRTO,
    ReorderWindow,
    RetransmitBuffer,
)
from repro.transport.wire import SEQ_MOD, seq_add

starts = st.integers(min_value=0, max_value=SEQ_MOD - 1)


# ------------------------------------------------------------- AdaptiveRTO


def test_rto_first_sample_seeds_srtt_and_rttvar():
    rto = AdaptiveRTO(min_rto=0.0001, max_rto=10.0)
    rto.sample(0.1)
    assert rto.srtt == pytest.approx(0.1)
    assert rto.rttvar == pytest.approx(0.05)
    assert rto.timeout() == pytest.approx(0.1 + 4 * 0.05)


def test_rto_converges_on_a_steady_rtt():
    rto = AdaptiveRTO(min_rto=0.0001, max_rto=10.0)
    for _ in range(200):
        rto.sample(0.08)
    assert rto.srtt == pytest.approx(0.08, rel=1e-6)
    assert rto.rttvar == pytest.approx(0.0, abs=1e-6)


def test_rto_ignores_negative_and_nan_samples():
    rto = AdaptiveRTO()
    rto.sample(-1.0)
    rto.sample(float("nan"))
    assert rto.samples == 0
    assert rto.srtt is None


def test_rto_backoff_doubles_and_caps():
    rto = AdaptiveRTO(initial_rto=0.2, max_rto=1.0)
    assert rto.timeout(0) == pytest.approx(0.2)
    assert rto.timeout(1) == pytest.approx(0.4)
    assert rto.timeout(10) == pytest.approx(1.0)  # capped at max_rto


def test_rto_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        AdaptiveRTO(min_rto=1.0, max_rto=0.5)


@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_rto_timeout_stays_within_bounds(samples):
    rto = AdaptiveRTO(min_rto=0.05, max_rto=2.0)
    for rtt in samples:
        rto.sample(rtt)
        assert 0.05 <= rto.timeout() <= 2.0


# -------------------------------------------------------- RetransmitBuffer


def test_buffer_cumulative_ack_releases_everything_below():
    buf = RetransmitBuffer()
    for seq in range(5):
        buf.track(seq, b"x", now=0.0)
    acked = buf.on_feedback(ack_seq=3, sack_bitmap=0, now=0.1)
    assert sorted(acked) == [0, 1, 2]
    assert len(buf) == 2


def test_buffer_sack_releases_holes_ahead_of_the_ack():
    buf = RetransmitBuffer()
    for seq in range(4):
        buf.track(seq, b"x", now=0.0)
    # ack 1 (0 delivered), SACK bit 1 => seq 3 delivered out of order
    acked = buf.on_feedback(ack_seq=1, sack_bitmap=1 << 1, now=0.1)
    assert sorted(acked) == [0, 3]
    assert sorted(buf._outstanding) == [1, 2]


def test_buffer_fast_retransmit_after_dupthresh_sack_evidence():
    buf = RetransmitBuffer()
    for seq in range(3):
        buf.track(seq, b"x", now=0.0)
    # seq 0 is the hole; seqs 1/2 keep getting SACKed.
    for _ in range(DUPTHRESH):
        buf.on_feedback(ack_seq=0, sack_bitmap=0b11, now=0.01)
    due = buf.due(now=0.02)
    assert [seq for seq, _ in due] == [0]
    buf.retransmitted(0, b"x2", now=0.02)
    assert buf.fast_retransmits == 1
    assert buf.due(now=0.02) == []  # hits reset by the retransmit


def test_buffer_rto_expiry_backs_off_exponentially():
    rto = AdaptiveRTO(initial_rto=0.2, min_rto=0.05, max_rto=2.0)
    buf = RetransmitBuffer(rto=rto)
    buf.track(0, b"x", now=0.0)
    assert buf.due(now=0.1) == []
    assert [seq for seq, _ in buf.due(now=0.25)] == [0]
    buf.retransmitted(0, b"x", now=0.25)
    assert buf.timeout_retransmits == 1
    # After one retransmit the timeout doubles: 0.2 -> 0.4.
    assert buf.due(now=0.25 + 0.3) == []
    assert [seq for seq, _ in buf.due(now=0.25 + 0.45)] == [0]


def test_buffer_due_orders_oldest_first():
    buf = RetransmitBuffer()
    buf.track(5, b"a", now=0.0)
    buf.track(3, b"b", now=1.0)  # wire order and send order disagree
    due = buf.due(now=10.0)
    assert [seq for seq, _ in due] == [5, 3]


def test_buffer_karn_rule_rejects_retransmitted_seqs():
    buf = RetransmitBuffer()
    buf.track(0, b"x", now=0.0)
    buf.track(1, b"y", now=0.0)
    assert buf.rtt_sample_ok(0)
    buf.retransmitted(0, b"x", now=0.5)
    assert not buf.rtt_sample_ok(0)
    assert buf.rtt_sample_ok(1)
    assert not buf.rtt_sample_ok(99)  # unknown seqs never sample


def test_buffer_rejects_duplicate_and_overflow_tracking():
    buf = RetransmitBuffer()
    buf.track(0, b"x", now=0.0)
    with pytest.raises(ValueError):
        buf.track(0, b"x", now=0.0)
    for seq in range(1, MAX_OUTSTANDING):
        buf.track(seq, b"x", now=0.0)
    assert not buf.has_room()
    with pytest.raises(ValueError):
        buf.track(MAX_OUTSTANDING, b"x", now=0.0)


def test_buffer_next_deadline_tracks_earliest_expiry():
    rto = AdaptiveRTO(initial_rto=0.2)
    buf = RetransmitBuffer(rto=rto)
    assert buf.next_deadline(0.0) is None
    buf.track(0, b"x", now=0.0)
    buf.track(1, b"y", now=0.1)
    assert buf.next_deadline(0.15) == pytest.approx(0.2)


@given(starts, st.integers(min_value=1, max_value=80))
@settings(max_examples=100, deadline=None)
def test_buffer_cumulative_ack_works_across_wraparound(start, count):
    """Tracking ``count`` seqs from any ring position, acking past the last
    releases every one of them — including transfers straddling 0xFFFF."""
    buf = RetransmitBuffer()
    seqs = [seq_add(start, i) for i in range(count)]
    for seq in seqs:
        buf.track(seq, b"x", now=0.0)
    acked = buf.on_feedback(ack_seq=seq_add(start, count), sack_bitmap=0, now=0.1)
    assert sorted(acked) == sorted(seqs)
    assert len(buf) == 0


# ---------------------------------------------------------- ReorderWindow


def test_window_tracks_in_order_delivery():
    win = ReorderWindow()
    for seq in range(5):
        assert win.accept(seq)
    assert win.ack_seq == 5
    assert win.sack_bitmap() == 0
    assert win.duplicates == 0 and win.reordered == 0
    assert win.all_delivered_through(4)
    assert not win.all_delivered_through(5)


def test_window_holds_out_of_order_arrivals_in_the_sack_bitmap():
    win = ReorderWindow()
    assert win.accept(0)
    assert win.accept(2)  # hole at 1
    assert win.ack_seq == 1
    assert win.sack_bitmap() == 1 << 0  # bit i acknowledges ack+1+i; 2 == 1+1+0
    assert win.missing == 1
    assert win.accept(1)  # hole fills; ack advances through the run
    assert win.ack_seq == 3
    assert win.sack_bitmap() == 0
    assert win.reordered == 1


def test_window_counts_duplicates_without_state_damage():
    win = ReorderWindow()
    assert win.accept(0)
    assert not win.accept(0)  # behind the ack point
    assert win.accept(2)
    assert not win.accept(2)  # already held out of order
    assert win.duplicates == 2
    assert win.unique_accepted == 2


@given(starts, st.permutations(list(range(30))))
@settings(max_examples=100, deadline=None)
def test_window_accepts_each_seq_exactly_once_in_any_order(start, order):
    """Any delivery order of a contiguous block — including across the
    wraparound — yields one acceptance per seq and a fully advanced ack."""
    win = ReorderWindow(first_seq=start)
    accepted = sum(win.accept(seq_add(start, offset)) for offset in order)
    assert accepted == len(order)
    assert win.unique_accepted == len(order)
    assert win.ack_seq == seq_add(start, len(order))
    assert win.all_delivered_through(seq_add(start, len(order) - 1))


@given(
    starts,
    st.lists(st.integers(min_value=0, max_value=29), min_size=1, max_size=120),
)
@settings(max_examples=100, deadline=None)
def test_window_dedups_arbitrary_duplicate_streams(start, offsets):
    """Duplicates never double-count: acceptances equal distinct seqs."""
    win = ReorderWindow(first_seq=start)
    accepted = sum(win.accept(seq_add(start, offset)) for offset in offsets)
    assert accepted == len(set(offsets))
    assert win.duplicates == len(offsets) - len(set(offsets))


@given(starts, st.permutations(list(range(25))))
@settings(max_examples=50, deadline=None)
def test_window_and_buffer_agree_under_reordered_delivery(start, order):
    """Receiver feedback drives the sender buffer empty for any delivery
    order: what the window acks, the buffer releases."""
    buf = RetransmitBuffer()
    win = ReorderWindow(first_seq=start)
    seqs = [seq_add(start, i) for i in range(len(order))]
    for seq in seqs:
        buf.track(seq, b"x", now=0.0)
    for offset in order:
        win.accept(seq_add(start, offset))
        buf.on_feedback(win.ack_seq, win.sack_bitmap(), now=0.1)
    assert len(buf) == 0


def test_sack_span_matches_the_wire_bitmap_width():
    assert SACK_SPAN == 64
    win = ReorderWindow()
    win.accept(0)
    win.accept(SACK_SPAN + 1)  # ack=1, so 65 == ack+1+63: the bitmap's far edge
    assert win.sack_bitmap() >> 63 & 1 == 1
    assert win.sack_bitmap() < 1 << 64


# ------------------------------------------------- backpressure accounting


def test_buffer_tracks_bytes_held_through_lifecycle():
    buffer = RetransmitBuffer()
    buffer.track(0, b"a" * 100, 0.0)
    buffer.track(1, b"b" * 200, 0.0)
    assert buffer.bytes_held == 300
    # a retransmission that re-encodes to a different size adjusts the count
    buffer.retransmitted(0, b"a" * 150, 1.0)
    assert buffer.bytes_held == 350
    buffer.on_feedback(1, 0b0, 2.0)  # acks seq 0
    assert buffer.bytes_held == 200
    buffer.on_feedback(2, 0b0, 3.0)
    assert buffer.bytes_held == 0


def test_buffer_byte_bound_and_backpressure_watermark():
    from repro.transport.reliable import BACKPRESSURE_WATERMARK

    buffer = RetransmitBuffer(max_outstanding=1000, max_bytes=1000)
    assert not buffer.under_backpressure
    seq = 0
    while buffer.bytes_held < BACKPRESSURE_WATERMARK * 1000:
        buffer.track(seq, b"x" * 100, 0.0)
        seq += 1
    assert buffer.under_backpressure  # watermark trips before the hard cap
    assert buffer.has_room()
    while buffer.has_room():
        buffer.track(seq, b"x" * 100, 0.0)
        seq += 1
    with pytest.raises(ValueError):
        buffer.track(seq, b"x", 0.0)  # the hard byte bound refuses


def test_buffer_count_watermark_trips_backpressure():
    buffer = RetransmitBuffer(max_outstanding=8, max_bytes=10**9)
    for seq in range(6):  # 6 >= 0.75 * 8
        buffer.track(seq, b"x", 0.0)
    assert buffer.under_backpressure


def test_buffer_fast_due_classifies_before_reset():
    buffer = RetransmitBuffer()
    buffer.track(0, b"zero", 0.0)
    buffer.track(1, b"one", 0.0)
    for _ in range(DUPTHRESH):
        buffer.on_feedback(0, 0b1, 0.01)  # SACKs seq 1, seq 0 is the hole
    assert buffer.fast_due(0)
    assert not buffer.fast_due(1)
    buffer.retransmitted(0, b"zero", 0.02)
    assert not buffer.fast_due(0)  # retransmission consumed the evidence
    assert buffer.fast_retransmits == 1
