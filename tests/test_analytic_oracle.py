"""Standing differential-validation oracle for the TCP baselines.

Marked ``oracle`` (``make test-oracle``): every run re-emulates a small
loss × rtt grid on a noise-free steady link and checks the simulated Reno
and Cubic throughput against the closed-form PFTK/CUBIC predictions of
:mod:`repro.experiments.analytic` via :func:`validate_grid`.  The point is
not to re-test the predictors (the property suite does that) but to keep a
standing tripwire over the *simulator*: a congestion-control regression —
a changed increase constant, a broken retransmit path, an ACK-clocking
bug — shows up as a systematic throughput shift the oracle flags, even
when every behavioural unit test still passes.

Tolerance calibration lives in docs/analytic.md: ORACLE_TOLERANCE = 0.25
against a worst observed in-scope error of ~0.12 on this grid, while the
canary mutation below (Reno's additive-increase constant ALPHA 1.0 → 0.15,
a ~sqrt(ALPHA) throughput scaling, ~60% error) trips it with a wide gap on
both sides.

The grid deliberately stays in the oracle-grade regime: non-zero loss on a
steady (volatility-free) channel, and short enough RTTs that Cubic sits in
its TCP-friendly region (the real-time cubic-growth regime is excluded by
its 0.65 uncertainty score — see CUBIC_FRIENDLY_RATIO).
"""

from __future__ import annotations

import pytest

from repro.baselines.reno import RenoSender
from repro.experiments.analytic import (
    ORACLE_SCHEMES,
    ORACLE_TOLERANCE,
    validate_grid,
)
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import GridSpec, run_grid
from repro.traces.channel import ChannelConfig
from repro.traces.networks import LinkSpec

pytestmark = pytest.mark.oracle

#: a noise-free channel: constant rate, no outages, no fades — the regime
#: where the PFTK/CUBIC response functions are exact enough to police the
#: simulator (volatile channels carry uncertainty >= the oracle cap and
#: are excluded from validation by design).
STEADY_LINK = LinkSpec(
    network="Steady 9.6 Mbit/s",
    direction="downlink",
    config=ChannelConfig(
        mean_rate=800.0,
        volatility=0.0,
        outage_rate=0.0,
        fade_depth=0.0,
        max_rate=4000.0,
    ),
    seed=77,
)

ORACLE_SPEC = GridSpec(
    parameters=("loss", "rtt"),
    values=((0.004, 0.02, 0.06), (0.04, 0.12)),
    schemes=ORACLE_SCHEMES,
    links=(STEADY_LINK,),
)
ORACLE_CONFIG = RunConfig(duration=20.0, warmup=2.0)


@pytest.fixture(scope="module")
def oracle_grid():
    return run_grid(ORACLE_SPEC, config=ORACLE_CONFIG, backend="batched")


def test_reno_and_cubic_match_predictions(oracle_grid):
    divergences = validate_grid(oracle_grid, ORACLE_CONFIG)
    assert divergences == [], "\n".join(d.summary for d in divergences)


def test_oracle_covers_both_schemes_and_all_loss_cells(oracle_grid):
    """The green run above must not be vacuous: with the tolerance squeezed

    to near-zero, every in-scope (scheme, loss, rtt) cell shows *some*
    stochastic deviation — proving the oracle actually compared them all.
    """
    divergences = validate_grid(oracle_grid, ORACLE_CONFIG, tolerance=1e-9)
    seen = {(d.scheme, d.label) for d in divergences}
    assert {d.scheme for d in divergences} == set(ORACLE_SCHEMES)
    # Reno is oracle-grade on every cell of the grid; Cubic only where its
    # TCP-friendly region binds (short RTT keeps it under the cubic-mode
    # uncertainty score).
    reno_cells = {label for scheme, label in seen if scheme == "Reno"}
    assert len(reno_cells) == 6


def test_mutated_reno_constant_trips_the_oracle(monkeypatch):
    """The canary: weakening Reno's additive increase (ALPHA 1.0 -> 0.15)

    scales steady-state throughput by ~sqrt(ALPHA) (~60% low), far past
    ORACLE_TOLERANCE — a silent congestion-avoidance regression cannot
    pass the oracle.  Serial in-process run so the monkeypatch reaches the
    simulated sender.
    """
    monkeypatch.setattr(RenoSender, "ALPHA", 0.15)
    spec = GridSpec(
        parameters=("loss", "rtt"),
        values=((0.02,), (0.04,)),
        schemes=("Reno",),
        links=(STEADY_LINK,),
    )
    data = run_grid(spec, config=ORACLE_CONFIG, backend="batched")
    divergences = validate_grid(data, ORACLE_CONFIG)
    assert len(divergences) == 1
    record = divergences[0]
    assert record.scheme == "Reno"
    assert record.metric == "throughput_bps"
    assert record.relative_error > ORACLE_TOLERANCE
    assert record.simulated < record.predicted  # weakened sender runs slow
    assert "DIVERGED" not in record.summary  # render adds the verdict
    assert record.tolerance == ORACLE_TOLERANCE
