"""Tests for the trace-driven link."""

import pytest

from repro.simulation.event_loop import EventLoop
from repro.simulation.link import TraceDrivenLink
from repro.simulation.packet import MTU_BYTES, Packet


def _collector():
    received = []

    def deliver(packet, now):
        received.append((now, packet))

    return received, deliver


def test_packets_released_at_trace_times():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1, 0.2, 0.3], deliver)
    for _ in range(3):
        link.receive(Packet(), 0.0)
    loop.run_until(0.5)
    assert [round(t, 3) for t, _ in received] == [0.1, 0.2, 0.3]


def test_empty_queue_wastes_opportunity():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1, 0.2], deliver, loop_trace=False)
    loop.run_until(0.15)  # the 0.1 opportunity passes with nothing queued
    link.receive(Packet(), 0.15)
    loop.run_until(0.5)
    assert len(received) == 1
    assert received[0][0] == pytest.approx(0.2)
    assert link.wasted_opportunities == 1


def test_per_byte_accounting_releases_many_small_packets():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1], deliver, loop_trace=False)
    # Fifteen 100-byte packets fit within a single MTU-sized opportunity
    # (footnote 6 of the paper).
    for _ in range(15):
        link.receive(Packet(size=100), 0.0)
    loop.run_until(0.2)
    assert len(received) == 15


def test_large_packet_needs_accumulated_credit():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1, 0.2], deliver, loop_trace=False)
    link.receive(Packet(size=2 * MTU_BYTES), 0.0)
    loop.run_until(0.15)
    assert received == []  # one opportunity is not enough
    loop.run_until(0.3)
    assert len(received) == 1


def test_credit_resets_when_queue_empties():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1, 0.2, 0.3], deliver, loop_trace=False)
    link.receive(Packet(size=100), 0.0)
    loop.run_until(0.15)
    assert len(received) == 1
    # The unused 1400 bytes of credit must not carry over to deliver a
    # 1500-byte packet out of a single later leftover.
    link.receive(Packet(size=MTU_BYTES), 0.16)
    link.receive(Packet(size=MTU_BYTES), 0.16)
    loop.run_until(0.35)
    assert len(received) == 3  # exactly one per remaining opportunity


def test_trace_loops_when_exhausted():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1, 0.2], deliver, loop_trace=True)
    for _ in range(4):
        link.receive(Packet(), 0.0)
    loop.run_until(0.5)
    assert len(received) == 4
    assert [round(t, 3) for t, _ in received] == [0.1, 0.2, 0.3, 0.4]


def test_statistics_track_bytes_and_packets():
    loop = EventLoop()
    received, deliver = _collector()
    link = TraceDrivenLink(loop, [0.1, 0.2], deliver, loop_trace=False)
    link.receive(Packet(), 0.0)
    link.receive(Packet(), 0.0)
    loop.run_until(0.5)
    assert link.packets_delivered == 2
    assert link.bytes_delivered == 2 * MTU_BYTES
    assert link.opportunities == 2


def test_empty_trace_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        TraceDrivenLink(loop, [], lambda p, t: None)


def test_negative_trace_time_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        TraceDrivenLink(loop, [-0.1, 0.2], lambda p, t: None)
