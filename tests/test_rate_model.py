"""Tests for the discretized doubly-stochastic rate model."""

import numpy as np
import pytest

from repro.core.rate_model import RateModel, RateModelParams, shared_rate_model


def test_default_parameters_match_paper(rate_model):
    params = rate_model.params
    assert params.num_bins == 256
    assert params.max_rate == 1000.0
    assert params.tick == pytest.approx(0.020)
    assert params.sigma == 200.0
    assert params.outage_escape_rate == 1.0
    assert params.forecast_ticks == 8


def test_parameter_validation():
    with pytest.raises(ValueError):
        RateModelParams(num_bins=1)
    with pytest.raises(ValueError):
        RateModelParams(tick=0.0)
    with pytest.raises(ValueError):
        RateModelParams(sigma=-1.0)
    with pytest.raises(ValueError):
        RateModelParams(forecast_ticks=0)


def test_rate_grid_spans_zero_to_max(rate_model):
    assert rate_model.rates[0] == 0.0
    assert rate_model.rates[-1] == 1000.0
    assert len(rate_model.rates) == 256


def test_transition_matrix_rows_sum_to_one(rate_model):
    sums = rate_model.transition.sum(axis=1)
    assert np.allclose(sums, 1.0)
    assert np.all(rate_model.transition >= 0.0)


def test_outage_state_is_sticky(rate_model):
    # From the outage bin, staying put is far more likely than from any
    # neighbouring bin (the lambda_z bias of Section 3.1).
    stay_from_outage = rate_model.transition[0, 0]
    stay_from_next = rate_model.transition[1, 1]
    assert stay_from_outage > 0.9
    assert stay_from_outage > 3 * stay_from_next


def test_uniform_prior_sums_to_one(rate_model):
    prior = rate_model.uniform_prior()
    assert prior.sum() == pytest.approx(1.0)
    assert np.all(prior == prior[0])


def test_evolution_preserves_probability(rate_model):
    belief = rate_model.uniform_prior()
    for _ in range(10):
        belief = rate_model.evolve(belief)
        assert belief.sum() == pytest.approx(1.0)


def test_evolution_spreads_a_point_mass(rate_model):
    belief = np.zeros(256)
    belief[128] = 1.0
    evolved = rate_model.evolve(belief)
    assert evolved[128] < 1.0
    assert (evolved > 0).sum() > 5


def test_observation_likelihood_peaks_near_observed_rate(rate_model):
    # Observing 6 packets in a 20 ms tick suggests roughly 300 packets/s.
    likelihood = rate_model.observation_likelihood(6.0)
    best = rate_model.rates[int(np.argmax(likelihood))]
    assert 250 <= best <= 350


def test_observation_of_zero_favours_outage(rate_model):
    likelihood = rate_model.observation_likelihood(0.0)
    assert likelihood[0] == pytest.approx(1.0)
    assert likelihood[-1] < likelihood[0]


def test_zero_rate_cannot_produce_packets(rate_model):
    likelihood = rate_model.observation_likelihood(3.0)
    assert likelihood[0] == 0.0


def test_negative_observation_rejected(rate_model):
    with pytest.raises(ValueError):
        rate_model.observation_likelihood(-1.0)


def test_update_concentrates_belief_on_true_rate(rate_model):
    rng = np.random.default_rng(0)
    belief = rate_model.uniform_prior()
    true_rate = 400.0
    for _ in range(200):
        observed = rng.poisson(true_rate * rate_model.params.tick)
        belief = rate_model.update(belief, float(observed))
    estimate = rate_model.expected_rate(belief)
    assert estimate == pytest.approx(true_rate, rel=0.15)


def test_censored_update_never_reduces_rate_estimate(rate_model):
    belief = rate_model.uniform_prior()
    for _ in range(50):
        belief = rate_model.update(belief, 8.0)  # exact obs: ~400 pkt/s
    before = rate_model.expected_rate(belief)
    # A sender-limited tick showing only 1 packet must not drag the belief
    # down the way an exact observation of 1 packet would.
    censored = rate_model.update(belief, 1.0, censored=True)
    exact = rate_model.update(belief, 1.0, censored=False)
    assert rate_model.expected_rate(censored) > rate_model.expected_rate(exact)
    assert rate_model.expected_rate(censored) == pytest.approx(before, rel=0.2)


def test_censored_likelihood_rules_out_slower_rates(rate_model):
    likelihood = rate_model.censored_likelihood(6.0)
    # Rates far below the observed drain are (almost) ruled out; rates above
    # remain fully plausible.
    slow = likelihood[np.searchsorted(rate_model.rates, 50.0)]
    fast = likelihood[np.searchsorted(rate_model.rates, 800.0)]
    assert slow < 0.05
    assert fast > 0.95


def test_update_survives_enormous_observation(rate_model):
    belief = rate_model.uniform_prior()
    updated = rate_model.update(belief, 1e6)
    assert np.isfinite(updated).all()
    assert updated.sum() == pytest.approx(1.0)


def test_forecast_monotone_and_scaled_with_rate(rate_model):
    low = np.zeros(256)
    low[np.searchsorted(rate_model.rates, 150.0)] = 1.0
    high = np.zeros(256)
    high[np.searchsorted(rate_model.rates, 800.0)] = 1.0

    low_forecast = rate_model.cumulative_quantile(low, 0.05)
    high_forecast = rate_model.cumulative_quantile(high, 0.05)

    assert np.all(np.diff(low_forecast) >= 0)
    assert np.all(np.diff(high_forecast) >= 0)
    assert high_forecast[-1] > low_forecast[-1]


def test_forecast_is_cautious_below_the_mean(rate_model):
    belief = np.zeros(256)
    rate = 500.0
    belief[np.searchsorted(rate_model.rates, rate)] = 1.0
    forecast = rate_model.cumulative_quantile(belief, 0.05)
    expected_mean = rate * rate_model.params.tick * rate_model.params.forecast_ticks
    assert forecast[-1] < expected_mean
    assert forecast[-1] > 0.4 * expected_mean


def test_lower_percentile_means_more_caution(rate_model):
    belief = np.zeros(256)
    belief[np.searchsorted(rate_model.rates, 400.0)] = 1.0
    cautious = rate_model.cumulative_quantile(belief, 0.05)
    median = rate_model.cumulative_quantile(belief, 0.50)
    bold = rate_model.cumulative_quantile(belief, 0.95)
    assert cautious[-1] <= median[-1] <= bold[-1]
    assert cautious[-1] < bold[-1]


def test_forecast_percentile_validation(rate_model):
    belief = rate_model.uniform_prior()
    with pytest.raises(ValueError):
        rate_model.cumulative_quantile(belief, 0.0)
    with pytest.raises(ValueError):
        rate_model.cumulative_quantile(belief, 1.0)
    with pytest.raises(ValueError):
        rate_model.cumulative_quantile(belief, 0.05, num_ticks=9)


def test_shared_model_is_memoised():
    assert shared_rate_model() is shared_rate_model()


def test_custom_model_small_grid_builds_quickly():
    params = RateModelParams(num_bins=32, max_rate=500.0, forecast_ticks=4)
    model = RateModel(params, forecast_paths=500)
    assert model.transition.shape == (32, 32)
    forecast = model.cumulative_quantile(model.uniform_prior(), 0.05)
    assert len(forecast) == 4
