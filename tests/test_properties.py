"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rate_model import shared_rate_model
from repro.metrics.delay import delay_signal_segments, percentile_of_delay_signal
from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue
from repro.traces.analysis import interarrival_survival, interarrival_times
from repro.tunnel.flow_queue import FlowQueueSet
from repro.tunnel.scheduler import RoundRobinScheduler

# A module-level model so hypothesis examples do not rebuild it.
_MODEL = shared_rate_model()


observations = st.lists(
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=30.0)),
    min_size=1,
    max_size=40,
)


@given(observations)
@settings(max_examples=30, deadline=None)
def test_belief_remains_a_probability_distribution(obs_sequence):
    """Bayesian updates never break normalisation or produce negatives."""
    belief = _MODEL.uniform_prior()
    for obs in obs_sequence:
        if obs is None:
            belief = _MODEL.evolve(belief)
        else:
            belief = _MODEL.update(belief, obs)
        assert np.all(belief >= 0)
        assert belief.sum() == pytest.approx(1.0, abs=1e-6)


@given(observations, st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=30, deadline=None)
def test_forecast_is_monotone_and_bounded(obs_sequence, percentile):
    """The cumulative forecast never decreases across its horizon and never
    exceeds the model's physical maximum."""
    belief = _MODEL.uniform_prior()
    for obs in obs_sequence:
        belief = _MODEL.update(belief, obs) if obs is not None else _MODEL.evolve(belief)
    forecast = _MODEL.cumulative_quantile(belief, percentile)
    assert np.all(np.diff(forecast) >= 0)
    max_packets = _MODEL.params.max_rate * _MODEL.params.tick * _MODEL.params.forecast_ticks
    assert forecast[-1] <= max_packets + 50


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_interarrival_times_are_non_negative_and_consistent(times):
    gaps = interarrival_times(times)
    assert np.all(gaps >= 0)
    assert len(gaps) == len(times) - 1
    # Survival is a non-increasing function of the threshold.
    thresholds = [0.001, 0.01, 0.1, 1.0, 10.0]
    survival = interarrival_survival(gaps, thresholds)
    assert np.all(np.diff(survival) <= 1e-12)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),   # send time
            st.floats(min_value=0.001, max_value=5.0),   # one-way delay
        ),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=1.0, max_value=99.0),
)
@settings(max_examples=50, deadline=None)
def test_delay_percentile_monotone_in_percentile(sends, percentile):
    arrivals = [(send + delay, send) for send, delay in sends]
    end = max(a for a, _ in arrivals) + 1.0
    low = percentile_of_delay_signal(arrivals, 0.0, end, percentile=min(percentile, 50.0))
    high = percentile_of_delay_signal(arrivals, 0.0, end, percentile=max(percentile, 50.0))
    assert low <= high + 1e-9


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),
            st.floats(min_value=0.001, max_value=2.0),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_delay_segments_cover_window_after_first_arrival(sends):
    arrivals = [(send + delay, send) for send, delay in sends]
    end = max(a for a, _ in arrivals) + 1.0
    segments = delay_signal_segments(arrivals, 0.0, end)
    first_arrival = min(a for a, _ in arrivals)
    covered = sum(duration for _, duration in segments)
    assert covered == pytest.approx(end - max(first_arrival, 0.0), rel=1e-6)
    assert all(delay >= 0 and duration >= 0 for delay, duration in segments)


@given(st.lists(st.integers(min_value=1, max_value=3000), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_droptail_queue_conserves_packets(sizes):
    queue = DropTailQueue(byte_limit=10_000)
    accepted = 0
    for size in sizes:
        if queue.enqueue(Packet(size=size), 0.0):
            accepted += 1
    drained = 0
    while queue.dequeue(1.0) is not None:
        drained += 1
    assert drained == accepted
    assert accepted + queue.drops == len(sizes)
    assert queue.byte_length() == 0


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(min_value=1, max_value=1500)),
        min_size=1,
        max_size=100,
    ),
    st.integers(min_value=0, max_value=20_000),
)
@settings(max_examples=50, deadline=None)
def test_round_robin_scheduler_respects_budget_and_conserves_packets(items, budget):
    queues = FlowQueueSet()
    for flow, size in items:
        queues.enqueue(flow, Packet(size=size))
    total_before = queues.total_packets
    scheduler = RoundRobinScheduler(queues)
    taken = scheduler.take(budget)
    assert sum(p.size for p in taken) <= budget
    assert len(taken) + queues.total_packets == total_before


@given(
    st.lists(
        st.tuples(st.sampled_from(["bulk", "interactive"]), st.integers(min_value=50, max_value=1500)),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=1500, max_value=30_000),
)
@settings(max_examples=50, deadline=None)
def test_flow_queue_set_limit_is_enforced(items, limit):
    queues = FlowQueueSet()
    queues.set_limit(limit)
    for flow, size in items:
        queues.enqueue(flow, Packet(size=size))
        # The invariant of Section 4.3: after every enqueue the total queued
        # bytes stay within one packet of the forecast-derived limit.
        assert queues.total_bytes <= limit + 1500
