"""Tests for the Sprout sender in isolation (no network)."""

import pytest

from repro.core.packets import (
    CONTROL_PACKET_BYTES,
    make_feedback_packet,
    parse_data_header,
)
from repro.core.sender import SproutSender, saturating_payload_provider
from repro.simulation.packet import MTU_BYTES, Packet


class FakeContext:
    def __init__(self):
        self.sent = []
        self.time = 0.0
        self.name = "fake-sender"

    def now(self):
        return self.time

    def send(self, packet):
        packet.sent_at = self.time
        self.sent.append(packet)

    def schedule_after(self, delay, callback):  # pragma: no cover - unused
        raise NotImplementedError


def _feedback(forecast_packets, received_or_lost=0, time=0.0):
    return make_feedback_packet(
        forecast_bytes=[p * 1500.0 for p in forecast_packets],
        forecast_time=time,
        received_or_lost_bytes=received_or_lost,
    )


def test_constructor_validation():
    with pytest.raises(ValueError):
        SproutSender(lookahead_ticks=0)
    with pytest.raises(ValueError):
        SproutSender(tick_interval=0.0)
    with pytest.raises(ValueError):
        SproutSender(heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        SproutSender(bootstrap_packets_per_tick=-1)


def test_saturating_provider_fills_budget():
    assert saturating_payload_provider(0.0, 4500) == [MTU_BYTES] * 3
    assert saturating_payload_provider(0.0, 1000) == []


def test_bootstrap_before_first_forecast():
    sender = SproutSender(bootstrap_packets_per_tick=2)
    ctx = FakeContext()
    sender.start(ctx)
    for i in range(3):
        ctx.time = 0.02 * (i + 1)
        sender.on_tick(ctx.time)
    data = [p for p in ctx.sent if not parse_data_header(p).is_heartbeat]
    assert len(data) == 6
    assert sender.bytes_sent == 6 * MTU_BYTES


def test_window_follows_forecast_minus_queue():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    # Forecast: 3 packets per tick cumulative; lookahead 5 ticks => 15
    # packets may be sent when the queue is believed empty.
    ctx.time = 0.1
    sender.on_packet(_feedback([3, 6, 9, 12, 15, 18, 21, 24], time=0.1), ctx.time)
    data = [p for p in ctx.sent if parse_data_header(p) is not None]
    assert len(data) == 15
    assert sender.bytes_sent == 15 * MTU_BYTES


def test_queue_estimate_reduces_window():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    sender.bytes_sent = 10 * MTU_BYTES  # pretend these are unacknowledged
    ctx.time = 0.1
    # The receiver has seen nothing: queue estimate = 10 packets, forecast
    # drains 15 within the look-ahead, so only 5 more may be sent.
    sender.on_packet(_feedback([3, 6, 9, 12, 15, 18, 21, 24], received_or_lost=0, time=0.1), ctx.time)
    assert len(ctx.sent) == 5


def test_sequence_numbers_count_bytes_cumulatively():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([2, 4, 6, 8, 10, 12, 14, 16], time=0.1), ctx.time)
    seqs = [parse_data_header(p).seq_bytes for p in ctx.sent]
    assert seqs == [MTU_BYTES * (i + 1) for i in range(len(ctx.sent))]


def test_time_to_next_zero_mid_flight_positive_at_end():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([2, 4, 6, 8, 10, 12, 14, 16], time=0.1), ctx.time)
    headers = [parse_data_header(p) for p in ctx.sent]
    assert all(h.time_to_next == 0.0 for h in headers[:-1])
    assert headers[-1].time_to_next > 0.0


def test_stale_forecast_ignored():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([2, 4, 6, 8, 10, 12, 14, 16], time=0.1), ctx.time)
    count_after_first = len(ctx.sent)
    # An older forecast (earlier receiver timestamp) must not reopen the window.
    sender.on_packet(_feedback([50, 100, 150, 200, 250, 300, 350, 400], time=0.05), ctx.time)
    assert len(ctx.sent) == count_after_first
    assert sender.forecasts_received == 1


def test_heartbeat_sent_when_idle():
    sender = SproutSender(bootstrap_packets_per_tick=0, heartbeat_interval=0.1)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([0] * 8, time=0.1), ctx.time)  # window stays shut
    for i in range(10):
        ctx.time = 0.1 + 0.02 * (i + 1)
        sender.on_tick(ctx.time)
    heartbeats = [p for p in ctx.sent if parse_data_header(p).is_heartbeat]
    assert len(heartbeats) >= 2
    assert all(p.size == CONTROL_PACKET_BYTES for p in heartbeats)
    assert sender.heartbeats_sent == len(heartbeats)


def test_throwaway_number_reflects_packets_sent_10ms_ago():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([2, 4, 6, 8, 10, 12, 14, 16], time=0.1), ctx.time)
    first_flight_bytes = sender.bytes_sent
    # 20 ms later everything from the first flight is older than 10 ms.
    ctx.time = 0.12
    sender.on_packet(
        _feedback([2, 4, 6, 8, 10, 12, 14, 16], received_or_lost=first_flight_bytes, time=0.12),
        ctx.time,
    )
    new_packets = ctx.sent[len(ctx.sent) - (sender.data_packets_sent - 10):]
    later_headers = [parse_data_header(p) for p in ctx.sent[10:]]
    assert any(h.throwaway_bytes == first_flight_bytes for h in later_headers)
    del new_packets


def test_packet_source_supplies_tunnelled_packets():
    supplied = []

    def source(now, budget):
        packet = Packet(size=500, flow_id="client")
        supplied.append(packet)
        return [packet]

    sender = SproutSender(bootstrap_packets_per_tick=0, packet_source=source)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([2, 4, 6, 8, 10, 12, 14, 16], time=0.1), ctx.time)
    assert supplied
    header = parse_data_header(supplied[0])
    assert header is not None
    assert header.seq_bytes == 500


def test_packet_source_overrun_rejected():
    def greedy(now, budget):
        return [Packet(size=budget + 1)]

    sender = SproutSender(bootstrap_packets_per_tick=0, packet_source=greedy)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    with pytest.raises(ValueError):
        sender.on_packet(_feedback([10, 20, 30, 40, 50, 60, 70, 80], time=0.1), ctx.time)


def test_window_history_recorded():
    sender = SproutSender(bootstrap_packets_per_tick=0)
    ctx = FakeContext()
    sender.start(ctx)
    ctx.time = 0.1
    sender.on_packet(_feedback([2, 4, 6, 8, 10, 12, 14, 16], time=0.1), ctx.time)
    assert sender.window_history
    assert sender.window_history[0][1] > 0
