"""Tests for the Sprout wire format helpers."""

import pytest

from repro.core.packets import (
    CONTROL_PACKET_BYTES,
    THROWAWAY_INTERVAL,
    data_packet_sizes,
    is_heartbeat,
    make_data_packet,
    make_feedback_packet,
    parse_data_header,
    parse_feedback,
)
from repro.simulation.packet import MTU_BYTES, Packet


def test_data_packet_roundtrip():
    packet = make_data_packet(
        size=1500, seq_bytes=4500, throwaway_bytes=1500, time_to_next=0.02
    )
    header = parse_data_header(packet)
    assert header is not None
    assert header.seq_bytes == 4500
    assert header.throwaway_bytes == 1500
    assert header.time_to_next == pytest.approx(0.02)
    assert not header.is_heartbeat


def test_heartbeat_flag():
    packet = make_data_packet(
        size=60, seq_bytes=0, throwaway_bytes=0, time_to_next=0.1, is_heartbeat=True
    )
    assert is_heartbeat(packet)
    assert parse_data_header(packet).is_heartbeat


def test_data_packet_validation():
    with pytest.raises(ValueError):
        make_data_packet(size=0, seq_bytes=0, throwaway_bytes=0, time_to_next=0.0)
    with pytest.raises(ValueError):
        make_data_packet(size=100, seq_bytes=-1, throwaway_bytes=0, time_to_next=0.0)
    with pytest.raises(ValueError):
        make_data_packet(size=100, seq_bytes=0, throwaway_bytes=0, time_to_next=-0.1)


def test_feedback_roundtrip():
    packet = make_feedback_packet(
        forecast_bytes=[1500, 3000, 4500], forecast_time=1.25, received_or_lost_bytes=9000
    )
    feedback = parse_feedback(packet)
    assert feedback is not None
    assert feedback.forecast_bytes == [1500.0, 3000.0, 4500.0]
    assert feedback.forecast_time == pytest.approx(1.25)
    assert feedback.received_or_lost_bytes == 9000
    assert packet.size == CONTROL_PACKET_BYTES


def test_feedback_validation():
    with pytest.raises(ValueError):
        make_feedback_packet([1500], 0.0, received_or_lost_bytes=-1)


def test_parsers_reject_foreign_packets():
    plain = Packet()
    assert parse_data_header(plain) is None
    assert parse_feedback(plain) is None
    assert not is_heartbeat(plain)


def test_data_packet_sizes_splits_window_into_mtus():
    assert data_packet_sizes(0) == []
    assert data_packet_sizes(1499) == []
    assert data_packet_sizes(1500) == [MTU_BYTES]
    assert data_packet_sizes(4600) == [MTU_BYTES, MTU_BYTES, MTU_BYTES]


def test_data_packet_sizes_rejects_negative_window():
    with pytest.raises(ValueError):
        data_packet_sizes(-1)


def test_throwaway_interval_matches_paper():
    assert THROWAWAY_INTERVAL == pytest.approx(0.010)
