"""Tests for the Sprout receiver in isolation (no network)."""

import pytest

from repro.core.forecaster import EWMAForecaster
from repro.core.packets import make_data_packet, parse_feedback
from repro.core.receiver import SproutReceiver, make_sprout_ewma_receiver, make_sprout_receiver


class FakeContext:
    """Minimal HostContext stand-in recording outgoing packets."""

    def __init__(self):
        self.sent = []
        self.time = 0.0
        self.name = "fake"

    def now(self):
        return self.time

    def send(self, packet):
        packet.sent_at = self.time
        self.sent.append(packet)

    def schedule_after(self, delay, callback):  # pragma: no cover - unused
        raise NotImplementedError


def _data(size, seq, throwaway=0, ttn=0.0, heartbeat=False):
    return make_data_packet(
        size=size,
        seq_bytes=seq,
        throwaway_bytes=throwaway,
        time_to_next=ttn,
        is_heartbeat=heartbeat,
    )


def _drive(receiver, ctx, events, until_tick):
    """Feed (tick_index, packet) events and tick the receiver regularly."""
    by_tick = {}
    for tick_index, packet in events:
        by_tick.setdefault(tick_index, []).append(packet)
    for tick in range(until_tick):
        ctx.time = tick * 0.02
        for packet in by_tick.get(tick, []):
            receiver.on_packet(packet, ctx.time)
        ctx.time = (tick + 1) * 0.02
        receiver.on_tick(ctx.time)


def test_constructor_validation():
    with pytest.raises(ValueError):
        SproutReceiver(feedback_interval_ticks=0)
    with pytest.raises(ValueError):
        SproutReceiver(observation_grace=-0.1)


def test_feedback_sent_every_tick_by_default():
    receiver = make_sprout_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    _drive(receiver, ctx, [], until_tick=10)
    assert receiver.feedback_packets_sent == 10
    assert len(ctx.sent) == 10
    assert all(parse_feedback(p) is not None for p in ctx.sent)


def test_feedback_interval_respected():
    receiver = SproutReceiver(forecaster=EWMAForecaster(), feedback_interval_ticks=5)
    ctx = FakeContext()
    receiver.start(ctx)
    _drive(receiver, ctx, [], until_tick=20)
    assert receiver.feedback_packets_sent == 4


def test_received_or_lost_tracks_highest_sequence():
    receiver = make_sprout_ewma_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    events = [
        (0, _data(1500, seq=1500)),
        (1, _data(1500, seq=3000)),
        (2, _data(1500, seq=4500, throwaway=3000)),
    ]
    _drive(receiver, ctx, events, until_tick=4)
    assert receiver.received_or_lost_bytes == 4500
    assert receiver.data_packets_received == 3


def test_throwaway_writes_off_lost_bytes():
    receiver = make_sprout_ewma_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    # Only one packet arrives, but it declares that everything up to byte
    # 30000 was sent long ago: the gap must be written off as lost.
    _drive(receiver, ctx, [(0, _data(1500, seq=31500, throwaway=30000))], until_tick=2)
    assert receiver.received_or_lost_bytes == 31500


def test_feedback_carries_forecast_and_counter():
    receiver = make_sprout_ewma_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    events = [(i, _data(1500, seq=1500 * (i + 1))) for i in range(5)]
    _drive(receiver, ctx, events, until_tick=6)
    feedback = parse_feedback(ctx.sent[-1])
    assert feedback.received_or_lost_bytes == 5 * 1500
    assert len(feedback.forecast_bytes) == 8
    assert feedback.forecast_time == pytest.approx(ctx.sent[-1].sent_at)


def test_heartbeats_counted_separately_and_not_observed_as_rate():
    receiver = make_sprout_ewma_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    # Establish a high rate, then feed only heartbeats for a while.
    events = [(i, _data(6000, seq=6000 * (i + 1))) for i in range(20)]
    events += [
        (20 + i, _data(60, seq=120000, ttn=0.1, heartbeat=True)) for i in range(10)
    ]
    _drive(receiver, ctx, events, until_tick=32)
    assert receiver.heartbeats_received == 10
    # The EWMA estimate must not have collapsed to the heartbeat rate.
    assert receiver.forecaster.bytes_per_tick > 3000


def test_sender_limited_ticks_use_censored_observation():
    receiver = make_sprout_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    # Big back-to-back flights (time-to-next zero) establish a high rate...
    events = [(i, _data(9000, seq=9000 * (i + 1), ttn=0.0)) for i in range(40)]
    # ... then small sender-limited flights (time-to-next positive).
    events += [
        (40 + i, _data(1500, seq=360000 + 1500 * (i + 1), ttn=0.1)) for i in range(30)
    ]
    _drive(receiver, ctx, events, until_tick=72)
    rate_pps = receiver.forecaster.estimated_rate_bytes_per_sec() / 1500.0
    # Exact observations of 1 packet/tick would pull the belief to ~50
    # packets/s; the censored rule must keep it well above that.
    assert rate_pps > 120.0


def test_silence_with_expectation_is_not_an_outage():
    receiver = make_sprout_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    events = [(i, _data(9000, seq=9000 * (i + 1), ttn=0.0)) for i in range(40)]
    # The final packet promises nothing for 100 ms; the following silent
    # ticks must be skipped rather than observed as zeros.
    events.append((40, _data(1500, seq=361500, ttn=0.1)))
    _drive(receiver, ctx, events, until_tick=45)
    observations_before = receiver.forecaster.observations
    ticks_before = receiver.forecaster.ticks_processed
    assert ticks_before - observations_before >= 3


def test_rate_history_recorded_when_opted_in():
    receiver = make_sprout_ewma_receiver(record_history=True)
    ctx = FakeContext()
    receiver.start(ctx)
    _drive(receiver, ctx, [(0, _data(1500, seq=1500))], until_tick=5)
    assert len(receiver.rate_history) == 5
    times = [t for t, _ in receiver.rate_history]
    assert times == sorted(times)


def test_rate_history_off_by_default():
    receiver = make_sprout_ewma_receiver()
    ctx = FakeContext()
    receiver.start(ctx)
    _drive(receiver, ctx, [(0, _data(1500, seq=1500))], until_tick=5)
    assert receiver.rate_history == []
