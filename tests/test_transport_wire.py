"""Wire codec and mod-2^16 sequence arithmetic (docs/transport.md).

The serial-number helpers get Hypothesis sweeps across the whole ring —
wraparound is exactly where hand-picked examples miss — and the codec gets
round-trip plus malformed-datagram rejection coverage: a transport reading
from a real socket must treat every byte string as potentially hostile.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.wire import (
    FLAG_FIN,
    FLAG_HEARTBEAT,
    FLAG_RETRANSMIT,
    MAGIC,
    MAX_FORECAST_TICKS,
    SEQ_HALF,
    SEQ_MOD,
    TYPE_DATA,
    WIRE_VERSION,
    CloseFrame,
    DataFrame,
    FeedbackFrame,
    WireFormatError,
    decode_frame,
    encode_close,
    encode_data,
    encode_feedback,
    seq_add,
    seq_distance,
    seq_in_window,
    seq_lt,
)

seqs = st.integers(min_value=0, max_value=SEQ_MOD - 1)


# ------------------------------------------------------- serial arithmetic


def test_seq_add_wraps():
    assert seq_add(SEQ_MOD - 1) == 0
    assert seq_add(SEQ_MOD - 1, 3) == 2
    assert seq_add(0, -1) == SEQ_MOD - 1


def test_seq_lt_straddles_the_wrap():
    assert seq_lt(SEQ_MOD - 2, 1)
    assert not seq_lt(1, SEQ_MOD - 2)
    assert not seq_lt(5, 5)


@given(seqs, st.integers(min_value=0, max_value=SEQ_MOD - 1))
@settings(max_examples=200, deadline=None)
def test_seq_distance_inverts_seq_add(start, inc):
    assert seq_distance(start, seq_add(start, inc)) == inc


@given(seqs, st.integers(min_value=1, max_value=SEQ_HALF - 1))
@settings(max_examples=200, deadline=None)
def test_seq_lt_orders_any_half_ring_step(base, step):
    """Within the half-ring horizon ``a < a + step`` regardless of wrap."""
    ahead = seq_add(base, step)
    assert seq_lt(base, ahead)
    assert not seq_lt(ahead, base)


@given(seqs)
@settings(max_examples=100, deadline=None)
def test_seq_lt_is_irreflexive(seq):
    assert not seq_lt(seq, seq)


@given(seqs, seqs, st.integers(min_value=1, max_value=SEQ_HALF))
@settings(max_examples=200, deadline=None)
def test_seq_in_window_matches_distance(seq, start, size):
    assert seq_in_window(seq, start, size) == (seq_distance(start, seq) < size)


# ------------------------------------------------------------- round trips


def _data_frame(**overrides) -> DataFrame:
    base = dict(
        wire_seq=7,
        seq_bytes=14000,
        throwaway_bytes=2800,
        time_to_next=0.02,
        timestamp=1.25,
        transfer_total=262144,
        size=1400,
    )
    base.update(overrides)
    return DataFrame(**base)


def test_data_frame_round_trips():
    frame = _data_frame(heartbeat=True, retransmit=True, fin=True)
    encoded = encode_data(frame)
    assert len(encoded) == frame.size  # padded to the nominal wire size
    decoded = decode_frame(encoded)
    assert decoded == frame


@given(
    seqs,
    st.integers(min_value=0, max_value=2**40),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_data_codec_round_trips_any_frame(seq, seq_bytes, timestamp, hb, fin):
    frame = _data_frame(
        wire_seq=seq, seq_bytes=seq_bytes, timestamp=timestamp, heartbeat=hb, fin=fin
    )
    assert decode_frame(encode_data(frame)) == frame


def test_feedback_frame_round_trips():
    frame = FeedbackFrame(
        wire_seq=3,
        forecast_bytes=[1400.0, 2800.0, 4200.0],
        forecast_time=1.0,
        received_or_lost_bytes=14000,
        ack_seq=9,
        sack_bitmap=(1 << 0) | (1 << 5) | (1 << 63),
        echo_seq=11,
        echo_timestamp=0.75,
        echo_delay=0.003,
    )
    assert decode_frame(encode_feedback(frame)) == frame


def test_feedback_empty_forecast_round_trips():
    frame = FeedbackFrame(wire_seq=0, forecast_bytes=[], forecast_time=0.0)
    assert decode_frame(encode_feedback(frame)) == frame


def test_close_frame_round_trips():
    assert decode_frame(encode_close(CloseFrame(wire_seq=42))) == CloseFrame(wire_seq=42)


def test_feedback_rejects_overlong_forecast():
    frame = FeedbackFrame(
        wire_seq=0,
        forecast_bytes=[float(i) for i in range(MAX_FORECAST_TICKS + 1)],
        forecast_time=0.0,
    )
    with pytest.raises(WireFormatError):
        encode_feedback(frame)


# -------------------------------------------------- malformed-datagram hygiene


def test_decode_rejects_short_datagrams():
    with pytest.raises(WireFormatError):
        decode_frame(b"Sw")


def test_decode_rejects_wrong_magic():
    encoded = bytearray(encode_data(_data_frame()))
    encoded[:2] = b"XX"
    with pytest.raises(WireFormatError, match="magic"):
        decode_frame(bytes(encoded))


def test_decode_rejects_unknown_version():
    encoded = bytearray(encode_data(_data_frame()))
    encoded[2] = WIRE_VERSION + 1
    with pytest.raises(WireFormatError, match="version"):
        decode_frame(bytes(encoded))


def test_decode_rejects_unknown_type():
    encoded = bytearray(encode_close(CloseFrame(wire_seq=0)))
    encoded[3] = 99
    with pytest.raises(WireFormatError):
        decode_frame(bytes(encoded))


def test_decode_rejects_truncated_body():
    encoded = encode_data(_data_frame())
    preamble_only = encoded[:8]
    assert preamble_only[:2] == MAGIC and preamble_only[3] == TYPE_DATA
    with pytest.raises(WireFormatError):
        decode_frame(preamble_only)


@given(st.binary(max_size=64))
@settings(max_examples=200, deadline=None)
def test_decode_never_raises_anything_but_wire_format_error(blob):
    """Arbitrary bytes off the socket either decode or raise WireFormatError."""
    try:
        decode_frame(blob)
    except WireFormatError:
        pass


def test_flag_bits_are_distinct():
    assert FLAG_HEARTBEAT & FLAG_RETRANSMIT == 0
    assert FLAG_HEARTBEAT & FLAG_FIN == 0
    assert FLAG_RETRANSMIT & FLAG_FIN == 0


# ------------------------------------------------------- CRC32 integrity


def test_close_ack_frame_round_trips():
    from repro.transport.wire import CloseAckFrame, encode_close_ack

    decoded = decode_frame(encode_close_ack(CloseAckFrame(wire_seq=77)))
    assert isinstance(decoded, CloseAckFrame)
    assert decoded.wire_seq == 77


def _sample_encodings():
    data = encode_data(
        DataFrame(
            wire_seq=5, seq_bytes=1400, throwaway_bytes=0, time_to_next=0.02,
            timestamp=1.5, transfer_total=65536, size=1400,
        )
    )
    feedback = encode_feedback(
        FeedbackFrame(
            wire_seq=9, forecast_bytes=[100, 200], forecast_time=2.0,
            received_or_lost_bytes=1400, ack_seq=6, sack_bitmap=0b101,
            echo_seq=5, echo_timestamp=1.5, echo_delay=0.001,
        )
    )
    close = encode_close(CloseFrame(wire_seq=10))
    return [data, feedback, close]


def test_crc_rejects_any_single_byte_flip():
    # the corruption-storm defence: whatever single byte an adversary
    # flips, anywhere in the frame (padding included), decode must reject
    # the datagram instead of feeding garbage to the protocol
    for encoded in _sample_encodings():
        assert decode_frame(encoded)  # the pristine frame is fine
        for position in range(len(encoded)):
            for bit in (0x01, 0x80):
                mutated = bytearray(encoded)
                mutated[position] ^= bit
                with pytest.raises(WireFormatError):
                    decode_frame(bytes(mutated))


def test_crc_covers_data_padding():
    frame = DataFrame(
        wire_seq=1, seq_bytes=100, throwaway_bytes=0, time_to_next=0.02,
        timestamp=0.5, transfer_total=4096, size=1200,  # padded on the wire
    )
    encoded = encode_data(frame)
    mutated = bytearray(encoded)
    mutated[-1] ^= 0xFF  # deep inside the padding
    with pytest.raises(WireFormatError):
        decode_frame(bytes(mutated))
